//! ASIC area and power model (28 nm, 1 GHz) — reproduces Fig. 9 and the
//! SpNeRF column of Table II.
//!
//! The paper synthesizes RTL with Design Compiler on TSMC 28 nm and
//! generates SRAMs with a memory compiler. Offline we replace both with a
//! calibrated component model:
//!
//! * **SRAM inventory** — itemizes the 571 KB SGPU + 58 KB MLP buffers
//!   (Section V-C's area discussion);
//! * **area** — per-component mm² constants calibrated to the published
//!   7.7 mm² total, with SRAM a minority share (the paper's key contrast
//!   with prior accelerators);
//! * **power** — activity × energy-per-op coefficients calibrated to the
//!   published 3 W with the systolic array dominant (Fig. 9(b)).

use crate::sim::pipeline::{ArchConfig, FrameSimResult};

/// One named on-chip SRAM macro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramMacro {
    /// Buffer name.
    pub name: &'static str,
    /// Size in bytes (double-buffered macros count both copies).
    pub bytes: usize,
    /// Which top-level module owns it.
    pub module: Module,
}

/// Top-level accelerator module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Module {
    /// Sparse Grid Processing Unit.
    Sgpu,
    /// MLP Unit.
    Mlp,
}

/// The on-chip SRAM inventory of the paper's design point.
///
/// Matches Section V-C: "the MLP buffer accounts for 58 KB SRAM … and the
/// SGPU contains 571 KB SRAM".
pub fn sram_inventory() -> Vec<SramMacro> {
    vec![
        // --- SGPU: 571 KB total -------------------------------------------
        // One 32k-entry table is 104 KB packed; double-buffered.
        SramMacro { name: "index & density buffer (2x)", bytes: 208 * 1024, module: Module::Sgpu },
        // 4096 × 12 × FP16.
        SramMacro { name: "color codebook", bytes: 96 * 1024, module: Module::Sgpu },
        SramMacro { name: "true voxel grid buffer", bytes: 192 * 1024, module: Module::Sgpu },
        SramMacro { name: "bitmap buffer (2x)", bytes: 24 * 1024, module: Module::Sgpu },
        SramMacro { name: "position buffer (2x)", bytes: 32 * 1024, module: Module::Sgpu },
        SramMacro { name: "interpolation FIFO", bytes: 19 * 1024, module: Module::Sgpu },
        // --- MLP Unit: 58 KB total ----------------------------------------
        SramMacro { name: "weight buffer", bytes: 44 * 1024, module: Module::Mlp },
        SramMacro {
            name: "input buffer (block-circulant, 2x)",
            bytes: 10 * 1024,
            module: Module::Mlp,
        },
        SramMacro { name: "output buffer", bytes: 4 * 1024, module: Module::Mlp },
    ]
}

/// Total SRAM bytes of a module.
pub fn sram_bytes(module: Module) -> usize {
    sram_inventory().iter().filter(|m| m.module == module).map(|m| m.bytes).sum()
}

/// Total on-chip SRAM in bytes.
pub fn total_sram_bytes() -> usize {
    sram_inventory().iter().map(|m| m.bytes).sum()
}

/// One named breakdown component (area or power).
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name as it appears in Fig. 9.
    pub name: &'static str,
    /// Value (mm² for area, W for power).
    pub value: f64,
}

/// Area model calibrated to the published totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// mm² per FP16 MAC (PE) including local registers, 28 nm.
    pub mm2_per_mac: f64,
    /// mm² per SRAM megabyte (compiled macros, 28 nm).
    pub mm2_per_sram_mb: f64,
    /// SGPU datapath logic (GID + HMU + TIU + BLU), mm².
    pub sgpu_logic_mm2: f64,
    /// Controller, NoC, activation unit, I/O ring, mm².
    pub other_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self { mm2_per_mac: 0.00078, mm2_per_sram_mb: 1.85, sgpu_logic_mm2: 1.55, other_mm2: 1.81 }
    }
}

impl AreaModel {
    /// Fig. 9(a): per-component area for an architecture.
    pub fn breakdown(&self, arch: &ArchConfig) -> Vec<Component> {
        let sram_mb = total_sram_bytes() as f64 / (1024.0 * 1024.0);
        vec![
            Component {
                name: "systolic array",
                value: arch.systolic.macs() as f64 * self.mm2_per_mac,
            },
            Component { name: "SGPU logic", value: self.sgpu_logic_mm2 },
            Component { name: "on-chip SRAM", value: sram_mb * self.mm2_per_sram_mb },
            Component { name: "control & I/O", value: self.other_mm2 },
        ]
    }

    /// Total die area in mm².
    pub fn total_mm2(&self, arch: &ArchConfig) -> f64 {
        self.breakdown(arch).iter().map(|c| c.value).sum()
    }
}

/// Energy coefficients (28 nm, 1 GHz) calibrated so the default workload
/// dissipates ≈3 W with the systolic array dominant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// pJ per FP16 MAC including operand movement inside the array.
    pub pj_per_mac: f64,
    /// pJ per marched sample through the SGPU datapath (all 8 corners).
    pub pj_per_sgpu_sample: f64,
    /// pJ per on-chip SRAM bit moved.
    pub pj_per_sram_bit: f64,
    /// DRAM controller + PHY power per GB/s streamed, W.
    pub dram_ctrl_w_per_gbps: f64,
    /// Leakage + clock-tree power, W.
    pub static_w: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            pj_per_mac: 1.3,
            pj_per_sgpu_sample: 350.0,
            pj_per_sram_bit: 0.18,
            dram_ctrl_w_per_gbps: 0.25,
            static_w: 0.45,
        }
    }
}

/// Power report for a simulated frame stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Fig. 9(b) components.
    pub components: Vec<Component>,
    /// Total power in W.
    pub total_w: f64,
}

impl EnergyParams {
    /// Fig. 9(b): power breakdown while rendering `result` frames
    /// back-to-back.
    pub fn power(&self, result: &FrameSimResult, arch: &ArchConfig) -> PowerReport {
        let frame_s = result.cycles as f64 / arch.clock_hz();
        let a = &result.activity;
        let systolic_w = a.macs as f64 * self.pj_per_mac * 1e-12 / frame_s;
        let sgpu_w = a.samples_marched as f64 * self.pj_per_sgpu_sample * 1e-12 / frame_s;
        let sram_w = a.sram_bits as f64 * self.pj_per_sram_bit * 1e-12 / frame_s;
        let stream_gbps = a.dram_bytes as f64 / frame_s / 1e9;
        let dram_w = stream_gbps * self.dram_ctrl_w_per_gbps;
        let components = vec![
            Component { name: "systolic array", value: systolic_w },
            Component { name: "SGPU logic", value: sgpu_w },
            Component { name: "on-chip SRAM", value: sram_w },
            Component { name: "DRAM interface", value: dram_w },
            Component { name: "static & clock", value: self.static_w },
        ];
        let total_w = components.iter().map(|c| c.value).sum();
        PowerReport { components, total_w }
    }
}

/// The SpNeRF row of Table II, fully derived from the models.
#[derive(Debug, Clone, PartialEq)]
pub struct AsicSummary {
    /// Average frames per second across the evaluated scenes.
    pub fps: f64,
    /// Total power in W.
    pub power_w: f64,
    /// Die area in mm².
    pub area_mm2: f64,
    /// On-chip SRAM in MB.
    pub sram_mb: f64,
    /// Energy efficiency, FPS/W.
    pub energy_eff: f64,
    /// Area efficiency, FPS/mm².
    pub area_eff: f64,
}

/// Builds the Table II summary from per-scene simulation results.
///
/// # Panics
///
/// Panics if `results` is empty.
pub fn summarize(
    results: &[FrameSimResult],
    arch: &ArchConfig,
    area: &AreaModel,
    energy: &EnergyParams,
) -> AsicSummary {
    assert!(!results.is_empty(), "need at least one simulated scene");
    let fps = results.iter().map(|r| r.fps).sum::<f64>() / results.len() as f64;
    let power_w =
        results.iter().map(|r| energy.power(r, arch).total_w).sum::<f64>() / results.len() as f64;
    let area_mm2 = area.total_mm2(arch);
    let sram_mb = total_sram_bytes() as f64 / (1024.0 * 1024.0);
    AsicSummary {
        fps,
        power_w,
        area_mm2,
        sram_mb,
        energy_eff: fps / power_w,
        area_eff: fps / area_mm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameWorkload;
    use crate::sim::pipeline::simulate_frame;
    use spnerf_render::mlp::Mlp;

    fn paper_like_result() -> FrameSimResult {
        let w = FrameWorkload {
            scene: "avg".into(),
            rays: 640_000,
            samples_marched: 26_000_000,
            samples_shaded: 1_250_000,
            samples_skipped: 0,
            pixels_shaded: 0,
            rays_warped: 0,
            rays_remarched: 0,
            model_bytes: 7 << 20,
            format_bytes: 0,
        };
        simulate_frame(&w, &ArchConfig::default())
    }

    #[test]
    fn sram_totals_match_paper() {
        // 571 KB SGPU + 58 KB MLP = 0.61 MB (Table II).
        assert_eq!(sram_bytes(Module::Sgpu), 571 * 1024);
        assert_eq!(sram_bytes(Module::Mlp), 58 * 1024);
        let mb = total_sram_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mb - 0.614).abs() < 0.01, "total {mb} MB");
    }

    #[test]
    fn weight_buffer_fits_actual_mlp() {
        let need = Mlp::random(0).weight_bytes_f16();
        let have = sram_inventory().iter().find(|m| m.name == "weight buffer").unwrap().bytes;
        assert!(need <= have, "weights {need} B exceed buffer {have} B");
    }

    #[test]
    fn area_totals_near_7_7_mm2() {
        let arch = ArchConfig::default();
        let total = AreaModel::default().total_mm2(&arch);
        assert!((total - 7.7).abs() < 0.4, "area {total} mm²");
    }

    #[test]
    fn sram_is_minor_area_share() {
        // Section V-C: "on-chip SRAM occupies only a small fraction".
        let arch = ArchConfig::default();
        let model = AreaModel::default();
        let breakdown = model.breakdown(&arch);
        let sram = breakdown.iter().find(|c| c.name == "on-chip SRAM").unwrap().value;
        assert!(sram / model.total_mm2(&arch) < 0.25, "SRAM share too large");
    }

    #[test]
    fn power_near_3w_with_systolic_dominant() {
        let arch = ArchConfig::default();
        let report = EnergyParams::default().power(&paper_like_result(), &arch);
        assert!(
            (2.0..4.2).contains(&report.total_w),
            "total power {} W out of band",
            report.total_w
        );
        let systolic = report.components.iter().find(|c| c.name == "systolic array").unwrap();
        for c in &report.components {
            assert!(systolic.value >= c.value, "{} exceeds systolic array", c.name);
        }
    }

    #[test]
    fn summary_derives_efficiencies() {
        let arch = ArchConfig::default();
        let res = vec![paper_like_result()];
        let s = summarize(&res, &arch, &AreaModel::default(), &EnergyParams::default());
        assert!((s.energy_eff - s.fps / s.power_w).abs() < 1e-9);
        assert!((s.area_eff - s.fps / s.area_mm2).abs() < 1e-9);
        assert!((s.sram_mb - 0.614).abs() < 0.01);
    }

    #[test]
    fn power_scales_with_activity() {
        let arch = ArchConfig::default();
        let light = FrameWorkload {
            scene: "light".into(),
            rays: 640_000,
            samples_marched: 5_000_000,
            samples_shaded: 200_000,
            samples_skipped: 0,
            pixels_shaded: 0,
            rays_warped: 0,
            rays_remarched: 0,
            model_bytes: 7 << 20,
            format_bytes: 0,
        };
        let heavy = FrameWorkload {
            scene: "heavy".into(),
            rays: 640_000,
            samples_marched: 40_000_000,
            samples_shaded: 2_500_000,
            samples_skipped: 0,
            pixels_shaded: 0,
            rays_warped: 0,
            rays_remarched: 0,
            model_bytes: 7 << 20,
            format_bytes: 0,
        };
        let p_light = EnergyParams::default().power(&simulate_frame(&light, &arch), &arch).total_w;
        let p_heavy = EnergyParams::default().power(&simulate_frame(&heavy, &arch), &arch).total_w;
        // Dynamic power per frame grows, but power (energy/time) stays in a
        // sane band because heavier frames also take longer.
        assert!(p_light > 0.5 && p_heavy > 0.5);
        assert!(p_heavy < 6.0 && p_light < 6.0);
    }
}
