//! Per-frame workload descriptors.
//!
//! The cycle-level simulator does not re-render pixels; it consumes the
//! workload a frame generates — how many samples were marched (SGPU work),
//! how many were shaded (MLP work), and how many bytes of model data stream
//! from DRAM. These are measured by the reference renderer
//! ([`spnerf_render::renderer::RenderStats`]) at a convenient resolution and
//! scaled to the paper's 800×800 target.

use spnerf_core::SpNerfModel;
use spnerf_render::renderer::RenderStats;

/// The paper's evaluation render resolution (Synthetic-NeRF, 800×800).
pub const PAPER_WIDTH: u32 = 800;
/// See [`PAPER_WIDTH`].
pub const PAPER_HEIGHT: u32 = 800;

/// Workload of rendering one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameWorkload {
    /// Scene label.
    pub scene: String,
    /// Primary rays in the frame.
    pub rays: usize,
    /// Sample positions marched (one SGPU decode each: 8 vertex lookups).
    pub samples_marched: usize,
    /// Samples with positive density (one MLP evaluation each).
    pub samples_shaded: usize,
    /// Sample positions the renderer's occupancy pyramid proved empty and
    /// skipped. Skipped samples are charged **no** GID/HMU/TIU/MLP cycles —
    /// the same accounting the paper applies to pruned voxels: removed
    /// work, identical output. `samples_marched` already excludes them, so
    /// [`crate::sim::pipeline::simulate_frame`] needs no special casing.
    pub samples_skipped: usize,
    /// Per-pixel deferred-MLP evaluations (bake-and-defer rendering). `0`
    /// means classical per-sample shading: the full color MLP runs once per
    /// shaded sample and the simulator's charging is exactly the historical
    /// model. Non-zero switches the MLP column to the small deferred
    /// network, evaluated `pixels_shaded` times per frame instead of
    /// `samples_shaded` — the fig2-style MLP-work collapse.
    pub pixels_shaded: usize,
    /// Rays satisfied by forward-warping the previous frame of a temporal
    /// trajectory ([`spnerf_render::temporal`]) instead of marching. `0` on
    /// still frames and with `ReuseMode::Off`. Warped rays contribute no
    /// SGPU/MLP work — their samples simply never appear in
    /// `samples_marched`/`samples_shaded` — so the historical cycle model
    /// needs no special casing; the column exists so per-path reports can
    /// show the amortization.
    pub rays_warped: usize,
    /// Rays of a temporal frame that were re-marched (disocclusions, depth
    /// edges, validation rays). `rays_warped + rays_remarched == rays` on
    /// warped frames; both are `0` otherwise.
    pub rays_remarched: usize,
    /// SpNeRF model bytes streamed from DRAM per frame (hash tables, bitmap,
    /// codebook, true voxel grid).
    pub model_bytes: usize,
    /// Sparse-format metadata bytes streamed from DRAM per frame: the
    /// directory/pointer/coordinate reads the scene's selected
    /// `SparseFormat` performs per marched sample
    /// (`samples_marched × bytes_per_lookup`). `0` reproduces the historical
    /// accounting bit for bit — formats change lookup traffic, never pixels.
    pub format_bytes: usize,
}

impl FrameWorkload {
    /// Builds a workload from measured render statistics and the model that
    /// was rendered.
    pub fn from_render(scene: impl Into<String>, stats: &RenderStats, model: &SpNerfModel) -> Self {
        Self {
            scene: scene.into(),
            rays: stats.rays,
            samples_marched: stats.samples_marched,
            samples_shaded: stats.samples_shaded,
            samples_skipped: stats.samples_skipped,
            pixels_shaded: stats.pixels_shaded,
            rays_warped: stats.rays_warped,
            rays_remarched: stats.rays_remarched,
            model_bytes: model.footprint().total_bytes(),
            format_bytes: 0,
        }
    }

    /// Attaches the per-frame sparse-format metadata traffic (see
    /// [`Self::format_bytes`]).
    pub fn with_format_traffic(mut self, bytes: usize) -> Self {
        self.format_bytes = bytes;
        self
    }

    /// Rescales per-ray statistics to a different resolution (ray count),
    /// keeping samples-per-ray constant. Used to extrapolate a low-res
    /// measurement to the paper's 800×800 frames.
    pub fn scaled_to(&self, width: u32, height: u32) -> Self {
        let target_rays = width as usize * height as usize;
        let f = target_rays as f64 / self.rays.max(1) as f64;
        Self {
            scene: self.scene.clone(),
            rays: target_rays,
            samples_marched: (self.samples_marched as f64 * f).round() as usize,
            samples_shaded: (self.samples_shaded as f64 * f).round() as usize,
            samples_skipped: (self.samples_skipped as f64 * f).round() as usize,
            pixels_shaded: (self.pixels_shaded as f64 * f).round() as usize,
            rays_warped: (self.rays_warped as f64 * f).round() as usize,
            rays_remarched: (self.rays_remarched as f64 * f).round() as usize,
            model_bytes: self.model_bytes,
            // Metadata traffic is per-lookup, so it scales with the samples.
            format_bytes: (self.format_bytes as f64 * f).round() as usize,
        }
    }

    /// Convenience: rescale to the paper's 800×800 frames.
    pub fn at_paper_resolution(&self) -> Self {
        self.scaled_to(PAPER_WIDTH, PAPER_HEIGHT)
    }

    /// Average marched samples per ray.
    pub fn marched_per_ray(&self) -> f64 {
        self.samples_marched as f64 / self.rays.max(1) as f64
    }

    /// Average shaded samples per ray.
    pub fn shaded_per_ray(&self) -> f64 {
        self.samples_shaded as f64 / self.rays.max(1) as f64
    }

    /// Whether this frame was rendered bake-and-defer (the MLP column is
    /// per-pixel, not per-sample).
    pub fn is_deferred(&self) -> bool {
        self.pixels_shaded > 0
    }

    /// MLP-work collapse factor of a deferred frame: per-sample evaluations
    /// avoided per deferred evaluation paid
    /// (`samples_shaded / pixels_shaded`). `0` for per-sample frames.
    pub fn mlp_collapse(&self) -> f64 {
        if self.pixels_shaded == 0 {
            0.0
        } else {
            self.samples_shaded as f64 / self.pixels_shaded as f64
        }
    }

    /// Whether the frame reused any rays from its predecessor (it came from
    /// a warped temporal trajectory).
    pub fn is_warped(&self) -> bool {
        self.rays_warped > 0
    }

    /// Fraction of rays the warp satisfied without marching (`0.0` for
    /// still frames).
    pub fn warp_fraction(&self) -> f64 {
        self.rays_warped as f64 / self.rays.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RenderStats {
        RenderStats {
            rays: 1024,
            samples_marched: 30_000,
            samples_shaded: 2_000,
            rays_terminated_early: 100,
            samples_skipped: 500,
            pixels_shaded: 400,
            rays_warped: 768,
            rays_remarched: 256,
        }
    }

    fn workload() -> FrameWorkload {
        FrameWorkload {
            scene: "test".into(),
            rays: 1024,
            samples_marched: 30_000,
            samples_shaded: 2_000,
            samples_skipped: 0,
            pixels_shaded: 0,
            rays_warped: 0,
            rays_remarched: 0,
            model_bytes: 7 << 20,
            format_bytes: 0,
        }
    }

    #[test]
    fn scaling_preserves_per_ray_ratios() {
        let w = workload();
        let scaled = w.scaled_to(800, 800);
        assert_eq!(scaled.rays, 640_000);
        assert!((scaled.marched_per_ray() - w.marched_per_ray()).abs() < 0.01);
        assert!((scaled.shaded_per_ray() - w.shaded_per_ray()).abs() < 0.01);
        assert_eq!(scaled.model_bytes, w.model_bytes); // model size is per scene
    }

    #[test]
    fn paper_resolution_is_640k_rays() {
        let s = workload().at_paper_resolution();
        assert_eq!(s.rays, PAPER_WIDTH as usize * PAPER_HEIGHT as usize);
    }

    #[test]
    fn from_render_copies_stats() {
        // Build a tiny real model to check the byte accounting wire-up.
        use spnerf_core::SpNerfConfig;
        use spnerf_voxel::coord::{GridCoord, GridDims};
        use spnerf_voxel::grid::DenseGrid;
        use spnerf_voxel::vqrf::{VqrfConfig, VqrfModel};

        let mut g = DenseGrid::zeros(GridDims::cube(8));
        g.set_density(GridCoord::new(1, 1, 1), 0.5);
        let vqrf = VqrfModel::build(&g, &VqrfConfig { codebook_size: 4, ..Default::default() });
        let cfg = SpNerfConfig { subgrid_count: 2, table_size: 256, codebook_size: 4 };
        let model = SpNerfModel::build(&vqrf, &cfg).unwrap();
        let w = FrameWorkload::from_render("chair", &stats(), &model);
        assert_eq!(w.rays, 1024);
        assert_eq!(w.samples_marched, 30_000);
        assert_eq!(w.samples_skipped, 500);
        assert_eq!(w.pixels_shaded, 400);
        assert_eq!(w.rays_warped, 768);
        assert_eq!(w.rays_remarched, 256);
        assert_eq!(w.model_bytes, model.footprint().total_bytes());
        assert_eq!(w.format_bytes, 0, "format traffic is attached explicitly");
        assert_eq!(w.with_format_traffic(1234).format_bytes, 1234);
    }

    #[test]
    fn format_traffic_scales_like_lookups() {
        let w = workload().with_format_traffic(64_000);
        let scaled = w.scaled_to(800, 800);
        let f = scaled.rays as f64 / w.rays as f64;
        assert_eq!(scaled.format_bytes, (64_000.0 * f).round() as usize);
        assert_eq!(scaled.model_bytes, w.model_bytes, "model bytes stay per scene");
    }

    #[test]
    fn scaling_covers_skipped_samples() {
        let w = FrameWorkload { samples_skipped: 10_000, ..workload() };
        let scaled = w.scaled_to(800, 800);
        let f = scaled.rays as f64 / w.rays as f64;
        assert_eq!(scaled.samples_skipped, (10_000.0 * f).round() as usize);
    }

    #[test]
    fn warped_frames_scale_and_report_the_fraction() {
        let w = FrameWorkload { rays_warped: 768, rays_remarched: 256, ..workload() };
        assert!(w.is_warped());
        assert!(!workload().is_warped());
        assert_eq!(w.warp_fraction(), 768.0 / 1024.0);
        assert_eq!(workload().warp_fraction(), 0.0);
        let scaled = w.scaled_to(800, 800);
        let f = scaled.rays as f64 / w.rays as f64;
        assert_eq!(scaled.rays_warped, (768.0 * f).round() as usize);
        assert_eq!(scaled.rays_remarched, (256.0 * f).round() as usize);
        assert!((scaled.warp_fraction() - w.warp_fraction()).abs() < 1e-9);
    }

    #[test]
    fn deferred_frames_scale_and_report_the_collapse() {
        let w = FrameWorkload { pixels_shaded: 400, ..workload() };
        assert!(w.is_deferred());
        assert!(!workload().is_deferred());
        assert_eq!(w.mlp_collapse(), 2_000.0 / 400.0);
        assert_eq!(workload().mlp_collapse(), 0.0);
        let scaled = w.scaled_to(800, 800);
        let f = scaled.rays as f64 / w.rays as f64;
        assert_eq!(scaled.pixels_shaded, (400.0 * f).round() as usize);
        // The collapse ratio is scale-invariant.
        assert!((scaled.mlp_collapse() - w.mlp_collapse()).abs() < 1e-9);
    }
}
