//! # spnerf-accel
//!
//! Cycle-level simulator and ASIC area/power model of the SpNeRF
//! accelerator (DATE 2025): the Sparse Grid Processing Unit (GID, BLU, HMU,
//! TIU), the output-stationary systolic MLP Unit with its block-circulant
//! input buffer, double-buffered SRAMs, and the calibrated 28 nm area/power
//! tables behind Fig. 9 and Table II.
//!
//! * [`frame`] — per-frame workload descriptors (measured by the reference
//!   renderer, scaled to 800×800),
//! * [`sim`] — functional + cycle models of every hardware unit,
//! * [`asic`] — SRAM inventory (571 KB SGPU + 58 KB MLP), area model
//!   (≈7.7 mm²), power model (≈3 W, systolic-dominant).
//!
//! # Examples
//!
//! Simulate a paper-scale frame:
//!
//! ```
//! use spnerf_accel::frame::FrameWorkload;
//! use spnerf_accel::sim::pipeline::{simulate_frame, ArchConfig};
//!
//! let workload = FrameWorkload {
//!     scene: "lego".into(),
//!     rays: 640_000,
//!     samples_marched: 25_000_000,
//!     samples_shaded: 1_200_000,
//!     samples_skipped: 0,
//!     pixels_shaded: 0,
//!     rays_warped: 0,
//!     rays_remarched: 0,
//!     model_bytes: 7 << 20,
//!     format_bytes: 0,
//! };
//! let result = simulate_frame(&workload, &ArchConfig::default());
//! assert!(result.fps > 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asic;
pub mod frame;
pub mod sim;

pub use asic::{AreaModel, AsicSummary, EnergyParams};
pub use frame::FrameWorkload;
pub use sim::pipeline::{
    assemble_path, simulate_frame, simulate_path, ArchConfig, Bottleneck, FrameSimResult,
    PathSimResult, SgpuModel,
};
pub use sim::systolic::SystolicArray;
