//! The block-circulant input-buffer storage format (Fig. 5).
//!
//! The MLP Unit's input buffer must feed one 39-element vector per systolic
//! row per cycle group, but SRAM banks deliver only one word per cycle. The
//! paper's fix: pad each 39×1 vector to 40 elements, split it into 10 blocks
//! of 4 consecutive elements, and store adjacent blocks in neighbouring
//! banks with the start bank rotating per vector (circulant). A read then
//! touches all 10 banks exactly once (conflict-free) and a block-shift
//! network restores element order.

use std::error::Error;
use std::fmt;

/// Number of SRAM banks in the input buffer.
pub const BANKS: usize = 10;
/// Elements per block.
pub const BLOCK: usize = 4;
/// Logical vector length (the 12 + 27 MLP input).
pub const VEC_LEN: usize = 39;
/// Padded length (divisible by [`BLOCK`]; the pad element is zero).
pub const PADDED_LEN: usize = BANKS * BLOCK;

/// Attempt to store more vectors than the buffer holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferFullError {
    /// Configured capacity in vectors.
    pub capacity: usize,
}

impl fmt::Display for BufferFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "input buffer full: capacity {} vectors", self.capacity)
    }
}

impl Error for BufferFullError {}

/// A block-circulant banked input buffer.
///
/// # Examples
///
/// ```
/// use spnerf_accel::sim::block_circulant::BlockCirculantBuffer;
///
/// let mut buf = BlockCirculantBuffer::new(64);
/// let v: Vec<f32> = (0..39).map(|i| i as f32).collect();
/// buf.write_vector(&v)?;
/// assert_eq!(buf.read_vector(0)[..39], v[..]);
/// # Ok::<(), spnerf_accel::sim::block_circulant::BufferFullError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCirculantBuffer {
    /// `banks[b][v * BLOCK + e]` = element `e` of the block vector `v`
    /// placed in bank `b`.
    banks: Vec<Vec<f32>>,
    capacity_vectors: usize,
    vectors: usize,
}

impl BlockCirculantBuffer {
    /// An empty buffer holding up to `capacity_vectors` vectors (the paper
    /// batches 64).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_vectors` is zero.
    pub fn new(capacity_vectors: usize) -> Self {
        assert!(capacity_vectors > 0, "capacity must be non-zero");
        Self {
            banks: (0..BANKS).map(|_| Vec::with_capacity(capacity_vectors * BLOCK)).collect(),
            capacity_vectors,
            vectors: 0,
        }
    }

    /// Stored vector count.
    pub fn len(&self) -> usize {
        self.vectors
    }

    /// Whether no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.vectors == 0
    }

    /// The bank that holds block `b` of vector `v`: adjacent blocks go to
    /// neighbouring banks, and the start bank rotates with the vector index
    /// (the circulant offset that makes consecutive reads conflict-free
    /// while writes stay aligned).
    pub fn bank_of(v: usize, b: usize) -> usize {
        (b + v) % BANKS
    }

    /// Writes one vector (≤ [`PADDED_LEN`] elements; shorter vectors are
    /// zero-padded, as the paper pads element 40).
    ///
    /// # Errors
    ///
    /// Returns [`BufferFullError`] when the buffer is at capacity.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() > PADDED_LEN`.
    pub fn write_vector(&mut self, v: &[f32]) -> Result<(), BufferFullError> {
        assert!(v.len() <= PADDED_LEN, "vector longer than padded length");
        if self.vectors == self.capacity_vectors {
            return Err(BufferFullError { capacity: self.capacity_vectors });
        }
        let mut padded = [0.0f32; PADDED_LEN];
        padded[..v.len()].copy_from_slice(v);
        let vi = self.vectors;
        for b in 0..BANKS {
            let bank = Self::bank_of(vi, b);
            self.banks[bank].extend_from_slice(&padded[b * BLOCK..(b + 1) * BLOCK]);
        }
        self.vectors += 1;
        Ok(())
    }

    /// Reads vector `i` back in element order (the shift network's output).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn read_vector(&self, i: usize) -> [f32; PADDED_LEN] {
        assert!(i < self.vectors, "vector index {i} out of range");
        let mut out = [0.0f32; PADDED_LEN];
        for b in 0..BANKS {
            let bank = Self::bank_of(i, b);
            let src = &self.banks[bank][i * BLOCK..(i + 1) * BLOCK];
            out[b * BLOCK..(b + 1) * BLOCK].copy_from_slice(src);
        }
        out
    }

    /// The banks touched when reading vector `i`, in block order. Always a
    /// permutation of `0..BANKS` — the conflict-freedom property.
    pub fn read_banks(&self, i: usize) -> [usize; BANKS] {
        let mut out = [0usize; BANKS];
        for (b, slot) in out.iter_mut().enumerate() {
            *slot = Self::bank_of(i, b);
        }
        out
    }

    /// The block shift the read-side network applies for vector `i` (how far
    /// the first block has rotated from bank 0).
    pub fn read_shift(&self, i: usize) -> usize {
        i % BANKS
    }

    /// SRAM bytes at FP16 for the stored vectors (both the padded layout
    /// and a naive unpadded layout for comparison).
    pub fn storage_bytes_f16(&self) -> usize {
        self.vectors * PADDED_LEN * 2
    }

    /// Clears all vectors (batch handed to the systolic array).
    pub fn clear(&mut self) {
        for b in &mut self.banks {
            b.clear();
        }
        self.vectors = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_i(i: usize) -> Vec<f32> {
        (0..VEC_LEN).map(|e| (i * 100 + e) as f32).collect()
    }

    #[test]
    fn write_read_identity_across_rotations() {
        let mut buf = BlockCirculantBuffer::new(32);
        for i in 0..25 {
            buf.write_vector(&vec_i(i)).unwrap();
        }
        for i in 0..25 {
            let got = buf.read_vector(i);
            assert_eq!(&got[..VEC_LEN], &vec_i(i)[..], "vector {i} corrupted");
            assert_eq!(got[VEC_LEN], 0.0, "pad element must be zero");
        }
    }

    #[test]
    fn reads_are_bank_conflict_free() {
        let mut buf = BlockCirculantBuffer::new(16);
        for i in 0..16 {
            buf.write_vector(&vec_i(i)).unwrap();
        }
        for i in 0..16 {
            let mut banks = buf.read_banks(i);
            banks.sort_unstable();
            assert_eq!(banks, [0, 1, 2, 3, 4, 5, 6, 7, 8, 9], "read {i} hits a bank twice");
        }
    }

    #[test]
    fn consecutive_vectors_start_in_neighbouring_banks() {
        // The circulant property: vector i's block 0 lives in bank i mod 10.
        assert_eq!(BlockCirculantBuffer::bank_of(0, 0), 0);
        assert_eq!(BlockCirculantBuffer::bank_of(1, 0), 1);
        assert_eq!(BlockCirculantBuffer::bank_of(9, 0), 9);
        assert_eq!(BlockCirculantBuffer::bank_of(10, 0), 0);
    }

    #[test]
    fn shift_matches_rotation() {
        let mut buf = BlockCirculantBuffer::new(16);
        for i in 0..12 {
            buf.write_vector(&vec_i(i)).unwrap();
        }
        assert_eq!(buf.read_shift(0), 0);
        assert_eq!(buf.read_shift(3), 3);
        assert_eq!(buf.read_shift(11), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut buf = BlockCirculantBuffer::new(2);
        buf.write_vector(&vec_i(0)).unwrap();
        buf.write_vector(&vec_i(1)).unwrap();
        let err = buf.write_vector(&vec_i(2)).unwrap_err();
        assert_eq!(err.capacity, 2);
    }

    #[test]
    fn clear_resets() {
        let mut buf = BlockCirculantBuffer::new(4);
        buf.write_vector(&vec_i(0)).unwrap();
        buf.clear();
        assert!(buf.is_empty());
        buf.write_vector(&vec_i(5)).unwrap();
        assert_eq!(&buf.read_vector(0)[..VEC_LEN], &vec_i(5)[..]);
    }

    #[test]
    fn storage_accounts_padding() {
        let mut buf = BlockCirculantBuffer::new(4);
        buf.write_vector(&vec_i(0)).unwrap();
        assert_eq!(buf.storage_bytes_f16(), 40 * 2);
    }

    #[test]
    fn batch_of_64_fits_paper_budget() {
        // 64 vectors × 40 × FP16 = 5 KB per copy; double-buffered = 10 KB —
        // comfortably inside the 58 KB MLP buffer budget with weights.
        let mut buf = BlockCirculantBuffer::new(64);
        for i in 0..64 {
            buf.write_vector(&vec_i(i)).unwrap();
        }
        assert_eq!(buf.storage_bytes_f16(), 5120);
    }
}
