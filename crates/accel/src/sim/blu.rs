//! Bitmap Lookup Unit (BLU): the masking stage.
//!
//! The BLU stores the bit mask of the current subgrid in contiguous SRAM and
//! answers one occupancy query per vertex, using the vertex position as the
//! address. Its result gates the HMU output — the bitmap-masking step that
//! removes hash-collision false positives.

use spnerf_voxel::bitmap::Bitmap;
use spnerf_voxel::coord::GridCoord;

/// Pipeline latency of the BLU in cycles (address decode + SRAM read).
pub const BLU_LATENCY: u64 = 2;

/// SRAM bits charged per lookup (byte-granular bitmask access).
pub const BLU_BITS_PER_LOOKUP: u64 = 8;

/// The Bitmap Lookup Unit with activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitmapLookupUnit {
    lookups: u64,
    hits: u64,
    sram_bits: u64,
}

impl BitmapLookupUnit {
    /// A fresh unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queries the occupancy bit of `c`. Out-of-range vertices read as
    /// empty, matching the hardware's address bounds check.
    pub fn lookup(&mut self, bitmap: &Bitmap, c: GridCoord) -> bool {
        self.lookups += 1;
        self.sram_bits += BLU_BITS_PER_LOOKUP;
        let bit = bitmap.get_clamped(c);
        if bit {
            self.hits += 1;
        }
        bit
    }

    /// Lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found an occupied vertex.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// SRAM bits read.
    pub fn sram_bits(&self) -> u64 {
        self.sram_bits
    }

    /// Fraction of lookups that were occupied — tracks scene sparsity.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnerf_voxel::coord::GridDims;

    #[test]
    fn lookup_matches_bitmap() {
        let mut bm = Bitmap::zeros(GridDims::cube(8));
        bm.set(GridCoord::new(1, 2, 3), true);
        let mut blu = BitmapLookupUnit::new();
        assert!(blu.lookup(&bm, GridCoord::new(1, 2, 3)));
        assert!(!blu.lookup(&bm, GridCoord::new(0, 0, 0)));
        assert_eq!(blu.lookups(), 2);
        assert_eq!(blu.hits(), 1);
        assert_eq!(blu.sram_bits(), 16);
    }

    #[test]
    fn out_of_range_reads_empty() {
        let bm = Bitmap::zeros(GridDims::cube(4));
        let mut blu = BitmapLookupUnit::new();
        assert!(!blu.lookup(&bm, GridCoord::new(100, 0, 0)));
    }

    #[test]
    fn hit_rate_tracks_occupancy() {
        let dims = GridDims::cube(8);
        let mut bm = Bitmap::zeros(dims);
        for i in 0..dims.len() / 4 {
            bm.set_index(i * 4, true); // 25 % occupancy
        }
        let mut blu = BitmapLookupUnit::new();
        for c in dims.iter() {
            blu.lookup(&bm, c);
        }
        assert!((blu.hit_rate() - 0.25).abs() < 0.01);
    }

    #[test]
    fn empty_unit_rate_is_zero() {
        assert_eq!(BitmapLookupUnit::new().hit_rate(), 0.0);
    }
}
