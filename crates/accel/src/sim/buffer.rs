//! On-chip SRAM buffer models with double buffering.
//!
//! Every buffer in the SpNeRF accelerator is double-buffered (Section IV-A)
//! so DRAM fills overlap compute. [`SramBuffer`] tracks capacity and access
//! counters (for the power model); [`DoubleBuffer`] adds the ping-pong
//! overlap logic the frame simulator relies on.

use std::error::Error;
use std::fmt;

/// Attempt to store more bytes than a buffer's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Bytes requested.
    pub requested: usize,
    /// Buffer capacity in bytes.
    pub capacity: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer overflow: requested {} B exceeds capacity {} B",
            self.requested, self.capacity
        )
    }
}

impl Error for CapacityError {}

/// A single SRAM buffer with access accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramBuffer {
    name: String,
    capacity: usize,
    used: usize,
    reads: u64,
    writes: u64,
    bits_read: u64,
    bits_written: u64,
}

impl SramBuffer {
    /// An empty buffer of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be non-zero");
        Self {
            name: name.into(),
            capacity,
            used: 0,
            reads: 0,
            writes: 0,
            bits_read: 0,
            bits_written: 0,
        }
    }

    /// Buffer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Fill fraction.
    pub fn utilization(&self) -> f64 {
        self.used as f64 / self.capacity as f64
    }

    /// Stores `bytes` (replacing current contents — a buffer fill).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] when `bytes` exceeds capacity.
    pub fn fill(&mut self, bytes: usize) -> Result<(), CapacityError> {
        if bytes > self.capacity {
            return Err(CapacityError { requested: bytes, capacity: self.capacity });
        }
        self.used = bytes;
        self.writes += 1;
        self.bits_written += bytes as u64 * 8;
        Ok(())
    }

    /// Records a read of `bits` bits (for the power model).
    pub fn record_read_bits(&mut self, bits: u64) {
        self.reads += 1;
        self.bits_read += bits;
    }

    /// Total bits read.
    pub fn bits_read(&self) -> u64 {
        self.bits_read
    }

    /// Total bits written.
    pub fn bits_written(&self) -> u64 {
        self.bits_written
    }

    /// Read operations performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

/// A double-buffered (ping-pong) SRAM pair.
///
/// While the *front* buffer serves compute, the *back* buffer fills from
/// DRAM; [`DoubleBuffer::swap`] flips them at subgrid boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoubleBuffer {
    front: SramBuffer,
    back: SramBuffer,
    swaps: u64,
}

impl DoubleBuffer {
    /// Creates a ping-pong pair, each side `capacity` bytes.
    pub fn new(name: &str, capacity: usize) -> Self {
        Self {
            front: SramBuffer::new(format!("{name}[0]"), capacity),
            back: SramBuffer::new(format!("{name}[1]"), capacity),
            swaps: 0,
        }
    }

    /// The buffer currently serving compute.
    pub fn front(&self) -> &SramBuffer {
        &self.front
    }

    /// The buffer currently filling.
    pub fn back_mut(&mut self) -> &mut SramBuffer {
        &mut self.back
    }

    /// Front buffer with read-count access.
    pub fn front_mut(&mut self) -> &mut SramBuffer {
        &mut self.front
    }

    /// Flips front and back.
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.front, &mut self.back);
        self.swaps += 1;
    }

    /// Number of swaps (= subgrid transitions processed).
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Total SRAM bytes of the pair (what the area model counts: both
    /// copies exist physically).
    pub fn total_capacity(&self) -> usize {
        self.front.capacity() + self.back.capacity()
    }

    /// Effective stall cycles when a fill takes `fill_cycles` while compute
    /// takes `compute_cycles`: double buffering hides the shorter of the two.
    pub fn stall_cycles(fill_cycles: u64, compute_cycles: u64) -> u64 {
        fill_cycles.saturating_sub(compute_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_within_capacity() {
        let mut b = SramBuffer::new("table", 1024);
        b.fill(1000).unwrap();
        assert_eq!(b.used(), 1000);
        assert!((b.utilization() - 1000.0 / 1024.0).abs() < 1e-9);
        assert_eq!(b.bits_written(), 8000);
    }

    #[test]
    fn overflow_rejected() {
        let mut b = SramBuffer::new("table", 64);
        let err = b.fill(65).unwrap_err();
        assert_eq!(err, CapacityError { requested: 65, capacity: 64 });
        assert!(err.to_string().contains("65"));
    }

    #[test]
    fn read_accounting() {
        let mut b = SramBuffer::new("bitmap", 64);
        b.record_read_bits(26);
        b.record_read_bits(1);
        assert_eq!(b.reads(), 2);
        assert_eq!(b.bits_read(), 27);
    }

    #[test]
    fn double_buffer_swap() {
        let mut db = DoubleBuffer::new("index+density", 128);
        db.back_mut().fill(100).unwrap();
        assert_eq!(db.front().used(), 0);
        db.swap();
        assert_eq!(db.front().used(), 100);
        assert_eq!(db.swaps(), 1);
        assert_eq!(db.total_capacity(), 256);
    }

    #[test]
    fn stall_is_fill_minus_compute() {
        assert_eq!(DoubleBuffer::stall_cycles(1000, 1500), 0); // fully hidden
        assert_eq!(DoubleBuffer::stall_cycles(1500, 1000), 500);
        assert_eq!(DoubleBuffer::stall_cycles(0, 0), 0);
    }
}
