//! Functional whole-pipeline rendering: every pixel produced exclusively by
//! hardware-unit models.
//!
//! This is the reproduction's stand-in for "verified against our RTL
//! design" (Section V-A): the same image is rendered twice — once by the
//! software reference renderer, once through GID → BLU/HMU → TIU →
//! block-circulant input buffer → systolic-array GEMMs — and the two must
//! agree to FP16 tolerance. Differences would expose a divergence between
//! the algorithm specification and the hardware model.

use spnerf_core::decode::MaskMode;
use spnerf_core::model::SpNerfModel;
use spnerf_render::camera::PinholeCamera;
use spnerf_render::composite::{alpha_from_density, RayAccumulator};
use spnerf_render::image::ImageBuffer;
use spnerf_render::interp::GridFrame;
use spnerf_render::mlp::{encode_direction, Mlp, MLP_INPUT_DIM};
use spnerf_render::ray::{Aabb, UniformSampler};
use spnerf_render::renderer::RenderConfig;
use spnerf_render::vec3::Vec3;
use spnerf_voxel::FEATURE_DIM;

use crate::sim::block_circulant::BlockCirculantBuffer;
use crate::sim::pipeline::SgpuModel;
use crate::sim::systolic::SystolicArray;

/// One shaded sample waiting in the MLP input buffer (kept in arrival
/// order, which per ray equals march order).
#[derive(Debug, Clone, Copy)]
struct PendingSample {
    pixel: (u32, u32),
    density: f32,
}

/// The functional accelerator: renders images using only hardware-unit
/// models (the SGPU pipeline and tiled systolic GEMMs at the configured
/// batch size).
#[derive(Debug)]
pub struct FunctionalPipeline<'a> {
    sgpu: SgpuModel<'a>,
    systolic: SystolicArray,
    batch: usize,
    mlp: &'a Mlp,
}

impl<'a> FunctionalPipeline<'a> {
    /// Creates a functional pipeline over a built model.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(
        model: &'a SpNerfModel,
        mlp: &'a Mlp,
        systolic: SystolicArray,
        batch: usize,
    ) -> Self {
        assert!(batch > 0, "batch must be non-zero");
        Self { sgpu: SgpuModel::new(model, MaskMode::Masked), systolic, batch, mlp }
    }

    /// Access to the SGPU's unit counters after rendering.
    pub fn sgpu(&self) -> &SgpuModel<'a> {
        &self.sgpu
    }

    /// Renders one view entirely through the hardware-unit models.
    ///
    /// Samples shade in deferred batches: the SGPU emits interpolated
    /// features into the block-circulant input buffer; whenever `batch`
    /// vectors accumulate, the MLP Unit runs its three tiled GEMMs and the
    /// colors composite back into the owning rays (which is legal because
    /// compositing per ray is order-respecting here: each ray's samples
    /// enter in march order and batches flush in arrival order).
    pub fn render(
        &mut self,
        camera: &PinholeCamera,
        aabb: &Aabb,
        cfg: &RenderConfig,
    ) -> ImageBuffer {
        let model_dims = {
            let m = self.sgpu.model();
            m.dims()
        };
        let frame = GridFrame::new(model_dims, aabb.min, aabb.max);
        let step = aabb.size().max_component() * 1.74 / cfg.samples_per_ray as f32;

        let mut accumulators = vec![RayAccumulator::new(); (camera.width * camera.height) as usize];
        let mut alive = vec![true; accumulators.len()];
        let mut input = BlockCirculantBuffer::new(self.batch);
        let mut pending: Vec<PendingSample> = Vec::with_capacity(self.batch);

        for py in 0..camera.height {
            for px in 0..camera.width {
                let ray = camera.ray_for_pixel(px, py);
                let dir_enc = encode_direction(ray.dir);
                let idx = (py * camera.width + px) as usize;
                for (_t, pos) in UniformSampler::new(ray, aabb, step) {
                    if !alive[idx] {
                        break;
                    }
                    let (density, features) = self.sgpu.decode_sample(frame.world_to_grid(pos));
                    if density <= 0.0 {
                        continue;
                    }
                    let mut vec = [0.0f32; MLP_INPUT_DIM];
                    vec[..FEATURE_DIM].copy_from_slice(&features);
                    vec[FEATURE_DIM..].copy_from_slice(&dir_enc);
                    input.write_vector(&vec).expect("buffer flushed at batch size");
                    pending.push(PendingSample { pixel: (px, py), density });
                    if pending.len() == self.batch {
                        self.flush(
                            cfg,
                            step,
                            camera,
                            &mut input,
                            &mut pending,
                            &mut accumulators,
                            &mut alive,
                        );
                    }
                }
            }
        }
        if !pending.is_empty() {
            self.flush(cfg, step, camera, &mut input, &mut pending, &mut accumulators, &mut alive);
        }

        let mut img = ImageBuffer::new(camera.width, camera.height);
        for py in 0..camera.height {
            for px in 0..camera.width {
                let acc = accumulators[(py * camera.width + px) as usize];
                img.set(px, py, acc.finalize(cfg.background));
            }
        }
        img
    }

    /// Runs the 3-layer MLP on the buffered batch through tiled systolic
    /// GEMMs and composites the resulting colors.
    #[allow(clippy::too_many_arguments)]
    fn flush(
        &mut self,
        cfg: &RenderConfig,
        step: f32,
        camera: &PinholeCamera,
        input: &mut BlockCirculantBuffer,
        pending: &mut Vec<PendingSample>,
        accumulators: &mut [RayAccumulator],
        alive: &mut [bool],
    ) {
        let n = pending.len();
        // Drain the block-circulant buffer into a row-major activation
        // matrix (the shift network's output).
        let mut acts: Vec<f32> = Vec::with_capacity(n * MLP_INPUT_DIM);
        for i in 0..n {
            acts.extend_from_slice(&input.read_vector(i)[..MLP_INPUT_DIM]);
        }
        input.clear();

        // Three tiled GEMMs + activation unit, mirroring Mlp::forward.
        let shapes = Mlp::layer_shapes();
        let mut x = acts;
        let mut in_dim = MLP_INPUT_DIM;
        for (li, (k, out_dim)) in shapes.iter().enumerate() {
            debug_assert_eq!(in_dim, *k);
            let w = self.mlp.layer_weights_gemm(li);
            let mut y = self.systolic.gemm(&x, &w, n, *k, *out_dim);
            let bias = self.mlp.layer_bias(li);
            for r in 0..n {
                for (c, b) in bias.iter().enumerate() {
                    let v = &mut y[r * out_dim + c];
                    *v += b;
                    if li < 2 {
                        if *v < 0.0 {
                            *v = 0.0; // ReLU
                        }
                    } else {
                        *v = 1.0 / (1.0 + (-*v).exp()); // sigmoid
                    }
                }
            }
            x = y;
            in_dim = *out_dim;
        }

        // Composite in emission order.
        for (i, s) in pending.iter().enumerate() {
            let idx = (s.pixel.1 * camera.width + s.pixel.0) as usize;
            if !alive[idx] {
                continue;
            }
            let rgb = Vec3::new(x[i * 3], x[i * 3 + 1], x[i * 3 + 2]);
            let alpha = alpha_from_density(s.density * cfg.density_scale, step);
            accumulators[idx].add_sample(alpha, rgb);
            if accumulators[idx].is_opaque(cfg.early_stop) {
                alive[idx] = false;
            }
        }
        pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnerf_core::SpNerfConfig;
    use spnerf_render::renderer::render_view;
    use spnerf_render::scene::{build_grid, default_camera, scene_aabb, SceneId};
    use spnerf_voxel::vqrf::{VqrfConfig, VqrfModel};

    fn fixture() -> (SpNerfModel, Mlp) {
        let grid = build_grid(SceneId::Mic, 28);
        let vqrf = VqrfModel::build(
            &grid,
            &VqrfConfig {
                codebook_size: 32,
                kmeans_iters: 2,
                kmeans_subsample: 1024,
                ..Default::default()
            },
        );
        let cfg = SpNerfConfig { subgrid_count: 4, table_size: 8192, codebook_size: 32 };
        (SpNerfModel::build(&vqrf, &cfg).unwrap(), Mlp::random(42))
    }

    #[test]
    fn hardware_render_matches_software_render() {
        let (model, mlp) = fixture();
        let cam = default_camera(16, 16, 0, 8);
        let cfg = RenderConfig { samples_per_ray: 40, ..Default::default() };

        let view = model.view(MaskMode::Masked);
        let (sw, _) = render_view(&view, &mlp, &cam, &scene_aabb(), &cfg);

        let mut hw_pipe = FunctionalPipeline::new(&model, &mlp, SystolicArray::new(8, 8), 16);
        let hw = hw_pipe.render(&cam, &scene_aabb(), &cfg);

        // The hardware path rounds through FP16 in the SGPU; tolerate a
        // small PSNR-level difference but demand near-identity.
        let psnr = hw.psnr(&sw);
        assert!(psnr > 35.0, "hardware vs software render differ: {psnr:.1} dB");
        // And the object must actually be visible (not all background).
        let non_bg = hw.pixels().iter().filter(|p| (**p - Vec3::ONE).length() > 0.05).count();
        assert!(non_bg > 5, "hardware render shows nothing");
    }

    #[test]
    fn batch_size_does_not_change_the_image() {
        let (model, mlp) = fixture();
        let cam = default_camera(10, 10, 1, 8);
        let cfg = RenderConfig { samples_per_ray: 32, ..Default::default() };
        let img_a = FunctionalPipeline::new(&model, &mlp, SystolicArray::new(4, 4), 8).render(
            &cam,
            &scene_aabb(),
            &cfg,
        );
        let img_b = FunctionalPipeline::new(&model, &mlp, SystolicArray::new(16, 16), 64).render(
            &cam,
            &scene_aabb(),
            &cfg,
        );
        // Identical math, different tiling/batching → identical images up to
        // float associativity inside GEMM tiles.
        assert!(
            img_a.psnr(&img_b) > 55.0,
            "batching changed the image: {:.1} dB",
            img_a.psnr(&img_b)
        );
    }

    #[test]
    fn sgpu_counters_populated_by_render() {
        let (model, mlp) = fixture();
        let cam = default_camera(8, 8, 0, 8);
        let cfg = RenderConfig { samples_per_ray: 24, ..Default::default() };
        let mut pipe = FunctionalPipeline::new(&model, &mlp, SystolicArray::new(8, 8), 16);
        let _ = pipe.render(&cam, &scene_aabb(), &cfg);
        assert!(pipe.sgpu().gid.samples() > 0);
        assert!(pipe.sgpu().blu.lookups() > 0);
    }
}
