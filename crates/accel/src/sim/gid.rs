//! Grid ID Unit (GID): vertex identification and Eq. (2) FP16 weights.
//!
//! For every sample position the GID computes the surrounding cell's 8 voxel
//! vertices (ceiling/rounding) and their trilinear weights
//! `w = (1−|x_p−x_g|)(1−|y_p−y_g|)(1−|z_p−z_g|)` using FP16 multipliers and
//! subtractors. The functional model rounds through [`F16`] exactly like the
//! datapath; the counters feed the power model.

use spnerf_render::fp16::F16;
use spnerf_render::interp::trilinear_cell;
use spnerf_render::vec3::Vec3;
use spnerf_voxel::coord::{GridCoord, GridDims};

/// Pipeline latency of the GID in cycles (sub, abs, two multiply stages).
pub const GID_LATENCY: u64 = 4;

/// Output of the GID for one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GidOutput {
    /// Lower-corner vertex of the interpolation cell.
    pub base: GridCoord,
    /// The 8 cell corners in [`GridCoord::cell_corners`] order.
    pub corners: [GridCoord; 8],
    /// FP16-rounded trilinear weights per corner.
    pub weights: [f32; 8],
}

/// The Grid ID Unit with activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GridIdUnit {
    samples: u64,
    fp16_mul: u64,
    fp16_addsub: u64,
}

impl GridIdUnit {
    /// A fresh unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one continuous grid position; `None` when outside the grid
    /// (the sample is discarded before reaching the rest of the SGPU).
    pub fn process(&mut self, dims: GridDims, g: Vec3) -> Option<GidOutput> {
        self.samples += 1;
        let cell = trilinear_cell(dims, g)?;
        // Eq. (2) in FP16: 6 subtract ops for the fractions, then 2 multiply
        // ops per corner for the weight product.
        self.fp16_addsub += 6;
        self.fp16_mul += 16;
        let mut weights = [0.0f32; 8];
        for (w, cw) in weights.iter_mut().zip(cell.weights) {
            *w = F16::from_f32(cw).to_f32();
        }
        Some(GidOutput { base: cell.base, corners: cell.base.cell_corners(), weights })
    }

    /// Samples processed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// FP16 multiplies performed.
    pub fn fp16_mul(&self) -> u64 {
        self.fp16_mul
    }

    /// FP16 adds/subtracts performed.
    pub fn fp16_addsub(&self) -> u64 {
        self.fp16_addsub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_match_reference_within_fp16() {
        let mut gid = GridIdUnit::new();
        let dims = GridDims::cube(16);
        let g = Vec3::new(3.3, 7.6, 9.1);
        let out = gid.process(dims, g).unwrap();
        let reference = trilinear_cell(dims, g).unwrap();
        for (a, b) in out.weights.iter().zip(reference.weights) {
            assert!((a - b).abs() <= F16::EPSILON.to_f32(), "fp16 weight off: {a} vs {b}");
        }
        assert_eq!(out.base, reference.base);
    }

    #[test]
    fn weights_still_near_partition_of_unity() {
        let mut gid = GridIdUnit::new();
        let out = gid.process(GridDims::cube(8), Vec3::new(2.25, 3.75, 4.5)).unwrap();
        let sum: f32 = out.weights.iter().sum();
        assert!((sum - 1.0).abs() < 0.01, "fp16 weights sum {sum}");
    }

    #[test]
    fn out_of_grid_returns_none_but_counts() {
        let mut gid = GridIdUnit::new();
        assert!(gid.process(GridDims::cube(4), Vec3::new(-3.0, 0.0, 0.0)).is_none());
        assert_eq!(gid.samples(), 1);
        assert_eq!(gid.fp16_mul(), 0, "no weight math for discarded samples");
    }

    #[test]
    fn counters_accumulate() {
        let mut gid = GridIdUnit::new();
        for i in 0..10 {
            gid.process(GridDims::cube(8), Vec3::new(1.0 + i as f32 * 0.3, 2.0, 3.0));
        }
        assert_eq!(gid.samples(), 10);
        assert_eq!(gid.fp16_mul(), 160);
        assert_eq!(gid.fp16_addsub(), 60);
    }

    #[test]
    fn corners_are_the_cell_corners() {
        let mut gid = GridIdUnit::new();
        let out = gid.process(GridDims::cube(8), Vec3::new(2.5, 3.5, 4.5)).unwrap();
        assert_eq!(out.corners, out.base.cell_corners());
    }
}
