//! Hash Mapping Unit (HMU): the core of the SGPU.
//!
//! Computes Eq. (1) per vertex (two integer multipliers — π₁ = 1 needs none —
//! plus XOR and modulo), reads the entry from the Index and Density Buffer,
//! and classifies the 18-bit index as codebook vs true-voxel-grid by
//! comparison against the codebook size.

use spnerf_core::config::ENTRY_BITS;
use spnerf_core::hash::spatial_hash;
use spnerf_core::table::{HashEntry, HashTable};
use spnerf_voxel::coord::GridCoord;

/// Pipeline latency of the HMU in cycles (multiply, XOR/mod, SRAM read).
pub const HMU_LATENCY: u64 = 3;

/// Where an 18-bit index was routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupTarget {
    /// `index < codebook_size` — served by the color codebook.
    Codebook,
    /// Otherwise — served by the true voxel grid buffer.
    TrueGrid,
}

/// The Hash Mapping Unit with activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HashMappingUnit {
    lookups: u64,
    entries_found: u64,
    codebook_hits: u64,
    true_grid_hits: u64,
    int_mul: u64,
    sram_bits: u64,
}

impl HashMappingUnit {
    /// A fresh unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Performs the hash lookup of vertex `c` in `table` and classifies the
    /// resulting index against `codebook_size`.
    pub fn lookup(
        &mut self,
        table: &HashTable,
        c: GridCoord,
        codebook_size: usize,
    ) -> Option<(HashEntry, LookupTarget)> {
        self.lookups += 1;
        self.int_mul += 2; // y·π₂ and z·π₃ (x·π₁ is free)
        self.sram_bits += ENTRY_BITS as u64;
        let slot = spatial_hash(c, table.size());
        let entry = table.entry_at(slot)?;
        self.entries_found += 1;
        let target = if (entry.index as usize) < codebook_size {
            self.codebook_hits += 1;
            LookupTarget::Codebook
        } else {
            self.true_grid_hits += 1;
            LookupTarget::TrueGrid
        };
        Some((entry, target))
    }

    /// Lookups issued.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found a non-empty slot.
    pub fn entries_found(&self) -> u64 {
        self.entries_found
    }

    /// Entries routed to the codebook.
    pub fn codebook_hits(&self) -> u64 {
        self.codebook_hits
    }

    /// Entries routed to the true voxel grid.
    pub fn true_grid_hits(&self) -> u64 {
        self.true_grid_hits
    }

    /// Integer multiplies performed.
    pub fn int_mul(&self) -> u64 {
        self.int_mul
    }

    /// SRAM bits read from the Index and Density Buffer.
    pub fn sram_bits(&self) -> u64 {
        self.sram_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_routes_by_index() {
        let mut t = HashTable::new(1024);
        let a = GridCoord::new(1, 2, 3);
        let b = GridCoord::new(4, 5, 6);
        t.insert(a, 7, 0); // codebook (codebook_size = 16)
        t.insert(b, 20, 0); // true grid
        let mut hmu = HashMappingUnit::new();
        let (ea, ta) = hmu.lookup(&t, a, 16).unwrap();
        assert_eq!(ea.index, 7);
        assert_eq!(ta, LookupTarget::Codebook);
        let (_, tb) = hmu.lookup(&t, b, 16).unwrap();
        assert_eq!(tb, LookupTarget::TrueGrid);
        assert_eq!(hmu.codebook_hits(), 1);
        assert_eq!(hmu.true_grid_hits(), 1);
    }

    #[test]
    fn empty_slot_returns_none_but_counts() {
        let t = HashTable::new(64);
        let mut hmu = HashMappingUnit::new();
        assert!(hmu.lookup(&t, GridCoord::new(9, 9, 9), 16).is_none());
        assert_eq!(hmu.lookups(), 1);
        assert_eq!(hmu.entries_found(), 0);
        assert_eq!(hmu.int_mul(), 2);
        assert_eq!(hmu.sram_bits(), ENTRY_BITS as u64);
    }

    #[test]
    fn boundary_index_is_true_grid() {
        // index == codebook_size is the first true-grid row.
        let mut t = HashTable::new(64);
        let c = GridCoord::new(2, 2, 2);
        t.insert(c, 16, 0);
        let mut hmu = HashMappingUnit::new();
        let (_, target) = hmu.lookup(&t, c, 16).unwrap();
        assert_eq!(target, LookupTarget::TrueGrid);
    }

    #[test]
    fn lookup_agrees_with_table_lookup() {
        let mut t = HashTable::new(256);
        for i in 0..50u32 {
            t.insert(GridCoord::new(i, i * 2, i * 3), i, 1);
        }
        let mut hmu = HashMappingUnit::new();
        for i in 0..50u32 {
            let c = GridCoord::new(i, i * 2, i * 3);
            let via_hmu = hmu.lookup(&t, c, 4096).map(|(e, _)| e);
            assert_eq!(via_hmu, t.lookup(c));
        }
    }
}
