//! Cycle-level simulator of the SpNeRF accelerator (Fig. 4).
//!
//! * [`gid`] — Grid ID Unit (vertex + FP16 Eq. (2) weights),
//! * [`blu`] — Bitmap Lookup Unit (the masking SRAM),
//! * [`hmu`] — Hash Mapping Unit (Eq. (1) + Index and Density Buffer),
//! * [`tiu`] — Trilinear Interpolation Unit (dequant + weighted sum),
//! * [`systolic`] — the MLP Unit's output-stationary array,
//! * [`buffer`] — double-buffered SRAM models,
//! * [`block_circulant`] — the Fig. 5 input-buffer layout,
//! * [`pipeline`] — the functional SGPU composition, the analytic frame
//!   model, and the cycle-stepping validator.

pub mod block_circulant;
pub mod blu;
pub mod buffer;
pub mod functional;
pub mod gid;
pub mod hmu;
pub mod pipeline;
pub mod schedule;
pub mod systolic;
pub mod tiu;
