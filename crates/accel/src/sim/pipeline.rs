//! Whole-accelerator models: the functional SGPU pipeline, the analytic
//! frame performance model, and a cycle-stepping simulator that validates
//! the analytic formulas.
//!
//! The dataflow (Fig. 4): position buffer → GID → {BLU, HMU} → TIU →
//! input buffer (block-circulant) → systolic MLP → output. Everything is
//! fully pipelined and all buffers are double-buffered, so a frame's cycle
//! count is the *maximum* of the SGPU stream time, the MLP stream time and
//! the DRAM stream time, plus pipeline fill.

use spnerf_core::decode::MaskMode;
use spnerf_core::model::SpNerfModel;
use spnerf_dram::timing::DramTimings;
use spnerf_render::mlp::{DeferredMlp, Mlp, DEFERRED_INPUT_DIM};
use spnerf_render::source::VoxelData;
use spnerf_render::vec3::Vec3;
use spnerf_voxel::FEATURE_DIM;

use crate::frame::FrameWorkload;
use crate::sim::blu::{BitmapLookupUnit, BLU_LATENCY};
use crate::sim::gid::{GridIdUnit, GID_LATENCY};
use crate::sim::hmu::{HashMappingUnit, LookupTarget, HMU_LATENCY};
use crate::sim::systolic::SystolicArray;
use crate::sim::tiu::{CornerInput, TrilinearInterpUnit, TIU_LATENCY};

/// Hardware configuration of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchConfig {
    /// Core clock in GHz (paper: 1 GHz).
    pub clock_ghz: f64,
    /// Parallel SGPU sample lanes (each decodes one sample per cycle).
    pub sgpu_lanes: usize,
    /// The MLP Unit's systolic array.
    pub systolic: SystolicArray,
    /// MLP batch size (paper: 64).
    pub batch_size: usize,
    /// DRAM device.
    pub dram: DramTimings,
    /// Fraction of peak DRAM bandwidth achieved by the double-buffered
    /// sequential model streams.
    pub dram_stream_efficiency: f64,
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self {
            clock_ghz: 1.0,
            sgpu_lanes: 2,
            systolic: SystolicArray::new(64, 64),
            batch_size: 64,
            dram: DramTimings::lpddr4_3200(),
            dram_stream_efficiency: 0.85,
        }
    }
}

impl ArchConfig {
    /// Core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// DRAM bytes deliverable per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram.peak_bandwidth_bps() * self.dram_stream_efficiency / self.clock_hz()
    }

    /// Total pipeline fill latency (all stage latencies + one MLP batch).
    pub fn pipeline_fill_cycles(&self) -> u64 {
        GID_LATENCY
            + BLU_LATENCY
            + HMU_LATENCY
            + TIU_LATENCY
            + self.systolic.mlp_batch_cycles(self.batch_size)
    }
}

/// The functional SGPU: composes GID → BLU/HMU → TIU over a built model.
///
/// Produces the same `(density, features)` stream as the software decoder
/// (modulo FP16 rounding) while accumulating per-unit activity counters.
#[derive(Debug)]
pub struct SgpuModel<'a> {
    model: &'a SpNerfModel,
    mode: MaskMode,
    /// Grid ID Unit.
    pub gid: GridIdUnit,
    /// Bitmap Lookup Unit.
    pub blu: BitmapLookupUnit,
    /// Hash Mapping Unit.
    pub hmu: HashMappingUnit,
    /// Trilinear Interpolation Unit.
    pub tiu: TrilinearInterpUnit,
    codebook_bits: u64,
    true_grid_bits: u64,
}

impl<'a> SgpuModel<'a> {
    /// Creates an SGPU over `model`.
    pub fn new(model: &'a SpNerfModel, mode: MaskMode) -> Self {
        Self {
            model,
            mode,
            gid: GridIdUnit::new(),
            blu: BitmapLookupUnit::new(),
            hmu: HashMappingUnit::new(),
            tiu: TrilinearInterpUnit::new(),
            codebook_bits: 0,
            true_grid_bits: 0,
        }
    }

    /// The model this SGPU decodes from.
    pub fn model(&self) -> &'a SpNerfModel {
        self.model
    }

    /// Decodes one continuous grid-space sample position through the full
    /// SGPU pipeline.
    pub fn decode_sample(&mut self, g: Vec3) -> (f32, [f32; FEATURE_DIM]) {
        let Some(gid_out) = self.gid.process(self.model.dims(), g) else {
            return (0.0, [0.0; FEATURE_DIM]);
        };
        let mut corners = [CornerInput { data: None, weight: 0.0, needs_dequant: false }; 8];
        for (i, &corner) in gid_out.corners.iter().enumerate() {
            corners[i].weight = gid_out.weights[i];
            if !self.model.dims().contains(corner) {
                continue;
            }
            // BLU gate (masked mode only — the ablation bypasses it).
            let occupied = self.blu.lookup(self.model.bitmap(), corner);
            if self.mode == MaskMode::Masked && !occupied {
                continue;
            }
            // HMU lookup in the corner's subgrid table.
            let sub = self.model.partition().subgrid_of(corner);
            let table = &self.model.tables()[sub];
            let Some((entry, target)) =
                self.hmu.lookup(table, corner, self.model.config().codebook_size)
            else {
                continue;
            };
            let Some(features) = self.model.resolve_features(entry.index) else {
                continue;
            };
            match target {
                LookupTarget::Codebook => self.codebook_bits += FEATURE_DIM as u64 * 16,
                LookupTarget::TrueGrid => self.true_grid_bits += FEATURE_DIM as u64 * 8,
            }
            let density = entry.density_q as f32 * self.model.density_scale();
            if density <= 0.0 {
                continue;
            }
            corners[i].data = Some(VoxelData { density, features });
            corners[i].needs_dequant = target == LookupTarget::TrueGrid;
        }
        self.tiu.interpolate(&corners)
    }

    /// Total SRAM bits read across all units (bitmap + tables + codebook +
    /// true voxel grid).
    pub fn sram_bits(&self) -> u64 {
        self.blu.sram_bits() + self.hmu.sram_bits() + self.codebook_bits + self.true_grid_bits
    }
}

/// Where a frame's cycles were spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Sample decoding limits throughput.
    Sgpu,
    /// MLP evaluation limits throughput.
    Mlp,
    /// DRAM streaming limits throughput.
    Dram,
}

/// Per-frame activity counters consumed by the power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Activity {
    /// Samples decoded by the SGPU.
    pub samples_marched: u64,
    /// Samples evaluated by the MLP.
    pub samples_shaded: u64,
    /// MAC operations on the systolic array.
    pub macs: u64,
    /// On-chip SRAM bits moved (all buffers).
    pub sram_bits: u64,
    /// Bytes streamed from DRAM.
    pub dram_bytes: u64,
}

/// Result of simulating one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSimResult {
    /// Scene label.
    pub scene: String,
    /// Total frame cycles.
    pub cycles: u64,
    /// Frames per second at the configured clock.
    pub fps: f64,
    /// SGPU stream cycles.
    pub sgpu_cycles: u64,
    /// MLP stream cycles.
    pub mlp_cycles: u64,
    /// DRAM stream cycles.
    pub dram_cycles: u64,
    /// Which engine bounded the frame.
    pub bottleneck: Bottleneck,
    /// Systolic-array MAC utilization while the MLP streams.
    pub systolic_utilization: f64,
    /// Activity counters for the power model.
    pub activity: Activity,
}

/// Analytic frame performance model (fully pipelined + double buffering ⇒
/// engines overlap; the slowest stream dominates).
///
/// Frames with [`FrameWorkload::pixels_shaded`]` > 0` were rendered
/// bake-and-defer: the MLP column charges the small deferred
/// view-dependence network once per shaded *pixel* instead of the full
/// color MLP once per shaded *sample* (cycles, MACs, and SRAM weight/IO
/// traffic alike). Frames with `pixels_shaded == 0` simulate exactly as
/// before, bit for bit.
pub fn simulate_frame(w: &FrameWorkload, arch: &ArchConfig) -> FrameSimResult {
    assert!(arch.sgpu_lanes > 0, "need at least one SGPU lane");
    let deferred = w.is_deferred();
    let sgpu_cycles = (w.samples_marched as u64).div_ceil(arch.sgpu_lanes as u64);
    let mlp_cycles = if deferred {
        arch.systolic.deferred_mlp_cycles(w.pixels_shaded, arch.batch_size)
    } else {
        arch.systolic.mlp_cycles(w.samples_shaded, arch.batch_size)
    };
    // The DRAM stream carries the model plus the selected sparse format's
    // per-lookup metadata traffic; `format_bytes == 0` (the historical
    // accounting) simulates bit-identically.
    let stream_bytes = w.model_bytes as u64 + w.format_bytes as u64;
    let dram_cycles = (stream_bytes as f64 / arch.dram_bytes_per_cycle()).ceil() as u64;

    let body = sgpu_cycles.max(mlp_cycles).max(dram_cycles);
    let cycles = body + arch.pipeline_fill_cycles();
    let bottleneck = if body == sgpu_cycles {
        Bottleneck::Sgpu
    } else if body == mlp_cycles {
        Bottleneck::Mlp
    } else {
        Bottleneck::Dram
    };

    let macs = if deferred {
        w.pixels_shaded as u64 * DeferredMlp::macs_per_pixel() as u64
    } else {
        w.samples_shaded as u64 * Mlp::macs_per_sample() as u64
    };
    let systolic_utilization = if mlp_cycles == 0 {
        0.0
    } else {
        macs as f64 / (mlp_cycles as f64 * arch.systolic.macs() as f64)
    };

    // SRAM traffic: per marched sample the SGPU touches 8 corners ×
    // (bitmap 8 b + entry 26 b) plus ~8 feature fetches (≈128 b each);
    // the MLP streams weights once per batch plus its input/output buffers.
    let sgpu_bits = w.samples_marched as u64 * 8 * (8 + 26 + 128);
    let mlp_evals = if deferred { w.pixels_shaded } else { w.samples_shaded };
    let batches = (mlp_evals as u64).div_ceil(arch.batch_size as u64);
    let (weight_bits, in_dim) = if deferred {
        (DeferredMlp::weight_bytes_f16() as u64 * 8, DEFERRED_INPUT_DIM)
    } else {
        (Mlp::random(0).weight_bytes_f16() as u64 * 8, 40)
    };
    let io_bits = (arch.batch_size * in_dim * 2 * 8) as u64 + (arch.batch_size * 3 * 2 * 8) as u64;
    let mlp_bits = batches * (weight_bits + io_bits);

    let fps = arch.clock_hz() / cycles as f64;
    FrameSimResult {
        scene: w.scene.clone(),
        cycles,
        fps,
        sgpu_cycles,
        mlp_cycles,
        dram_cycles,
        bottleneck,
        systolic_utilization,
        activity: Activity {
            samples_marched: w.samples_marched as u64,
            samples_shaded: w.samples_shaded as u64,
            macs,
            sram_bits: sgpu_bits + mlp_bits,
            dram_bytes: stream_bytes,
        },
    }
}

/// Result of simulating a whole camera path (a temporal frame sequence).
#[derive(Debug, Clone, PartialEq)]
pub struct PathSimResult {
    /// Per-frame simulation results, in path order.
    pub frames: Vec<FrameSimResult>,
    /// Total cycles across the path.
    pub total_cycles: u64,
    /// Total DRAM bytes streamed across the path.
    pub total_dram_bytes: u64,
    /// Total samples decoded by the SGPU across the path.
    pub total_samples_marched: u64,
    /// Total rays the warp satisfied without marching across the path.
    pub total_rays_warped: u64,
    /// Amortized samples marched per frame — the headline number of
    /// temporal reuse: on a warped trajectory it sits far below frame 0's
    /// standalone cost.
    pub amortized_samples_per_frame: f64,
    /// Amortized cycles per frame over the path.
    pub amortized_cycles_per_frame: f64,
    /// Amortized DRAM bytes per frame over the path.
    pub amortized_dram_bytes_per_frame: f64,
}

impl PathSimResult {
    /// Average frames per second over the whole path at the configured
    /// clock.
    pub fn path_fps(&self, arch: &ArchConfig) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            arch.clock_hz() / self.amortized_cycles_per_frame
        }
    }
}

/// Simulates every frame of a camera path through [`simulate_frame`] and
/// reports path totals and per-frame amortized costs.
///
/// Each frame is simulated independently (double-buffered model streams
/// re-fetch per frame, as in the single-frame model); reuse shows up purely
/// through the workloads — warped frames arrive with fewer
/// [`FrameWorkload::samples_marched`], so the amortized per-frame columns
/// report what the trajectory actually cost. An empty path returns all
/// zeros.
pub fn simulate_path(workloads: &[FrameWorkload], arch: &ArchConfig) -> PathSimResult {
    let frames: Vec<FrameSimResult> = workloads.iter().map(|w| simulate_frame(w, arch)).collect();
    assemble_path(frames, workloads)
}

/// Folds already-simulated per-frame results (in path order, one per
/// workload) into a [`PathSimResult`]. [`simulate_path`] is exactly
/// `assemble_path(workloads.map(simulate_frame), workloads)`; streaming
/// drivers that overlap frame *N*'s render with frame *N−1*'s simulation
/// assemble through the same fold, so overlap can never change a reported
/// total.
pub fn assemble_path(frames: Vec<FrameSimResult>, workloads: &[FrameWorkload]) -> PathSimResult {
    let total_cycles: u64 = frames.iter().map(|f| f.cycles).sum();
    let total_dram_bytes: u64 = frames.iter().map(|f| f.activity.dram_bytes).sum();
    let total_samples_marched: u64 = frames.iter().map(|f| f.activity.samples_marched).sum();
    let total_rays_warped: u64 = workloads.iter().map(|w| w.rays_warped as u64).sum();
    let n = frames.len().max(1) as f64;
    PathSimResult {
        amortized_samples_per_frame: total_samples_marched as f64 / n,
        amortized_cycles_per_frame: total_cycles as f64 / n,
        amortized_dram_bytes_per_frame: total_dram_bytes as f64 / n,
        frames,
        total_cycles,
        total_dram_bytes,
        total_samples_marched,
        total_rays_warped,
    }
}

/// A cycle-stepping simulator of the same pipeline: SGPU lanes issue one
/// sample per cycle each, shaded samples queue into batches, and the MLP
/// drains batches back-to-back. Used to validate [`simulate_frame`]'s closed
/// form (the role the authors' RTL-verified simulator plays).
#[derive(Debug, Clone, Copy)]
pub struct CycleSimulator {
    arch: ArchConfig,
}

impl CycleSimulator {
    /// Creates a simulator for `arch`.
    pub fn new(arch: ArchConfig) -> Self {
        Self { arch }
    }

    /// Steps through a frame in which every `shade_every`-th marched sample
    /// is shaded, returning total cycles.
    pub fn run(&self, samples_marched: usize, samples_shaded: usize) -> u64 {
        let arch = &self.arch;
        let batch_cycles = arch.systolic.mlp_batch_cycles(arch.batch_size);
        let lanes = arch.sgpu_lanes as u64;

        // Distribute shaded samples evenly through the march stream.
        let mut shaded_emitted = 0usize;
        let mut queue = 0usize;
        let mut mlp_free_at = 0u64;
        let mut sgpu_cycle = 0u64;
        let mut issued = 0usize;

        while issued < samples_marched {
            // One cycle: lanes samples issue.
            let batch_now = (samples_marched - issued).min(lanes as usize);
            issued += batch_now;
            sgpu_cycle += 1;
            // Which of these are shaded? Keep the global ratio.
            let target_shaded =
                (issued as u128 * samples_shaded as u128 / samples_marched.max(1) as u128) as usize;
            let newly_shaded = target_shaded - shaded_emitted;
            shaded_emitted = target_shaded;
            queue += newly_shaded;
            while queue >= arch.batch_size {
                queue -= arch.batch_size;
                let sample_ready =
                    sgpu_cycle + GID_LATENCY + BLU_LATENCY.max(HMU_LATENCY) + TIU_LATENCY;
                let start = mlp_free_at.max(sample_ready);
                mlp_free_at = start + batch_cycles;
            }
        }
        // Drain the partial batch.
        if queue > 0 {
            let start = mlp_free_at.max(sgpu_cycle);
            mlp_free_at = start + batch_cycles;
        }
        sgpu_cycle.max(mlp_free_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnerf_core::SpNerfConfig;
    use spnerf_render::interp::interpolate;
    use spnerf_render::scene::{build_grid, SceneId};
    use spnerf_voxel::vqrf::{VqrfConfig, VqrfModel};

    fn model() -> SpNerfModel {
        let grid = build_grid(SceneId::Lego, 24);
        let vqrf = VqrfModel::build(
            &grid,
            &VqrfConfig { codebook_size: 32, kmeans_iters: 2, ..Default::default() },
        );
        let cfg = SpNerfConfig { subgrid_count: 8, table_size: 8192, codebook_size: 32 };
        SpNerfModel::build(&vqrf, &cfg).unwrap()
    }

    fn workload() -> FrameWorkload {
        FrameWorkload {
            scene: "lego".into(),
            rays: 640_000,
            samples_marched: 25_000_000,
            samples_shaded: 1_200_000,
            samples_skipped: 0,
            pixels_shaded: 0,
            rays_warped: 0,
            rays_remarched: 0,
            model_bytes: 7 << 20,
            format_bytes: 0,
        }
    }

    #[test]
    fn sgpu_matches_software_decoder_within_fp16() {
        let m = model();
        let mut sgpu = SgpuModel::new(&m, MaskMode::Masked);
        let view = m.view(MaskMode::Masked);
        let mut checked = 0;
        for i in 0..200 {
            let g = Vec3::new(
                3.0 + (i as f32 * 0.13) % 18.0,
                2.0 + (i as f32 * 0.29) % 18.0,
                1.0 + (i as f32 * 0.41) % 18.0,
            );
            let (d_hw, f_hw) = sgpu.decode_sample(g);
            let sw = interpolate(&view, g);
            assert!(
                (d_hw - sw.density).abs() < 0.02 + sw.density.abs() * 0.02,
                "density hw {d_hw} vs sw {} at {g:?}",
                sw.density
            );
            for (a, b) in f_hw.iter().zip(sw.features) {
                assert!((a - b).abs() < 0.02 + b.abs() * 0.02, "feature hw {a} vs sw {b}");
            }
            if sw.density > 0.0 {
                checked += 1;
            }
        }
        assert!(checked > 0, "test must hit occupied samples");
    }

    #[test]
    fn sgpu_counters_populate() {
        let m = model();
        let mut sgpu = SgpuModel::new(&m, MaskMode::Masked);
        for i in 0..50 {
            sgpu.decode_sample(Vec3::new(5.0 + i as f32 * 0.1, 8.0, 9.0));
        }
        assert_eq!(sgpu.gid.samples(), 50);
        assert_eq!(sgpu.blu.lookups(), 400);
        assert!(sgpu.sram_bits() > 0);
        // HMU only sees corners that pass the bitmap gate.
        assert!(sgpu.hmu.lookups() <= sgpu.blu.lookups());
    }

    #[test]
    fn unmasked_sgpu_issues_more_hmu_lookups() {
        let m = model();
        let mut masked = SgpuModel::new(&m, MaskMode::Masked);
        let mut unmasked = SgpuModel::new(&m, MaskMode::Unmasked);
        for i in 0..100 {
            let g = Vec3::new(2.0 + (i as f32 * 0.37) % 20.0, 11.0, 12.0);
            masked.decode_sample(g);
            unmasked.decode_sample(g);
        }
        assert!(unmasked.hmu.lookups() >= masked.hmu.lookups());
    }

    #[test]
    fn frame_model_basic_relations() {
        let r = simulate_frame(&workload(), &ArchConfig::default());
        assert!(r.fps > 1.0 && r.fps < 1000.0, "fps {}", r.fps);
        assert_eq!(
            r.cycles,
            r.sgpu_cycles.max(r.mlp_cycles).max(r.dram_cycles)
                + ArchConfig::default().pipeline_fill_cycles()
        );
        assert!(r.systolic_utilization > 0.0 && r.systolic_utilization <= 1.0);
        assert!(r.activity.macs > 0);
    }

    #[test]
    fn dram_not_the_bottleneck_at_paper_operating_point() {
        // The entire point of SpNeRF: model streaming is cheap.
        let r = simulate_frame(&workload(), &ArchConfig::default());
        assert_ne!(r.bottleneck, Bottleneck::Dram);
        assert!(r.dram_cycles * 10 < r.cycles, "DRAM must be far from critical");
    }

    #[test]
    fn fps_scales_with_clock() {
        let w = workload();
        let base = simulate_frame(&w, &ArchConfig::default());
        let fast = simulate_frame(&w, &ArchConfig { clock_ghz: 2.0, ..ArchConfig::default() });
        assert!((fast.fps / base.fps - 2.0).abs() < 0.01);
    }

    #[test]
    fn more_lanes_help_sgpu_bound_frames() {
        let w = FrameWorkload { samples_shaded: 100_000, ..workload() }; // SGPU-bound
        let two = simulate_frame(&w, &ArchConfig { sgpu_lanes: 2, ..Default::default() });
        let four = simulate_frame(&w, &ArchConfig { sgpu_lanes: 4, ..Default::default() });
        assert_eq!(two.bottleneck, Bottleneck::Sgpu);
        assert!(four.fps > 1.5 * two.fps);
    }

    #[test]
    fn cycle_simulator_validates_analytic_model() {
        let arch = ArchConfig::default();
        let sim = CycleSimulator::new(arch);
        for (marched, shaded) in [(1_000_000, 60_000), (2_000_000, 40_000), (500_000, 45_000)] {
            let w = FrameWorkload {
                scene: "x".into(),
                rays: 10_000,
                samples_marched: marched,
                samples_shaded: shaded,
                samples_skipped: 0,
                pixels_shaded: 0,
                rays_warped: 0,
                rays_remarched: 0,
                model_bytes: 0,
                format_bytes: 0,
            };
            let analytic = simulate_frame(&w, &arch);
            let stepped = sim.run(marched, shaded);
            let err = (stepped as f64 - analytic.cycles as f64).abs() / analytic.cycles as f64;
            assert!(
                err < 0.05,
                "cycle sim {} vs analytic {} ({:.1}% off) for {marched}/{shaded}",
                stepped,
                analytic.cycles,
                err * 100.0
            );
        }
    }

    #[test]
    fn skipped_samples_are_charged_no_cycles() {
        // The paper's pruning accounting, extended to empty-space skipping:
        // samples the occupancy pyramid removed appear in `samples_skipped`
        // and must cost exactly nothing — the frame simulates identically
        // to one that never generated them.
        let arch = ArchConfig::default();
        let unskipped = workload();
        let skipped = FrameWorkload {
            samples_marched: unskipped.samples_marched / 10,
            samples_skipped: unskipped.samples_marched - unskipped.samples_marched / 10,
            ..unskipped.clone()
        };
        let r_full = simulate_frame(&unskipped, &arch);
        let r_skip = simulate_frame(&skipped, &arch);
        assert!(r_skip.sgpu_cycles < r_full.sgpu_cycles / 5, "SGPU stream must shrink");
        assert_eq!(r_skip.mlp_cycles, r_full.mlp_cycles, "shaded work is unchanged");
        // A frame that never had the skipped samples at all is identical.
        let absent = FrameWorkload { samples_skipped: 0, ..skipped.clone() };
        assert_eq!(simulate_frame(&absent, &arch).cycles, r_skip.cycles);
    }

    #[test]
    fn deferred_frames_charge_the_small_per_pixel_mlp() {
        // Bake-and-defer accounting: with pixels_shaded set, the MLP column
        // bills the deferred network once per pixel — cycles, MACs, and
        // utilization all derive from the small network.
        let arch = ArchConfig::default();
        let per_sample = workload();
        let deferred = FrameWorkload { pixels_shaded: per_sample.rays / 2, ..per_sample.clone() };
        let r_ps = simulate_frame(&per_sample, &arch);
        let r_df = simulate_frame(&deferred, &arch);
        assert!(
            r_df.mlp_cycles * 4 < r_ps.mlp_cycles,
            "deferred MLP stream {} must collapse vs per-sample {}",
            r_df.mlp_cycles,
            r_ps.mlp_cycles
        );
        assert_eq!(
            r_df.activity.macs,
            deferred.pixels_shaded as u64 * DeferredMlp::macs_per_pixel() as u64
        );
        assert_eq!(
            r_df.mlp_cycles,
            arch.systolic.deferred_mlp_cycles(deferred.pixels_shaded, arch.batch_size)
        );
        // SGPU and DRAM streams are untouched — only the shading collapses.
        assert_eq!(r_df.sgpu_cycles, r_ps.sgpu_cycles);
        assert_eq!(r_df.dram_cycles, r_ps.dram_cycles);
        assert!(r_df.activity.sram_bits < r_ps.activity.sram_bits);
        assert!(r_df.systolic_utilization > 0.0 && r_df.systolic_utilization <= 1.0);
    }

    #[test]
    fn empty_frame_costs_only_fill() {
        let w = FrameWorkload {
            scene: "empty".into(),
            rays: 100,
            samples_marched: 0,
            samples_shaded: 0,
            samples_skipped: 0,
            pixels_shaded: 0,
            rays_warped: 0,
            rays_remarched: 0,
            model_bytes: 0,
            format_bytes: 0,
        };
        let arch = ArchConfig::default();
        let r = simulate_frame(&w, &arch);
        assert_eq!(r.cycles, arch.pipeline_fill_cycles());
    }

    #[test]
    fn path_simulation_reports_amortized_reuse() {
        // An 8-frame path: frame 0 marches everything, frames 1+ arrive
        // warped with a quarter of the samples. Amortized per-frame cost
        // must land well below the standalone frame cost, and totals must
        // be the plain sums of the per-frame results.
        let arch = ArchConfig::default();
        let full = workload();
        let warped = FrameWorkload {
            samples_marched: full.samples_marched / 4,
            samples_shaded: full.samples_shaded / 4,
            rays_warped: full.rays * 3 / 4,
            rays_remarched: full.rays / 4,
            ..full.clone()
        };
        let mut path = vec![full.clone()];
        path.extend(std::iter::repeat_n(warped.clone(), 7));
        let r = simulate_path(&path, &arch);
        let standalone = simulate_frame(&full, &arch);
        assert_eq!(r.frames.len(), 8);
        assert_eq!(r.frames[0], standalone);
        assert_eq!(r.total_cycles, r.frames.iter().map(|f| f.cycles).sum::<u64>());
        assert_eq!(r.total_rays_warped, 7 * warped.rays_warped as u64);
        assert!(
            r.amortized_samples_per_frame < 0.4 * standalone.activity.samples_marched as f64,
            "amortized {} vs standalone {}",
            r.amortized_samples_per_frame,
            standalone.activity.samples_marched
        );
        assert!(r.amortized_cycles_per_frame < standalone.cycles as f64);
        assert!(r.path_fps(&arch) > standalone.fps);
        // Degenerate path.
        let empty = simulate_path(&[], &arch);
        assert_eq!(empty.total_cycles, 0);
        assert_eq!(empty.amortized_samples_per_frame, 0.0);
    }

    #[test]
    fn format_metadata_traffic_charges_the_dram_stream() {
        // Sparse-format metadata rides the same double-buffered DRAM stream
        // as the model; zero metadata reproduces the historical numbers.
        let arch = ArchConfig::default();
        let plain = workload();
        let with_format = plain.clone().with_format_traffic(48 << 20);
        let r_plain = simulate_frame(&plain, &arch);
        let r_fmt = simulate_frame(&with_format, &arch);
        assert!(r_fmt.dram_cycles > r_plain.dram_cycles);
        assert_eq!(
            r_fmt.activity.dram_bytes,
            plain.model_bytes as u64 + with_format.format_bytes as u64
        );
        // SGPU and MLP streams are untouched — only the DRAM column moves.
        assert_eq!(r_fmt.sgpu_cycles, r_plain.sgpu_cycles);
        assert_eq!(r_fmt.mlp_cycles, r_plain.mlp_cycles);
        let zeroed = with_format.with_format_traffic(0);
        assert_eq!(simulate_frame(&zeroed, &arch), r_plain);
    }
}
