//! Subgrid streaming schedule: why the x-axis partition exists.
//!
//! The accelerator never holds the whole model on chip. While rays traverse
//! subgrid `k`, its hash table and bitmap slice sit in the *front* halves of
//! the double-buffered SRAMs and subgrid `k+1` streams from DRAM into the
//! *back* halves (Section IV-A: "all buffers … are double-buffered,
//! enabling simultaneous data fetching and processing"). This module checks
//! whether each fill hides behind the matching compute interval and accounts
//! the exposed stall cycles — the quantity that would reveal an
//! under-provisioned DRAM or an over-fine partition.

use spnerf_core::model::SpNerfModel;

use crate::sim::buffer::DoubleBuffer;
use crate::sim::pipeline::ArchConfig;

/// Streaming cost of one subgrid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubgridInterval {
    /// Subgrid index.
    pub index: usize,
    /// Bytes streamed for this subgrid (hash table + bitmap slice).
    pub fill_bytes: usize,
    /// Cycles the fill occupies on the DRAM interface.
    pub fill_cycles: u64,
    /// Cycles the SGPU computes on this subgrid (from its share of samples).
    pub compute_cycles: u64,
    /// Fill cycles not hidden by the previous subgrid's compute.
    pub stall_cycles: u64,
}

/// Whole-frame streaming schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingSchedule {
    /// Per-subgrid intervals in visit order.
    pub intervals: Vec<SubgridInterval>,
    /// Total exposed stall cycles.
    pub total_stall_cycles: u64,
    /// Total bytes streamed per frame.
    pub total_bytes: usize,
}

impl StreamingSchedule {
    /// Fraction of compute time lost to exposed fills.
    pub fn stall_fraction(&self) -> f64 {
        let compute: u64 = self.intervals.iter().map(|i| i.compute_cycles).sum();
        if compute == 0 {
            0.0
        } else {
            self.total_stall_cycles as f64 / compute as f64
        }
    }
}

/// Builds the frame streaming schedule for a model: per subgrid, the bytes
/// to fill (table + bitmap slice + its share of the true voxel grid), the
/// fill time at the configured DRAM bandwidth, and the compute time implied
/// by distributing `samples_marched` across subgrids proportionally to their
/// stored points.
pub fn streaming_schedule(
    model: &SpNerfModel,
    samples_marched: usize,
    arch: &ArchConfig,
) -> StreamingSchedule {
    let part = model.partition();
    let report = model.report();
    let bytes_per_cycle = arch.dram_bytes_per_cycle();
    let total_points: usize = report.per_subgrid_points.iter().sum();
    let kept_bytes = model.kept().storage_bytes();

    let mut intervals = Vec::with_capacity(part.count());
    let mut total_stall = 0u64;
    let mut total_bytes = 0usize;
    let mut prev_compute = u64::MAX; // first fill happens before frame start
    for k in 0..part.count() {
        let table_bytes = model.tables()[k].storage_bytes();
        let bitmap_bytes = part.subgrid_len(k).div_ceil(8);
        // True-voxel rows are spread across subgrids roughly by point share.
        let share = if total_points == 0 {
            0.0
        } else {
            report.per_subgrid_points[k] as f64 / total_points as f64
        };
        let fill_bytes = table_bytes + bitmap_bytes + (kept_bytes as f64 * share) as usize;
        let fill_cycles = (fill_bytes as f64 / bytes_per_cycle).ceil() as u64;
        let compute_cycles =
            ((samples_marched as f64 * share) as u64).div_ceil(arch.sgpu_lanes as u64);
        // Subgrid k's fill overlaps subgrid k−1's compute.
        let stall = DoubleBuffer::stall_cycles(fill_cycles, prev_compute);
        total_stall += stall;
        total_bytes += fill_bytes;
        intervals.push(SubgridInterval {
            index: k,
            fill_bytes,
            fill_cycles,
            compute_cycles,
            stall_cycles: stall,
        });
        prev_compute = compute_cycles;
    }
    StreamingSchedule { intervals, total_stall_cycles: total_stall, total_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnerf_core::{SpNerfConfig, SpNerfModel};
    use spnerf_render::scene::{build_grid, SceneId};
    use spnerf_voxel::vqrf::{VqrfConfig, VqrfModel};

    fn model(k: usize, t: usize) -> SpNerfModel {
        let grid = build_grid(SceneId::Lego, 40);
        let vqrf = VqrfModel::build(
            &grid,
            &VqrfConfig {
                codebook_size: 64,
                kmeans_iters: 2,
                kmeans_subsample: 2048,
                ..Default::default()
            },
        );
        let cfg = SpNerfConfig { subgrid_count: k, table_size: t, codebook_size: 64 };
        SpNerfModel::build(&vqrf, &cfg).unwrap()
    }

    #[test]
    fn schedule_covers_all_subgrids_and_bytes() {
        let m = model(8, 4096);
        let s = streaming_schedule(&m, 10_000_000, &ArchConfig::default());
        assert_eq!(s.intervals.len(), 8);
        let bytes: usize = s.intervals.iter().map(|i| i.fill_bytes).sum();
        assert_eq!(bytes, s.total_bytes);
        // Tables dominate the stream; total must exceed K × table bytes.
        assert!(s.total_bytes >= 8 * m.tables()[0].storage_bytes());
    }

    #[test]
    fn fills_hidden_at_paper_operating_point() {
        // A realistic frame: tens of millions of samples across 8 subgrids
        // at 50+ B/cycle DRAM — fills must hide almost entirely.
        let m = model(8, 4096);
        let s = streaming_schedule(&m, 25_000_000, &ArchConfig::default());
        assert!(
            s.stall_fraction() < 0.01,
            "stall fraction {:.4} should be negligible",
            s.stall_fraction()
        );
    }

    #[test]
    fn tiny_frames_expose_fills() {
        // Almost no compute to hide behind → stalls surface.
        let m = model(8, 4096);
        let s = streaming_schedule(&m, 1000, &ArchConfig::default());
        assert!(s.total_stall_cycles > 0, "fills must be exposed on tiny frames");
    }

    #[test]
    fn slower_dram_increases_stalls() {
        let m = model(8, 4096);
        let fast = ArchConfig::default();
        let slow = ArchConfig {
            dram: spnerf_dram::timing::DramTimings::lpddr4_1600(),
            ..ArchConfig::default()
        };
        let s_fast = streaming_schedule(&m, 100_000, &fast);
        let s_slow = streaming_schedule(&m, 100_000, &slow);
        assert!(s_slow.total_stall_cycles >= s_fast.total_stall_cycles);
    }

    #[test]
    fn first_fill_is_always_hidden_by_frame_start() {
        let m = model(4, 2048);
        let s = streaming_schedule(&m, 100, &ArchConfig::default());
        assert_eq!(s.intervals[0].stall_cycles, 0, "initial fill precedes the frame");
    }
}
