//! Output-stationary systolic array model (the MLP Unit's compute core).
//!
//! The MLP Unit computes the 3-layer MLP (128/128/3) at batch 64 on an
//! output-stationary array: each PE accumulates one output element while `K`
//! operand pairs stream through, then results drain. The model provides both
//! a *functional* tiled GEMM (bit-identical to a reference matmul — the
//! "verified against RTL" role) and a *cycle* model used by the frame
//! simulator.

use spnerf_render::mlp::{DeferredMlp, Mlp};

/// An `rows × cols` output-stationary systolic array.
///
/// `rows` maps to the batch dimension (64 in the paper), `cols` to output
/// channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicArray {
    /// PE rows (batch direction).
    pub rows: usize,
    /// PE columns (output-channel direction).
    pub cols: usize,
}

impl SystolicArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self { rows, cols }
    }

    /// Number of MAC units.
    pub fn macs(&self) -> usize {
        self.rows * self.cols
    }

    /// Cycles for one `M×K · K×N` GEMM: each `rows×cols` output tile streams
    /// `K` operands then drains through `rows + cols` stages; tiles are
    /// processed back-to-back with the drain of tile `i` overlapping the fill
    /// of tile `i+1` except for the final drain.
    pub fn gemm_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let tiles_m = m.div_ceil(self.rows) as u64;
        let tiles_n = n.div_ceil(self.cols) as u64;
        let per_tile = k as u64 + self.rows as u64; // stream K + pipeline skew
        tiles_m * tiles_n * per_tile + self.cols as u64 // final drain
    }

    /// MAC utilization of a GEMM: useful MACs / (cycles × PE count).
    pub fn utilization(&self, m: usize, k: usize, n: usize) -> f64 {
        let cycles = self.gemm_cycles(m, k, n);
        if cycles == 0 {
            return 0.0;
        }
        (m as f64 * k as f64 * n as f64) / (cycles as f64 * self.macs() as f64)
    }

    /// Cycles to push one batch through all three MLP layers
    /// (`batch×39 → 128 → 128 → 3`).
    pub fn mlp_batch_cycles(&self, batch: usize) -> u64 {
        Mlp::layer_shapes().iter().map(|(k, n)| self.gemm_cycles(batch, *k, *n)).sum()
    }

    /// Total MLP cycles for `samples` shaded samples at the given batch
    /// size (last partial batch rounded up, as the hardware would).
    pub fn mlp_cycles(&self, samples: usize, batch: usize) -> u64 {
        assert!(batch > 0, "batch must be non-zero");
        let batches = samples.div_ceil(batch) as u64;
        batches * self.mlp_batch_cycles(batch)
    }

    /// Cycles to push one batch through the deferred view-dependence MLP
    /// (`batch×36 → 32 → 32 → 3`) — the per-pixel network of the
    /// bake-and-defer path, run on the same array.
    pub fn deferred_mlp_batch_cycles(&self, batch: usize) -> u64 {
        DeferredMlp::layer_shapes().iter().map(|(k, n)| self.gemm_cycles(batch, *k, *n)).sum()
    }

    /// Total deferred-MLP cycles for `pixels` shaded pixels at the given
    /// batch size (last partial batch rounded up) — the deferred twin of
    /// [`SystolicArray::mlp_cycles`].
    pub fn deferred_mlp_cycles(&self, pixels: usize, batch: usize) -> u64 {
        assert!(batch > 0, "batch must be non-zero");
        let batches = pixels.div_ceil(batch) as u64;
        batches * self.deferred_mlp_batch_cycles(batch)
    }

    /// Functional tiled GEMM in the array's dataflow order:
    /// `C[m][n] = Σ_k A[m][k]·B[k][n]`, accumulated tile by tile exactly as
    /// the output-stationary schedule would. Used to verify the cycle model
    /// against a reference computation.
    ///
    /// # Panics
    ///
    /// Panics if the input shapes are inconsistent.
    pub fn gemm(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        assert_eq!(a.len(), m * k, "A shape mismatch");
        assert_eq!(b.len(), k * n, "B shape mismatch");
        let mut c = vec![0.0f32; m * n];
        // Tile loop mirrors the hardware schedule.
        for tm in (0..m).step_by(self.rows) {
            for tn in (0..n).step_by(self.cols) {
                // Each PE (i,j) accumulates C[tm+i][tn+j] over streamed K.
                for kk in 0..k {
                    for i in tm..(tm + self.rows).min(m) {
                        let aik = a[i * k + kk];
                        for j in tn..(tn + self.cols).min(n) {
                            c[i * n + j] += aik * b[kk * n + j];
                        }
                    }
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_cycles() {
        let arr = SystolicArray::new(64, 64);
        // One 64×64 tile with K=39: 39 + 64 fill/skew + 64 drain.
        assert_eq!(arr.gemm_cycles(64, 39, 64), 39 + 64 + 64);
    }

    #[test]
    fn tiles_scale_cycles() {
        let arr = SystolicArray::new(64, 64);
        let one = arr.gemm_cycles(64, 128, 64);
        let two = arr.gemm_cycles(64, 128, 128);
        // Two output tiles ≈ twice the streaming work (+ shared final drain).
        assert!(two > one && two < 2 * one + 70);
    }

    #[test]
    fn utilization_bounded_and_sane() {
        let arr = SystolicArray::new(64, 64);
        let u = arr.utilization(64, 128, 128);
        assert!(u > 0.4 && u <= 1.0, "utilization {u}");
        // Tiny final layer wastes the array.
        let u3 = arr.utilization(64, 128, 3);
        assert!(u3 < 0.1, "3-wide output should underutilize, got {u3}");
    }

    #[test]
    fn mlp_batch_cycles_sum_layers() {
        let arr = SystolicArray::new(64, 64);
        let total = arr.mlp_batch_cycles(64);
        let by_hand: u64 = [(39usize, 128usize), (128, 128), (128, 3)]
            .iter()
            .map(|(k, n)| arr.gemm_cycles(64, *k, *n))
            .sum();
        assert_eq!(total, by_hand);
    }

    #[test]
    fn mlp_cycles_round_up_partial_batches() {
        let arr = SystolicArray::new(64, 64);
        let per = arr.mlp_batch_cycles(64);
        assert_eq!(arr.mlp_cycles(1, 64), per);
        assert_eq!(arr.mlp_cycles(64, 64), per);
        assert_eq!(arr.mlp_cycles(65, 64), 2 * per);
        assert_eq!(arr.mlp_cycles(0, 64), 0);
    }

    #[test]
    fn deferred_cycles_are_far_cheaper_per_evaluation() {
        let arr = SystolicArray::new(64, 64);
        let per = arr.deferred_mlp_batch_cycles(64);
        let by_hand: u64 = [(36usize, 32usize), (32, 32), (32, 3)]
            .iter()
            .map(|(k, n)| arr.gemm_cycles(64, *k, *n))
            .sum();
        assert_eq!(per, by_hand);
        assert!(per < arr.mlp_batch_cycles(64), "small network must stream faster");
        assert_eq!(arr.deferred_mlp_cycles(65, 64), 2 * per);
        assert_eq!(arr.deferred_mlp_cycles(0, 64), 0);
    }

    #[test]
    fn functional_gemm_matches_reference() {
        let arr = SystolicArray::new(4, 4);
        let (m, k, n) = (6, 5, 7);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.21).cos()).collect();
        let c = arr.gemm(&a, &b, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut r = 0.0f32;
                for kk in 0..k {
                    r += a[i * k + kk] * b[kk * n + j];
                }
                assert!((c[i * n + j] - r).abs() < 1e-4, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn bigger_array_is_faster_but_less_utilized_on_small_layers() {
        let small = SystolicArray::new(16, 16);
        let big = SystolicArray::new(128, 128);
        assert!(big.mlp_cycles(64, 64) < small.mlp_cycles(64, 64));
        assert!(big.utilization(64, 39, 128) < small.utilization(64, 39, 128));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        let _ = SystolicArray::new(0, 4);
    }
}
