//! Trilinear Interpolation Unit (TIU): dequantization and weighted
//! accumulation.
//!
//! The TIU converts INT8 true-voxel-grid features to FP16 by multiplying
//! with the scale factor (codebook features arrive FP16 already), multiplies
//! each corner's features by its GID weight, and accumulates
//! `C_interp = Σ_{i=1}^{8} w_i · (s · C_i)`. All arithmetic is rounded
//! through FP16 like the datapath.

use spnerf_render::fp16::F16;
use spnerf_render::source::VoxelData;
use spnerf_voxel::FEATURE_DIM;

/// Pipeline latency of the TIU in cycles (dequant, weight multiply,
/// 8-corner adder tree).
pub const TIU_LATENCY: u64 = 5;

/// One corner's contribution as delivered by HMU + BLU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerInput {
    /// Decoded voxel data, `None` when masked/empty.
    pub data: Option<VoxelData>,
    /// GID weight for this corner.
    pub weight: f32,
    /// Whether the features came from the INT8 true voxel grid (requiring
    /// the dequantization multiply) rather than the FP16 codebook.
    pub needs_dequant: bool,
}

/// The Trilinear Interpolation Unit with activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrilinearInterpUnit {
    samples: u64,
    fp16_mul: u64,
    fp16_add: u64,
    dequant_mul: u64,
}

impl TrilinearInterpUnit {
    /// A fresh unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interpolates the 8 corner inputs into `(density, features)`, all
    /// FP16-rounded. Empty corners contribute zero.
    pub fn interpolate(&mut self, corners: &[CornerInput; 8]) -> (f32, [f32; FEATURE_DIM]) {
        self.samples += 1;
        let mut density = F16::ZERO;
        let mut features = [F16::ZERO; FEATURE_DIM];
        for corner in corners {
            let Some(data) = corner.data else { continue };
            let w = F16::from_f32(corner.weight);
            if corner.needs_dequant {
                // s·C_i for the 12 feature channels (density was already
                // scaled by the HMU path).
                self.dequant_mul += FEATURE_DIM as u64;
            }
            // Weight multiply + accumulate per channel, plus density.
            self.fp16_mul += FEATURE_DIM as u64 + 1;
            self.fp16_add += FEATURE_DIM as u64 + 1;
            density = density + w * F16::from_f32(data.density);
            for (acc, f) in features.iter_mut().zip(data.features) {
                *acc = *acc + w * F16::from_f32(f);
            }
        }
        let mut out = [0.0f32; FEATURE_DIM];
        for (o, f) in out.iter_mut().zip(features) {
            *o = f.to_f32();
        }
        (density.to_f32(), out)
    }

    /// Samples interpolated.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// FP16 multiplies performed (weights).
    pub fn fp16_mul(&self) -> u64 {
        self.fp16_mul
    }

    /// FP16 adds performed (accumulation).
    pub fn fp16_add(&self) -> u64 {
        self.fp16_add
    }

    /// Dequantization multiplies performed (INT8 → FP16).
    pub fn dequant_mul(&self) -> u64 {
        self.dequant_mul
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corner(d: f32, f: f32, w: f32) -> CornerInput {
        CornerInput {
            data: Some(VoxelData { density: d, features: [f; FEATURE_DIM] }),
            weight: w,
            needs_dequant: false,
        }
    }

    fn empty(w: f32) -> CornerInput {
        CornerInput { data: None, weight: w, needs_dequant: false }
    }

    #[test]
    fn single_full_weight_corner_passes_through() {
        let mut tiu = TrilinearInterpUnit::new();
        let mut corners = [empty(0.0); 8];
        corners[0] = corner(0.5, 0.25, 1.0);
        let (d, f) = tiu.interpolate(&corners);
        assert!((d - 0.5).abs() < 1e-3);
        assert!((f[0] - 0.25).abs() < 1e-3);
    }

    #[test]
    fn two_corner_blend_is_linear() {
        let mut tiu = TrilinearInterpUnit::new();
        let mut corners = [empty(0.0); 8];
        corners[0] = corner(1.0, 1.0, 0.25);
        corners[1] = corner(3.0, 0.0, 0.75);
        let (d, f) = tiu.interpolate(&corners);
        assert!((d - 2.5).abs() < 0.01, "density {d}");
        assert!((f[0] - 0.25).abs() < 0.01, "feature {}", f[0]);
    }

    #[test]
    fn empty_corners_contribute_nothing() {
        let mut tiu = TrilinearInterpUnit::new();
        let corners = [empty(0.125); 8];
        let (d, f) = tiu.interpolate(&corners);
        assert_eq!(d, 0.0);
        assert!(f.iter().all(|x| *x == 0.0));
        assert_eq!(tiu.fp16_mul(), 0, "no math for masked corners");
    }

    #[test]
    fn fp16_result_close_to_f32_reference() {
        let mut tiu = TrilinearInterpUnit::new();
        let mut corners = [empty(0.0); 8];
        let weights = [0.1f32, 0.2, 0.05, 0.15, 0.1, 0.1, 0.2, 0.1];
        let mut ref_d = 0.0f32;
        for (i, c) in corners.iter_mut().enumerate() {
            let dv = 0.1 + i as f32 * 0.1;
            *c = corner(dv, dv * 0.5, weights[i]);
            ref_d += weights[i] * dv;
        }
        let (d, _) = tiu.interpolate(&corners);
        assert!((d - ref_d).abs() < 0.01, "fp16 {d} vs f32 {ref_d}");
    }

    #[test]
    fn dequant_counted_only_for_true_grid_corners() {
        let mut tiu = TrilinearInterpUnit::new();
        let mut corners = [empty(0.0); 8];
        corners[0] = CornerInput { needs_dequant: true, ..corner(1.0, 1.0, 0.5) };
        corners[1] = corner(1.0, 1.0, 0.5); // codebook corner
        tiu.interpolate(&corners);
        assert_eq!(tiu.dequant_mul(), FEATURE_DIM as u64);
    }

    #[test]
    fn counters_scale_with_occupied_corners() {
        let mut tiu = TrilinearInterpUnit::new();
        let corners = [corner(1.0, 1.0, 0.125); 8];
        tiu.interpolate(&corners);
        assert_eq!(tiu.fp16_mul(), 8 * (FEATURE_DIM as u64 + 1));
        assert_eq!(tiu.fp16_add(), 8 * (FEATURE_DIM as u64 + 1));
        assert_eq!(tiu.samples(), 1);
    }
}
