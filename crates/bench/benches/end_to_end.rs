//! Criterion end-to-end benchmarks: model preprocessing (the hash-mapping
//! build), full-view rendering through each data path, the analytic frame
//! model, and the cycle-stepping simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use spnerf_accel::frame::FrameWorkload;
use spnerf_accel::sim::pipeline::{simulate_frame, ArchConfig, CycleSimulator};
use spnerf_core::preprocess::build_tables;
use spnerf_core::{MaskMode, SpNerfConfig, SpNerfModel};
use spnerf_render::mlp::Mlp;
use spnerf_render::renderer::{render_view, RenderConfig};
use spnerf_render::scene::{build_grid, default_camera, scene_aabb, SceneId};
use spnerf_voxel::vqrf::{VqrfConfig, VqrfModel};

struct Fixture {
    vqrf: VqrfModel,
    model: SpNerfModel,
    cfg: SpNerfConfig,
}

fn fixture() -> Fixture {
    let grid = build_grid(SceneId::Lego, 48);
    let vqrf = VqrfModel::build(
        &grid,
        &VqrfConfig {
            codebook_size: 128,
            kmeans_iters: 2,
            kmeans_subsample: 2048,
            ..Default::default()
        },
    );
    let cfg = SpNerfConfig { subgrid_count: 16, table_size: 8192, codebook_size: 128 };
    let model = SpNerfModel::build(&vqrf, &cfg).unwrap();
    Fixture { vqrf, model, cfg }
}

fn bench_preprocess(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("preprocess/build_hash_tables", |b| {
        b.iter(|| build_tables(black_box(&f.vqrf), black_box(&f.cfg)).unwrap())
    });
}

fn bench_render_paths(c: &mut Criterion) {
    let f = fixture();
    let mlp = Mlp::random(42);
    let cam = default_camera(16, 16, 0, 8);
    let cfg = RenderConfig { samples_per_ray: 48, ..Default::default() };
    let mut g = c.benchmark_group("render_16x16");
    g.sample_size(10);
    g.bench_function("vqrf_gold", |b| {
        b.iter(|| render_view(black_box(&f.vqrf), &mlp, &cam, &scene_aabb(), &cfg))
    });
    let masked = f.model.view(MaskMode::Masked);
    g.bench_function("spnerf_masked", |b| {
        b.iter(|| render_view(black_box(&masked), &mlp, &cam, &scene_aabb(), &cfg))
    });
    let unmasked = f.model.view(MaskMode::Unmasked);
    g.bench_function("spnerf_unmasked", |b| {
        b.iter(|| render_view(black_box(&unmasked), &mlp, &cam, &scene_aabb(), &cfg))
    });
    g.finish();
}

fn bench_frame_models(c: &mut Criterion) {
    let arch = ArchConfig::default();
    let w = FrameWorkload {
        scene: "lego".into(),
        rays: 640_000,
        samples_marched: 25_000_000,
        samples_shaded: 1_200_000,
        samples_skipped: 0,
        pixels_shaded: 0,
        rays_warped: 0,
        rays_remarched: 0,
        model_bytes: 7 << 20,
        format_bytes: 0,
    };
    c.bench_function("frame/analytic_model", |b| {
        b.iter(|| simulate_frame(black_box(&w), black_box(&arch)))
    });
    let sim = CycleSimulator::new(arch);
    c.bench_function("frame/cycle_stepped_1M", |b| {
        b.iter(|| sim.run(black_box(1_000_000), black_box(60_000)))
    });
}

criterion_group!(end_to_end, bench_preprocess, bench_render_paths, bench_frame_models);
criterion_main!(end_to_end);
