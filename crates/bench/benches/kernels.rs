//! Criterion micro-benchmarks of the kernels behind every figure:
//! spatial hash (Eq. 1), hash-table lookup, bitmap masking, trilinear
//! weights and the scalar/lane cell blend, FP16 conversion, the
//! compositing accumulator, MLP forward in scalar/lane/fp16-storage form,
//! block-circulant buffer I/O, systolic GEMM, online decode, and DRAM
//! trace replay.
//!
//! For an exportable record of the hot-path kernels use the
//! `bench_snapshot` binary (`BENCH_*.json`); these criterion groups are the
//! interactive exploration surface.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use spnerf_accel::sim::block_circulant::BlockCirculantBuffer;
use spnerf_accel::sim::systolic::SystolicArray;
use spnerf_core::hash::spatial_hash;
use spnerf_core::table::HashTable;
use spnerf_core::{MaskMode, SpNerfConfig, SpNerfModel};
use spnerf_dram::controller::MemoryController;
use spnerf_dram::timing::DramTimings;
use spnerf_dram::trace::{gather, sequential};
use spnerf_render::composite::{accumulate_weighted_lanes, accumulate_weighted_scalar};
use spnerf_render::fp16::{f16_bits_to_f32, f32_to_f16_bits};
use spnerf_render::interp::{interpolate_cell_lanes, interpolate_cell_scalar, trilinear_cell};
use spnerf_render::mlp::{Mlp, MlpF16, MlpScratch, MLP_INPUT_DIM};
use spnerf_render::scene::{build_grid, SceneId};
use spnerf_render::source::VoxelSource;
use spnerf_render::vec3::Vec3;
use spnerf_voxel::bitmap::Bitmap;
use spnerf_voxel::coord::{GridCoord, GridDims};
use spnerf_voxel::vqrf::{VqrfConfig, VqrfModel};

fn bench_spatial_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("spatial_hash_eq1", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1024u32 {
                acc ^= spatial_hash(black_box(GridCoord::new(i, i * 7, i * 13)), 32768);
            }
            acc
        })
    });
    g.finish();
}

fn bench_table_lookup(c: &mut Criterion) {
    let mut table = HashTable::new(32 * 1024);
    for i in 0..2000u32 {
        table.insert(GridCoord::new(i, i * 3, i * 5), i % 4096, 1);
    }
    let mut g = c.benchmark_group("table");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("keyless_lookup", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..1024u32 {
                if table.lookup(black_box(GridCoord::new(i, i * 3, i * 5))).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let dims = GridDims::cube(128);
    let mut bm = Bitmap::zeros(dims);
    for i in (0..dims.len()).step_by(31) {
        bm.set_index(i, true);
    }
    let mut g = c.benchmark_group("bitmap");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("mask_lookup", |b| {
        b.iter(|| {
            let mut ones = 0usize;
            for i in 0..4096u32 {
                if bm.get_clamped(black_box(GridCoord::new(i % 128, (i / 7) % 128, (i / 3) % 128)))
                {
                    ones += 1;
                }
            }
            ones
        })
    });
    g.finish();
}

fn bench_trilinear(c: &mut Criterion) {
    let dims = GridDims::cube(160);
    let mut g = c.benchmark_group("interp");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("trilinear_cell", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1024 {
                let p = Vec3::new(
                    (i % 150) as f32 + 0.3,
                    ((i * 7) % 150) as f32 + 0.6,
                    ((i * 13) % 150) as f32 + 0.1,
                );
                if let Some(cell) = trilinear_cell(dims, black_box(p)) {
                    acc += cell.weights[0];
                }
            }
            acc
        })
    });
    // Scalar vs lane cell blend on a real grid — the pair `bench_snapshot`
    // records as `trilinear.scalar` / `trilinear.lanes`.
    let grid = build_grid(SceneId::Lego, 64);
    let gdims = VoxelSource::dims(&grid);
    let cells: Vec<_> = (0..1024usize)
        .map(|i| {
            let p = Vec3::new(
                ((i * 7) % 63) as f32 + 0.35,
                ((i * 13) % 63) as f32 + 0.65,
                ((i * 29) % 63) as f32 + 0.15,
            );
            trilinear_cell(gdims, p).unwrap()
        })
        .collect();
    g.bench_function("cell_blend_scalar", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for cell in &cells {
                acc += interpolate_cell_scalar(&grid, black_box(cell)).density;
            }
            acc
        })
    });
    g.bench_function("cell_blend_lanes", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for cell in &cells {
                acc += interpolate_cell_lanes(&grid, black_box(cell)).density;
            }
            acc
        })
    });
    g.finish();
}

/// One group, two rows: `encode` and `decode` cover the conversion pair.
/// There used to be a third `round_trip` row that re-ran encode+decode in
/// a single loop — pure duplication of the other two (the round-trip cost
/// is their sum), so it was folded away. The `bench_snapshot` binary still
/// records `fp16.round_trip` because [`REQUIRED_KERNELS`] is frozen for
/// historical `BENCH_*.json` compatibility; see `docs/benchmarking.md`.
///
/// [`REQUIRED_KERNELS`]: spnerf_bench::snapshot::REQUIRED_KERNELS
fn bench_fp16(c: &mut Criterion) {
    let mut g = c.benchmark_group("fp16");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for i in 0..4096 {
                acc ^= f32_to_f16_bits(black_box(i as f32 * 0.037 - 70.0));
            }
            acc
        })
    });
    let bits: Vec<u16> = (0..4096).map(|i| f32_to_f16_bits(i as f32 * 0.037 - 70.0)).collect();
    g.bench_function("decode", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for h in &bits {
                acc += f16_bits_to_f32(black_box(*h));
            }
            acc
        })
    });
    g.finish();
}

fn bench_composite(c: &mut Criterion) {
    // The compositing inner loop (`acc[c] += values[c] * w`) in its scalar
    // reference and lane-blocked forms — the pair `bench_snapshot` records
    // as `composite.scalar` / `composite.lanes`. Nine channels: the baked
    // path's specular feature accumulation width.
    let weights: Vec<f32> = (0..512).map(|i| (i as f32 * 0.11).sin().abs()).collect();
    let values: [f32; 9] = std::array::from_fn(|c| (c as f32 * 0.31).sin());
    let mut g = c.benchmark_group("composite");
    g.throughput(Throughput::Elements(512));
    g.bench_function("accumulate_scalar", |b| {
        b.iter(|| {
            let mut acc = [0.0f32; 9];
            for w in &weights {
                accumulate_weighted_scalar(&mut acc, black_box(&values), *w);
            }
            acc
        })
    });
    g.bench_function("accumulate_lanes", |b| {
        b.iter(|| {
            let mut acc = [0.0f32; 9];
            for w in &weights {
                accumulate_weighted_lanes(&mut acc, black_box(&values), *w);
            }
            acc
        })
    });
    g.finish();
}

fn bench_mlp(c: &mut Criterion) {
    let mlp = Mlp::random(42);
    let mlp_f16 = MlpF16::from_mlp(&mlp);
    let input = [0.3f32; MLP_INPUT_DIM];
    let mut g = c.benchmark_group("mlp");
    g.throughput(Throughput::Elements(1));
    g.bench_function("forward_39_128_128_3", |b| b.iter(|| mlp.forward(black_box(&input))));
    // The GEMV variants `bench_snapshot` records as `mlp_gemv.*`: explicit
    // scalar reference, the lane-blocked rewrite, and fp16 weight storage
    // with decode-on-load (models the weight-SRAM-bound datapath; slower in
    // software, half the weight bytes).
    g.bench_function("forward_scalar", |b| b.iter(|| mlp.forward_scalar(black_box(&input))));
    g.bench_function("forward_lanes", |b| b.iter(|| mlp.forward_lanes(black_box(&input))));
    g.bench_function("forward_fp16", |b| b.iter(|| mlp_f16.forward(black_box(&input))));
    let mut scratch = MlpScratch::new();
    g.bench_function("forward_lanes_scratch_reuse", |b| {
        b.iter(|| mlp.forward_lanes_with(black_box(&input), &mut scratch))
    });
    g.finish();
}

fn bench_block_circulant(c: &mut Criterion) {
    let v: Vec<f32> = (0..39).map(|i| i as f32).collect();
    let mut g = c.benchmark_group("block_circulant");
    g.throughput(Throughput::Elements(64));
    g.bench_function("write_read_batch64", |b| {
        b.iter(|| {
            let mut buf = BlockCirculantBuffer::new(64);
            for _ in 0..64 {
                buf.write_vector(black_box(&v)).unwrap();
            }
            let mut acc = 0.0f32;
            for i in 0..64 {
                acc += buf.read_vector(i)[0];
            }
            acc
        })
    });
    g.finish();
}

fn bench_systolic(c: &mut Criterion) {
    let arr = SystolicArray::new(16, 16);
    let (m, k, n) = (64, 39, 128);
    let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.01).sin()).collect();
    let b_mat: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.02).cos()).collect();
    let mut g = c.benchmark_group("systolic");
    g.throughput(Throughput::Elements((m * k * n) as u64));
    g.bench_function("tiled_gemm_64x39x128", |bch| {
        bch.iter(|| arr.gemm(black_box(&a), black_box(&b_mat), m, k, n))
    });
    g.finish();
}

fn bench_online_decode(c: &mut Criterion) {
    let grid = build_grid(SceneId::Lego, 48);
    let vqrf = VqrfModel::build(
        &grid,
        &VqrfConfig {
            codebook_size: 128,
            kmeans_iters: 2,
            kmeans_subsample: 2048,
            ..Default::default()
        },
    );
    let cfg = SpNerfConfig { subgrid_count: 16, table_size: 8192, codebook_size: 128 };
    let model = SpNerfModel::build(&vqrf, &cfg).unwrap();
    let view = model.view(MaskMode::Masked);
    let dims = model.dims();
    let mut g = c.benchmark_group("decode");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("online_decode_masked", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..4096u32 {
                let cc = GridCoord::new(i % dims.nx, (i / 5) % dims.ny, (i / 11) % dims.nz);
                if view.fetch(black_box(cc)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let timings = DramTimings::lpddr4_3200();
    let seq = sequential(0, 1 << 20, 256);
    let gat = gather(4096, 1 << 28, 64, 7);
    let mut g = c.benchmark_group("dram");
    g.bench_function("stream_1mib", |b| {
        b.iter(|| {
            let mut mc = MemoryController::new(timings);
            mc.run_trace(black_box(&seq)).cycles
        })
    });
    g.bench_function("gather_4096", |b| {
        b.iter(|| {
            let mut mc = MemoryController::new(timings);
            mc.run_trace(black_box(&gat)).cycles
        })
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_spatial_hash,
    bench_table_lookup,
    bench_bitmap,
    bench_trilinear,
    bench_fp16,
    bench_composite,
    bench_mlp,
    bench_block_circulant,
    bench_systolic,
    bench_online_decode,
    bench_dram
);
criterion_main!(kernels);
