//! Criterion benchmark for hierarchical empty-space skipping: the masked
//! SpNeRF render of each corpus archetype with `SkipMode::Off` vs
//! `SkipMode::mip()`.
//!
//! The interesting read-out is the spread across archetypes: the
//! empty-space archetype (0.5 % occupancy) skips ~97 % of its marched
//! samples and should render several times faster, dense-blob (20 %)
//! barely changes. Images are bitwise-identical in both modes (asserted by
//! the conformance suite, not re-measured here).
//!
//! ```text
//! cargo bench --bench render_skip
//! cargo bench --bench render_skip -- --test   # CI smoke: one pass each
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use spnerf::pipeline::RenderSource;
use spnerf::render::renderer::{render_view, RenderConfig, SkipMode};
use spnerf::render::scene::{default_camera, scene_aabb};
use spnerf::render::source::WithOccupancy;
use spnerf_testkit::conformance::{scene_for, ConformanceConfig};
use spnerf_testkit::corpus::Corpus;

const IMAGE_SIDE: u32 = 32;

fn bench_skip_modes(c: &mut Criterion) {
    let cfg = ConformanceConfig::default();
    let cam = default_camera(IMAGE_SIDE, IMAGE_SIDE, 1, 8);
    let mut g = c.benchmark_group("render_skip_masked");
    g.sample_size(10);
    g.throughput(Throughput::Elements(IMAGE_SIDE as u64 * IMAGE_SIDE as u64));
    for spec in Corpus::quick() {
        let scene = scene_for(&spec, &cfg);
        let render_cfg = RenderConfig { samples_per_ray: 64, ..scene.render_config() };
        let view = scene.model().masked();
        g.bench_function(&format!("{}_off", spec.archetype.name()), |b| {
            b.iter(|| render_view(black_box(&view), scene.mlp(), &cam, &scene_aabb(), &render_cfg))
        });
        let mip = scene.occupancy_mip(RenderSource::spnerf_masked());
        let skippable = WithOccupancy::new(&view, mip);
        let skip_cfg = RenderConfig { skip_mode: SkipMode::mip(), ..render_cfg };
        g.bench_function(&format!("{}_mip", spec.archetype.name()), |b| {
            b.iter(|| {
                render_view(black_box(&skippable), scene.mlp(), &cam, &scene_aabb(), &skip_cfg)
            })
        });
    }
    g.finish();
}

criterion_group!(render_skip, bench_skip_modes);
criterion_main!(render_skip);
