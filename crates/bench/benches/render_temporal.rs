//! Criterion benchmark for frame-to-frame temporal reuse: an 8-frame
//! orbit of the masked SpNeRF render with `ReuseMode::Off` (every frame an
//! independent full render) vs `ReuseMode::warp()` (forward-warp the
//! previous frame, re-march only disoccluded/validation rays).
//!
//! The interesting read-out is the amortization spread across archetypes:
//! structured scenes (clusters, empty-space) re-march a small fraction of
//! their rays after frame 0, incoherent noise re-marches most of its depth
//! edges. Off mode stays bitwise-identical to per-frame rendering (asserted
//! by the conformance suite, not re-measured here).
//!
//! ```text
//! cargo bench --bench render_temporal
//! cargo bench --bench render_temporal -- --test   # CI smoke: one pass each
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use spnerf::pipeline::RenderSource;
use spnerf::trajectory::{ReuseMode, TrajectoryRequest, TrajectorySpec};
use spnerf_testkit::conformance::{scene_for, ConformanceConfig};
use spnerf_testkit::corpus::Corpus;

const IMAGE_SIDE: u32 = 16;
const FRAMES: usize = 8;

fn bench_reuse_modes(c: &mut Criterion) {
    let cfg = ConformanceConfig::default();
    let spec = TrajectorySpec::orbit(FRAMES, IMAGE_SIDE, IMAGE_SIDE);
    let mut g = c.benchmark_group("render_temporal_orbit");
    g.sample_size(10);
    g.throughput(Throughput::Elements(FRAMES as u64 * IMAGE_SIDE as u64 * IMAGE_SIDE as u64));
    for corpus in Corpus::quick() {
        let scene = scene_for(&corpus, &cfg);
        let session = scene.session();
        for mode in [ReuseMode::Off, ReuseMode::warp()] {
            let request =
                TrajectoryRequest::new(RenderSource::spnerf_masked(), spec).with_mode(mode);
            g.bench_function(&format!("{}_{}", corpus.archetype.name(), mode.name()), |b| {
                b.iter(|| session.render_trajectory(black_box(&request)).expect("non-empty path"))
            });
        }
    }
    g.finish();
}

criterion_group!(render_temporal, bench_reuse_modes);
criterion_main!(render_temporal);
