//! Criterion benchmark for the tile-parallel render engine: one full
//! 128×128 view of the Lego scene rendered at 1/2/4/8 worker threads.
//!
//! The interesting read-out is the thread-count scaling — on a multi-core
//! host the 4-thread row should show well over 1.5× the single-thread
//! throughput (rays/s), while every configuration produces bitwise-
//! identical images (asserted by the engine's tests, not re-measured here).
//!
//! ```text
//! cargo bench --bench render_tiles
//! cargo bench --bench render_tiles -- --test   # CI smoke: one pass each
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use spnerf_render::mlp::Mlp;
use spnerf_render::renderer::{render_view, RenderConfig};
use spnerf_render::scene::{build_grid, default_camera, scene_aabb, SceneId};

const IMAGE_SIDE: u32 = 128;

fn bench_thread_scaling(c: &mut Criterion) {
    let grid = build_grid(SceneId::Lego, 48);
    let mlp = Mlp::random(42);
    let cam = default_camera(IMAGE_SIDE, IMAGE_SIDE, 0, 8);
    let mut g = c.benchmark_group("render_tiles_128x128");
    g.sample_size(10);
    g.throughput(Throughput::Elements(IMAGE_SIDE as u64 * IMAGE_SIDE as u64));
    for threads in [1usize, 2, 4, 8] {
        let cfg = RenderConfig { samples_per_ray: 32, parallelism: threads, ..Default::default() };
        g.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| render_view(black_box(&grid), &mlp, &cam, &scene_aabb(), &cfg))
        });
    }
    g.finish();
}

fn bench_tile_sizes(c: &mut Criterion) {
    let grid = build_grid(SceneId::Lego, 48);
    let mlp = Mlp::random(42);
    let cam = default_camera(IMAGE_SIDE, IMAGE_SIDE, 0, 8);
    let mut g = c.benchmark_group("render_tiles_tile_size");
    g.sample_size(10);
    g.throughput(Throughput::Elements(IMAGE_SIDE as u64 * IMAGE_SIDE as u64));
    for tile_size in [8u32, 32, 128] {
        let cfg =
            RenderConfig { samples_per_ray: 32, parallelism: 4, tile_size, ..Default::default() };
        g.bench_function(&format!("4_threads_tile_{tile_size}"), |b| {
            b.iter(|| render_view(black_box(&grid), &mlp, &cam, &scene_aabb(), &cfg))
        });
    }
    g.finish();
}

criterion_group!(render_tiles, bench_thread_scaling, bench_tile_sizes);
criterion_main!(render_tiles);
