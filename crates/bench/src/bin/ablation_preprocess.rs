//! Ablation study of the preprocessing design choices (DESIGN.md §5):
//! insertion order (importance-descending vs natural) and collision density
//! merging. Not a paper figure — this quantifies the offline policies this
//! reproduction adds to keep the masked PSNR close to VQRF, so their
//! contribution is visible rather than silent.
//!
//! Each policy variant respecializes only the preprocessing stage
//! ([`spnerf::Scene::with_spnerf_opts`]); grids, VQRF models and the
//! ground-truth renders are built once per scene.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin ablation_preprocess [--quick]
//! ```

use spnerf::core::{InsertionOrder, PreprocessOptions};
use spnerf::pipeline::{RenderRequest, RenderSource};
use spnerf::render::image::ImageBuffer;
use spnerf::render::scene::SceneId;
use spnerf::Scene;
use spnerf_bench::{build_scene, camera, mean, print_table, Fidelity};

fn main() -> Result<(), spnerf::Error> {
    let fid = Fidelity::from_args();
    println!("Ablation — preprocessing policies (insertion order, density merge)\n");

    let variants: [(&str, PreprocessOptions); 4] = [
        ("importance + merge (default)", PreprocessOptions::default()),
        (
            "importance, no merge",
            PreprocessOptions { skip_density_merge: true, ..Default::default() },
        ),
        (
            "natural + merge",
            PreprocessOptions { order: InsertionOrder::Natural, ..Default::default() },
        ),
        (
            "natural, no merge",
            PreprocessOptions { order: InsertionOrder::Natural, skip_density_merge: true },
        ),
    ];

    let scenes = [SceneId::Lego, SceneId::Ship, SceneId::Chair];
    let cam = camera(&fid);

    // Use a deliberately tight table so collisions are frequent enough for
    // the policies to matter (quarter of the preset size).
    let mut sp_cfg = fid.spnerf_config();
    sp_cfg.table_size = (sp_cfg.table_size / 4).max(64);

    // Offline stages + ground truth, once per scene.
    let mut prepared: Vec<(Scene, Vec<ImageBuffer>)> = Vec::new();
    for id in scenes {
        let scene = build_scene(id, &fid);
        let gt = scene.session().render(&RenderRequest::single(RenderSource::GroundTruth, cam))?;
        prepared.push((scene, gt.images));
    }

    let mut rows = Vec::new();
    for (name, opts) in variants {
        let mut psnrs = Vec::new();
        let mut collisions = 0usize;
        for (scene, gt_images) in &prepared {
            let variant = scene.with_spnerf_opts(sp_cfg, opts)?;
            collisions += variant.model().report().collisions;
            let resp = variant.session().render(
                &RenderRequest::single(RenderSource::spnerf_masked(), cam)
                    .with_reference_images(gt_images),
            )?;
            psnrs.push(resp.mean_psnr());
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.2} dB", mean(&psnrs)),
            collisions.to_string(),
        ]);
    }

    print_table(&["Policy", "mean masked PSNR", "collisions"], &rows);
    println!(
        "\nReading: density merging is the dominant lever (≈1–2 dB under collision\n\
         pressure); insertion order redistributes *which* points lose and is\n\
         roughly PSNR-neutral on average while bounding the worst case (the\n\
         brightest voxels never alias). Collision counts are order-invariant."
    );
    Ok(())
}
