//! Ablation study of the preprocessing design choices (DESIGN.md §5):
//! insertion order (importance-descending vs natural) and collision density
//! merging. Not a paper figure — this quantifies the offline policies this
//! reproduction adds to keep the masked PSNR close to VQRF, so their
//! contribution is visible rather than silent.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin ablation_preprocess [--quick]
//! ```

use spnerf_bench::{camera, mean, print_table, psnr_against, Fidelity, MLP_SEED};
use spnerf_core::{InsertionOrder, MaskMode, PreprocessOptions, SpNerfModel};
use spnerf_render::mlp::Mlp;
use spnerf_render::renderer::render_view;
use spnerf_render::scene::{build_grid, scene_aabb, SceneId};
use spnerf_voxel::vqrf::VqrfModel;

fn main() {
    let fid = Fidelity::from_args();
    println!("Ablation — preprocessing policies (insertion order, density merge)\n");

    let variants: [(&str, PreprocessOptions); 4] = [
        ("importance + merge (default)", PreprocessOptions::default()),
        (
            "importance, no merge",
            PreprocessOptions { skip_density_merge: true, ..Default::default() },
        ),
        (
            "natural + merge",
            PreprocessOptions { order: InsertionOrder::Natural, ..Default::default() },
        ),
        (
            "natural, no merge",
            PreprocessOptions { order: InsertionOrder::Natural, skip_density_merge: true },
        ),
    ];

    let scenes = [SceneId::Lego, SceneId::Ship, SceneId::Chair];
    let mlp = Mlp::random(MLP_SEED);
    let cam = camera(&fid);
    let rcfg = fid.render_config();

    // Use a deliberately tight table so collisions are frequent enough for
    // the policies to matter (quarter of the preset size).
    let mut sp_cfg = fid.spnerf_config();
    sp_cfg.table_size = (sp_cfg.table_size / 4).max(64);

    let mut rows = Vec::new();
    for (name, opts) in variants {
        let mut psnrs = Vec::new();
        let mut collisions = 0usize;
        for id in scenes {
            let grid = build_grid(id, fid.side_for(id));
            let vqrf = VqrfModel::build(&grid, &fid.vqrf_config());
            let (gt, _) = render_view(&grid, &mlp, &cam, &scene_aabb(), &rcfg);
            let model = SpNerfModel::build_with(&vqrf, &sp_cfg, opts).expect("valid");
            collisions += model.report().collisions;
            let view = model.view(MaskMode::Masked);
            let (psnr, _) = psnr_against(&view, &gt, &mlp, &cam, &rcfg);
            psnrs.push(psnr);
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.2} dB", mean(&psnrs)),
            collisions.to_string(),
        ]);
    }

    print_table(&["Policy", "mean masked PSNR", "collisions"], &rows);
    println!(
        "\nReading: density merging is the dominant lever (≈1–2 dB under collision\n\
         pressure); insertion order redistributes *which* points lose and is\n\
         roughly PSNR-neutral on average while bounding the worst case (the\n\
         brightest voxels never alias). Collision counts are order-invariant."
    );
}
