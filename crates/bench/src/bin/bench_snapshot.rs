//! Records or validates the schema-versioned kernel benchmark snapshots
//! (`BENCH_*.json`) described in `docs/benchmarking.md`.
//!
//! Measure mode times both hot-path kernels (trilinear interpolation and
//! the MLP GEMV) in scalar, lane, and — for the GEMV — fp16-storage form,
//! the fp16 conversions themselves, the bake-and-defer rows (bake pass,
//! deferred per-pixel MLP, compositing accumulator scalar + lanes), and
//! the temporal-reuse rows (forward-warp splat, disocclusion test), and
//! writes one snapshot file:
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin bench_snapshot -- [--quick] \
//!     [--label NAME] [--out PATH]
//! ```
//!
//! `--label NAME` defaults to `pr10` and names the output `BENCH_<NAME>.json`
//! in the current directory unless `--out PATH` overrides the destination.
//!
//! Check mode parses and validates existing snapshots against the current
//! schema ([`snapshot::SCHEMA_VERSION`]) without timing anything — this is
//! what CI runs on every push:
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin bench_snapshot -- --check [PATH...]
//! ```
//!
//! With no paths, `--check` discovers every `BENCH_*.json` in the current
//! directory and fails if there are none. Exit status: 0 all valid, 1 any
//! schema violation or missing file, 2 usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use spnerf_bench::snapshot::{self, SNAPSHOT_PREFIX};

const DEFAULT_LABEL: &str = "pr10";

fn usage() -> String {
    format!(
        "usage: bench_snapshot [--quick] [--label NAME] [--out PATH]\n\
         \x20      bench_snapshot --check [PATH...]\n\
         \n\
         Records (or, with --check, validates) a schema-versioned kernel\n\
         benchmark snapshot; see docs/benchmarking.md.\n\
         \n\
         options:\n\
         \x20 --quick        reduced calibration for CI smoke runs (noisier numbers,\n\
         \x20                identical schema; recorded in the fingerprint)\n\
         \x20 --label NAME   snapshot label, default `{DEFAULT_LABEL}`; output file becomes\n\
         \x20                {SNAPSHOT_PREFIX}<NAME>.json\n\
         \x20 --out PATH     explicit output path (overrides the label-derived name)\n\
         \x20 --check        validate snapshots instead of measuring; with no PATH\n\
         \x20                arguments, discovers {SNAPSHOT_PREFIX}*.json in the current directory\n\
         \n\
         Timings are a recorded trajectory, not a gate: kernel correctness is\n\
         judged by equality tests, never by wall-clock."
    )
}

struct Args {
    quick: bool,
    label: String,
    out: Option<PathBuf>,
    check: bool,
    paths: Vec<PathBuf>,
}

fn parse(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        label: DEFAULT_LABEL.to_string(),
        out: None,
        check: false,
        paths: Vec::new(),
    };
    let mut it = argv.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| match inline.clone() {
            Some(v) if !v.is_empty() => Ok(v),
            Some(_) => Err(format!("flag `{flag}` requires a non-empty value")),
            None => it
                .next()
                .cloned()
                .filter(|v| !v.starts_with("--") && !v.is_empty())
                .ok_or_else(|| format!("flag `{flag}` requires a value")),
        };
        match flag {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--label" => args.label = value(&mut it)?,
            "--out" => args.out = Some(PathBuf::from(value(&mut it)?)),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            positional => {
                if args.check {
                    args.paths.push(PathBuf::from(positional));
                } else {
                    return Err(format!(
                        "unexpected positional argument `{positional}` \
                         (paths are only accepted with --check)"
                    ));
                }
            }
        }
    }
    if args.check && (args.quick || args.out.is_some() || args.label != DEFAULT_LABEL) {
        return Err("--check takes only PATH arguments".to_string());
    }
    Ok(args)
}

fn discover_snapshots(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with(SNAPSHOT_PREFIX) && name.ends_with(".json") {
            found.push(path);
        }
    }
    found.sort();
    Ok(found)
}

fn check(paths: &[PathBuf]) -> ExitCode {
    let paths = if paths.is_empty() {
        match discover_snapshots(Path::new(".")) {
            Ok(found) if found.is_empty() => {
                eprintln!(
                    "error: no {SNAPSHOT_PREFIX}*.json snapshots in the current directory \
                     — the perf trajectory must not silently disappear"
                );
                return ExitCode::FAILURE;
            }
            Ok(found) => found,
            Err(e) => {
                eprintln!("error: cannot scan current directory: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        paths.to_vec()
    };

    let mut failed = false;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => match snapshot::validate_snapshot_json(&text) {
                Ok(()) => println!("{}: ok (schema v{})", path.display(), snapshot::SCHEMA_VERSION),
                Err(errors) => {
                    failed = true;
                    eprintln!("{}: INVALID", path.display());
                    for e in errors {
                        eprintln!("  - {e}");
                    }
                }
            },
            Err(e) => {
                failed = true;
                eprintln!("{}: unreadable: {e}", path.display());
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.check {
        return check(&args.paths);
    }

    let out =
        args.out.unwrap_or_else(|| PathBuf::from(format!("{SNAPSHOT_PREFIX}{}.json", args.label)));
    eprintln!(
        "measuring kernel snapshot `{}` ({} calibration)...",
        args.label,
        if args.quick { "quick" } else { "full" }
    );
    let snap = snapshot::measure(&args.label, args.quick);
    for k in &snap.kernels {
        eprintln!("  {:<18} {:>10.2} ns/op  {:>14.0} ops/s", k.name, k.ns_per_op, k.ops_per_s);
    }
    let json = snap.to_json();
    snapshot::validate_snapshot_json(&json).expect("freshly measured snapshot validates");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}
