//! Regenerates **Fig. 2**: (a) the VQRF runtime split on A100/ONX/XNX and
//! (b) the voxel-grid sparsity of each scene.
//!
//! The paper profiles VQRF with PyTorch on real hardware; offline we model
//! the same workload (restore + gather + compute) on the Table I rooflines.
//! The reproduction target is the *shape*: edge platforms spend
//! 4.79×–5.14× more of their time on memory access than the A100, and
//! non-zero voxels occupy 2.01 %–6.48 % of the grid.
//!
//! With `--corpus` the sweep runs over the testkit's five procedural
//! archetypes (0.5 %–20 % occupancy) instead of the eight scenes, showing
//! how the runtime split shifts across the sparsity/structure space.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin fig2_profiling [--quick] [--corpus]
//! ```

use spnerf::platforms::roofline::estimate_frame;
use spnerf::platforms::spec::PlatformSpec;
use spnerf::platforms::vqrf_workload::VqrfGpuWorkload;
use spnerf_bench::{
    build_sweep_scene, cli, evaluate_scene, mean, print_table, sweep_items, Fidelity, SourceMode,
};

fn main() {
    let args = cli::parse_or_exit();
    if let Some(flag) = args.serve_flag() {
        eprintln!("{flag}: this binary does not serve traffic (see spnerf_serve)");
        std::process::exit(2);
    }
    if let Some(flag) = args.temporal_flag() {
        eprintln!("{flag}: this binary does not render trajectories (see fig9_temporal)");
        std::process::exit(2);
    }
    let fid = Fidelity::from_cli(&args);
    let sweep = if args.corpus { "corpus archetypes" } else { "Synthetic-NeRF scenes" };
    println!(
        "Fig. 2 — profiling VQRF ({} preset, {sweep}, {} source)\n",
        preset_name(&fid),
        fid.source.name()
    );

    let mut sparsity_rows = Vec::new();
    let mut baked_rows = Vec::new();
    let mut fractions: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let platforms = [PlatformSpec::a100(), PlatformSpec::onx(), PlatformSpec::xnx()];

    for item in sweep_items(&fid, args.corpus) {
        let scene = build_sweep_scene(&item, &fid);
        let eval = evaluate_scene(&scene, &fid);
        if fid.source == SourceMode::Baked {
            // The bake-and-defer headline: the view-dependence MLP runs once
            // per pixel instead of once per shaded sample.
            baked_rows.push(vec![
                item.label(),
                eval.workload.samples_shaded.to_string(),
                eval.workload.pixels_shaded.to_string(),
                format!("{:.1}x", eval.workload.mlp_collapse()),
                format!("{:.2} dB", eval.psnr_baked.unwrap_or(f64::NAN)),
            ]);
        }
        let occ = scene.grid().occupancy();
        sparsity_rows.push(vec![
            item.label(),
            format!("{:.2} %", occ * 100.0),
            format!("{:.2} %", (1.0 - occ) * 100.0),
        ]);
        let w = VqrfGpuWorkload::new(
            scene.grid().dims().len(),
            eval.workload.samples_marched as u64,
            eval.workload.samples_shaded as u64,
            scene.vqrf().compressed_footprint().total_bytes(),
        );
        for (i, p) in platforms.iter().enumerate() {
            fractions[i].push(estimate_frame(p, &w).memory_fraction());
        }
    }

    println!("(a) Time distribution (memory-access share of frame time)\n");
    let mem_rows: Vec<Vec<String>> = platforms
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let f = mean(&fractions[i]);
            vec![
                p.name.to_string(),
                format!("{:.1} %", f * 100.0),
                format!("{:.1} %", (1.0 - f) * 100.0),
            ]
        })
        .collect();
    print_table(&["Platform", "Memory access", "Computation"], &mem_rows);

    let a100 = mean(&fractions[0]);
    let onx = mean(&fractions[1]);
    let xnx = mean(&fractions[2]);
    println!();
    println!(
        "Edge/A100 memory-share ratio: ONX {:.2}x, XNX {:.2}x  (paper: 4.79x–5.14x)",
        onx / a100,
        xnx / a100
    );

    println!("\n(b) Voxel grid data sparsity\n");
    print_table(&["Scene", "Non-zero", "Zero"], &sparsity_rows);
    println!("\nPaper: non-zero points occupy 2.01 % – 6.48 % of the voxel grid.");

    if !baked_rows.is_empty() {
        println!("\n(c) Deferred shading: MLP evaluations per frame (baked source)\n");
        print_table(
            &["Scene", "Samples shaded", "Pixels shaded", "Collapse", "PSNR vs GT"],
            &baked_rows,
        );
        println!("\nThe deferred view MLP runs once per pixel; the per-sample path runs once");
        println!("per shaded sample. \"Collapse\" is the ratio between the two.");
    }
}

fn preset_name(fid: &Fidelity) -> &'static str {
    if fid.grid_side.is_some() {
        "quick"
    } else {
        "paper"
    }
}
