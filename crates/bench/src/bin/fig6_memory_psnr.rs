//! Regenerates **Fig. 6**: (a) per-scene memory-size reduction of SpNeRF
//! over the restored VQRF grid (paper: 21.07× average) and (b) PSNR of
//! VQRF vs SpNeRF before/after bitmap masking.
//!
//! With `--corpus` the sweep runs over the testkit's five procedural
//! archetypes instead of the eight scenes, so the reduction factor and the
//! masking gain can be read across the whole sparsity/structure space.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin fig6_memory_psnr [--quick] [--corpus]
//! ```

use spnerf::voxel::memory::format_bytes;
use spnerf_bench::{
    build_sweep_scene, cli, evaluate_scene, mean, print_table, sweep_items, Fidelity,
};

fn main() {
    let args = cli::parse_or_exit();
    if let Some(flag) = args.serve_flag() {
        eprintln!("{flag}: this binary does not serve traffic (see spnerf_serve)");
        std::process::exit(2);
    }
    if let Some(flag) = args.temporal_flag() {
        eprintln!("{flag}: this binary does not render trajectories (see fig9_temporal)");
        std::process::exit(2);
    }
    let fid = Fidelity::from_cli(&args);
    let sweep = if args.corpus { "corpus archetypes" } else { "Synthetic-NeRF scenes" };
    println!("Fig. 6 — memory size reduction and PSNR ({sweep})\n");

    let mut mem_rows = Vec::new();
    let mut psnr_rows = Vec::new();
    let mut reductions = Vec::new();
    let mut psnr_gaps = Vec::new();
    let mut mask_gains = Vec::new();

    for item in sweep_items(&fid, args.corpus) {
        let scene = build_sweep_scene(&item, &fid);
        let eval = evaluate_scene(&scene, &fid);

        let restored = scene.vqrf().restored_footprint();
        let sp = scene.model().footprint();
        let reduction = scene.model().memory_reduction_vs(scene.vqrf());
        reductions.push(reduction);
        mem_rows.push(vec![
            item.label(),
            format_bytes(restored.total_bytes()),
            format_bytes(sp.total_bytes()),
            format!("{reduction:.1}x"),
        ]);

        psnr_gaps.push(eval.psnr_vqrf - eval.psnr_masked);
        mask_gains.push(eval.psnr_masked - eval.psnr_unmasked);
        psnr_rows.push(vec![
            item.label(),
            format!("{:.2} dB", eval.psnr_vqrf),
            format!("{:.2} dB", eval.psnr_unmasked),
            format!("{:.2} dB", eval.psnr_masked),
        ]);
    }

    println!("(a) Voxel grid memory size (VQRF restored vs SpNeRF model)\n");
    print_table(&["Scene", "VQRF", "SpNeRF", "Reduction"], &mem_rows);
    println!("\nAverage reduction: {:.2}x   (paper: 21.07x average)", mean(&reductions));

    println!("\n(b) PSNR (reference: dense-grid render)\n");
    print_table(&["Scene", "VQRF", "SpNeRF before mask", "SpNeRF after mask"], &psnr_rows);
    println!(
        "\nAverage PSNR gap vs VQRF after masking: {:.2} dB (paper: comparable)",
        mean(&psnr_gaps)
    );
    println!(
        "Average PSNR recovered by bitmap masking: {:.2} dB (paper: masking is crucial)",
        mean(&mask_gains)
    );
}
