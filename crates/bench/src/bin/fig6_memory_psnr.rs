//! Regenerates **Fig. 6**: (a) per-scene memory-size reduction of SpNeRF
//! over the restored VQRF grid (paper: 21.07× average) and (b) PSNR of
//! VQRF vs SpNeRF before/after bitmap masking.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin fig6_memory_psnr [--quick]
//! ```

use spnerf::render::scene::SceneId;
use spnerf::voxel::memory::format_bytes;
use spnerf_bench::{build_scene, evaluate_scene, mean, print_table, Fidelity};

fn main() {
    let fid = Fidelity::from_args();
    println!("Fig. 6 — memory size reduction and PSNR\n");

    let mut mem_rows = Vec::new();
    let mut psnr_rows = Vec::new();
    let mut reductions = Vec::new();
    let mut psnr_gaps = Vec::new();
    let mut mask_gains = Vec::new();

    for id in SceneId::all() {
        let scene = build_scene(id, &fid);
        let eval = evaluate_scene(&scene, &fid);

        let restored = scene.vqrf().restored_footprint();
        let sp = scene.model().footprint();
        let reduction = scene.model().memory_reduction_vs(scene.vqrf());
        reductions.push(reduction);
        mem_rows.push(vec![
            id.name().to_string(),
            format_bytes(restored.total_bytes()),
            format_bytes(sp.total_bytes()),
            format!("{reduction:.1}x"),
        ]);

        psnr_gaps.push(eval.psnr_vqrf - eval.psnr_masked);
        mask_gains.push(eval.psnr_masked - eval.psnr_unmasked);
        psnr_rows.push(vec![
            id.name().to_string(),
            format!("{:.2} dB", eval.psnr_vqrf),
            format!("{:.2} dB", eval.psnr_unmasked),
            format!("{:.2} dB", eval.psnr_masked),
        ]);
    }

    println!("(a) Voxel grid memory size (VQRF restored vs SpNeRF model)\n");
    print_table(&["Scene", "VQRF", "SpNeRF", "Reduction"], &mem_rows);
    println!("\nAverage reduction: {:.2}x   (paper: 21.07x average)", mean(&reductions));

    println!("\n(b) PSNR (reference: dense-grid render)\n");
    print_table(&["Scene", "VQRF", "SpNeRF before mask", "SpNeRF after mask"], &psnr_rows);
    println!(
        "\nAverage PSNR gap vs VQRF after masking: {:.2} dB (paper: comparable)",
        mean(&psnr_gaps)
    );
    println!(
        "Average PSNR recovered by bitmap masking: {:.2} dB (paper: masking is crucial)",
        mean(&mask_gains)
    );
}
