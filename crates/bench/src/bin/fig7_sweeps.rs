//! Regenerates **Fig. 7**: PSNR vs (a) subgrid number at a fixed 16 k hash
//! table and (b) hash-table size at the fixed 64-subgrid partition.
//!
//! The paper's knee is the reproduction target: PSNR rises steeply and then
//! saturates, motivating the K = 64 / T = 32 k operating point.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin fig7_sweeps [--quick]
//! ```

use spnerf_bench::{camera, mean, print_table, psnr_against, Fidelity, MLP_SEED};
use spnerf_core::{MaskMode, SpNerfConfig, SpNerfModel};
use spnerf_render::mlp::Mlp;
use spnerf_render::renderer::render_view;
use spnerf_render::scene::{build_grid, scene_aabb, SceneId};
use spnerf_voxel::vqrf::VqrfModel;

fn main() {
    let fid = Fidelity::from_args();
    let quick = fid.grid_side.is_some();
    println!("Fig. 7 — PSNR vs subgrid number and hash-table size\n");

    // Evaluate on a subset of scenes (the sweeps are averaged in the paper).
    let scenes: &[SceneId] = if quick {
        &[SceneId::Mic, SceneId::Lego]
    } else {
        &[SceneId::Mic, SceneId::Lego, SceneId::Chair, SceneId::Ship]
    };

    let mlp = Mlp::random(MLP_SEED);
    let cam = camera(&fid);
    let cfg = fid.render_config();

    // Pre-build grids, VQRF models and reference images once per scene.
    let mut prepared = Vec::new();
    for &id in scenes {
        let grid = build_grid(id, fid.side_for(id));
        let vqrf = VqrfModel::build(&grid, &fid.vqrf_config());
        let (gt, _) = render_view(&grid, &mlp, &cam, &scene_aabb(), &cfg);
        prepared.push((id, vqrf, gt));
    }

    let psnr_for = |k: usize, t: usize| -> f64 {
        let mut values = Vec::new();
        for (_, vqrf, gt) in &prepared {
            let sp_cfg =
                SpNerfConfig { subgrid_count: k, table_size: t, codebook_size: fid.codebook };
            let model = SpNerfModel::build(vqrf, &sp_cfg).expect("valid sweep config");
            let view = model.view(MaskMode::Masked);
            let (psnr, _) = psnr_against(&view, gt, &mlp, &cam, &cfg);
            values.push(psnr);
        }
        mean(&values)
    };

    // (a) Subgrid sweep at T = 16 k (paper's panel (a) setting).
    let t_fixed = if quick { 1024 } else { 16 * 1024 };
    let subgrids: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128];
    println!("(a) PSNR vs subgrid number (hash table size = {t_fixed})\n");
    let rows: Vec<Vec<String>> = subgrids
        .iter()
        .map(|&k| vec![k.to_string(), format!("{:.2} dB", psnr_for(k, t_fixed))])
        .collect();
    print_table(&["Subgrids K", "PSNR"], &rows);

    // (b) Table-size sweep at K = 64.
    let k_fixed = if quick { 16 } else { 64 };
    let tables: &[usize] =
        if quick { &[64, 256, 1024, 4096] } else { &[1024, 2048, 4096, 8192, 16384, 32768, 65536] };
    println!("\n(b) PSNR vs hash table size (subgrid number = {k_fixed})\n");
    let rows: Vec<Vec<String>> = tables
        .iter()
        .map(|&t| {
            vec![
                if t % 1024 == 0 { format!("{}k", t / 1024) } else { t.to_string() },
                format!("{:.2} dB", psnr_for(k_fixed, t)),
            ]
        })
        .collect();
    print_table(&["Table size T", "PSNR"], &rows);

    println!(
        "\nPaper: PSNR increases rapidly then saturates; K = 64 and T = 32k are chosen\n\
         because larger values yield only marginal improvements."
    );
}
