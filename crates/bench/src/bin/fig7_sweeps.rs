//! Regenerates **Fig. 7**: PSNR vs (a) subgrid number at a fixed 16 k hash
//! table and (b) hash-table size at the fixed 64-subgrid partition.
//!
//! The paper's knee is the reproduction target: PSNR rises steeply and then
//! saturates, motivating the K = 64 / T = 32 k operating point.
//!
//! Each sweep point respecializes only the SpNeRF stage
//! ([`spnerf::Scene::with_spnerf`]) against the scene's shared grid, VQRF
//! model and ground-truth render — compression and geometry are built once
//! per scene, not once per point.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin fig7_sweeps [--quick]
//! ```

use spnerf::pipeline::{RenderRequest, RenderSource};
use spnerf::render::image::ImageBuffer;
use spnerf::render::scene::SceneId;
use spnerf::Scene;
use spnerf_bench::{build_scene, camera, mean, print_table, Fidelity, SpNerfConfig};

fn main() -> Result<(), spnerf::Error> {
    let fid = Fidelity::from_args();
    let quick = fid.grid_side.is_some();
    println!("Fig. 7 — PSNR vs subgrid number and hash-table size\n");

    // Evaluate on a subset of scenes (the sweeps are averaged in the paper).
    let scenes: &[SceneId] = if quick {
        &[SceneId::Mic, SceneId::Lego]
    } else {
        &[SceneId::Mic, SceneId::Lego, SceneId::Chair, SceneId::Ship]
    };

    let cam = camera(&fid);

    // Build each scene bundle and its ground-truth reference once.
    let mut prepared: Vec<(Scene, Vec<ImageBuffer>)> = Vec::new();
    for &id in scenes {
        let scene = build_scene(id, &fid);
        let gt = scene.session().render(&RenderRequest::single(RenderSource::GroundTruth, cam))?;
        prepared.push((scene, gt.images));
    }

    let psnr_for = |k: usize, t: usize| -> Result<f64, spnerf::Error> {
        let mut values = Vec::new();
        for (scene, gt_images) in &prepared {
            let sp_cfg =
                SpNerfConfig { subgrid_count: k, table_size: t, codebook_size: fid.codebook };
            let point = scene.with_spnerf(sp_cfg)?;
            let resp = point.session().render(
                &RenderRequest::single(RenderSource::spnerf_masked(), cam)
                    .with_reference_images(gt_images),
            )?;
            values.push(resp.mean_psnr());
        }
        Ok(mean(&values))
    };

    // (a) Subgrid sweep at T = 16 k (paper's panel (a) setting).
    let t_fixed = if quick { 1024 } else { 16 * 1024 };
    let subgrids: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128];
    println!("(a) PSNR vs subgrid number (hash table size = {t_fixed})\n");
    let mut rows = Vec::new();
    for &k in subgrids {
        rows.push(vec![k.to_string(), format!("{:.2} dB", psnr_for(k, t_fixed)?)]);
    }
    print_table(&["Subgrids K", "PSNR"], &rows);

    // (b) Table-size sweep at K = 64.
    let k_fixed = if quick { 16 } else { 64 };
    let tables: &[usize] =
        if quick { &[64, 256, 1024, 4096] } else { &[1024, 2048, 4096, 8192, 16384, 32768, 65536] };
    println!("\n(b) PSNR vs hash table size (subgrid number = {k_fixed})\n");
    let mut rows = Vec::new();
    for &t in tables {
        rows.push(vec![
            if t % 1024 == 0 { format!("{}k", t / 1024) } else { t.to_string() },
            format!("{:.2} dB", psnr_for(k_fixed, t)?),
        ]);
    }
    print_table(&["Table size T", "PSNR"], &rows);

    println!(
        "\nPaper: PSNR increases rapidly then saturates; K = 64 and T = 32k are chosen\n\
         because larger values yield only marginal improvements."
    );
    Ok(())
}
