//! Regenerates the **fig8-style sparse-format sweep**: occupancy-vs-format
//! index-size crossover across the sweep, and the format-dependent DRAM
//! metadata traffic the accelerator's cycle model charges for each encoding.
//!
//! Rendered pixels are bitwise-identical in every format (the index sits
//! outside the rendering fetch path — the conformance suite pins this), so
//! this binary renders each scene **once** and replays the measured
//! workload under every encoding's per-lookup access cost.
//!
//! With `--corpus` the sweep runs the five procedural archetypes
//! (0.5 %–20 % occupancy), which is where the `auto` selector's COO ↔
//! rank-select crossover is visible.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin fig8_formats [--quick] [--corpus] [--sparse-format F]
//! ```

use spnerf::accel::sim::pipeline::{simulate_frame, ArchConfig};
use spnerf::pipeline::{RenderRequest, RenderSource};
use spnerf::voxel::memory::format_bytes;
use spnerf::voxel::sparse::{
    predicted_index_bytes, select_format, FormatKind, OccupancyStats, SparseFormat, SparseIndex,
};
use spnerf_bench::{build_sweep_scene, camera, cli, print_table, sweep_items, Fidelity};

fn main() {
    let args = cli::parse_or_exit();
    if let Some(flag) = args.serve_flag() {
        eprintln!("{flag}: this binary does not serve traffic (see spnerf_serve)");
        std::process::exit(2);
    }
    if let Some(flag) = args.temporal_flag() {
        eprintln!("{flag}: this binary does not render trajectories (see fig9_temporal)");
        std::process::exit(2);
    }
    let fid = Fidelity::from_cli(&args);
    let arch = ArchConfig::default();
    let sweep = if args.corpus { "corpus archetypes" } else { "Synthetic-NeRF scenes" };
    println!("Fig. 8 (formats) — sparse-format index sizes and metadata traffic ({sweep})\n");

    let mut size_rows = Vec::new();
    let mut traffic_rows = Vec::new();
    let mut picked = Vec::new();

    for item in sweep_items(&fid, args.corpus) {
        let scene = build_sweep_scene(&item, &fid);
        let stats = OccupancyStats::from_bitmap(scene.model().bitmap());
        let auto_pick = select_format(&stats);
        picked.push(auto_pick);

        let mut row = vec![item.label(), format!("{:.2}%", stats.occupancy() * 100.0)];
        for kind in FormatKind::ALL {
            let bytes = predicted_index_bytes(kind, &stats);
            let marker = if kind == auto_pick { " *" } else { "" };
            row.push(format!("{}{marker}", format_bytes(bytes)));
        }
        row.push(scene.sparse_kind().name().to_string());
        size_rows.push(row);

        // One render measures the lookup count; every encoding then replays
        // the same workload under its own per-lookup cost (pixels and
        // marching are format-independent by construction).
        let resp = scene
            .session()
            .render(&RenderRequest::single(RenderSource::spnerf_masked(), camera(&fid)))
            .expect("primary render succeeds");
        let base = resp.workload.clone().with_format_traffic(0).at_paper_resolution();
        let base_sim = simulate_frame(&base, &arch);
        for kind in FormatKind::ALL {
            let index = SparseIndex::from_bitmap(kind, scene.model().bitmap());
            let cost = index.access_cost();
            let w = resp
                .workload
                .clone()
                .with_format_traffic(resp.stats.samples_marched * cost.bytes_per_lookup)
                .at_paper_resolution();
            let sim = simulate_frame(&w, &arch);
            let dram_delta = 100.0 * (sim.dram_cycles as f64 - base_sim.dram_cycles as f64)
                / base_sim.dram_cycles.max(1) as f64;
            traffic_rows.push(vec![
                item.label(),
                kind.name().to_string(),
                format!("{} B", cost.bytes_per_lookup),
                format_bytes(w.format_bytes),
                format!("+{dram_delta:.1}%"),
                format!("{:.1}", sim.fps),
            ]);
        }
    }

    println!("(a) Index bytes by encoding (* = auto's pick from occupancy stats)\n");
    let mut headers = vec!["Scene", "Occupancy"];
    let names: Vec<&str> = FormatKind::ALL.iter().map(|k| k.name()).collect();
    headers.extend(names.iter().copied());
    headers.push("built");
    print_table(&headers, &size_rows);

    let distinct: std::collections::HashSet<_> = picked.iter().collect();
    println!(
        "\nauto picked {} distinct format(s) across the sweep: {}",
        distinct.len(),
        picked.iter().map(|k| k.name()).collect::<Vec<_>>().join(", ")
    );

    println!("\n(b) Per-frame metadata traffic at 800x800 (DRAM delta vs no-metadata model)\n");
    print_table(
        &["Scene", "Format", "B/lookup", "Metadata/frame", "DRAM cycles", "FPS"],
        &traffic_rows,
    );
    println!("\nPixels are bitwise-identical across every format (conformance-pinned).");
}
