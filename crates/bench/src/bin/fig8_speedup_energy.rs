//! Regenerates **Fig. 8**: per-scene (a) speedup and (b) energy-efficiency
//! improvement of the SpNeRF accelerator over the Jetson XNX and ONX.
//!
//! SpNeRF FPS comes from the cycle-level frame model at 1 GHz; Jetson FPS
//! from the calibrated VQRF roofline. Paper bands: speedup 52.4×–157.1×
//! (XNX, avg 95.1×) and 34.9×–112.2× (ONX, avg 63.5×); energy efficiency
//! 346.4×–1030.9× (XNX, avg 625.6×) and 288.7×–937.2× (ONX, avg 529.1×).
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin fig8_speedup_energy [--quick]
//! ```

use spnerf::accel::asic::EnergyParams;
use spnerf::accel::sim::pipeline::{simulate_frame, ArchConfig};
use spnerf::platforms::roofline::estimate_frame;
use spnerf::platforms::spec::PlatformSpec;
use spnerf::platforms::vqrf_workload::VqrfGpuWorkload;
use spnerf::render::scene::SceneId;
use spnerf_bench::{build_scene, evaluate_scene, mean, print_table, Fidelity};

fn main() {
    let fid = Fidelity::from_args();
    let arch = ArchConfig::default();
    let energy = EnergyParams::default();
    let xnx = PlatformSpec::xnx();
    let onx = PlatformSpec::onx();

    println!("Fig. 8 — normalized speedup and energy efficiency vs edge GPUs\n");

    let mut rows = Vec::new();
    let mut sp_x = Vec::new();
    let mut sp_o = Vec::new();
    let mut ee_x = Vec::new();
    let mut ee_o = Vec::new();
    let mut fps_all = Vec::new();

    for id in SceneId::all() {
        let scene = build_scene(id, &fid);
        let eval = evaluate_scene(&scene, &fid);
        let sim = simulate_frame(&eval.workload, &arch);
        let power = energy.power(&sim, &arch).total_w;
        fps_all.push(sim.fps);

        let gpu_w = VqrfGpuWorkload::new(
            scene.grid().dims().len(),
            eval.workload.samples_marched as u64,
            eval.workload.samples_shaded as u64,
            scene.vqrf().compressed_footprint().total_bytes(),
        );
        let fx = estimate_frame(&xnx, &gpu_w).fps();
        let fo = estimate_frame(&onx, &gpu_w).fps();

        let speed_x = sim.fps / fx;
        let speed_o = sim.fps / fo;
        let eff_sp = sim.fps / power;
        let eff_x = eff_sp / (fx / xnx.power_w);
        let eff_o = eff_sp / (fo / onx.power_w);
        sp_x.push(speed_x);
        sp_o.push(speed_o);
        ee_x.push(eff_x);
        ee_o.push(eff_o);

        rows.push(vec![
            id.name().to_string(),
            format!("{:.1}", sim.fps),
            format!("{:.2}", fx),
            format!("{:.2}", fo),
            format!("{:.1}x", speed_x),
            format!("{:.1}x", speed_o),
            format!("{:.0}x", eff_x),
            format!("{:.0}x", eff_o),
        ]);
    }

    print_table(
        &[
            "Scene",
            "SpNeRF FPS",
            "XNX FPS",
            "ONX FPS",
            "speedup/XNX",
            "speedup/ONX",
            "energy-eff/XNX",
            "energy-eff/ONX",
        ],
        &rows,
    );

    let fmt_band = |v: &Vec<f64>| {
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        format!("{:.1}x – {:.1}x (avg {:.1}x)", min, max, mean(v))
    };
    println!("\n(a) Speedup");
    println!("  vs XNX: {}   (paper: 52.4x – 157.1x, avg 95.1x)", fmt_band(&sp_x));
    println!("  vs ONX: {}   (paper: 34.9x – 112.2x, avg 63.5x)", fmt_band(&sp_o));
    println!("\n(b) Energy efficiency");
    println!("  vs XNX: {}   (paper: 346.4x – 1030.9x, avg 625.6x)", fmt_band(&ee_x));
    println!("  vs ONX: {}   (paper: 288.7x – 937.2x, avg 529.1x)", fmt_band(&ee_o));
    println!("\nAverage SpNeRF FPS: {:.2}   (paper: 67.56)", mean(&fps_all));
}
