//! Regenerates **Fig. 9**: (a) the area breakdown and (b) the power
//! breakdown of the SpNeRF accelerator.
//!
//! Targets: ≈7.7 mm² total at 28 nm with on-chip SRAM a minority share,
//! and ≈3 W total with the systolic array dominant.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin fig9_area_power [--quick]
//! ```

use spnerf::accel::asic::{sram_bytes, sram_inventory, AreaModel, EnergyParams, Module};
use spnerf::accel::sim::pipeline::{simulate_frame, ArchConfig};
use spnerf::render::scene::SceneId;
use spnerf::voxel::memory::format_bytes;
use spnerf_bench::{build_scene, evaluate_scene, print_table, Fidelity};

fn main() {
    let fid = Fidelity::from_args();
    let arch = ArchConfig::default();

    println!("Fig. 9 — area and power of SpNeRF\n");

    // Representative workload: the lego scene (mid-density).
    let scene = build_scene(SceneId::Lego, &fid);
    let eval = evaluate_scene(&scene, &fid);
    let sim = simulate_frame(&eval.workload, &arch);

    println!("On-chip SRAM inventory:\n");
    let rows: Vec<Vec<String>> = sram_inventory()
        .iter()
        .map(|m| vec![m.name.to_string(), format!("{:?}", m.module), format_bytes(m.bytes)])
        .collect();
    print_table(&["Buffer", "Module", "Size"], &rows);
    println!("\nSGPU SRAM: {}   (paper: 571 KB)", format_bytes(sram_bytes(Module::Sgpu)));
    println!("MLP buffer SRAM: {}   (paper: 58 KB)", format_bytes(sram_bytes(Module::Mlp)));

    let area = AreaModel::default();
    let breakdown = area.breakdown(&arch);
    let total_area = area.total_mm2(&arch);
    println!("\n(a) Area breakdown (total {total_area:.2} mm², paper: 7.7 mm²)\n");
    let rows: Vec<Vec<String>> = breakdown
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{:.2} mm²", c.value),
                format!("{:.1} %", c.value / total_area * 100.0),
            ]
        })
        .collect();
    print_table(&["Component", "Area", "Share"], &rows);

    let power = EnergyParams::default().power(&sim, &arch);
    println!(
        "\n(b) Power breakdown (total {:.2} W, paper: 3 W; workload: {})\n",
        power.total_w, eval.workload.scene
    );
    let rows: Vec<Vec<String>> = power
        .components
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{:.3} W", c.value),
                format!("{:.1} %", c.value / power.total_w * 100.0),
            ]
        })
        .collect();
    print_table(&["Component", "Power", "Share"], &rows);

    println!(
        "\nPaper observations reproduced: SRAM is a minority of area; the systolic\n\
         array dominates power (unlike prior designs where SRAM dominated)."
    );
}
