//! Regenerates the **fig9-style temporal-reuse figure**: the amortized
//! per-frame cost of a camera path when frame *N* forward-warps frame
//! *N−1*'s radiance and re-marches only disoccluded, depth-edge, and
//! validation rays, versus rendering every frame independently.
//!
//! Each sweep scene renders an 8-frame deterministic path (orbit, dolly,
//! and seeded handheld jitter; `--trajectory` picks one) in both reuse
//! modes (`--reuse-mode` picks one), and the cycle/DRAM models report
//! amortized samples, cycles, and DRAM bytes per frame over the whole path.
//! Frame 0 always pays a full render, so the headline ratio compares
//! frames 1.. only. The warp pass runs through the overlapped
//! double-buffer driver — frame *N* renders while frame *N−1* simulates —
//! and the binary cross-checks its fold against the sequential
//! [`simulate_path`] bit for bit.
//!
//! With `--corpus` the sweep runs the five procedural archetypes instead
//! of the eight scenes; CI greps the machine-readable `REUSE` lines to
//! assert the clusters archetype's ≥ 2× floor.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin fig9_temporal [--quick] [--corpus]
//!     [--trajectory orbit|dolly|jitter] [--reuse-mode off|warp]
//! ```

use spnerf::accel::sim::pipeline::{simulate_path, ArchConfig, PathSimResult};
use spnerf::pipeline::RenderSource;
use spnerf::trajectory::{ReuseMode, TrajectoryRequest, TrajectoryResponse};
use spnerf_bench::cli::TrajectoryKind;
use spnerf_bench::{build_sweep_scene, cli, print_table, sweep_items, Fidelity, SourceMode};

/// Frames per path — frame 0 pays a full render, frames 1.. amortize.
const FRAMES: usize = 8;

fn main() {
    let args = cli::parse_or_exit();
    if let Some(flag) = args.serve_flag() {
        eprintln!("{flag}: this binary does not serve traffic (see spnerf_serve)");
        std::process::exit(2);
    }
    let fid = Fidelity::from_cli(&args);
    let arch = ArchConfig::default();
    let source = match fid.source {
        SourceMode::SpNerf => RenderSource::spnerf_masked(),
        SourceMode::Baked => RenderSource::Baked,
    };
    let paths: Vec<TrajectoryKind> =
        args.trajectory.map_or_else(|| TrajectoryKind::ALL.to_vec(), |k| vec![k]);
    let modes: Vec<ReuseMode> =
        args.reuse_mode.map_or_else(|| vec![ReuseMode::Off, ReuseMode::warp()], |m| vec![m]);
    let sweep = if args.corpus { "corpus archetypes" } else { "Synthetic-NeRF scenes" };
    println!(
        "Fig. 9 (temporal) — {FRAMES}-frame trajectory reuse ({sweep}, {} source)\n",
        fid.source.name()
    );

    let mut rows = Vec::new();
    let mut reuse_lines = Vec::new();
    for item in sweep_items(&fid, args.corpus) {
        let scene = build_sweep_scene(&item, &fid);
        let session = scene.session();
        for kind in &paths {
            let spec = kind.spec(FRAMES, fid.image);
            let mut by_mode: Vec<(ReuseMode, TrajectoryResponse, PathSimResult)> = Vec::new();
            for mode in &modes {
                let request = TrajectoryRequest::new(source, spec).with_mode(*mode);
                // The warp pass exercises the overlapped double-buffer
                // driver; its fold must equal the sequential model's.
                let (resp, path) = if mode.is_on() {
                    let (resp, path) = session
                        .render_trajectory_overlapped(&request, &arch)
                        .expect("non-empty path");
                    let sequential = simulate_path(&resp.workloads, &arch);
                    assert_eq!(path, sequential, "overlapped fold must match sequential");
                    (resp, path)
                } else {
                    let resp = session.render_trajectory(&request).expect("non-empty path");
                    let path = simulate_path(&resp.workloads, &arch);
                    (resp, path)
                };
                rows.push(vec![
                    item.label(),
                    kind.name().to_string(),
                    mode.name().to_string(),
                    resp.stats.samples_marched.to_string(),
                    resp.samples_marched_after_first().to_string(),
                    resp.stats.rays_warped.to_string(),
                    resp.stats.rays_remarched.to_string(),
                    format!("{:.0}", path.amortized_samples_per_frame),
                    format!("{:.0}", path.amortized_cycles_per_frame),
                    format!("{:.0}", path.amortized_dram_bytes_per_frame),
                    format!("{:.4}", resp.max_validation_error()),
                ]);
                by_mode.push((*mode, resp, path));
            }
            // The frames-1.. amortization headline, also emitted as a
            // machine-readable line for the CI floor assertion.
            if let (Some(off), Some(warp)) = (
                by_mode.iter().find(|(m, _, _)| !m.is_on()),
                by_mode.iter().find(|(m, _, _)| m.is_on()),
            ) {
                let off_after = off.1.samples_marched_after_first();
                let warp_after = warp.1.samples_marched_after_first();
                let ratio = off_after as f64 / (warp_after as f64).max(1.0);
                reuse_lines.push(format!(
                    "REUSE scene={} path={} off_after={off_after} warp_after={warp_after} \
                     ratio={ratio:.2}",
                    item.label(),
                    kind.name(),
                ));
            }
        }
    }

    print_table(
        &[
            "Scene",
            "Path",
            "Mode",
            "Samples",
            "After-f0",
            "Warped",
            "Remarched",
            "Samp/f",
            "Cyc/f",
            "DRAM/f",
            "MaxErr",
        ],
        &rows,
    );

    if !reuse_lines.is_empty() {
        println!("\nFrames 1.. amortization (off / warp marched samples):\n");
        for line in &reuse_lines {
            println!("{line}");
        }
    }
    println!(
        "\nFrame 0 of both modes is bitwise-identical (conformance-pinned); off mode is\n\
         bitwise a loop of independent per-frame renders at every thread count."
    );
}
