//! Regenerates **Table I**: a summary of the profiled computing platforms.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin table1_platforms
//! ```

use spnerf::platforms::spec::PlatformSpec;
use spnerf_bench::{cli, print_table};

fn main() {
    // Table I is static, but the strict shared CLI surface still applies:
    // `--help` works and typos are rejected instead of ignored.
    let _ = cli::parse_or_exit();
    println!("Table I: A summary of profiling computing platforms\n");
    let rows: Vec<Vec<String>> = PlatformSpec::all()
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                format!("{} nm", p.tech_nm),
                format!("{:.0} W", p.power_w),
                format!("{} ({:.1} GB/s)", p.dram.name, p.dram.peak_bandwidth_gbps()),
                format!("{:.1} MB", p.l2_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.3} TFLOPS", p.fp32_tflops),
                format!("{:.2} TFLOPS", p.fp16_tflops),
            ]
        })
        .collect();
    print_table(&["Spec.", "Tech.", "Power", "DRAM", "GPU L2 cache", "FP32", "FP16"], &rows);
    println!();
    println!("Paper reference: A100 7nm/400W/1555GB/s/40MB/19.5/78;");
    println!("                 ONX 8nm/25W/102.4GB/s/4MB/1.9/3.8;");
    println!("                 XNX 16nm/20W/59.7GB/s/512KB/0.885/1.69.");
}
