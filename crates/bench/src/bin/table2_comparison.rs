//! Regenerates **Table II**: the comparison between RT-NeRF.Edge,
//! NeuRex.Edge and SpNeRF.
//!
//! Baseline rows reproduce the published operating points; the SpNeRF row
//! is fully derived from this reproduction's models (cycle-level FPS,
//! power/area models, SRAM inventory). Paper targets: 67.56 FPS, 3 W,
//! 7.7 mm², 0.61 MB SRAM, 22.52 FPS/W; speedups 1.5× (RT-NeRF) and 10.3×
//! (NeuRex); energy-efficiency gains 4× and 4.4×.
//!
//! ```text
//! cargo run --release -p spnerf-bench --bin table2_comparison [--quick]
//! ```

use spnerf::accel::asic::{summarize, AreaModel, EnergyParams};
use spnerf::accel::sim::pipeline::{simulate_frame, ArchConfig};
use spnerf::platforms::accelerators::AcceleratorSpec;
use spnerf::render::scene::SceneId;
use spnerf_bench::{build_scene, evaluate_scene, print_table, Fidelity};

fn main() {
    let fid = Fidelity::from_args();
    let arch = ArchConfig::default();

    // Simulate all scenes to get the average operating point.
    let mut results = Vec::new();
    for id in SceneId::all() {
        let scene = build_scene(id, &fid);
        let eval = evaluate_scene(&scene, &fid);
        results.push(simulate_frame(&eval.workload, &arch));
    }
    let ours = summarize(&results, &arch, &AreaModel::default(), &EnergyParams::default());

    println!("Table II: comparison between related work and SpNeRF\n");
    let rt = AcceleratorSpec::rt_nerf_edge();
    let nx = AcceleratorSpec::neurex_edge();
    let rows = vec![
        row(
            rt.name,
            rt.sram_mb,
            rt.area_mm2,
            rt.tech_nm,
            rt.power_w,
            rt.dram,
            rt.fps,
            rt.energy_efficiency(),
            rt.area_efficiency(),
        ),
        row(
            nx.name,
            nx.sram_mb,
            nx.area_mm2,
            nx.tech_nm,
            nx.power_w,
            nx.dram,
            nx.fps,
            nx.energy_efficiency(),
            nx.area_efficiency(),
        ),
        row(
            "SpNeRF (ours)",
            ours.sram_mb,
            ours.area_mm2,
            28,
            ours.power_w,
            "LPDDR4-3200 59.7 GB/s",
            ours.fps,
            ours.energy_eff,
            ours.area_eff,
        ),
    ];
    print_table(
        &[
            "Accelerator",
            "SRAM (MB)",
            "Area (mm2)",
            "Tech",
            "Power (W)",
            "DRAM",
            "FPS",
            "FPS/W",
            "FPS/mm2",
        ],
        &rows,
    );

    println!("\nDerived comparisons (measured | paper):");
    println!("  speedup vs RT-NeRF.Edge : {:.2}x | 1.5x", ours.fps / rt.fps);
    println!("  speedup vs NeuRex.Edge  : {:.2}x | 10.3x", ours.fps / nx.fps);
    println!("  energy eff vs RT-NeRF   : {:.2}x | 4.0x", ours.energy_eff / rt.energy_efficiency());
    println!("  energy eff vs NeuRex    : {:.2}x | 4.4x", ours.energy_eff / nx.energy_efficiency());
    println!(
        "\nPaper SpNeRF row: 0.61 MB, 7.7 mm2, 28 nm, 3 W, 67.56 FPS, 22.52 FPS/W, 6.36 FPS/mm2."
    );
    println!(
        "Note: the paper's 6.36 FPS/mm2 is inconsistent with 67.56/7.7 = 8.77; we report\n\
         the straight quotient (see EXPERIMENTS.md)."
    );
}

#[allow(clippy::too_many_arguments)]
fn row(
    name: &str,
    sram: f64,
    area: f64,
    tech: u32,
    power: f64,
    dram: &str,
    fps: f64,
    eeff: f64,
    aeff: f64,
) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{sram:.2}"),
        format!("{area:.2}"),
        format!("{tech} nm"),
        format!("{power:.2}"),
        dram.to_string(),
        format!("{fps:.2}"),
        format!("{eeff:.2}"),
        format!("{aeff:.2}"),
    ]
}
