//! Strict shared CLI parsing for the figure/table binaries.
//!
//! Every binary in `src/bin/` accepts the same surface — `--quick`,
//! `--threads N` (or `--threads=N`), `--help`/`-h` — and **rejects anything
//! else**. This matches the criterion shim's philosophy: a misspelled flag
//! that is silently ignored makes a figure run at the wrong fidelity while
//! looking successful, which is strictly worse than failing loudly.
//!
//! [`parse`] is the pure, testable core; [`parse_or_exit`] is the binary
//! entry point that prints usage / errors and applies the `SPNERF_THREADS`
//! environment fallback.

use spnerf::render::engine::THREADS_ENV_VAR;
use spnerf::render::renderer::SkipMode;
use spnerf::render::temporal::{ReuseMode, TrajectorySpec};
use spnerf::voxel::sparse::{FormatKind, FormatSelection};

/// Which primary data path a harness run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceMode {
    /// The SpNeRF masked decode through the per-sample color MLP (the
    /// paper's pipeline; default).
    #[default]
    SpNerf,
    /// The baked grid through the deferred per-pixel view-dependence MLP
    /// (the bake-and-defer path).
    Baked,
}

impl SourceMode {
    /// The token the CLI accepts for this mode.
    pub fn name(&self) -> &'static str {
        match self {
            SourceMode::SpNerf => "spnerf",
            SourceMode::Baked => "baked",
        }
    }
}

/// Which deterministic camera path `--trajectory` selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryKind {
    /// A fixed-step orbit around the scene center.
    Orbit,
    /// A straight dolly toward the scene center.
    Dolly,
    /// An orbit pose with seeded handheld jitter.
    Jitter,
}

impl TrajectoryKind {
    /// Every path kind, in CLI-token order.
    pub const ALL: [TrajectoryKind; 3] =
        [TrajectoryKind::Orbit, TrajectoryKind::Dolly, TrajectoryKind::Jitter];

    /// The token the CLI accepts for this path.
    pub fn name(&self) -> &'static str {
        match self {
            TrajectoryKind::Orbit => "orbit",
            TrajectoryKind::Dolly => "dolly",
            TrajectoryKind::Jitter => "jitter",
        }
    }

    /// The deterministic camera path this kind names, at the given frame
    /// count and square image size. The jitter seed is pinned so two runs
    /// of the same command line render the same frames.
    pub fn spec(&self, frames: usize, image: u32) -> TrajectorySpec {
        match self {
            TrajectoryKind::Orbit => TrajectorySpec::orbit(frames, image, image),
            TrajectoryKind::Dolly => TrajectorySpec::dolly(frames, image, image),
            TrajectoryKind::Jitter => TrajectorySpec::jitter(frames, image, image, 17),
        }
    }
}

/// Parsed harness arguments.
///
/// Not `Copy`/`Eq`: the serve surface carries a replay path (`String`) and
/// a Zipf exponent (`f64`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HarnessArgs {
    /// `--quick`: reduced-fidelity preset.
    pub quick: bool,
    /// `--threads N` / `--threads=N`: render worker count (`0` = all cores).
    pub threads: Option<usize>,
    /// `--corpus`: sweep the testkit's five procedural archetypes instead
    /// of the eight Synthetic-NeRF scenes (supported by the bins that sweep
    /// scenes; the others reject the flag).
    pub corpus: bool,
    /// `--skip-mode off|mip|mip:N`: empty-space skipping policy. Images are
    /// bitwise-identical in every mode; `mip` drops marched samples (and
    /// the cycles derived from them) through the occupancy pyramid,
    /// `mip:N` caps the coarsest pyramid level consulted at `N`.
    pub skip_mode: SkipMode,
    /// `--packet-size N` / `--packet-size=N`: rays marched in lockstep per
    /// packet by the tile engine (`None` keeps the preset default of 1).
    /// Outputs are bitwise-identical at every packet size.
    pub packet_size: Option<usize>,
    /// `--source spnerf|baked`: the primary data path measurements flow
    /// from. `baked` renders the baked grid with the deferred per-pixel
    /// MLP, collapsing the workload's MLP column from samples to pixels.
    pub source: SourceMode,
    /// `--sparse-format auto|bitmap|coo|csr|csc|rank|block`: the sparse
    /// occupancy-index encoding (default `auto`, the occupancy-statistics
    /// selector). Images are bitwise-identical in every format; the choice
    /// moves per-lookup metadata traffic and resident bytes.
    pub sparse_format: FormatSelection,
    /// `--seed N` / `--seed=N`: traffic-generator seed (`spnerf_serve`;
    /// other binaries reject it via [`HarnessArgs::serve_flag`]).
    pub seed: Option<u64>,
    /// `--duration-ticks N`: virtual-clock horizon of a serve run — arrivals
    /// after tick `N` are not generated.
    pub duration_ticks: Option<u64>,
    /// `--cache-bytes N`: byte budget of the serve scene cache.
    pub cache_bytes: Option<usize>,
    /// `--replay FILE`: serve a recorded traffic trace instead of
    /// synthesizing one (the seed then only matters for trace synthesis,
    /// not service).
    pub replay: Option<String>,
    /// `--zipf-s S`: Zipf popularity exponent of the synthetic traffic
    /// (`0` = uniform; larger skews toward the head scenes).
    pub zipf_s: Option<f64>,
    /// `--trajectory orbit|dolly|jitter`: restrict `fig9_temporal` to one
    /// deterministic camera path (default: sweep all three). Other binaries
    /// reject it via [`HarnessArgs::temporal_flag`].
    pub trajectory: Option<TrajectoryKind>,
    /// `--reuse-mode off|warp`: restrict `fig9_temporal` to one
    /// frame-to-frame reuse policy (default: measure both and report the
    /// amortization ratio). Other binaries reject it via
    /// [`HarnessArgs::temporal_flag`].
    pub reuse_mode: Option<ReuseMode>,
    /// `--help` / `-h` was requested.
    pub help: bool,
}

impl HarnessArgs {
    /// The first serve-only flag present, if any — binaries outside
    /// `spnerf_serve` call this to reject the serve surface with exit 2,
    /// exactly as [`crate::Fidelity::from_args`] rejects `--corpus` on
    /// binaries that do not sweep scenes.
    pub fn serve_flag(&self) -> Option<&'static str> {
        if self.seed.is_some() {
            Some("--seed")
        } else if self.duration_ticks.is_some() {
            Some("--duration-ticks")
        } else if self.cache_bytes.is_some() {
            Some("--cache-bytes")
        } else if self.replay.is_some() {
            Some("--replay")
        } else if self.zipf_s.is_some() {
            Some("--zipf-s")
        } else {
            None
        }
    }

    /// The first temporal-only flag present, if any — binaries other than
    /// `fig9_temporal` call this to reject the trajectory surface with
    /// exit 2, exactly as [`HarnessArgs::serve_flag`] fences the serve
    /// surface.
    pub fn temporal_flag(&self) -> Option<&'static str> {
        if self.trajectory.is_some() {
            Some("--trajectory")
        } else if self.reuse_mode.is_some() {
            Some("--reuse-mode")
        } else {
            None
        }
    }
}

/// A rejected command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `-`/`--` token no binary accepts.
    UnknownFlag(String),
    /// A bare positional argument (the harnesses take none).
    UnexpectedPositional(String),
    /// `--threads` / `--skip-mode` / `--packet-size` / `--source` without a
    /// value.
    MissingValue(&'static str),
    /// A flag value that failed to parse.
    BadValue {
        /// The flag the value belonged to.
        flag: &'static str,
        /// The offending token.
        value: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::UnknownFlag(a) => write!(f, "unrecognized flag `{a}`"),
            ArgError::UnexpectedPositional(a) => write!(f, "unexpected argument `{a}`"),
            ArgError::MissingValue(flag) => write!(f, "{flag} requires a value"),
            ArgError::BadValue { flag, value } => {
                write!(f, "{flag}: invalid value `{value}`")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// The usage text every harness binary prints for `--help` and on errors.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--quick] [--threads N] [--corpus] [--skip-mode MODE] [--packet-size N] [--source MODE]\n\
         \x20          [--sparse-format F] [--seed N] [--duration-ticks N] [--cache-bytes N] [--replay FILE]\n\
         \x20          [--zipf-s S] [--trajectory PATH] [--reuse-mode MODE] [--help]\n\
         \n\
         options:\n\
         \x20 --quick            run the reduced-fidelity preset (seconds instead of minutes)\n\
         \x20 --threads N        render worker threads; 0 = all cores (also: {THREADS_ENV_VAR} env var)\n\
         \x20 --corpus           sweep the 5 procedural testkit archetypes instead of the 8 scenes\n\
         \x20                    (scene-sweeping binaries only)\n\
         \x20 --skip-mode MODE   empty-space skipping: off (default), mip, or mip:N to cap the\n\
         \x20                    coarsest pyramid level at N; images are identical in every mode\n\
         \x20 --packet-size N    rays marched in lockstep per packet by the tile engine\n\
         \x20                    (default 1; images are identical at every packet size)\n\
         \x20 --source MODE      primary data path: spnerf (default) or baked — the bake-and-defer\n\
         \x20                    path whose small view MLP runs once per pixel, not per sample\n\
         \x20 --sparse-format F  sparse occupancy-index encoding: auto (default), bitmap, coo,\n\
         \x20                    csr, csc, rank, or block; images are identical in every format\n\
         \x20 --seed N           traffic-generator seed (spnerf_serve only)\n\
         \x20 --duration-ticks N virtual-clock horizon of the serve run (spnerf_serve only)\n\
         \x20 --cache-bytes N    byte budget of the serve scene cache (spnerf_serve only)\n\
         \x20 --replay FILE      serve a recorded traffic trace instead of synthesizing one\n\
         \x20                    (spnerf_serve only)\n\
         \x20 --zipf-s S         Zipf scene-popularity exponent, 0 = uniform (spnerf_serve only)\n\
         \x20 --trajectory PATH  camera path to sweep: orbit, dolly, or jitter\n\
         \x20                    (fig9_temporal only; default sweeps all three)\n\
         \x20 --reuse-mode MODE  frame-to-frame reuse: off or warp (fig9_temporal only;\n\
         \x20                    default measures both and reports the amortization ratio)\n\
         \x20 -h, --help         print this help\n\
         \n\
         Outputs are bitwise-identical at every thread count, skip mode, and packet size."
    )
}

/// Parses harness arguments (without the leading program name), rejecting
/// anything outside the shared surface. Pure: never consults the
/// environment or exits.
///
/// # Errors
///
/// Returns [`ArgError`] for unknown flags, positionals, and missing or
/// malformed `--threads` values.
pub fn parse(args: &[String]) -> Result<HarnessArgs, ArgError> {
    let parse_threads = |v: &str| {
        v.parse::<usize>()
            .map_err(|_| ArgError::BadValue { flag: "--threads", value: v.to_string() })
    };
    let parse_packet = |v: &str| {
        // `0` would silently alias the default (the engine treats it as 1),
        // so the strict surface rejects it outright.
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(ArgError::BadValue { flag: "--packet-size", value: v.to_string() }),
        }
    };
    let parse_source = |v: &str| match v {
        "spnerf" => Ok(SourceMode::SpNerf),
        "baked" => Ok(SourceMode::Baked),
        _ => Err(ArgError::BadValue { flag: "--source", value: v.to_string() }),
    };
    let parse_sparse = |v: &str| match v {
        "auto" => Ok(FormatSelection::Auto),
        _ => FormatKind::from_name(v)
            .map(FormatSelection::Fixed)
            .ok_or(ArgError::BadValue { flag: "--sparse-format", value: v.to_string() }),
    };
    let parse_seed = |v: &str| {
        v.parse::<u64>().map_err(|_| ArgError::BadValue { flag: "--seed", value: v.to_string() })
    };
    let parse_ticks = |v: &str| {
        // A zero-tick run would emit a report over an empty sample set;
        // reject it at the surface instead of panicking in a percentile.
        match v.parse::<u64>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(ArgError::BadValue { flag: "--duration-ticks", value: v.to_string() }),
        }
    };
    let parse_cache = |v: &str| {
        v.parse::<usize>()
            .map_err(|_| ArgError::BadValue { flag: "--cache-bytes", value: v.to_string() })
    };
    let parse_zipf = |v: &str| match v.parse::<f64>() {
        Ok(s) if s.is_finite() && s >= 0.0 => Ok(s),
        _ => Err(ArgError::BadValue { flag: "--zipf-s", value: v.to_string() }),
    };
    let parse_trajectory = |v: &str| {
        TrajectoryKind::ALL
            .into_iter()
            .find(|k| k.name() == v)
            .ok_or(ArgError::BadValue { flag: "--trajectory", value: v.to_string() })
    };
    let parse_reuse = |v: &str| match v {
        "off" => Ok(ReuseMode::Off),
        "warp" => Ok(ReuseMode::warp()),
        _ => Err(ArgError::BadValue { flag: "--reuse-mode", value: v.to_string() }),
    };
    let parse_skip = |v: &str| match v {
        "off" => Ok(SkipMode::Off),
        "mip" => Ok(SkipMode::mip()),
        _ => v
            .strip_prefix("mip:")
            .and_then(|n| n.parse::<usize>().ok())
            .map(|levels| SkipMode::Mip { levels })
            .ok_or(ArgError::BadValue { flag: "--skip-mode", value: v.to_string() }),
    };
    // The `--threads N` / `--threads=N` token forms mirror
    // `spnerf::render::engine::take_threads_args` (the lenient parser the
    // positional examples use); `threads_flag_forms_match_the_engine_parser`
    // below pins the two surfaces together.
    let mut out = HarnessArgs::default();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--quick" => out.quick = true,
            "--corpus" => out.corpus = true,
            "--help" | "-h" => out.help = true,
            "--threads" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--threads"))?;
                out.threads = Some(parse_threads(v)?);
                i += 1;
            }
            _ if a.starts_with("--threads=") => {
                out.threads = Some(parse_threads(&a["--threads=".len()..])?);
            }
            "--skip-mode" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--skip-mode"))?;
                out.skip_mode = parse_skip(v)?;
                i += 1;
            }
            _ if a.starts_with("--skip-mode=") => {
                out.skip_mode = parse_skip(&a["--skip-mode=".len()..])?;
            }
            "--packet-size" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--packet-size"))?;
                out.packet_size = Some(parse_packet(v)?);
                i += 1;
            }
            _ if a.starts_with("--packet-size=") => {
                out.packet_size = Some(parse_packet(&a["--packet-size=".len()..])?);
            }
            "--source" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--source"))?;
                out.source = parse_source(v)?;
                i += 1;
            }
            _ if a.starts_with("--source=") => {
                out.source = parse_source(&a["--source=".len()..])?;
            }
            "--sparse-format" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--sparse-format"))?;
                out.sparse_format = parse_sparse(v)?;
                i += 1;
            }
            _ if a.starts_with("--sparse-format=") => {
                out.sparse_format = parse_sparse(&a["--sparse-format=".len()..])?;
            }
            "--seed" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--seed"))?;
                out.seed = Some(parse_seed(v)?);
                i += 1;
            }
            _ if a.starts_with("--seed=") => {
                out.seed = Some(parse_seed(&a["--seed=".len()..])?);
            }
            "--duration-ticks" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--duration-ticks"))?;
                out.duration_ticks = Some(parse_ticks(v)?);
                i += 1;
            }
            _ if a.starts_with("--duration-ticks=") => {
                out.duration_ticks = Some(parse_ticks(&a["--duration-ticks=".len()..])?);
            }
            "--cache-bytes" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--cache-bytes"))?;
                out.cache_bytes = Some(parse_cache(v)?);
                i += 1;
            }
            _ if a.starts_with("--cache-bytes=") => {
                out.cache_bytes = Some(parse_cache(&a["--cache-bytes=".len()..])?);
            }
            "--replay" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--replay"))?;
                out.replay = Some(v.clone());
                i += 1;
            }
            _ if a.starts_with("--replay=") => {
                let v = &a["--replay=".len()..];
                if v.is_empty() {
                    return Err(ArgError::MissingValue("--replay"));
                }
                out.replay = Some(v.to_string());
            }
            "--zipf-s" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--zipf-s"))?;
                out.zipf_s = Some(parse_zipf(v)?);
                i += 1;
            }
            _ if a.starts_with("--zipf-s=") => {
                out.zipf_s = Some(parse_zipf(&a["--zipf-s=".len()..])?);
            }
            "--trajectory" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--trajectory"))?;
                out.trajectory = Some(parse_trajectory(v)?);
                i += 1;
            }
            _ if a.starts_with("--trajectory=") => {
                out.trajectory = Some(parse_trajectory(&a["--trajectory=".len()..])?);
            }
            "--reuse-mode" => {
                let v = args.get(i + 1).ok_or(ArgError::MissingValue("--reuse-mode"))?;
                out.reuse_mode = Some(parse_reuse(v)?);
                i += 1;
            }
            _ if a.starts_with("--reuse-mode=") => {
                out.reuse_mode = Some(parse_reuse(&a["--reuse-mode=".len()..])?);
            }
            _ if a.starts_with('-') => return Err(ArgError::UnknownFlag(a.to_string())),
            _ => return Err(ArgError::UnexpectedPositional(a.to_string())),
        }
        i += 1;
    }
    Ok(out)
}

/// Parses the process arguments strictly. `--help` prints usage and exits 0;
/// a parse error prints the error plus usage to stderr and exits 2. When no
/// `--threads` flag is given, falls back to the `SPNERF_THREADS` environment
/// variable.
pub fn parse_or_exit() -> HarnessArgs {
    let argv: Vec<String> = std::env::args().collect();
    let bin = argv
        .first()
        .map(|p| p.rsplit(['/', '\\']).next().unwrap_or(p).to_string())
        .unwrap_or_else(|| "harness".to_string());
    let mut parsed = match parse(&argv[1..]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{bin}: {e}\n\n{}", usage(&bin));
            std::process::exit(2);
        }
    };
    if parsed.help {
        println!("{}", usage(&bin));
        std::process::exit(0);
    }
    if parsed.threads.is_none() {
        if let Ok(v) = std::env::var(THREADS_ENV_VAR) {
            match v.parse::<usize>() {
                Ok(n) => parsed.threads = Some(n),
                Err(_) => {
                    // Same strict contract as the flags: a malformed env
                    // var exits 2 with usage, never a panic.
                    eprintln!(
                        "{bin}: {THREADS_ENV_VAR}: expected a thread count, got `{v}`\n\n{}",
                        usage(&bin)
                    );
                    std::process::exit(2);
                }
            }
        }
    }
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn accepts_the_shared_surface() {
        assert_eq!(parse(&args(&[])), Ok(HarnessArgs::default()));
        assert_eq!(
            parse(&args(&["--quick"])),
            Ok(HarnessArgs { quick: true, ..Default::default() })
        );
        assert_eq!(
            parse(&args(&["--quick", "--threads", "4"])),
            Ok(HarnessArgs { quick: true, threads: Some(4), ..Default::default() })
        );
        assert_eq!(
            parse(&args(&["--corpus", "--quick"])),
            Ok(HarnessArgs { quick: true, corpus: true, ..Default::default() })
        );
        assert_eq!(
            parse(&args(&["--threads=0"])),
            Ok(HarnessArgs { threads: Some(0), ..Default::default() })
        );
        assert_eq!(parse(&args(&["-h"])), Ok(HarnessArgs { help: true, ..Default::default() }));
    }

    #[test]
    fn skip_mode_flag_forms() {
        assert_eq!(parse(&args(&[])).unwrap().skip_mode, SkipMode::Off);
        assert_eq!(parse(&args(&["--skip-mode", "off"])).unwrap().skip_mode, SkipMode::Off);
        assert_eq!(parse(&args(&["--skip-mode", "mip"])).unwrap().skip_mode, SkipMode::mip());
        assert_eq!(parse(&args(&["--skip-mode=mip"])).unwrap().skip_mode, SkipMode::mip());
        assert_eq!(
            parse(&args(&["--skip-mode", "mip:2"])).unwrap().skip_mode,
            SkipMode::Mip { levels: 2 }
        );
        assert_eq!(
            parse(&args(&["--skip-mode=mip:0"])).unwrap().skip_mode,
            SkipMode::Mip { levels: 0 }
        );
        assert_eq!(parse(&args(&["--skip-mode"])), Err(ArgError::MissingValue("--skip-mode")));
        for bad in ["mips", "on", "mip:", "mip:x", ""] {
            assert_eq!(
                parse(&args(&["--skip-mode", bad])),
                Err(ArgError::BadValue { flag: "--skip-mode", value: bad.to_string() }),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn packet_size_flag_forms() {
        assert_eq!(parse(&args(&[])).unwrap().packet_size, None);
        assert_eq!(parse(&args(&["--packet-size", "4"])).unwrap().packet_size, Some(4));
        assert_eq!(parse(&args(&["--packet-size=16"])).unwrap().packet_size, Some(16));
        assert_eq!(parse(&args(&["--packet-size", "1"])).unwrap().packet_size, Some(1));
        assert_eq!(parse(&args(&["--packet-size"])), Err(ArgError::MissingValue("--packet-size")));
        for bad in ["0", "-1", "four", ""] {
            assert_eq!(
                parse(&args(&["--packet-size", bad])),
                Err(ArgError::BadValue { flag: "--packet-size", value: bad.to_string() }),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn source_flag_forms() {
        assert_eq!(parse(&args(&[])).unwrap().source, SourceMode::SpNerf);
        assert_eq!(parse(&args(&["--source", "spnerf"])).unwrap().source, SourceMode::SpNerf);
        assert_eq!(parse(&args(&["--source", "baked"])).unwrap().source, SourceMode::Baked);
        assert_eq!(parse(&args(&["--source=baked"])).unwrap().source, SourceMode::Baked);
        assert_eq!(parse(&args(&["--source"])), Err(ArgError::MissingValue("--source")));
        for bad in ["bake", "deferred", "BAKED", ""] {
            assert_eq!(
                parse(&args(&["--source", bad])),
                Err(ArgError::BadValue { flag: "--source", value: bad.to_string() }),
                "`{bad}` must be rejected"
            );
        }
        assert_eq!(SourceMode::SpNerf.name(), "spnerf");
        assert_eq!(SourceMode::Baked.name(), "baked");
    }

    #[test]
    fn sparse_format_flag_forms() {
        assert_eq!(parse(&args(&[])).unwrap().sparse_format, FormatSelection::Auto);
        assert_eq!(
            parse(&args(&["--sparse-format", "auto"])).unwrap().sparse_format,
            FormatSelection::Auto
        );
        for kind in FormatKind::ALL {
            assert_eq!(
                parse(&args(&["--sparse-format", kind.name()])).unwrap().sparse_format,
                FormatSelection::Fixed(kind),
                "space form for {kind}"
            );
            let eq_form = format!("--sparse-format={}", kind.name());
            assert_eq!(
                parse(&args(&[&eq_form])).unwrap().sparse_format,
                FormatSelection::Fixed(kind),
                "= form for {kind}"
            );
        }
        assert_eq!(
            parse(&args(&["--sparse-format"])),
            Err(ArgError::MissingValue("--sparse-format"))
        );
        for bad in ["dense", "COO", "rank-select", ""] {
            assert_eq!(
                parse(&args(&["--sparse-format", bad])),
                Err(ArgError::BadValue { flag: "--sparse-format", value: bad.to_string() }),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn serve_flag_forms() {
        let none = parse(&args(&["--quick"])).unwrap();
        assert_eq!(none.serve_flag(), None);

        let all = parse(&args(&[
            "--seed",
            "7",
            "--duration-ticks=4000",
            "--cache-bytes",
            "1500000",
            "--replay",
            "trace.txt",
            "--zipf-s=1.1",
        ]))
        .unwrap();
        assert_eq!(all.seed, Some(7));
        assert_eq!(all.duration_ticks, Some(4000));
        assert_eq!(all.cache_bytes, Some(1_500_000));
        assert_eq!(all.replay.as_deref(), Some("trace.txt"));
        assert_eq!(all.zipf_s, Some(1.1));
        assert_eq!(all.serve_flag(), Some("--seed"), "first serve flag wins");

        // Both token forms agree, like every other flag on the surface.
        assert_eq!(parse(&args(&["--seed=9"])).unwrap().seed, Some(9));
        assert_eq!(parse(&args(&["--cache-bytes=0"])).unwrap().cache_bytes, Some(0));
        assert_eq!(parse(&args(&["--replay=a/b.txt"])).unwrap().replay.as_deref(), Some("a/b.txt"));
        assert_eq!(parse(&args(&["--zipf-s", "0"])).unwrap().zipf_s, Some(0.0));
        assert_eq!(
            parse(&args(&["--zipf-s", "0"])).unwrap().serve_flag(),
            Some("--zipf-s"),
            "a uniform exponent is still the serve surface"
        );
    }

    #[test]
    fn serve_flags_reject_missing_and_malformed_values() {
        for flag in ["--seed", "--duration-ticks", "--cache-bytes", "--replay", "--zipf-s"] {
            assert_eq!(
                parse(&args(&[flag])),
                Err(ArgError::MissingValue(flag)),
                "`{flag}` without a value must be rejected"
            );
        }
        assert_eq!(parse(&args(&["--replay="])), Err(ArgError::MissingValue("--replay")));
        for (flag, bad) in [
            ("--seed", "x"),
            ("--seed", "-1"),
            ("--duration-ticks", "0"),
            ("--duration-ticks", "soon"),
            ("--cache-bytes", "1MB"),
            ("--zipf-s", "-0.5"),
            ("--zipf-s", "inf"),
            ("--zipf-s", "NaN"),
        ] {
            assert_eq!(
                parse(&args(&[flag, bad])),
                Err(ArgError::BadValue { flag, value: bad.to_string() }),
                "`{flag} {bad}` must be rejected"
            );
        }
    }

    #[test]
    fn trajectory_flag_forms() {
        assert_eq!(parse(&args(&[])).unwrap().trajectory, None);
        for kind in TrajectoryKind::ALL {
            assert_eq!(
                parse(&args(&["--trajectory", kind.name()])).unwrap().trajectory,
                Some(kind),
                "space form for {}",
                kind.name()
            );
            let eq_form = format!("--trajectory={}", kind.name());
            assert_eq!(
                parse(&args(&[&eq_form])).unwrap().trajectory,
                Some(kind),
                "= form for {}",
                kind.name()
            );
        }
        assert_eq!(parse(&args(&["--trajectory"])), Err(ArgError::MissingValue("--trajectory")));
        for bad in ["spiral", "ORBIT", "orbit8", ""] {
            assert_eq!(
                parse(&args(&["--trajectory", bad])),
                Err(ArgError::BadValue { flag: "--trajectory", value: bad.to_string() }),
                "`{bad}` must be rejected"
            );
        }
        // Each kind names the matching deterministic camera path.
        for kind in TrajectoryKind::ALL {
            let spec = kind.spec(3, 8);
            assert_eq!(spec.cameras().len(), 3, "{} frame count", kind.name());
        }
    }

    #[test]
    fn reuse_mode_flag_forms() {
        assert_eq!(parse(&args(&[])).unwrap().reuse_mode, None);
        assert_eq!(
            parse(&args(&["--reuse-mode", "off"])).unwrap().reuse_mode,
            Some(ReuseMode::Off)
        );
        assert_eq!(
            parse(&args(&["--reuse-mode", "warp"])).unwrap().reuse_mode,
            Some(ReuseMode::warp())
        );
        assert_eq!(
            parse(&args(&["--reuse-mode=warp"])).unwrap().reuse_mode,
            Some(ReuseMode::warp())
        );
        assert_eq!(parse(&args(&["--reuse-mode"])), Err(ArgError::MissingValue("--reuse-mode")));
        for bad in ["on", "WARP", "warp:2", ""] {
            assert_eq!(
                parse(&args(&["--reuse-mode", bad])),
                Err(ArgError::BadValue { flag: "--reuse-mode", value: bad.to_string() }),
                "`{bad}` must be rejected"
            );
        }

        // The fence the non-temporal binaries use, mirroring `serve_flag`.
        assert_eq!(parse(&args(&["--quick"])).unwrap().temporal_flag(), None);
        assert_eq!(
            parse(&args(&["--trajectory", "dolly", "--reuse-mode", "warp"]))
                .unwrap()
                .temporal_flag(),
            Some("--trajectory"),
            "first temporal flag wins"
        );
        assert_eq!(
            parse(&args(&["--reuse-mode", "off"])).unwrap().temporal_flag(),
            Some("--reuse-mode"),
            "an explicit `off` is still the temporal surface"
        );
    }

    #[test]
    fn rejects_unknown_flags_and_positionals() {
        assert_eq!(parse(&args(&["--quik"])), Err(ArgError::UnknownFlag("--quik".to_string())));
        assert_eq!(
            parse(&args(&["lego"])),
            Err(ArgError::UnexpectedPositional("lego".to_string()))
        );
        assert_eq!(parse(&args(&["--threads"])), Err(ArgError::MissingValue("--threads")));
        assert_eq!(
            parse(&args(&["--threads", "many"])),
            Err(ArgError::BadValue { flag: "--threads", value: "many".to_string() })
        );
        assert_eq!(
            parse(&args(&["--threads=x"])),
            Err(ArgError::BadValue { flag: "--threads", value: "x".to_string() })
        );
    }

    #[test]
    fn threads_flag_forms_match_the_engine_parser() {
        // Both `--threads` surfaces must accept the same well-formed token
        // shapes and agree on the value, so the strict bins and the lenient
        // positional examples can never drift apart.
        for toks in [&["--threads", "4"][..], &["--threads=7"][..]] {
            let strict = parse(&args(toks)).expect("cli parser accepts").threads;
            let lenient = spnerf::render::engine::threads_from_args_or_env(&args(toks));
            assert_eq!(strict, lenient, "token forms {toks:?} must agree");
        }
    }

    #[test]
    fn errors_and_usage_render() {
        let u = usage("fig6_memory_psnr");
        assert!(u.contains("--quick") && u.contains("--threads") && u.contains(THREADS_ENV_VAR));
        assert!(u.contains("--corpus"));
        assert!(u.contains("--skip-mode") && u.contains("mip:N"));
        assert!(u.contains("--packet-size"));
        assert!(u.contains("--source") && u.contains("baked"));
        assert!(u.contains("--sparse-format") && u.contains("rank"));
        for serve in ["--seed", "--duration-ticks", "--cache-bytes", "--replay", "--zipf-s"] {
            assert!(u.contains(serve), "usage must document {serve}");
        }
        assert!(u.contains("--trajectory") && u.contains("dolly"));
        assert!(u.contains("--reuse-mode") && u.contains("warp"));
        assert!(ArgError::UnknownFlag("--x".into()).to_string().contains("--x"));
        assert!(ArgError::MissingValue("--threads").to_string().contains("--threads"));
    }
}
