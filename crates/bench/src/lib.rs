//! # spnerf-bench
//!
//! Shared harness code behind the figure/table regeneration binaries.
//! Each binary in `src/bin/` reproduces one table or figure of the paper
//! (see DESIGN.md §4 for the full index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_platforms` | Table I (platform specs) |
//! | `fig2_profiling` | Fig. 2(a) runtime split + Fig. 2(b) sparsity |
//! | `fig6_memory_psnr` | Fig. 6(a) memory reduction + Fig. 6(b) PSNR |
//! | `fig7_sweeps` | Fig. 7(a) PSNR vs subgrids + Fig. 7(b) vs table size |
//! | `fig8_speedup_energy` | Fig. 8(a) speedup + Fig. 8(b) energy efficiency |
//! | `fig9_area_power` | Fig. 9(a) area + Fig. 9(b) power breakdowns |
//! | `table2_comparison` | Table II (accelerator comparison) |
//!
//! Every binary shares the strict [`cli`] surface: `--quick` runs a
//! reduced-fidelity preset (small grids, small codebook, small renders)
//! that exercises the identical code path in seconds, `--threads N` (or the
//! `SPNERF_THREADS` environment variable; `0` = all cores) renders through
//! the tile-parallel engine — outputs are bitwise-identical at every thread
//! count — and anything else is rejected with usage text.
//!
//! Scene construction and rendering go through the `spnerf`
//! [`pipeline`](spnerf::pipeline) layer: a [`Fidelity`] preset maps onto a
//! [`PipelineBuilder`], and every PSNR/workload measurement is served by a
//! [`spnerf::RenderSession`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spnerf::accel::frame::FrameWorkload;
use spnerf::pipeline::{PipelineBuilder, RenderRequest, RenderSource, Scene};
use spnerf::render::camera::PinholeCamera;
use spnerf::render::renderer::{RenderConfig, RenderStats, SkipMode};
use spnerf::render::scene::{default_camera, SceneId};
use spnerf::voxel::sparse::FormatSelection;
use spnerf::voxel::vqrf::VqrfConfig;
use spnerf_testkit::corpus::{generate, Corpus, CorpusSpec};

pub mod cli;
pub mod snapshot;

pub use cli::SourceMode;
pub use spnerf::core::SpNerfConfig;

/// Deterministic MLP seed shared by every harness so all figures use the
/// same network.
pub const MLP_SEED: u64 = 42;

/// Fidelity preset for a harness run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fidelity {
    /// Grid side; `None` uses each scene's paper-scale side.
    pub grid_side: Option<u32>,
    /// Rendered image side (square).
    pub image: u32,
    /// Ray-march steps across the scene AABB.
    pub samples_per_ray: usize,
    /// VQRF codebook size.
    pub codebook: usize,
    /// k-means Lloyd iterations.
    pub kmeans_iters: usize,
    /// k-means training subsample.
    pub kmeans_subsample: usize,
    /// SpNeRF operating point (subgrids / table size).
    pub subgrid_count: usize,
    /// Hash-table entries per subgrid.
    pub table_size: usize,
    /// Render worker threads (`0` = all cores); forwarded to
    /// [`RenderConfig::parallelism`].
    pub threads: usize,
    /// Empty-space skipping policy; forwarded to
    /// [`RenderConfig::skip_mode`]. Images (and therefore every PSNR
    /// column) are bitwise-identical in every mode; marched-sample and
    /// cycle columns drop with skipping on.
    pub skip_mode: SkipMode,
    /// Rays marched in lockstep per packet; forwarded to
    /// [`RenderConfig::packet_size`]. Outputs are bitwise-identical at
    /// every packet size.
    pub packet_size: usize,
    /// Primary data path measurements flow from ([`SourceMode::SpNerf`] is
    /// the paper's pipeline; [`SourceMode::Baked`] swaps the primary
    /// stats/workload to the bake-and-defer render, whose MLP column is
    /// per-pixel).
    pub source: SourceMode,
    /// Sparse occupancy-index encoding; forwarded to
    /// [`PipelineBuilder::sparse_format`]. Images are bitwise-identical in
    /// every format; the metadata-traffic and resident-byte columns move.
    pub sparse_format: FormatSelection,
}

impl Fidelity {
    /// Paper-scale preset: scene-specific grids, 4096-entry codebook, the
    /// K = 64 / T = 32 k operating point.
    pub fn paper() -> Self {
        Self {
            grid_side: None,
            image: 64,
            samples_per_ray: 128,
            codebook: 4096,
            kmeans_iters: 3,
            kmeans_subsample: 8192,
            subgrid_count: 64,
            table_size: 32 * 1024,
            threads: 1,
            skip_mode: SkipMode::Off,
            packet_size: 1,
            source: SourceMode::SpNerf,
            sparse_format: FormatSelection::Auto,
        }
    }

    /// Reduced preset for smoke runs (`--quick`). Marching stays at 96
    /// samples per ray — coarser marching saturates opacity in so few
    /// samples that the deferred path's per-sample → per-pixel MLP-work
    /// collapse (the fig2-style headline) would be invisible at smoke
    /// fidelity.
    pub fn quick() -> Self {
        Self {
            grid_side: Some(48),
            image: 24,
            samples_per_ray: 96,
            codebook: 128,
            kmeans_iters: 2,
            kmeans_subsample: 2048,
            subgrid_count: 16,
            table_size: 4096,
            threads: 1,
            skip_mode: SkipMode::Off,
            packet_size: 1,
            source: SourceMode::SpNerf,
            sparse_format: FormatSelection::Auto,
        }
    }

    /// Chooses the preset from the process arguments through the strict
    /// shared parser ([`cli::parse_or_exit`]): `--quick` selects the reduced
    /// preset, `--threads N` (falling back to `SPNERF_THREADS`) sets the
    /// render worker count, and unknown arguments abort with usage text.
    ///
    /// For binaries that do not sweep scenes `--corpus` is meaningless, so
    /// this entry point rejects it (exit 2); scene-sweeping binaries parse
    /// the arguments themselves and pass [`cli::HarnessArgs::corpus`] to
    /// [`sweep_items`]. The serve-only flags (`--seed`, `--duration-ticks`,
    /// `--cache-bytes`, `--replay`, `--zipf-s`) are rejected the same way —
    /// they only mean something to `spnerf_serve`.
    pub fn from_args() -> Self {
        let args = cli::parse_or_exit();
        if args.corpus {
            eprintln!("--corpus: this binary does not sweep scenes (see fig2/fig6)");
            std::process::exit(2);
        }
        if let Some(flag) = args.serve_flag() {
            eprintln!("{flag}: this binary does not serve traffic (see spnerf_serve)");
            std::process::exit(2);
        }
        if let Some(flag) = args.temporal_flag() {
            eprintln!("{flag}: this binary does not render trajectories (see fig9_temporal)");
            std::process::exit(2);
        }
        Self::from_cli(&args)
    }

    /// Builds the preset a parsed argument set selects (the pure core of
    /// [`Fidelity::from_args`]).
    pub fn from_cli(args: &cli::HarnessArgs) -> Self {
        let mut fid = if args.quick { Self::quick() } else { Self::paper() };
        if let Some(threads) = args.threads {
            fid.threads = threads;
        }
        fid.skip_mode = args.skip_mode;
        if let Some(packet_size) = args.packet_size {
            fid.packet_size = packet_size;
        }
        fid.source = args.source;
        fid.sparse_format = args.sparse_format;
        fid
    }

    /// The VQRF build configuration of this preset.
    pub fn vqrf_config(&self) -> VqrfConfig {
        VqrfConfig {
            codebook_size: self.codebook,
            kmeans_iters: self.kmeans_iters,
            kmeans_subsample: self.kmeans_subsample,
            ..Default::default()
        }
    }

    /// The SpNeRF configuration of this preset.
    pub fn spnerf_config(&self) -> SpNerfConfig {
        SpNerfConfig {
            subgrid_count: self.subgrid_count,
            table_size: self.table_size,
            codebook_size: self.codebook,
        }
    }

    /// The render configuration of this preset.
    pub fn render_config(&self) -> RenderConfig {
        RenderConfig {
            samples_per_ray: self.samples_per_ray,
            parallelism: self.threads,
            skip_mode: self.skip_mode,
            packet_size: self.packet_size,
            ..Default::default()
        }
    }

    /// Grid side used for `scene` under this preset.
    pub fn side_for(&self, scene: SceneId) -> u32 {
        self.grid_side.unwrap_or(scene.spec().paper_grid_side)
    }

    /// The pipeline this preset configures for `scene` — the single place
    /// harness presets meet the `spnerf` front door.
    pub fn pipeline(&self, id: SceneId) -> PipelineBuilder {
        let mut b = PipelineBuilder::new(id)
            .vqrf_config(self.vqrf_config())
            .spnerf_config(self.spnerf_config())
            .mlp_seed(MLP_SEED)
            .render_config(self.render_config())
            .sparse_format(self.sparse_format);
        if let Some(side) = self.grid_side {
            b = b.grid_side(side);
        }
        b
    }
}

/// Builds the full artifact bundle (grid + VQRF + SpNeRF model + MLP) for a
/// scene through the pipeline front door.
///
/// # Panics
///
/// Panics if the build fails (cannot happen for the provided presets).
pub fn build_scene(id: SceneId, fid: &Fidelity) -> Scene {
    fid.pipeline(id).build().expect("preset configurations are valid")
}

/// One scene of a harness sweep: a Synthetic-NeRF dataset stand-in or a
/// testkit corpus archetype (`--corpus`).
#[derive(Debug, Clone, PartialEq)]
pub enum SweepItem {
    /// One of the eight dataset scenes.
    Dataset(SceneId),
    /// One procedural corpus archetype.
    Corpus(CorpusSpec),
}

impl SweepItem {
    /// The row label figure tables print.
    pub fn label(&self) -> String {
        match self {
            SweepItem::Dataset(id) => id.name().to_string(),
            SweepItem::Corpus(spec) => spec.archetype.name().to_string(),
        }
    }
}

/// Grid side corpus sweeps use when the preset has no explicit side (the
/// corpus has no per-scene paper side to fall back to).
pub const CORPUS_PAPER_SIDE: u32 = 64;

/// The scenes a sweep covers: the eight dataset scenes, or — with
/// `--corpus` — the five testkit archetypes at their designed occupancies.
pub fn sweep_items(fid: &Fidelity, corpus: bool) -> Vec<SweepItem> {
    if corpus {
        let side = fid.grid_side.unwrap_or(CORPUS_PAPER_SIDE);
        Corpus::with_side(side).map(SweepItem::Corpus).collect()
    } else {
        SceneId::all().into_iter().map(SweepItem::Dataset).collect()
    }
}

/// Builds one sweep item's artifact bundle at the preset's fidelity —
/// [`build_scene`] generalized over [`SweepItem`].
///
/// # Panics
///
/// Panics if the build fails (cannot happen for the provided presets).
pub fn build_sweep_scene(item: &SweepItem, fid: &Fidelity) -> Scene {
    match item {
        SweepItem::Dataset(id) => build_scene(*id, fid),
        SweepItem::Corpus(spec) => PipelineBuilder::from_grid(spec.label(), generate(spec))
            .vqrf_config(fid.vqrf_config())
            .spnerf_config(fid.spnerf_config())
            .mlp_seed(MLP_SEED)
            .render_config(fid.render_config())
            .sparse_format(fid.sparse_format)
            .build()
            .expect("corpus preset configurations are valid"),
    }
}

/// The default evaluation camera of a preset.
pub fn camera(fid: &Fidelity) -> PinholeCamera {
    default_camera(fid.image, fid.image, 1, 8)
}

/// Full quality/workload evaluation of one scene.
#[derive(Debug, Clone)]
pub struct SceneEval {
    /// Scene label (dataset name, or a corpus spec label).
    pub label: String,
    /// PSNR of the VQRF gold decode vs the dense ground truth.
    pub psnr_vqrf: f64,
    /// PSNR of SpNeRF with bitmap masking.
    pub psnr_masked: f64,
    /// PSNR of SpNeRF without bitmap masking (the ablation).
    pub psnr_unmasked: f64,
    /// PSNR of the bake-and-defer render vs ground truth; `None` unless the
    /// preset runs with [`SourceMode::Baked`].
    pub psnr_baked: Option<f64>,
    /// Render statistics of the primary pass (masked SpNeRF, or the baked
    /// render under [`SourceMode::Baked`]).
    pub stats: RenderStats,
    /// Frame workload of the primary pass extrapolated to the paper's
    /// 800×800 resolution.
    pub workload: FrameWorkload,
}

/// Renders ground truth, VQRF and both SpNeRF variants of a scene through
/// one cached [`spnerf::RenderSession`] — the ground-truth reference is
/// rendered once and reused across all three comparisons.
pub fn evaluate_scene(scene: &Scene, fid: &Fidelity) -> SceneEval {
    let session = scene.session();
    let cams = vec![camera(fid)];
    let eval = |source: RenderSource| {
        session
            .render(
                &RenderRequest::batch(source, cams.clone())
                    .with_reference(RenderSource::GroundTruth),
            )
            .expect("non-empty batch with a rendered reference")
    };
    let vq = eval(RenderSource::Vqrf);
    let masked = eval(RenderSource::spnerf_masked());
    let unmasked = eval(RenderSource::spnerf_unmasked());
    // Under `--source baked` the primary stats/workload columns come from
    // the bake-and-defer render instead of the masked decode — that is the
    // measurement whose MLP column collapses from samples to pixels.
    let (psnr_baked, stats, workload) = match fid.source {
        SourceMode::SpNerf => (None, masked.stats, masked.workload.at_paper_resolution()),
        SourceMode::Baked => {
            let baked = eval(RenderSource::Baked);
            (Some(baked.mean_psnr()), baked.stats, baked.workload.at_paper_resolution())
        }
    };
    SceneEval {
        label: scene.label().to_string(),
        psnr_vqrf: vq.mean_psnr(),
        psnr_masked: masked.mean_psnr(),
        psnr_unmasked: unmasked.mean_psnr(),
        psnr_baked,
        stats,
        workload,
    }
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Geometric-mean helper used by the summary rows.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_preset_pipeline_end_to_end() {
        let fid = Fidelity::quick();
        let scene = build_scene(SceneId::Mic, &fid);
        let eval = evaluate_scene(&scene, &fid);
        // Quality ordering: VQRF ≥ masked SpNeRF > unmasked SpNeRF.
        assert!(eval.psnr_masked > eval.psnr_unmasked, "masking must help");
        assert!(eval.psnr_vqrf >= eval.psnr_masked - 1.0);
        assert!(eval.workload.rays == 640_000);
    }

    #[test]
    fn stats_helpers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn threads_flow_into_render_config() {
        let mut fid = Fidelity::quick();
        assert_eq!(fid.render_config().parallelism, 1);
        fid.threads = 4;
        assert_eq!(fid.render_config().parallelism, 4);
    }

    #[test]
    fn cli_args_select_the_preset() {
        let quick = Fidelity::from_cli(&cli::HarnessArgs { quick: true, ..Default::default() });
        assert_eq!(quick, Fidelity::quick());
        let threaded =
            Fidelity::from_cli(&cli::HarnessArgs { threads: Some(3), ..Default::default() });
        assert_eq!(threaded.threads, 3);
        assert_eq!(threaded.codebook, Fidelity::paper().codebook);
        let skipping = Fidelity::from_cli(&cli::HarnessArgs {
            quick: true,
            skip_mode: SkipMode::mip(),
            ..Default::default()
        });
        assert_eq!(skipping.skip_mode, SkipMode::mip());
        assert_eq!(skipping.render_config().skip_mode, SkipMode::mip());
    }

    #[test]
    fn sweep_items_cover_scenes_or_archetypes() {
        let fid = Fidelity::quick();
        let scenes = sweep_items(&fid, false);
        assert_eq!(scenes.len(), 8);
        assert_eq!(scenes[0].label(), "chair");

        let corpus = sweep_items(&fid, true);
        assert_eq!(corpus.len(), 5);
        assert_eq!(corpus[0].label(), "dense-blob");
        match &corpus[0] {
            SweepItem::Corpus(spec) => assert_eq!(spec.side, 48, "quick preset side"),
            other => panic!("expected a corpus item, got {other:?}"),
        }
        // Paper preset (no explicit side) falls back to the corpus side.
        match &sweep_items(&Fidelity::paper(), true)[0] {
            SweepItem::Corpus(spec) => assert_eq!(spec.side, CORPUS_PAPER_SIDE),
            other => panic!("expected a corpus item, got {other:?}"),
        }
    }

    #[test]
    fn corpus_sweep_scene_builds_and_evaluates() {
        let fid = Fidelity::quick();
        let item = &sweep_items(&fid, true)[2]; // thin-shell
        let scene = build_sweep_scene(item, &fid);
        assert_eq!(
            scene.label(),
            match item {
                SweepItem::Corpus(spec) => spec.label(),
                SweepItem::Dataset(id) => id.name().to_string(),
            }
        );
        assert_eq!(scene.id(), None);
        let eval = evaluate_scene(&scene, &fid);
        assert!(eval.psnr_masked > eval.psnr_unmasked, "masking must help on corpus scenes too");
        assert_eq!(eval.workload.rays, 640_000);
    }

    #[test]
    fn baked_quick_corpus_collapses_mlp_work_on_dense_blob() {
        let fid = Fidelity { source: SourceMode::Baked, ..Fidelity::quick() };
        let item = &sweep_items(&fid, true)[0];
        assert_eq!(item.label(), "dense-blob");
        let scene = build_sweep_scene(item, &fid);
        let eval = evaluate_scene(&scene, &fid);
        assert!(eval.psnr_baked.is_some(), "baked mode must report its PSNR");
        assert!(eval.workload.is_deferred(), "baked mode must produce a deferred workload");
        let collapse = eval.workload.mlp_collapse();
        assert!(
            collapse >= 5.0,
            "dense-blob at quick fidelity must evaluate ≥5x fewer MLPs deferred, got {collapse:.2}x"
        );
        // The same scene under the default mode keeps the classical column.
        let classic = evaluate_scene(&scene, &Fidelity::quick());
        assert!(!classic.workload.is_deferred());
        assert!(classic.psnr_baked.is_none());
    }

    #[test]
    fn presets_differ() {
        let p = Fidelity::paper();
        let q = Fidelity::quick();
        assert!(p.codebook > q.codebook);
        assert_eq!(p.subgrid_count, 64);
        assert_eq!(p.table_size, 32 * 1024);
        assert_eq!(q.side_for(SceneId::Ship), 48);
        assert_eq!(p.side_for(SceneId::Ship), SceneId::Ship.spec().paper_grid_side);
    }

    #[test]
    fn preset_pipeline_carries_every_knob() {
        let fid = Fidelity::quick();
        let b = fid.pipeline(SceneId::Lego);
        assert_eq!(b.side(), 48);
        let scene = b.build().expect("quick preset builds");
        assert_eq!(scene.spnerf_config(), fid.spnerf_config());
        assert_eq!(scene.render_config(), fid.render_config());
        assert_eq!(scene.grid().dims(), spnerf::voxel::coord::GridDims::cube(48));
    }
}
