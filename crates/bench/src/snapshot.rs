//! Schema-versioned kernel benchmark snapshots — the `BENCH_*.json` perf
//! trajectory.
//!
//! The criterion shim prints timings but cannot export them, so the
//! `bench_snapshot` binary times the hot-path kernels itself (same
//! `Instant`-based calibration idea) and serializes a [`Snapshot`]: one
//! [`KernelResult`] per kernel variant plus a [`Fingerprint`] of the
//! configuration that produced it. One snapshot per PR is checked into the
//! repo root (`BENCH_pr6.json`, `BENCH_pr7.json`, …) so the performance
//! story is diffable; CI re-validates every file against
//! [`SCHEMA_VERSION`] on each push (see `docs/benchmarking.md`).
//!
//! Wall-clock numbers are environment-specific by nature — correctness is
//! never judged by them. The schema, the kernel inventory, and the
//! fingerprint are what CI enforces; the timings are a recorded trajectory,
//! not a gate.
//!
//! No serde exists in this workspace, so this module hand-rolls both the
//! JSON emitter ([`Snapshot::to_json`], stable key order) and the strict
//! recursive-descent parser ([`parse_json`]) behind
//! [`validate_snapshot_json`].

use std::hint::black_box;
use std::time::{Duration, Instant};

use spnerf::render::bake::bake;
use spnerf::render::composite::{accumulate_weighted_lanes, accumulate_weighted_scalar};
use spnerf::render::fp16::{f16_bits_to_f32, f32_to_f16_bits};
use spnerf::render::interp::{
    interpolate_cell_lanes, interpolate_cell_scalar, trilinear_cell, TrilinearCell,
};
use spnerf::render::lanes::LANE_WIDTH;
use spnerf::render::mlp::{
    DeferredMlp, Mlp, MlpF16, DEFERRED_INPUT_DIM, MLP_HIDDEN_DIM, MLP_INPUT_DIM, MLP_OUTPUT_DIM,
};
use spnerf::render::renderer::{RenderConfig, Shader};
use spnerf::render::scene::{build_grid, scene_aabb, SceneId};
use spnerf::render::temporal::{
    advance_frame, disocclusion_mask, warp_splat, ReuseMode, TrajectorySpec, WarpConfig,
};
use spnerf::render::vec3::Vec3;
use spnerf::voxel::baked::SPEC_DIM;
use spnerf::voxel::grid::DenseGrid;
use spnerf::voxel::FEATURE_DIM;

use crate::MLP_SEED;

/// Version of the `BENCH_*.json` schema this code emits and validates.
/// Bump it (and `docs/benchmarking.md`) when a field changes meaning; CI
/// fails on any checked-in snapshot whose version differs.
pub const SCHEMA_VERSION: u64 = 1;

/// File-name prefix snapshots are discovered by (`BENCH_<label>.json` in
/// the repo root).
pub const SNAPSHOT_PREFIX: &str = "BENCH_";

/// Kernel names every valid snapshot must report: both hot-path kernels in
/// scalar + lane form, the fp16 GEMV variant, and the fp16 conversions.
///
/// Snapshots may report *more* kernels than these — PR 7 added the
/// bake-and-defer rows ([`EXTRA_KERNELS`]) — but the required set is frozen
/// so every historical `BENCH_*.json` keeps validating.
pub const REQUIRED_KERNELS: [&str; 8] = [
    "trilinear.scalar",
    "trilinear.lanes",
    "mlp_gemv.scalar",
    "mlp_gemv.lanes",
    "mlp_gemv.fp16",
    "fp16.encode",
    "fp16.decode",
    "fp16.round_trip",
];

/// Kernel rows recorded since PR 7, on top of [`REQUIRED_KERNELS`]: the
/// bake pass (one color-MLP forward per occupied vertex), the deferred
/// per-pixel view MLP, the compositing accumulator in both forms, and —
/// since PR 10 — the temporal-reuse hot path (the forward-warp splat and
/// the disocclusion test, one op per pixel each).
pub const EXTRA_KERNELS: [&str; 6] = [
    "bake.pass",
    "deferred_mlp.pixel",
    "composite.scalar",
    "composite.lanes",
    "warp.splat",
    "disocclusion.test",
];

/// Timing of one kernel variant.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel identifier (see [`REQUIRED_KERNELS`]).
    pub name: String,
    /// Nanoseconds per elementary operation (one cell interpolation, one
    /// MLP forward, one f16 conversion).
    pub ns_per_op: f64,
    /// Elementary operations per second (`1e9 / ns_per_op`).
    pub ops_per_s: f64,
    /// Elementary operations per timed iteration.
    pub ops_per_iter: u64,
    /// Timed iterations executed.
    pub iters: u64,
}

/// The configuration that produced a snapshot — enough to tell two
/// snapshots apart without re-reading the code that made them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Whether the binary was built with the `simd` feature (which
    /// implementation the *dispatching* render path uses; the snapshot
    /// itself always measures every variant explicitly).
    pub simd_dispatch: bool,
    /// [`LANE_WIDTH`] of the lane kernels.
    pub lane_width: u64,
    /// Voxel feature channels blended per interpolation.
    pub feature_dim: u64,
    /// MLP layer widths input → hidden → hidden → output.
    pub mlp_dims: [u64; 4],
    /// Side of the dense grid the interpolation kernel reads.
    pub grid_side: u64,
    /// Whether the reduced `--quick` calibration was used.
    pub quick: bool,
}

/// One `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Schema version ([`SCHEMA_VERSION`] when emitted by this code).
    pub schema_version: u64,
    /// Snapshot label, by convention the PR that recorded it (`"pr6"`);
    /// the file name is `BENCH_<label>.json`.
    pub label: String,
    /// Configuration fingerprint.
    pub fingerprint: Fingerprint,
    /// Per-kernel timings.
    pub kernels: Vec<KernelResult>,
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Calibrated `Instant` timing of one kernel: runs `f` once to warm up and
/// estimate cost, scales the iteration count to roughly `target` total
/// time, then reports the mean.
fn time_kernel(
    name: &str,
    ops_per_iter: u64,
    target: Duration,
    mut f: impl FnMut(),
) -> KernelResult {
    let warm = Instant::now();
    f();
    let once = warm.elapsed().max(Duration::from_nanos(50));
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let ns_per_op = total.as_nanos() as f64 / (iters * ops_per_iter) as f64;
    KernelResult {
        name: name.to_string(),
        ns_per_op,
        ops_per_s: 1e9 / ns_per_op.max(f64::MIN_POSITIVE),
        ops_per_iter,
        iters,
    }
}

/// Deterministic probe positions covering the grid interior, pre-resolved
/// to interpolation cells so the timed region is the blend kernel alone.
fn probe_cells(grid: &DenseGrid, n: usize) -> Vec<TrilinearCell> {
    use spnerf::render::source::VoxelSource;
    let dims = VoxelSource::dims(grid);
    let side = dims.nx as usize;
    (0..n)
        .map(|i| {
            let p = Vec3::new(
                ((i * 7) % (side - 1)) as f32 + 0.35,
                ((i * 13) % (side - 1)) as f32 + 0.65,
                ((i * 29) % (side - 1)) as f32 + 0.15,
            );
            trilinear_cell(dims, p).expect("probe positions are inside the grid")
        })
        .collect()
}

/// Times every kernel variant and assembles the snapshot.
///
/// `quick` shrinks the per-kernel time budget (and the interpolation grid)
/// for CI smoke runs; the schema and kernel inventory are identical, only
/// the numbers get noisier.
pub fn measure(label: &str, quick: bool) -> Snapshot {
    let grid_side: u32 = if quick { 32 } else { 64 };
    let target = if quick { Duration::from_millis(20) } else { Duration::from_millis(200) };

    let grid = build_grid(SceneId::Lego, grid_side);
    let cells = probe_cells(&grid, 1024);
    let mlp = Mlp::random(MLP_SEED);
    let mlp_f16 = MlpF16::from_mlp(&mlp);
    let inputs: Vec<[f32; MLP_INPUT_DIM]> = (0..64)
        .map(|i| {
            let mut x = [0.0f32; MLP_INPUT_DIM];
            for (k, slot) in x.iter_mut().enumerate() {
                *slot = ((i * 31 + k * 7) as f32 * 0.013).sin();
            }
            x
        })
        .collect();
    let values: Vec<f32> = (0..4096).map(|i| i as f32 * 0.037 - 70.0).collect();
    let bits: Vec<u16> = values.iter().map(|v| f32_to_f16_bits(*v)).collect();

    // Bake-and-defer kernels (PR 7). The bake grid is kept small and fixed:
    // its op count is occupied *vertices* (one color-MLP forward each), not
    // grid cells, so it is resolved once up front.
    let bake_grid = build_grid(SceneId::Lego, 16);
    let bake_ops = bake(&bake_grid, &mlp).occupied_count() as u64;
    let deferred = DeferredMlp::random(MLP_SEED);
    let deferred_inputs: Vec<[f32; DEFERRED_INPUT_DIM]> = (0..64)
        .map(|i| {
            let mut x = [0.0f32; DEFERRED_INPUT_DIM];
            for (k, slot) in x.iter_mut().enumerate() {
                *slot = ((i * 17 + k * 11) as f32 * 0.019).cos();
            }
            x
        })
        .collect();
    let spec_weights: Vec<f32> = (0..512).map(|i| (i as f32 * 0.11).sin().abs()).collect();
    let spec_values: [f32; SPEC_DIM] = std::array::from_fn(|c| (c as f32 * 0.31).sin());

    // Temporal-reuse kernels (PR 10). Frame 0 of a 2-frame orbit renders
    // fully (warp mode with no state) to build a real buffered frame; the
    // timed region is then the forward-warp splat into frame 1's camera
    // and the disocclusion test over the warped buffers, one op per pixel.
    let warp_cfg = WarpConfig::default();
    let warp_side: u32 = 32;
    let warp_cams = TrajectorySpec::orbit(2, warp_side, warp_side).cameras();
    let warp_render = RenderConfig { samples_per_ray: 32, ..Default::default() };
    let mut warp_state = None;
    advance_frame(
        &&grid,
        Shader::PerSample(&mlp),
        &warp_cams[0],
        &scene_aabb(),
        &warp_render,
        ReuseMode::warp(),
        0,
        &mut warp_state,
    );
    let warp_prev = warp_state.expect("frame 0 records reuse state");
    let warp_pixels = warp_side as u64 * warp_side as u64;
    let (warped_colors, warped_depths) = warp_splat(&warp_prev, &warp_cams[1], &warp_cfg);

    let kernels = vec![
        time_kernel("trilinear.scalar", cells.len() as u64, target, || {
            let mut acc = 0.0f32;
            for cell in &cells {
                acc += interpolate_cell_scalar(&grid, black_box(cell)).density;
            }
            black_box(acc);
        }),
        time_kernel("trilinear.lanes", cells.len() as u64, target, || {
            let mut acc = 0.0f32;
            for cell in &cells {
                acc += interpolate_cell_lanes(&grid, black_box(cell)).density;
            }
            black_box(acc);
        }),
        time_kernel("mlp_gemv.scalar", inputs.len() as u64, target, || {
            let mut acc = 0.0f32;
            for input in &inputs {
                acc += mlp.forward_scalar(black_box(input))[0];
            }
            black_box(acc);
        }),
        time_kernel("mlp_gemv.lanes", inputs.len() as u64, target, || {
            let mut acc = 0.0f32;
            for input in &inputs {
                acc += mlp.forward_lanes(black_box(input))[0];
            }
            black_box(acc);
        }),
        time_kernel("mlp_gemv.fp16", inputs.len() as u64, target, || {
            let mut acc = 0.0f32;
            for input in &inputs {
                acc += mlp_f16.forward(black_box(input))[0];
            }
            black_box(acc);
        }),
        time_kernel("fp16.encode", values.len() as u64, target, || {
            let mut acc = 0u16;
            for v in &values {
                acc ^= f32_to_f16_bits(black_box(*v));
            }
            black_box(acc);
        }),
        time_kernel("fp16.decode", bits.len() as u64, target, || {
            let mut acc = 0.0f32;
            for b in &bits {
                acc += f16_bits_to_f32(black_box(*b));
            }
            black_box(acc);
        }),
        time_kernel("fp16.round_trip", values.len() as u64, target, || {
            let mut acc = 0.0f32;
            for v in &values {
                acc += f16_bits_to_f32(f32_to_f16_bits(black_box(*v)));
            }
            black_box(acc);
        }),
        time_kernel("bake.pass", bake_ops, target, || {
            black_box(bake(black_box(&bake_grid), &mlp));
        }),
        time_kernel("deferred_mlp.pixel", deferred_inputs.len() as u64, target, || {
            let mut acc = 0.0f32;
            for input in &deferred_inputs {
                acc += deferred.forward(black_box(input))[0];
            }
            black_box(acc);
        }),
        time_kernel("composite.scalar", spec_weights.len() as u64, target, || {
            let mut acc = [0.0f32; SPEC_DIM];
            for w in &spec_weights {
                accumulate_weighted_scalar(&mut acc, black_box(&spec_values), *w);
            }
            black_box(acc);
        }),
        time_kernel("composite.lanes", spec_weights.len() as u64, target, || {
            let mut acc = [0.0f32; SPEC_DIM];
            for w in &spec_weights {
                accumulate_weighted_lanes(&mut acc, black_box(&spec_values), *w);
            }
            black_box(acc);
        }),
        time_kernel("warp.splat", warp_pixels, target, || {
            black_box(warp_splat(black_box(&warp_prev), &warp_cams[1], &warp_cfg));
        }),
        time_kernel("disocclusion.test", warp_pixels, target, || {
            black_box(disocclusion_mask(
                black_box(&warped_colors),
                &warped_depths,
                warp_side as usize,
                warp_side as usize,
                &warp_cfg,
                1,
            ));
        }),
    ];

    Snapshot {
        schema_version: SCHEMA_VERSION,
        label: label.to_string(),
        fingerprint: Fingerprint {
            simd_dispatch: cfg!(feature = "simd"),
            lane_width: LANE_WIDTH as u64,
            feature_dim: FEATURE_DIM as u64,
            mlp_dims: [
                MLP_INPUT_DIM as u64,
                MLP_HIDDEN_DIM as u64,
                MLP_HIDDEN_DIM as u64,
                MLP_OUTPUT_DIM as u64,
            ],
            grid_side: grid_side as u64,
            quick,
        },
        kernels,
    }
}

// ---------------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    // JSON has no NaN/Infinity; a non-finite timing is a harness bug.
    assert!(x.is_finite(), "non-finite value cannot be serialized to JSON");
    let s = format!("{x}");
    // `1e9 / ns` can print integral (e.g. `250`); keep a decimal point so
    // the field reads as the float it is.
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

impl Snapshot {
    /// Serializes to the canonical `BENCH_*.json` document (stable key
    /// order, two-space indent, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!("  \"label\": \"{}\",\n", json_escape(&self.label)));
        let f = &self.fingerprint;
        out.push_str("  \"fingerprint\": {\n");
        out.push_str(&format!("    \"simd_dispatch\": {},\n", f.simd_dispatch));
        out.push_str(&format!("    \"lane_width\": {},\n", f.lane_width));
        out.push_str(&format!("    \"feature_dim\": {},\n", f.feature_dim));
        out.push_str(&format!(
            "    \"mlp_dims\": [{}, {}, {}, {}],\n",
            f.mlp_dims[0], f.mlp_dims[1], f.mlp_dims[2], f.mlp_dims[3]
        ));
        out.push_str(&format!("    \"grid_side\": {},\n", f.grid_side));
        out.push_str(&format!("    \"quick\": {}\n", f.quick));
        out.push_str("  },\n");
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let comma = if i + 1 < self.kernels.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_op\": {}, \"ops_per_s\": {}, \
                 \"ops_per_iter\": {}, \"iters\": {}}}{comma}\n",
                json_escape(&k.name),
                json_f64(k.ns_per_op),
                json_f64(k.ops_per_s),
                k.ops_per_iter,
                k.iters,
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// JSON parsing + validation
// ---------------------------------------------------------------------------

/// A parsed JSON value — the minimal tree the validator walks. Object keys
/// keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else { return Err(self.err("unterminated string")) };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else { return Err(self.err("bad escape")) };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep UTF-8 intact.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("malformed number"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    members.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a byte-positioned message on any syntax error.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Validates one `BENCH_*.json` document against the snapshot schema:
/// version match, fingerprint shape, the full [`REQUIRED_KERNELS`]
/// inventory, and finite positive timings.
///
/// # Errors
///
/// Returns every violation found (CI prints them all), or the parse error.
pub fn validate_snapshot_json(text: &str) -> Result<(), Vec<String>> {
    let doc = parse_json(text).map_err(|e| vec![e])?;
    let mut errors = Vec::new();

    match doc.get("schema_version").and_then(Json::as_f64) {
        Some(v) if v == SCHEMA_VERSION as f64 => {}
        Some(v) => errors.push(format!("schema_version is {v}, expected {SCHEMA_VERSION}")),
        None => errors.push("missing numeric `schema_version`".to_string()),
    }
    match doc.get("label").and_then(Json::as_str) {
        Some(l) if !l.is_empty() => {}
        _ => errors.push("missing non-empty string `label`".to_string()),
    }

    match doc.get("fingerprint") {
        Some(fp) => {
            for key in ["simd_dispatch", "quick"] {
                if fp.get(key).and_then(Json::as_bool).is_none() {
                    errors.push(format!("fingerprint.{key} must be a boolean"));
                }
            }
            for key in ["lane_width", "feature_dim", "grid_side"] {
                if fp.get(key).and_then(Json::as_f64).is_none() {
                    errors.push(format!("fingerprint.{key} must be a number"));
                }
            }
            match fp.get("mlp_dims").and_then(Json::as_array) {
                Some(dims) if dims.len() == 4 && dims.iter().all(|d| d.as_f64().is_some()) => {}
                _ => errors.push("fingerprint.mlp_dims must be a 4-number array".to_string()),
            }
        }
        None => errors.push("missing `fingerprint` object".to_string()),
    }

    let mut seen: Vec<&str> = Vec::new();
    match doc.get("kernels").and_then(Json::as_array) {
        Some(kernels) => {
            for (i, k) in kernels.iter().enumerate() {
                match k.get("name").and_then(Json::as_str) {
                    Some(name) => {
                        if seen.contains(&name) {
                            errors.push(format!("kernel `{name}` reported twice"));
                        }
                        seen.push(name);
                    }
                    None => errors.push(format!("kernels[{i}] is missing string `name`")),
                }
                for field in ["ns_per_op", "ops_per_s", "ops_per_iter", "iters"] {
                    match k.get(field).and_then(Json::as_f64) {
                        Some(v) if v.is_finite() && v > 0.0 => {}
                        _ => errors
                            .push(format!("kernels[{i}].{field} must be a finite positive number")),
                    }
                }
            }
            for required in REQUIRED_KERNELS {
                if !seen.contains(&required) {
                    errors.push(format!("required kernel `{required}` is missing"));
                }
            }
        }
        None => errors.push("missing `kernels` array".to_string()),
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_snapshot_round_trips_and_validates() {
        let snap = measure("test", true);
        assert_eq!(snap.schema_version, SCHEMA_VERSION);
        assert_eq!(snap.kernels.len(), REQUIRED_KERNELS.len() + EXTRA_KERNELS.len());
        let json = snap.to_json();
        validate_snapshot_json(&json).expect("self-emitted snapshot validates");
        // Structural round-trip: every field survives the parser.
        let doc = parse_json(&json).unwrap();
        assert_eq!(doc.get("label").and_then(Json::as_str), Some("test"));
        assert_eq!(
            doc.get("fingerprint").and_then(|f| f.get("lane_width")).and_then(Json::as_f64),
            Some(LANE_WIDTH as f64)
        );
        let kernels = doc.get("kernels").and_then(Json::as_array).unwrap();
        let expected = REQUIRED_KERNELS.iter().chain(EXTRA_KERNELS.iter());
        for (k, name) in kernels.iter().zip(expected) {
            assert_eq!(k.get("name").and_then(Json::as_str), Some(*name));
            assert!(k.get("ns_per_op").and_then(Json::as_f64).unwrap() > 0.0);
        }
    }

    #[test]
    fn parser_handles_the_grammar() {
        assert_eq!(parse_json("null"), Ok(Json::Null));
        assert_eq!(parse_json(" true "), Ok(Json::Bool(true)));
        assert_eq!(parse_json("-2.5e3"), Ok(Json::Num(-2500.0)));
        assert_eq!(parse_json("\"a\\n\\\"b\\u0041\""), Ok(Json::Str("a\n\"bA".to_string())));
        assert_eq!(
            parse_json("[1, [2], {}]"),
            Ok(Json::Arr(vec![Json::Num(1.0), Json::Arr(vec![Json::Num(2.0)]), Json::Obj(vec![])]))
        );
        let obj = parse_json("{\"a\": 1, \"b\": [true, null]}").unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(obj.get("b").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{1: 2}"] {
            assert!(parse_json(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn validator_rejects_schema_drift() {
        let good = measure("test", true).to_json();
        // Wrong version.
        let wrong = good
            .replace(&format!("\"schema_version\": {SCHEMA_VERSION}"), "\"schema_version\": 999");
        let errs = validate_snapshot_json(&wrong).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("schema_version")), "{errs:?}");
        // Missing kernel.
        let gutted = good.replace("trilinear.lanes", "trilinear.renamed");
        let errs = validate_snapshot_json(&gutted).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("trilinear.lanes")), "{errs:?}");
        // Not JSON at all.
        assert!(validate_snapshot_json("not json").is_err());
        // Structurally valid JSON, wrong shape.
        let errs = validate_snapshot_json("{}").unwrap_err();
        assert!(errs.len() >= 4, "every missing section is reported: {errs:?}");
    }

    #[test]
    fn emitted_floats_are_json_safe() {
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert!(json_f64(1e9).contains(['e', '.']));
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
