//! Byte-exact packed encoding of hash tables — the off-chip format.
//!
//! [`HashTable::storage_bytes`] claims each slot costs exactly
//! [`ENTRY_BITS`] = 26 bits (18-bit index + 8-bit density). This module
//! makes that claim executable: it packs a table into that many bits and
//! decodes it back, bit-for-bit. The accelerator streams exactly these bytes
//! from DRAM into the Index and Density Buffer.
//!
//! Packing layout: slots in order, each contributing 26 bits little-endian
//! (bits 0–17 = index, bits 18–25 = density as `u8`), padded with zero
//! bits to a whole byte at the very end. An all-zero word means *empty*: an
//! occupied entry with index 0 **and** density 0 carries no radiance (the
//! decoder drops densities ≤ 0), so the codec canonicalizes such dead
//! entries to empty — exactly what the hardware's zero-initialized buffer
//! does.

use crate::config::ENTRY_BITS;
use crate::table::HashTable;

/// Packs a table into its off-chip byte representation.
///
/// The output length always equals [`HashTable::storage_bytes`].
pub fn pack_table(table: &HashTable) -> Vec<u8> {
    let mut out = vec![0u8; table.storage_bytes()];
    let mut bitpos = 0usize;
    for slot in 0..table.size() {
        let (index, density) = match table.entry_at(slot) {
            Some(e) => (e.index, e.density_q as u8),
            None => (0u32, 0u8),
        };
        let word = (index as u64) | ((density as u64) << 18);
        write_bits(&mut out, bitpos, word, ENTRY_BITS as usize);
        bitpos += ENTRY_BITS as usize;
    }
    out
}

/// Decodes a packed table of `size` slots.
///
/// # Panics
///
/// Panics if `bytes` is shorter than the packed size requires.
pub fn unpack_table(bytes: &[u8], size: usize) -> HashTable {
    let need = (size * ENTRY_BITS as usize).div_ceil(8);
    assert!(bytes.len() >= need, "packed table truncated: {} < {need}", bytes.len());
    let mut table = HashTable::new(size);
    let mut bitpos = 0usize;
    for slot in 0..size {
        let word = read_bits(bytes, bitpos, ENTRY_BITS as usize);
        bitpos += ENTRY_BITS as usize;
        if word != 0 {
            let index = (word & 0x3ffff) as u32;
            let density = ((word >> 18) & 0xff) as u8 as i8;
            table.force_slot(slot, index, density);
        }
    }
    table
}

fn write_bits(buf: &mut [u8], bitpos: usize, value: u64, nbits: usize) {
    for i in 0..nbits {
        if (value >> i) & 1 == 1 {
            let p = bitpos + i;
            buf[p / 8] |= 1 << (p % 8);
        }
    }
}

fn read_bits(buf: &[u8], bitpos: usize, nbits: usize) -> u64 {
    let mut out = 0u64;
    for i in 0..nbits {
        let p = bitpos + i;
        if (buf[p / 8] >> (p % 8)) & 1 == 1 {
            out |= 1 << i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnerf_voxel::coord::GridCoord;

    fn sample_table(size: usize, n: u32) -> HashTable {
        let mut t = HashTable::new(size);
        for i in 0..n {
            t.insert(
                GridCoord::new(i * 3 + 1, i * 7 + 2, i * 11 + 5),
                i % (1 << 18),
                (i % 199 + 1) as i8, // live densities: dead entries canonicalize
            );
        }
        t
    }

    #[test]
    fn pack_unpack_round_trip() {
        let t = sample_table(1024, 300);
        let bytes = pack_table(&t);
        assert_eq!(bytes.len(), t.storage_bytes());
        let back = unpack_table(&bytes, 1024);
        assert_eq!(back, t);
    }

    #[test]
    fn empty_table_packs_to_zeros() {
        let t = HashTable::new(64);
        let bytes = pack_table(&t);
        assert!(bytes.iter().all(|b| *b == 0));
        assert_eq!(unpack_table(&bytes, 64), t);
    }

    #[test]
    fn packed_size_is_26_bits_per_slot() {
        for size in [1usize, 7, 64, 1000, 32768] {
            let t = HashTable::new(size);
            assert_eq!(pack_table(&t).len(), (size * 26).div_ceil(8));
        }
    }

    #[test]
    fn extreme_values_survive() {
        let mut t = HashTable::new(16);
        let a = GridCoord::new(0, 0, 0);
        let b = GridCoord::new(1, 1, 1);
        t.insert(a, (1 << 18) - 1, i8::MIN);
        t.insert(b, 0, i8::MAX);
        let back = unpack_table(&pack_table(&t), 16);
        assert_eq!(back.lookup(a), t.lookup(a));
        assert_eq!(back.lookup(b), t.lookup(b));
    }

    #[test]
    fn dead_entry_canonicalizes_to_empty() {
        // index 0 + density 0 carries no radiance; the codec erases it.
        let mut t = HashTable::new(8);
        let c = GridCoord::new(2, 3, 4);
        t.insert(c, 0, 0);
        let back = unpack_table(&pack_table(&t), 8);
        assert_eq!(back.lookup(c), None);
        assert_eq!(back.occupied(), 0);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_input_panics() {
        let t = sample_table(64, 10);
        let bytes = pack_table(&t);
        let _ = unpack_table(&bytes[..bytes.len() - 1], 64);
    }
}
