//! SpNeRF configuration: subgrid count, hash-table size, and the unified
//! 18-bit address space.

use std::error::Error;
use std::fmt;

/// Width of the unified lookup index stored in each hash-table entry
/// (Section III-B: "the retrieved 18-bit index").
pub const INDEX_BITS: u32 = 18;

/// Bits per packed hash-table entry: 18-bit index + 8-bit INT8 density
/// (the HMU's "Index and Density Buffer" holds both).
pub const ENTRY_BITS: u32 = INDEX_BITS + 8;

/// Configuration of the SpNeRF preprocessing and online decoding.
///
/// # Examples
///
/// ```
/// use spnerf_core::config::SpNerfConfig;
///
/// let cfg = SpNerfConfig::default(); // the paper's operating point
/// assert_eq!(cfg.subgrid_count, 64);
/// assert_eq!(cfg.table_size, 32 * 1024);
/// assert_eq!(cfg.codebook_size, 4096);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpNerfConfig {
    /// Number of subgrids `K` the non-zero points are partitioned into along
    /// x (paper: 64).
    pub subgrid_count: usize,
    /// Entries `T` per subgrid hash table (paper: 32 k).
    pub table_size: usize,
    /// Codebook entries; lookup indices below this value address the color
    /// codebook, all others the true voxel grid (paper: 4096).
    pub codebook_size: usize,
}

impl Default for SpNerfConfig {
    fn default() -> Self {
        Self { subgrid_count: 64, table_size: 32 * 1024, codebook_size: 4096 }
    }
}

impl SpNerfConfig {
    /// Total addressable values under the 18-bit scheme.
    pub const fn address_space(&self) -> usize {
        1 << INDEX_BITS
    }

    /// Maximum rows the true voxel grid can hold: addresses
    /// `codebook_size ..= 2^18 − 1`.
    pub const fn true_grid_capacity(&self) -> usize {
        self.address_space() - self.codebook_size
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a field is zero or the codebook exceeds
    /// the 18-bit address space.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.subgrid_count == 0 {
            return Err(ConfigError::ZeroSubgrids);
        }
        if self.table_size == 0 {
            return Err(ConfigError::ZeroTableSize);
        }
        if self.codebook_size == 0 {
            return Err(ConfigError::ZeroCodebook);
        }
        if self.codebook_size >= self.address_space() {
            return Err(ConfigError::CodebookTooLarge {
                codebook: self.codebook_size,
                space: self.address_space(),
            });
        }
        Ok(())
    }
}

/// Invalid [`SpNerfConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `subgrid_count` was zero.
    ZeroSubgrids,
    /// `table_size` was zero.
    ZeroTableSize,
    /// `codebook_size` was zero.
    ZeroCodebook,
    /// The codebook does not fit the 18-bit address space.
    CodebookTooLarge {
        /// Configured codebook size.
        codebook: usize,
        /// Total 18-bit address space.
        space: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroSubgrids => write!(f, "subgrid count must be non-zero"),
            ConfigError::ZeroTableSize => write!(f, "hash table size must be non-zero"),
            ConfigError::ZeroCodebook => write!(f, "codebook size must be non-zero"),
            ConfigError::CodebookTooLarge { codebook, space } => {
                write!(f, "codebook size {codebook} exceeds the {space}-entry 18-bit address space")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_operating_point() {
        let cfg = SpNerfConfig::default();
        assert_eq!(cfg.subgrid_count, 64);
        assert_eq!(cfg.table_size, 32768);
        assert_eq!(cfg.codebook_size, 4096);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn address_space_is_18_bits() {
        let cfg = SpNerfConfig::default();
        assert_eq!(cfg.address_space(), 262_144);
        assert_eq!(cfg.true_grid_capacity(), 262_144 - 4096);
    }

    #[test]
    fn rejects_zero_fields() {
        assert_eq!(
            SpNerfConfig { subgrid_count: 0, ..Default::default() }.validate(),
            Err(ConfigError::ZeroSubgrids)
        );
        assert_eq!(
            SpNerfConfig { table_size: 0, ..Default::default() }.validate(),
            Err(ConfigError::ZeroTableSize)
        );
        assert_eq!(
            SpNerfConfig { codebook_size: 0, ..Default::default() }.validate(),
            Err(ConfigError::ZeroCodebook)
        );
    }

    #[test]
    fn rejects_oversized_codebook() {
        let cfg = SpNerfConfig { codebook_size: 1 << 18, ..Default::default() };
        assert!(matches!(cfg.validate(), Err(ConfigError::CodebookTooLarge { .. })));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = ConfigError::CodebookTooLarge { codebook: 300_000, space: 262_144 };
        let msg = e.to_string();
        assert!(msg.contains("300000"));
        assert!(msg.starts_with(char::is_lowercase));
    }
}
