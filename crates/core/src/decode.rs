//! Online sparse voxel-grid decoding (Section III-B, the blue path in
//! Fig. 3).
//!
//! For every vertex touched by trilinear interpolation the decoder performs:
//!
//! 1. **hash lookup** — Eq. (1) into the vertex's subgrid table,
//! 2. **value fetch** — the 18-bit index selects the codebook or the true
//!    voxel grid; the density comes from the same entry,
//! 3. **bitmap masking** — the occupancy bit zeroes out values produced by
//!    hash collisions at empty locations ("hash collisions are the dominant
//!    source of errors").
//!
//! [`MaskMode::Unmasked`] disables step 3, reproducing the paper's
//! "SpNeRF before bitmap masking" ablation of Fig. 6(b).

use spnerf_render::source::{VoxelData, VoxelSource};
use spnerf_voxel::coord::{GridCoord, GridDims};

use crate::model::SpNerfModel;

/// Whether online decoding applies bitmap masking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaskMode {
    /// Full SpNeRF: collisions at empty voxels are masked to zero.
    Masked,
    /// Ablation: raw hash-table reads, collisions included.
    Unmasked,
}

/// Fine-grained outcome of decoding one vertex (useful for analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodeOutcome {
    /// Vertex outside the grid.
    OutOfBounds,
    /// Bitmap says empty → masked to zero (only in [`MaskMode::Masked`]).
    MaskedEmpty,
    /// Hash slot empty → zero.
    EmptySlot,
    /// A value was produced.
    Value(VoxelData),
}

/// A renderable view of an [`SpNerfModel`] under a chosen [`MaskMode`].
///
/// Implements [`VoxelSource`], so the reference renderer consumes it exactly
/// like the dense ground truth or the VQRF gold model.
#[derive(Debug, Clone, Copy)]
pub struct SpNerfView<'a> {
    model: &'a SpNerfModel,
    mode: MaskMode,
}

impl<'a> SpNerfView<'a> {
    /// Creates a view over `model`.
    pub fn new(model: &'a SpNerfModel, mode: MaskMode) -> Self {
        Self { model, mode }
    }

    /// The exact decode support of this view: one bit per vertex where
    /// [`SpNerfView::decode`] produces a value.
    ///
    /// Under [`MaskMode::Masked`] this is a *subset* of the model's pruned
    /// bitmap (quantized-to-zero densities and empty slots drop out); under
    /// [`MaskMode::Unmasked`] it is a *superset* (hash collisions at empty
    /// voxels decode to their winner's data). This is the bitmap the
    /// renderer's empty-space-skipping pyramid
    /// ([`spnerf_voxel::mip::OccupancyMip`]) must be built from — using the
    /// pruned bitmap for the unmasked ablation would skip over collision
    /// artifacts and change pixels.
    pub fn support_bitmap(&self) -> spnerf_voxel::bitmap::Bitmap {
        spnerf_render::source::support_bitmap(self)
    }

    /// The masking mode of this view.
    pub fn mode(&self) -> MaskMode {
        self.mode
    }

    /// The underlying model.
    pub fn model(&self) -> &'a SpNerfModel {
        self.model
    }

    /// Decodes one vertex with full outcome information.
    pub fn decode(&self, c: GridCoord) -> DecodeOutcome {
        let model = self.model;
        if !model.dims().contains(c) {
            return DecodeOutcome::OutOfBounds;
        }
        if self.mode == MaskMode::Masked && !model.bitmap().get(c) {
            return DecodeOutcome::MaskedEmpty;
        }
        let Some(entry) = model.raw_lookup(c) else {
            return DecodeOutcome::EmptySlot;
        };
        let Some(features) = model.resolve_features(entry.index) else {
            // Corrupted address: treat as empty (hardware would read junk).
            return DecodeOutcome::EmptySlot;
        };
        let density = entry.density_q as f32 * model.density_scale();
        if density <= 0.0 {
            // Quantized-to-zero density carries no radiance.
            return DecodeOutcome::EmptySlot;
        }
        DecodeOutcome::Value(VoxelData { density, features })
    }
}

impl VoxelSource for SpNerfView<'_> {
    fn dims(&self) -> GridDims {
        self.model.dims()
    }

    fn fetch(&self, c: GridCoord) -> Option<VoxelData> {
        match self.decode(c) {
            DecodeOutcome::Value(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpNerfConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spnerf_voxel::grid::{DenseGrid, FEATURE_DIM};
    use spnerf_voxel::vqrf::{VqrfConfig, VqrfModel};

    fn fixture(side: u32, occ: f64, seed: u64, k: usize, t: usize) -> (VqrfModel, SpNerfModel) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = spnerf_voxel::coord::GridDims::cube(side);
        let mut g = DenseGrid::zeros(dims);
        for c in dims.iter() {
            if rng.gen::<f64>() < occ {
                g.set_density(c, 0.2 + rng.gen::<f32>());
                let f: Vec<f32> = (0..FEATURE_DIM).map(|_| rng.gen::<f32>()).collect();
                g.set_features(c, &f);
            }
        }
        let vqrf = VqrfModel::build(
            &g,
            &VqrfConfig { codebook_size: 16, kmeans_iters: 2, ..Default::default() },
        );
        let cfg = SpNerfConfig { subgrid_count: k, table_size: t, codebook_size: 16 };
        let model = SpNerfModel::build(&vqrf, &cfg).unwrap();
        (vqrf, model)
    }

    #[test]
    fn masked_decode_matches_vqrf_when_collision_free() {
        let (vqrf, model) = fixture(16, 0.03, 1, 4, 16_384);
        assert_eq!(model.report().collisions, 0);
        let view = model.view(MaskMode::Masked);
        for (i, p) in vqrf.points().iter().enumerate() {
            let got = view.fetch(p.coord).expect("stored point decodes");
            let (d, f) = vqrf.decode_point(i);
            // Density round-trips through the same INT8 quantizer.
            assert!((got.density - d).abs() < 1e-6, "density mismatch at {}", p.coord);
            assert_eq!(got.features, f, "features mismatch at {}", p.coord);
        }
    }

    #[test]
    fn masked_decode_support_is_exact() {
        // With masking, decode support == stored non-zero set: no false
        // positives anywhere.
        let (vqrf, model) = fixture(14, 0.05, 2, 4, 8192);
        let view = model.view(MaskMode::Masked);
        let mut decoded = 0;
        for c in model.dims().iter() {
            let got = view.fetch(c);
            if vqrf.lookup(c).is_some() {
                assert!(got.is_some(), "stored point missing at {c}");
                decoded += 1;
            } else {
                assert!(got.is_none(), "false positive at empty voxel {c}");
            }
        }
        assert_eq!(decoded, vqrf.nnz());
    }

    #[test]
    fn unmasked_decode_has_false_positives() {
        // Small tables → empty voxels alias stored entries. This is the
        // error source that bitmap masking eliminates (Fig. 6(b)).
        let (vqrf, model) = fixture(14, 0.05, 3, 2, 256);
        let view = model.view(MaskMode::Unmasked);
        let mut false_pos = 0;
        for c in model.dims().iter() {
            if vqrf.lookup(c).is_none() && view.fetch(c).is_some() {
                false_pos += 1;
            }
        }
        assert!(false_pos > 0, "expected unmasked false positives");
        // And masking removes all of them.
        let masked = model.view(MaskMode::Masked);
        for c in model.dims().iter() {
            if vqrf.lookup(c).is_none() {
                assert!(masked.fetch(c).is_none());
            }
        }
    }

    #[test]
    fn decode_outcomes_classify() {
        let (_, model) = fixture(14, 0.05, 4, 2, 256);
        let view = model.view(MaskMode::Masked);
        assert_eq!(view.decode(GridCoord::new(100, 0, 0)), DecodeOutcome::OutOfBounds);
        let empty =
            model.dims().iter().find(|c| !model.bitmap().get(*c)).expect("an empty voxel exists");
        assert_eq!(view.decode(empty), DecodeOutcome::MaskedEmpty);
    }

    #[test]
    fn collision_losers_alias_winners_even_masked() {
        // Force collisions with a tiny table; lost points decode to the
        // winner's data — the residual error masking cannot fix.
        let (vqrf, model) = fixture(16, 0.08, 5, 1, 64);
        assert!(model.report().collisions > 0);
        let view = model.view(MaskMode::Masked);
        let mut mismatches = 0;
        for (i, p) in vqrf.points().iter().enumerate() {
            let got = view.fetch(p.coord).expect("occupied voxel decodes");
            let (_, f) = vqrf.decode_point(i);
            if got.features != f {
                mismatches += 1;
            }
        }
        assert!(mismatches > 0, "collision losers must alias");
        assert!(mismatches <= model.report().collisions * 2);
    }

    #[test]
    fn support_bitmap_brackets_the_pruned_bitmap() {
        // Small tables force collisions, so the three supports separate:
        // masked ⊆ bitmap ⊆ unmasked (strictly, at this configuration).
        let (_, model) = fixture(14, 0.05, 7, 2, 256);
        let masked = model.view(MaskMode::Masked).support_bitmap();
        let unmasked = model.view(MaskMode::Unmasked).support_bitmap();
        for c in model.dims().iter() {
            if masked.get(c) {
                assert!(model.bitmap().get(c), "masked support must be within the bitmap");
            }
            if model.bitmap().get(c) && model.view(MaskMode::Unmasked).fetch(c).is_some() {
                assert!(unmasked.get(c));
            }
        }
        assert!(
            unmasked.count_ones() > model.bitmap().count_ones(),
            "collisions must inflate the unmasked support here"
        );
    }

    #[test]
    fn decoder_views_are_thread_shareable() {
        // Compile-time audit: the online decoder must stay `Sync` (no
        // interior mutability) so the tile-parallel engine can share it
        // across worker threads.
        fn assert_sync<T: VoxelSource + Sync>() {}
        assert_sync::<SpNerfView<'static>>();
        fn assert_model_sync<T: Sync>() {}
        assert_model_sync::<SpNerfModel>();
    }

    #[test]
    fn view_is_usable_by_renderer_abstractions() {
        let (_, model) = fixture(12, 0.05, 6, 2, 4096);
        let view = model.view(MaskMode::Masked);
        // Generic consumption through the trait object path.
        fn count_occupied(src: &dyn VoxelSource) -> usize {
            let dims = src.dims();
            dims.iter().filter(|c| src.fetch(*c).is_some()).count()
        }
        assert!(count_occupied(&view) > 0);
    }
}
