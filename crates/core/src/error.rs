//! Errors produced when building an SpNeRF model.

use std::error::Error;
use std::fmt;

use crate::config::ConfigError;

/// Failure to build an [`crate::model::SpNerfModel`] from a VQRF model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// The configuration itself is invalid.
    Config(ConfigError),
    /// The VQRF model's codebook size differs from the configured one, so
    /// the unified 18-bit address split would be wrong.
    CodebookMismatch {
        /// Codebook size recorded in the VQRF model.
        model: usize,
        /// Codebook size in the SpNeRF configuration.
        config: usize,
    },
    /// More voxels are kept verbatim than the true-voxel-grid half of the
    /// 18-bit address space can address.
    TrueGridOverflow {
        /// Rows required by the VQRF keep set.
        kept: usize,
        /// Addressable rows (`2^18 − codebook_size`).
        capacity: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Config(e) => write!(f, "invalid configuration: {e}"),
            BuildError::CodebookMismatch { model, config } => write!(
                f,
                "codebook size mismatch: VQRF model has {model}, configuration expects {config}"
            ),
            BuildError::TrueGridOverflow { kept, capacity } => write!(
                f,
                "true voxel grid overflow: {kept} kept voxels exceed the {capacity}-row 18-bit capacity"
            ),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_numbers() {
        let e = BuildError::TrueGridOverflow { kept: 300_000, capacity: 258_048 };
        let s = e.to_string();
        assert!(s.contains("300000") && s.contains("258048"));
    }

    #[test]
    fn config_error_wraps_with_source() {
        let e = BuildError::from(ConfigError::ZeroSubgrids);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("subgrid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<BuildError>();
    }
}
