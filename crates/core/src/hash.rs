//! The spatial hash of Eq. (1): `h(p) = (x·π₁ ⊕ y·π₂ ⊕ z·π₃) mod T`.
//!
//! SpNeRF reuses the Instant-NGP hash function (Müller et al. 2022) to map
//! voxel vertex coordinates into per-subgrid hash tables. The same function
//! is computed in hardware by the Hash Mapping Unit — a few multipliers and
//! XOR gates — so software and simulator share this module.

use spnerf_voxel::coord::GridCoord;

/// First hash prime, `π₁ = 1` (x is passed through).
pub const PI_1: u32 = 1;
/// Second hash prime, `π₂ = 2 654 435 761`.
pub const PI_2: u32 = 2_654_435_761;
/// Third hash prime, `π₃ = 805 459 861`.
pub const PI_3: u32 = 805_459_861;

/// The raw 32-bit spatial hash `(x·π₁) ⊕ (y·π₂) ⊕ (z·π₃)` with wrapping
/// multiplies, before the modulo.
pub fn spatial_hash_raw(c: GridCoord) -> u32 {
    (c.x.wrapping_mul(PI_1)) ^ (c.y.wrapping_mul(PI_2)) ^ (c.z.wrapping_mul(PI_3))
}

/// Eq. (1): hash-table slot of a vertex for a table of `table_size` entries.
///
/// # Panics
///
/// Panics if `table_size` is zero.
pub fn spatial_hash(c: GridCoord, table_size: usize) -> usize {
    assert!(table_size > 0, "table size must be non-zero");
    spatial_hash_raw(c) as usize % table_size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = GridCoord::new(12, 34, 56);
        assert_eq!(spatial_hash(c, 1024), spatial_hash(c, 1024));
    }

    #[test]
    fn within_table_range() {
        for t in [1usize, 7, 64, 32 * 1024] {
            for i in 0..200u32 {
                let c = GridCoord::new(i * 3, i * 7 + 1, i * 11 + 2);
                assert!(spatial_hash(c, t) < t);
            }
        }
    }

    #[test]
    fn x_passes_through_pi1() {
        // With y = z = 0 the raw hash is x itself (π₁ = 1).
        assert_eq!(spatial_hash_raw(GridCoord::new(1234, 0, 0)), 1234);
    }

    #[test]
    fn matches_hand_computed_value() {
        let c = GridCoord::new(3, 5, 7);
        let expect = 3u32 ^ 5u32.wrapping_mul(PI_2) ^ 7u32.wrapping_mul(PI_3);
        assert_eq!(spatial_hash_raw(c), expect);
    }

    #[test]
    fn spreads_nearby_points() {
        // Neighbouring vertices should not all collide in a modest table.
        let t = 4096;
        let mut slots = std::collections::HashSet::new();
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    slots.insert(spatial_hash(GridCoord::new(x, y, z), t));
                }
            }
        }
        // 512 points into 4096 slots: expect at least ~90 % distinct.
        assert!(slots.len() > 460, "only {} distinct slots", slots.len());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_table_panics() {
        let _ = spatial_hash(GridCoord::new(0, 0, 0), 0);
    }
}
