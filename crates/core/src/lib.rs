//! # spnerf-core
//!
//! The SpNeRF contribution (DATE 2025): **hash-mapping-based preprocessing**
//! and **online sparse voxel-grid decoding with bitmap masking**, replacing
//! the full-grid restore of the original VQRF flow.
//!
//! Pipeline (Fig. 1 / Fig. 3 of the paper):
//!
//! ```text
//!  VQRF model ──preprocess──▶ K hash tables (18-bit index + INT8 density)
//!                             + bitmap + codebook + true voxel grid
//!                                        │
//!  ray sampling ──▶ online decode: hash lookup → value fetch → bitmap mask
//!                                        │
//!                              trilinear interpolation → MLP → pixel
//! ```
//!
//! * [`config`] — the operating point (K = 64 subgrids, T = 32 k entries),
//! * [`hash`] — Eq. (1), the Instant-NGP spatial hash,
//! * [`partition`] — the x-axis subgrid partition,
//! * [`table`] — keyless per-subgrid hash tables,
//! * [`preprocess`] — the table-building pipeline with collision stats,
//! * [`model`] — the assembled [`SpNerfModel`] with byte-accurate footprint,
//! * [`decode`] — the online decoder ([`MaskMode::Masked`] /
//!   [`MaskMode::Unmasked`] ablation), a
//!   [`spnerf_render::source::VoxelSource`],
//! * [`stats`] — aliasing/false-positive analysis.
//!
//! # Examples
//!
//! ```
//! use spnerf_core::{MaskMode, SpNerfConfig, SpNerfModel};
//! use spnerf_render::scene::{build_grid, SceneId};
//! use spnerf_voxel::vqrf::{VqrfConfig, VqrfModel};
//!
//! let grid = build_grid(SceneId::Mic, 24);
//! let vqrf = VqrfModel::build(
//!     &grid,
//!     &VqrfConfig { codebook_size: 64, kmeans_iters: 2, ..Default::default() },
//! );
//! let cfg = SpNerfConfig { subgrid_count: 8, table_size: 4096, codebook_size: 64 };
//! let model = SpNerfModel::build(&vqrf, &cfg)?;
//!
//! // The whole point: orders of magnitude less memory than the restore step.
//! assert!(model.memory_reduction_vs(&vqrf) > 1.0);
//!
//! // And a renderable view for the reference renderer.
//! let view = model.view(MaskMode::Masked);
//! # let _ = view;
//! # Ok::<(), spnerf_core::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod config;
pub mod decode;
pub mod error;
pub mod hash;
pub mod model;
pub mod partition;
pub mod preprocess;
pub mod stats;
pub mod table;

pub use config::{ConfigError, SpNerfConfig, ENTRY_BITS, INDEX_BITS};
pub use decode::{DecodeOutcome, MaskMode, SpNerfView};
pub use error::BuildError;
pub use model::SpNerfModel;
pub use preprocess::{InsertionOrder, PreprocessOptions, PreprocessReport};
