//! The complete SpNeRF model: hash tables + codebook + true voxel grid +
//! bitmap, with byte-accurate memory accounting.
//!
//! This is the artifact the accelerator streams from DRAM — the entire
//! replacement for VQRF's restored dense grid. Its footprint versus
//! [`VqrfModel::restored_footprint`] is the paper's Fig. 6(a) (21.07×
//! average reduction).

use spnerf_voxel::bitmap::Bitmap;
use spnerf_voxel::coord::{GridCoord, GridDims};
use spnerf_voxel::kmeans::Codebook;
use spnerf_voxel::memory::MemoryFootprint;
use spnerf_voxel::quant::QuantizedTensor;
use spnerf_voxel::vqrf::VqrfModel;
use spnerf_voxel::FEATURE_DIM;

use crate::config::SpNerfConfig;
use crate::decode::{MaskMode, SpNerfView};
use crate::error::BuildError;
use crate::partition::SubgridPartition;
use crate::preprocess::{build_tables_with, PreprocessOptions, PreprocessReport};
use crate::table::{HashEntry, HashTable};

/// A built SpNeRF model, ready for online decoding.
///
/// # Examples
///
/// ```
/// use spnerf_core::{SpNerfConfig, SpNerfModel};
/// use spnerf_voxel::coord::{GridCoord, GridDims};
/// use spnerf_voxel::grid::DenseGrid;
/// use spnerf_voxel::vqrf::{VqrfConfig, VqrfModel};
///
/// let mut g = DenseGrid::zeros(GridDims::cube(16));
/// g.set_density(GridCoord::new(3, 4, 5), 0.9);
/// g.set_features(GridCoord::new(3, 4, 5), &[0.5; 12]);
/// let vqrf = VqrfModel::build(&g, &VqrfConfig { codebook_size: 8, ..Default::default() });
///
/// let cfg = SpNerfConfig { subgrid_count: 4, table_size: 1024, codebook_size: 8 };
/// let model = SpNerfModel::build(&vqrf, &cfg)?;
/// assert!(model.footprint().total_bytes() < vqrf.restored_footprint().total_bytes());
/// # Ok::<(), spnerf_core::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpNerfModel {
    cfg: SpNerfConfig,
    dims: GridDims,
    partition: SubgridPartition,
    tables: Vec<HashTable>,
    codebook: Codebook,
    kept: QuantizedTensor,
    density_scale: f32,
    bitmap: Bitmap,
    report: PreprocessReport,
}

impl SpNerfModel {
    /// Runs the preprocessing step on a VQRF model and assembles the full
    /// SpNeRF artifact (default preprocessing policies).
    ///
    /// # Errors
    ///
    /// See [`crate::preprocess::build_tables`].
    pub fn build(vqrf: &VqrfModel, cfg: &SpNerfConfig) -> Result<Self, BuildError> {
        Self::build_with(vqrf, cfg, PreprocessOptions::default())
    }

    /// Like [`Self::build`] but with explicit [`PreprocessOptions`] — used
    /// by the insertion-order / density-merge ablations.
    ///
    /// # Errors
    ///
    /// See [`crate::preprocess::build_tables`].
    pub fn build_with(
        vqrf: &VqrfModel,
        cfg: &SpNerfConfig,
        opts: PreprocessOptions,
    ) -> Result<Self, BuildError> {
        let (tables, partition, report) = build_tables_with(vqrf, cfg, opts)?;
        let mut bitmap = Bitmap::zeros(vqrf.dims());
        for p in vqrf.points() {
            bitmap.set(p.coord, true);
        }
        Ok(Self {
            cfg: *cfg,
            dims: vqrf.dims(),
            partition,
            tables,
            codebook: vqrf.codebook().clone(),
            kept: vqrf.kept_quant().clone(),
            density_scale: vqrf.density_quant().params().scale(),
            bitmap,
            report,
        })
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &SpNerfConfig {
        &self.cfg
    }

    /// Voxel grid dimensions.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The subgrid partition.
    pub fn partition(&self) -> &SubgridPartition {
        &self.partition
    }

    /// The per-subgrid hash tables.
    pub fn tables(&self) -> &[HashTable] {
        &self.tables
    }

    /// The occupancy bitmap used for masking.
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// Preprocessing statistics (collisions, load factors).
    pub fn report(&self) -> &PreprocessReport {
        &self.report
    }

    /// The color codebook (FP16 buffer contents).
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// The INT8 true voxel grid.
    pub fn kept(&self) -> &QuantizedTensor {
        &self.kept
    }

    /// The density dequantization scale.
    pub fn density_scale(&self) -> f32 {
        self.density_scale
    }

    /// Raw hash-table lookup for vertex `c` (no masking): the HMU step alone.
    pub fn raw_lookup(&self, c: GridCoord) -> Option<HashEntry> {
        if !self.dims.contains(c) {
            return None;
        }
        self.tables[self.partition.subgrid_of(c)].lookup(c)
    }

    /// Resolves an 18-bit unified address to a feature vector: codebook for
    /// `index < codebook_size`, true voxel grid otherwise — the HMU's
    /// address comparison plus the TIU's INT8 dequantization.
    ///
    /// Returns `None` when a true-grid address points past the stored rows
    /// (possible only for corrupted indices; the hardware would read
    /// garbage, software treats it as empty).
    pub fn resolve_features(&self, index: u32) -> Option<[f32; FEATURE_DIM]> {
        let idx = index as usize;
        let mut out = [0.0f32; FEATURE_DIM];
        if idx < self.cfg.codebook_size {
            if idx >= self.codebook.len() {
                return None;
            }
            out.copy_from_slice(self.codebook.centroid(idx));
            Some(out)
        } else {
            let row = idx - self.cfg.codebook_size;
            if (row + 1) * FEATURE_DIM > self.kept.len() {
                return None;
            }
            for (j, slot) in out.iter_mut().enumerate() {
                *slot = self.kept.dequantize_at(row * FEATURE_DIM + j);
            }
            Some(out)
        }
    }

    /// A renderable view with the chosen masking mode.
    pub fn view(&self, mode: MaskMode) -> SpNerfView<'_> {
        SpNerfView::new(self, mode)
    }

    /// Shorthand for [`Self::view`] with [`MaskMode::Masked`] (the full
    /// SpNeRF decode path).
    pub fn masked(&self) -> SpNerfView<'_> {
        self.view(MaskMode::Masked)
    }

    /// Shorthand for [`Self::view`] with [`MaskMode::Unmasked`] (the
    /// "before bitmap masking" ablation).
    pub fn unmasked(&self) -> SpNerfView<'_> {
        self.view(MaskMode::Unmasked)
    }

    /// Itemized memory footprint of everything the accelerator must hold for
    /// this scene — the SpNeRF bar of Fig. 6(a).
    pub fn footprint(&self) -> MemoryFootprint {
        let mut fp = MemoryFootprint::new("SpNeRF model");
        fp.add("hash tables", self.tables.iter().map(HashTable::storage_bytes).sum());
        fp.add("bitmap", self.bitmap.storage_bytes());
        fp.add("codebook (FP16)", self.codebook.len() * FEATURE_DIM * 2);
        fp.add("true voxel grid (INT8)", self.kept.storage_bytes());
        fp
    }

    /// Convenience: `VQRF restored bytes / SpNeRF bytes`, the per-scene
    /// reduction factor of Fig. 6(a).
    pub fn memory_reduction_vs(&self, vqrf: &VqrfModel) -> f64 {
        self.footprint().reduction_vs(&vqrf.restored_footprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spnerf_voxel::grid::DenseGrid;
    use spnerf_voxel::vqrf::VqrfConfig;

    fn fixture(side: u32, occ: f64, seed: u64) -> (VqrfModel, SpNerfModel) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = GridDims::cube(side);
        let mut g = DenseGrid::zeros(dims);
        for c in dims.iter() {
            if rng.gen::<f64>() < occ {
                g.set_density(c, 0.2 + rng.gen::<f32>());
                let f: Vec<f32> = (0..FEATURE_DIM).map(|_| rng.gen::<f32>()).collect();
                g.set_features(c, &f);
            }
        }
        let vqrf = VqrfModel::build(
            &g,
            &VqrfConfig { codebook_size: 16, kmeans_iters: 2, ..Default::default() },
        );
        let cfg = SpNerfConfig { subgrid_count: 8, table_size: 8192, codebook_size: 16 };
        let model = SpNerfModel::build(&vqrf, &cfg).unwrap();
        (vqrf, model)
    }

    #[test]
    fn masked_unmasked_shorthands_match_view() {
        let (_, model) = fixture(16, 0.05, 7);
        assert_eq!(model.masked().mode(), MaskMode::Masked);
        assert_eq!(model.unmasked().mode(), MaskMode::Unmasked);
    }

    #[test]
    fn bitmap_matches_point_set() {
        let (vqrf, model) = fixture(20, 0.05, 1);
        assert_eq!(model.bitmap().count_ones(), vqrf.nnz());
        for p in vqrf.points() {
            assert!(model.bitmap().get(p.coord));
        }
    }

    #[test]
    fn raw_lookup_returns_stored_entries() {
        let (vqrf, model) = fixture(16, 0.04, 2);
        let mut hits = 0;
        for p in vqrf.points() {
            if model.raw_lookup(p.coord).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, vqrf.nnz(), "every stored point's slot is non-empty");
        assert_eq!(model.raw_lookup(GridCoord::new(200, 0, 0)), None);
    }

    #[test]
    fn resolve_features_splits_address_space() {
        let (vqrf, model) = fixture(16, 0.05, 3);
        // Codebook address.
        let f = model.resolve_features(0).unwrap();
        assert_eq!(&f[..], model.codebook().centroid(0));
        // True-grid address (row 0) if any point was kept.
        if vqrf.kept_count() > 0 {
            let f = model.resolve_features(16).unwrap();
            assert_eq!(f[0], model.kept().dequantize_at(0));
        }
        // Out-of-range true-grid address.
        assert_eq!(model.resolve_features(16 + vqrf.kept_count() as u32), None);
    }

    #[test]
    fn footprint_components_present() {
        let (_, model) = fixture(16, 0.05, 4);
        let fp = model.footprint();
        for name in ["hash tables", "bitmap", "codebook (FP16)", "true voxel grid (INT8)"] {
            assert!(fp.bytes_of(name) > 0, "missing component {name}");
        }
        // Hash tables dominate at this configuration.
        assert_eq!(fp.bytes_of("hash tables"), 8 * HashTable::new(8192).storage_bytes());
    }

    #[test]
    fn memory_reduction_large_for_realistic_grids() {
        let (vqrf, model) = fixture(48, 0.04, 5);
        let r = model.memory_reduction_vs(&vqrf);
        assert!(r > 1.0, "SpNeRF must be smaller than the restored grid, got {r}");
    }

    #[test]
    fn build_respects_18_bit_capacity() {
        // A config whose codebook nearly fills the address space.
        let (vqrf, _) = fixture(16, 0.05, 6);
        let tight = SpNerfConfig {
            subgrid_count: 4,
            table_size: 1024,
            codebook_size: 16, // matches, fine
        };
        assert!(SpNerfModel::build(&vqrf, &tight).is_ok());
    }
}
