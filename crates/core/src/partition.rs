//! Subgrid partitioning along the x axis (Section III-A):
//! `S_k = { p_i | ⌊x_i / w⌋ = k }`.
//!
//! Each subgrid maps into its own hash table, which (a) shrinks per-table
//! load factors and (b) lets the accelerator stream one subgrid's table and
//! bitmap slice into on-chip SRAM at a time while rays traverse it.

use spnerf_voxel::coord::{GridCoord, GridDims};

/// The x-axis subgrid partition of a voxel grid.
///
/// # Examples
///
/// ```
/// use spnerf_core::partition::SubgridPartition;
/// use spnerf_voxel::coord::{GridCoord, GridDims};
///
/// let part = SubgridPartition::new(GridDims::cube(160), 64);
/// assert_eq!(part.count(), 64);
/// assert_eq!(part.subgrid_of(GridCoord::new(0, 10, 10)), 0);
/// assert_eq!(part.subgrid_of(GridCoord::new(159, 0, 0)), 53);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubgridPartition {
    count: usize,
    width: u32,
    dims: GridDims,
}

impl SubgridPartition {
    /// Partitions `dims` into `count` subgrids of width `w = ⌈nx / count⌉`.
    ///
    /// When `count > nx`, trailing subgrids are simply empty (width clamps
    /// to 1).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(dims: GridDims, count: usize) -> Self {
        assert!(count > 0, "subgrid count must be non-zero");
        let width = (dims.nx as usize).div_ceil(count).max(1) as u32;
        Self { count, width, dims }
    }

    /// Number of subgrids `K`.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Subgrid width `w` in voxels along x.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid dimensions being partitioned.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The subgrid index `⌊x / w⌋` of a vertex. Always `< count()` for
    /// in-bounds coordinates.
    pub fn subgrid_of(&self, c: GridCoord) -> usize {
        ((c.x / self.width) as usize).min(self.count - 1)
    }

    /// The x-coordinate range `[lo, hi)` covered by subgrid `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= count()`.
    pub fn x_range(&self, k: usize) -> (u32, u32) {
        assert!(k < self.count, "subgrid index {k} out of range");
        let lo = (k as u32) * self.width;
        let hi = (lo + self.width).min(self.dims.nx);
        (lo.min(self.dims.nx), hi)
    }

    /// Number of voxels in subgrid `k` (its bitmap-slice size in bits).
    pub fn subgrid_len(&self, k: usize) -> usize {
        let (lo, hi) = self.x_range(k);
        (hi - lo) as usize * self.dims.ny as usize * self.dims.nz as usize
    }

    /// Groups item indices by subgrid: `out[k]` lists the indices of
    /// `coords` whose vertex falls in subgrid `k`.
    pub fn group_indices(&self, coords: impl IntoIterator<Item = GridCoord>) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, c) in coords.into_iter().enumerate() {
            out[self.subgrid_of(c)].push(i as u32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_is_ceiling() {
        let p = SubgridPartition::new(GridDims::new(100, 8, 8), 64);
        assert_eq!(p.width(), 2); // ceil(100/64)
        let q = SubgridPartition::new(GridDims::new(160, 8, 8), 64);
        assert_eq!(q.width(), 3); // ceil(160/64)
    }

    #[test]
    fn every_vertex_lands_in_valid_subgrid() {
        let dims = GridDims::new(37, 5, 5);
        for k in [1usize, 2, 7, 37, 64] {
            let p = SubgridPartition::new(dims, k);
            for x in 0..dims.nx {
                let s = p.subgrid_of(GridCoord::new(x, 0, 0));
                assert!(s < k, "x={x} → subgrid {s} ≥ {k}");
            }
        }
    }

    #[test]
    fn partition_is_floor_x_over_w() {
        let p = SubgridPartition::new(GridDims::cube(160), 64);
        // w = 3 → x=0..2 → 0, x=3..5 → 1, …
        assert_eq!(p.subgrid_of(GridCoord::new(2, 0, 0)), 0);
        assert_eq!(p.subgrid_of(GridCoord::new(3, 0, 0)), 1);
        assert_eq!(p.subgrid_of(GridCoord::new(159, 0, 0)), 53);
    }

    #[test]
    fn x_ranges_tile_the_axis() {
        let dims = GridDims::new(160, 4, 4);
        let p = SubgridPartition::new(dims, 64);
        let mut covered = 0;
        for k in 0..p.count() {
            let (lo, hi) = p.x_range(k);
            assert!(lo <= hi);
            covered += hi - lo;
        }
        assert_eq!(covered, 160);
    }

    #[test]
    fn subgrid_len_counts_bitmap_bits() {
        let dims = GridDims::new(160, 10, 10);
        let p = SubgridPartition::new(dims, 64);
        // Width-3 slices except the tail.
        assert_eq!(p.subgrid_len(0), 3 * 100);
        // Sum of slices equals grid size.
        let total: usize = (0..p.count()).map(|k| p.subgrid_len(k)).sum();
        assert_eq!(total, dims.len());
    }

    #[test]
    fn group_indices_partitions_everything() {
        let dims = GridDims::new(16, 4, 4);
        let p = SubgridPartition::new(dims, 4);
        let coords: Vec<_> = dims.iter().collect();
        let groups = p.group_indices(coords.iter().copied());
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, dims.len());
        // Group k holds only coords with ⌊x/4⌋ = k.
        for (k, g) in groups.iter().enumerate() {
            for &i in g {
                assert_eq!(p.subgrid_of(coords[i as usize]), k);
            }
        }
    }

    #[test]
    fn more_subgrids_than_x_extent() {
        let p = SubgridPartition::new(GridDims::new(4, 4, 4), 16);
        for x in 0..4 {
            assert!(p.subgrid_of(GridCoord::new(x, 0, 0)) < 16);
        }
        // Trailing subgrids are empty.
        assert_eq!(p.subgrid_len(15), 0);
    }
}
