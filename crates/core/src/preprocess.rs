//! Hash-mapping-based preprocessing (Section III-A, the red path in Fig. 3).
//!
//! Three stages:
//! 1. take the non-zero point set (already extracted into the VQRF model),
//! 2. partition it into `K` subgrids along x,
//! 3. map every subgrid into its own keyless hash table whose entries hold
//!    the unified 18-bit lookup index plus the INT8 density.
//!
//! This replaces both the coordinate storage of COO-style encodings and the
//! full-grid restore of the original VQRF flow.

use spnerf_voxel::vqrf::{PointClass, VqrfModel};

use crate::config::SpNerfConfig;
use crate::error::BuildError;
use crate::partition::SubgridPartition;
use crate::table::{HashTable, InsertOutcome};

/// Statistics gathered while building the hash tables.
#[derive(Debug, Clone, PartialEq)]
pub struct PreprocessReport {
    /// Non-zero points offered for insertion.
    pub points: usize,
    /// Points actually stored.
    pub stored: usize,
    /// Points lost to first-writer-wins collisions (their lookups will alias
    /// another point).
    pub collisions: usize,
    /// Points per subgrid.
    pub per_subgrid_points: Vec<usize>,
    /// Highest per-table load factor.
    pub max_load_factor: f64,
}

impl PreprocessReport {
    /// Fraction of points lost to build-time collisions.
    pub fn collision_rate(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.collisions as f64 / self.points as f64
        }
    }
}

/// Maps a VQRF storage class to its unified 18-bit address
/// (`< codebook_size` ⇒ codebook entry, else true-voxel-grid row).
pub fn unified_address(class: PointClass, codebook_size: usize) -> u32 {
    match class {
        PointClass::Codeword(c) => c,
        PointClass::Kept(r) => codebook_size as u32 + r,
    }
}

/// Order in which points are offered to the first-writer-wins tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsertionOrder {
    /// Descending importance (density × feature norm): collision losers are
    /// the dimmest voxels, minimizing the PSNR impact of aliasing.
    #[default]
    ImportanceDescending,
    /// Natural spatial order — the naive policy, kept for ablation.
    Natural,
}

/// Tunable preprocessing policies (the defaults are what the figures use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreprocessOptions {
    /// Insertion ordering policy.
    pub order: InsertionOrder,
    /// Whether colliding points' densities are averaged into the stored
    /// entry (halves the worst-case alpha error of aliased lookups).
    pub skip_density_merge: bool,
}

/// Runs the preprocessing step with default policies. See
/// [`build_tables_with`].
///
/// # Errors
///
/// * [`BuildError::Config`] — invalid configuration,
/// * [`BuildError::CodebookMismatch`] — VQRF codebook ≠ configured codebook,
/// * [`BuildError::TrueGridOverflow`] — keep set exceeds the 18-bit space.
pub fn build_tables(
    vqrf: &VqrfModel,
    cfg: &SpNerfConfig,
) -> Result<(Vec<HashTable>, SubgridPartition, PreprocessReport), BuildError> {
    build_tables_with(vqrf, cfg, PreprocessOptions::default())
}

/// Runs the preprocessing step: builds `K` hash tables over the VQRF model's
/// non-zero points, under explicit [`PreprocessOptions`].
///
/// # Errors
///
/// See [`build_tables`].
pub fn build_tables_with(
    vqrf: &VqrfModel,
    cfg: &SpNerfConfig,
    opts: PreprocessOptions,
) -> Result<(Vec<HashTable>, SubgridPartition, PreprocessReport), BuildError> {
    cfg.validate()?;
    if vqrf.codebook_size() != cfg.codebook_size {
        return Err(BuildError::CodebookMismatch {
            model: vqrf.codebook_size(),
            config: cfg.codebook_size,
        });
    }
    if vqrf.kept_count() > cfg.true_grid_capacity() {
        return Err(BuildError::TrueGridOverflow {
            kept: vqrf.kept_count(),
            capacity: cfg.true_grid_capacity(),
        });
    }

    let partition = SubgridPartition::new(vqrf.dims(), cfg.subgrid_count);
    let mut tables: Vec<HashTable> =
        (0..cfg.subgrid_count).map(|_| HashTable::new(cfg.table_size)).collect();
    let density_q = vqrf.density_quant().data();

    let mut report = PreprocessReport {
        points: vqrf.nnz(),
        stored: 0,
        collisions: 0,
        per_subgrid_points: vec![0; cfg.subgrid_count],
        max_load_factor: 0.0,
    };

    // Insertion order: when two points collide, the first writer wins, so
    // ordering by importance makes collision *losers* the least important
    // (dimmest) voxels — an offline preprocessing choice that minimizes the
    // PSNR impact of unavoidable aliasing.
    let mut order: Vec<usize> = (0..vqrf.nnz()).collect();
    if opts.order == InsertionOrder::ImportanceDescending {
        order.sort_by(|a, b| {
            let imp = |i: usize| {
                let p = &vqrf.points()[i];
                p.density * (1.0 + p.feature_norm())
            };
            imp(*b).partial_cmp(&imp(*a)).expect("importance is finite")
        });
    }

    for i in order {
        let p = &vqrf.points()[i];
        let k = partition.subgrid_of(p.coord);
        report.per_subgrid_points[k] += 1;
        let addr = unified_address(vqrf.class_of(i), cfg.codebook_size);
        match tables[k].insert(p.coord, addr, density_q[i]) {
            InsertOutcome::Inserted => report.stored += 1,
            InsertOutcome::Collision { .. } => {
                report.collisions += 1;
                if !opts.skip_density_merge {
                    // Merge densities so neither colliding point's alpha is
                    // entirely wrong (offline preprocessing can afford this).
                    tables[k].merge_density(p.coord, density_q[i]);
                }
            }
        }
    }
    report.max_load_factor = tables.iter().map(HashTable::load_factor).fold(0.0, f64::max);

    Ok((tables, partition, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spnerf_voxel::coord::GridDims;
    use spnerf_voxel::grid::{DenseGrid, FEATURE_DIM};
    use spnerf_voxel::vqrf::VqrfConfig;

    fn random_vqrf(side: u32, occupancy: f64, seed: u64, codebook: usize) -> VqrfModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = GridDims::cube(side);
        let mut g = DenseGrid::zeros(dims);
        for c in dims.iter() {
            if rng.gen::<f64>() < occupancy {
                g.set_density(c, 0.1 + rng.gen::<f32>());
                let f: Vec<f32> = (0..FEATURE_DIM).map(|_| rng.gen::<f32>()).collect();
                g.set_features(c, &f);
            }
        }
        VqrfModel::build(
            &g,
            &VqrfConfig { codebook_size: codebook, kmeans_iters: 2, ..Default::default() },
        )
    }

    fn cfg(k: usize, t: usize) -> SpNerfConfig {
        SpNerfConfig { subgrid_count: k, table_size: t, codebook_size: 16 }
    }

    #[test]
    fn all_points_accounted_for() {
        let vqrf = random_vqrf(24, 0.05, 1, 16);
        let (tables, _, report) = build_tables(&vqrf, &cfg(8, 4096)).unwrap();
        assert_eq!(report.points, vqrf.nnz());
        assert_eq!(report.stored + report.collisions, report.points);
        let stored: usize = tables.iter().map(HashTable::occupied).sum();
        assert_eq!(stored, report.stored);
        let grouped: usize = report.per_subgrid_points.iter().sum();
        assert_eq!(grouped, report.points);
    }

    #[test]
    fn large_tables_have_few_collisions() {
        let vqrf = random_vqrf(24, 0.05, 2, 16);
        let (_, _, big) = build_tables(&vqrf, &cfg(8, 65_536)).unwrap();
        let (_, _, small) = build_tables(&vqrf, &cfg(8, 64)).unwrap();
        assert!(big.collision_rate() < 0.05, "big-table rate {}", big.collision_rate());
        assert!(small.collision_rate() > big.collision_rate(), "small tables must collide more");
    }

    #[test]
    fn more_subgrids_reduce_collisions() {
        // The Fig. 7(a) mechanism: fixed T, growing K spreads points out.
        let vqrf = random_vqrf(32, 0.08, 3, 16);
        let (_, _, k1) = build_tables(&vqrf, &cfg(1, 1024)).unwrap();
        let (_, _, k16) = build_tables(&vqrf, &cfg(16, 1024)).unwrap();
        assert!(
            k16.collisions < k1.collisions,
            "K=16 ({}) should collide less than K=1 ({})",
            k16.collisions,
            k1.collisions
        );
    }

    #[test]
    fn stored_points_decode_back_via_lookup() {
        let vqrf = random_vqrf(16, 0.05, 4, 16);
        let spcfg = cfg(4, 8192);
        let (tables, partition, report) = build_tables(&vqrf, &spcfg).unwrap();
        assert_eq!(report.collisions, 0, "test assumes no collisions at this load");
        for (i, p) in vqrf.points().iter().enumerate() {
            let e = tables[partition.subgrid_of(p.coord)].lookup(p.coord).unwrap();
            assert_eq!(e.index, unified_address(vqrf.class_of(i), 16));
            assert_eq!(e.density_q, vqrf.density_quant().data()[i]);
        }
    }

    #[test]
    fn codebook_mismatch_rejected() {
        let vqrf = random_vqrf(12, 0.05, 5, 16);
        let bad = SpNerfConfig { codebook_size: 32, ..cfg(4, 1024) };
        assert!(matches!(
            build_tables(&vqrf, &bad),
            Err(BuildError::CodebookMismatch { model: 16, config: 32 })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let vqrf = random_vqrf(12, 0.05, 6, 16);
        let bad = SpNerfConfig { table_size: 0, ..cfg(4, 1024) };
        assert!(matches!(build_tables(&vqrf, &bad), Err(BuildError::Config(_))));
    }

    #[test]
    fn unified_address_split() {
        assert_eq!(unified_address(PointClass::Codeword(7), 4096), 7);
        assert_eq!(unified_address(PointClass::Kept(0), 4096), 4096);
        assert_eq!(unified_address(PointClass::Kept(100), 4096), 4196);
    }

    #[test]
    fn insertion_order_changes_collision_winners() {
        let vqrf = random_vqrf(24, 0.10, 7, 16);
        let tight = cfg(1, 256); // force many collisions
        let opts_imp = PreprocessOptions::default();
        let opts_nat = PreprocessOptions { order: InsertionOrder::Natural, ..Default::default() };
        let (t_imp, _, r_imp) = build_tables_with(&vqrf, &tight, opts_imp).unwrap();
        let (t_nat, _, r_nat) = build_tables_with(&vqrf, &tight, opts_nat).unwrap();
        // Same number of collisions (set of slots is order-independent)…
        assert_eq!(r_imp.collisions, r_nat.collisions);
        assert!(r_imp.collisions > 0, "test needs collision pressure");
        // …but different winners.
        assert_ne!(t_imp, t_nat, "ordering must change stored entries");
    }

    #[test]
    fn density_merge_toggles() {
        let vqrf = random_vqrf(24, 0.10, 8, 16);
        let tight = cfg(1, 256);
        let merged = build_tables_with(&vqrf, &tight, PreprocessOptions::default()).unwrap().0;
        let unmerged = build_tables_with(
            &vqrf,
            &tight,
            PreprocessOptions { skip_density_merge: true, ..Default::default() },
        )
        .unwrap()
        .0;
        assert_ne!(merged, unmerged, "merging must alter stored densities");
    }

    #[test]
    fn default_options_are_the_tuned_policies() {
        let o = PreprocessOptions::default();
        assert_eq!(o.order, InsertionOrder::ImportanceDescending);
        assert!(!o.skip_density_merge);
    }
}
