//! Collision and aliasing analysis of a built SpNeRF model.
//!
//! Quantifies the two error channels of the keyless hash mapping:
//!
//! * **false positives** — empty voxels whose hash slot is occupied; without
//!   masking they return garbage (the dominant error, fixed by the bitmap);
//! * **aliased points** — stored points that lost a build-time collision and
//!   now read the winner's entry (the residual error masking cannot fix).

use spnerf_voxel::vqrf::VqrfModel;

use crate::decode::MaskMode;
use crate::model::SpNerfModel;
use crate::preprocess::unified_address;

/// Aliasing statistics over the full voxel grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AliasStats {
    /// Total voxels scanned.
    pub voxels: usize,
    /// Occupied (stored) voxels.
    pub occupied: usize,
    /// Empty voxels whose hash slot holds an entry — unmasked false
    /// positives.
    pub aliased_empty: usize,
    /// Stored points whose entry was overwritten... never: first-writer-wins
    /// means *losers* were never stored; this counts points whose lookup
    /// returns data different from their own (build-time collision losers).
    pub aliased_points: usize,
}

impl AliasStats {
    /// Fraction of empty voxels that would read garbage without masking.
    pub fn false_positive_rate(&self) -> f64 {
        let empty = self.voxels - self.occupied;
        if empty == 0 {
            0.0
        } else {
            self.aliased_empty as f64 / empty as f64
        }
    }

    /// Fraction of stored points that alias another point's data.
    pub fn point_alias_rate(&self) -> f64 {
        if self.occupied == 0 {
            0.0
        } else {
            self.aliased_points as f64 / self.occupied as f64
        }
    }
}

/// Scans the whole grid and classifies every voxel's decode behaviour.
///
/// `vqrf` must be the model `sp` was built from.
pub fn alias_stats(sp: &SpNerfModel, vqrf: &VqrfModel) -> AliasStats {
    let dims = sp.dims();
    let cb = sp.config().codebook_size;
    let mut stats =
        AliasStats { voxels: dims.len(), occupied: 0, aliased_empty: 0, aliased_points: 0 };
    for c in dims.iter() {
        match vqrf.lookup(c) {
            Some(i) => {
                stats.occupied += 1;
                let entry = sp.raw_lookup(c).expect("stored point has a non-empty slot");
                if entry.index != unified_address(vqrf.class_of(i), cb) {
                    stats.aliased_points += 1;
                }
            }
            None => {
                if sp.raw_lookup(c).is_some() {
                    stats.aliased_empty += 1;
                }
            }
        }
    }
    stats
}

/// Per-subgrid load balance of a built model.
///
/// The x-axis partition is geometry-dependent: an object concentrated in a
/// few x-slabs overloads their tables while others sit empty. This report
/// quantifies that imbalance — the effective collision pressure is set by
/// the *fullest* table, not the average.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalance {
    /// Stored points per subgrid.
    pub per_subgrid: Vec<usize>,
    /// Mean load factor across tables.
    pub mean_load: f64,
    /// Load factor of the fullest table.
    pub max_load: f64,
    /// `max_load / mean_load` (1.0 = perfectly balanced); 0 when empty.
    pub imbalance: f64,
    /// Subgrids holding zero points.
    pub empty_subgrids: usize,
}

/// Computes the subgrid load balance of a model.
pub fn load_balance(sp: &SpNerfModel) -> LoadBalance {
    let per_subgrid = sp.report().per_subgrid_points.clone();
    let t = sp.config().table_size as f64;
    let loads: Vec<f64> = per_subgrid.iter().map(|n| *n as f64 / t).collect();
    let mean_load = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
    let max_load = loads.iter().cloned().fold(0.0, f64::max);
    let imbalance = if mean_load > 0.0 { max_load / mean_load } else { 0.0 };
    let empty_subgrids = per_subgrid.iter().filter(|n| **n == 0).count();
    LoadBalance { per_subgrid, mean_load, max_load, imbalance, empty_subgrids }
}

/// Mean decode error of the masked/unmasked view against the VQRF gold
/// decode, averaged over all voxels (features L2 + |density| per voxel).
///
/// This is a grid-space proxy for the PSNR impact measured in Fig. 6(b).
pub fn mean_decode_error(sp: &SpNerfModel, vqrf: &VqrfModel, mode: MaskMode) -> f64 {
    let view = sp.view(mode);
    let dims = sp.dims();
    let mut total = 0.0f64;
    for c in dims.iter() {
        let gold = vqrf.decode_at(c);
        let got = spnerf_render::source::VoxelSource::fetch(&view, c);
        total += match (gold, got) {
            (None, None) => 0.0,
            (Some((d, f)), Some(v)) => {
                let fe: f32 = f.iter().zip(v.features).map(|(a, b)| (a - b) * (a - b)).sum::<f32>();
                (fe.sqrt() + (d - v.density).abs()) as f64
            }
            (Some((d, f)), None)
            | (None, Some(spnerf_render::source::VoxelData { density: d, features: f })) => {
                let fe: f32 = f.iter().map(|a| a * a).sum();
                (fe.sqrt() + d.abs()) as f64
            }
        };
    }
    total / dims.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpNerfConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spnerf_voxel::coord::GridDims;
    use spnerf_voxel::grid::{DenseGrid, FEATURE_DIM};
    use spnerf_voxel::vqrf::VqrfConfig;

    fn fixture(t: usize) -> (VqrfModel, SpNerfModel) {
        let mut rng = StdRng::seed_from_u64(9);
        let dims = GridDims::cube(16);
        let mut g = DenseGrid::zeros(dims);
        for c in dims.iter() {
            if rng.gen::<f64>() < 0.05 {
                g.set_density(c, 0.2 + rng.gen::<f32>());
                let f: Vec<f32> = (0..FEATURE_DIM).map(|_| rng.gen::<f32>()).collect();
                g.set_features(c, &f);
            }
        }
        let vqrf = VqrfModel::build(
            &g,
            &VqrfConfig { codebook_size: 16, kmeans_iters: 2, ..Default::default() },
        );
        let cfg = SpNerfConfig { subgrid_count: 4, table_size: t, codebook_size: 16 };
        let sp = SpNerfModel::build(&vqrf, &cfg).unwrap();
        (vqrf, sp)
    }

    #[test]
    fn counts_are_consistent() {
        let (vqrf, sp) = fixture(4096);
        let s = alias_stats(&sp, &vqrf);
        assert_eq!(s.voxels, 16 * 16 * 16);
        assert_eq!(s.occupied, vqrf.nnz());
        assert!(s.aliased_points <= sp.report().collisions);
        assert!(s.false_positive_rate() >= 0.0 && s.false_positive_rate() <= 1.0);
    }

    #[test]
    fn smaller_tables_increase_false_positives() {
        let (v_big, s_big) = fixture(16_384);
        let (v_small, s_small) = fixture(128);
        let big = alias_stats(&s_big, &v_big);
        let small = alias_stats(&s_small, &v_small);
        assert!(
            small.false_positive_rate() > big.false_positive_rate(),
            "small {} vs big {}",
            small.false_positive_rate(),
            big.false_positive_rate()
        );
    }

    #[test]
    fn masking_reduces_mean_decode_error() {
        let (vqrf, sp) = fixture(256);
        let masked = mean_decode_error(&sp, &vqrf, MaskMode::Masked);
        let unmasked = mean_decode_error(&sp, &vqrf, MaskMode::Unmasked);
        assert!(masked < unmasked, "masked error {masked} must beat unmasked {unmasked}");
    }

    #[test]
    fn load_balance_reflects_geometry() {
        let (vqrf, sp) = fixture(4096);
        let lb = load_balance(&sp);
        assert_eq!(lb.per_subgrid.len(), sp.config().subgrid_count);
        assert_eq!(lb.per_subgrid.iter().sum::<usize>(), vqrf.nnz());
        assert!(lb.max_load >= lb.mean_load);
        assert!(lb.imbalance >= 1.0, "imbalance {} below 1", lb.imbalance);
        // Uniform random occupancy → near-balanced partition.
        assert!(lb.imbalance < 2.5, "random fixture should be roughly balanced");
    }

    #[test]
    fn collision_free_model_has_zero_masked_error_for_points() {
        let (vqrf, sp) = fixture(16_384);
        if sp.report().collisions == 0 {
            let err = mean_decode_error(&sp, &vqrf, MaskMode::Masked);
            assert!(err < 1e-9, "collision-free masked decode must be exact, got {err}");
        }
    }
}
