//! Per-subgrid hash tables: the "Index and Density Buffer" contents.
//!
//! Each entry packs an 18-bit lookup index (codebook or true voxel grid,
//! Section III-B) together with the vertex's INT8 density. Entries store
//! **no key**: a lookup simply reads the slot the coordinate hashes to. This
//! is what makes the structure so small — and what produces the collision
//! errors that bitmap masking must clean up.

use crate::config::ENTRY_BITS;
use crate::hash::spatial_hash;
use spnerf_voxel::coord::GridCoord;

/// One occupied hash-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashEntry {
    /// 18-bit unified lookup index (`< codebook_size` ⇒ codebook, else true
    /// voxel grid row `index − codebook_size`).
    pub index: u32,
    /// INT8-quantized density of the stored vertex.
    pub density_q: i8,
}

/// Outcome of inserting a point into a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The slot was empty; the point is now stored.
    Inserted,
    /// The slot was already taken (first-writer-wins); this point's data is
    /// *lost* and lookups of its coordinate will alias the earlier point.
    Collision {
        /// The entry that already occupies the slot.
        existing: HashEntry,
    },
}

/// A fixed-size, keyless hash table for one subgrid.
///
/// # Examples
///
/// ```
/// use spnerf_core::table::{HashTable, InsertOutcome};
/// use spnerf_voxel::coord::GridCoord;
///
/// let mut t = HashTable::new(64);
/// let c = GridCoord::new(1, 2, 3);
/// assert_eq!(t.insert(c, 7, 42), InsertOutcome::Inserted);
/// assert_eq!(t.lookup(c).unwrap().index, 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashTable {
    /// `index+1` packed as NonZero-ish encoding: 0 = empty. Keeps the entry
    /// array dense without an Option discriminant per slot.
    slots: Vec<u32>,
    densities: Vec<i8>,
    occupied: usize,
}

impl HashTable {
    /// An empty table with `size` slots.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "hash table size must be non-zero");
        Self { slots: vec![0; size], densities: vec![0; size], occupied: 0 }
    }

    /// Number of slots `T`.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Fraction of occupied slots.
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.size() as f64
    }

    /// Inserts `(index, density)` for vertex `c` (first-writer-wins).
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 18 bits.
    pub fn insert(&mut self, c: GridCoord, index: u32, density_q: i8) -> InsertOutcome {
        assert!(index < (1 << 18), "index {index} exceeds 18 bits");
        let slot = spatial_hash(c, self.size());
        if self.slots[slot] != 0 {
            return InsertOutcome::Collision {
                existing: HashEntry {
                    index: self.slots[slot] - 1,
                    density_q: self.densities[slot],
                },
            };
        }
        self.slots[slot] = index + 1;
        self.densities[slot] = density_q;
        self.occupied += 1;
        InsertOutcome::Inserted
    }

    /// Averages the stored density of `c`'s slot with `density_q` — the
    /// offline collision-merge step of preprocessing: when several points
    /// share a slot, a merged density halves the worst-case alpha error for
    /// all of them.
    ///
    /// Has no effect on an empty slot.
    pub fn merge_density(&mut self, c: GridCoord, density_q: i8) {
        let slot = spatial_hash(c, self.size());
        if self.slots[slot] != 0 {
            let merged = (self.densities[slot] as i16 + density_q as i16) / 2;
            self.densities[slot] = merged as i8;
        }
    }

    /// Looks up vertex `c`: returns whatever occupies its hash slot, or
    /// `None` when the slot is empty. **No key comparison happens** — an
    /// aliased coordinate silently reads another point's entry, exactly like
    /// the hardware.
    pub fn lookup(&self, c: GridCoord) -> Option<HashEntry> {
        self.entry_at(spatial_hash(c, self.size()))
    }

    /// Reads slot `slot` directly (used by the cycle simulator's HMU model).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= size()`.
    pub fn entry_at(&self, slot: usize) -> Option<HashEntry> {
        let v = self.slots[slot];
        if v == 0 {
            None
        } else {
            Some(HashEntry { index: v - 1, density_q: self.densities[slot] })
        }
    }

    /// Packed storage footprint: [`ENTRY_BITS`] bits per slot (18-bit index
    /// + 8-bit density), rounded up to whole bytes.
    pub fn storage_bytes(&self) -> usize {
        (self.size() * ENTRY_BITS as usize).div_ceil(8)
    }

    /// Writes `slot` directly, bypassing hashing — used by the off-chip
    /// codec when reconstructing a table from its packed bytes.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or `index` exceeds 18 bits.
    pub fn force_slot(&mut self, slot: usize, index: u32, density_q: i8) {
        assert!(index < (1 << 18), "index {index} exceeds 18 bits");
        if self.slots[slot] == 0 {
            self.occupied += 1;
        }
        self.slots[slot] = index + 1;
        self.densities[slot] = density_q;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::spatial_hash_raw;

    #[test]
    fn insert_then_lookup() {
        let mut t = HashTable::new(128);
        let c = GridCoord::new(5, 6, 7);
        t.insert(c, 1234, -5);
        let e = t.lookup(c).unwrap();
        assert_eq!(e.index, 1234);
        assert_eq!(e.density_q, -5);
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn empty_slot_lookup_is_none() {
        let t = HashTable::new(16);
        assert_eq!(t.lookup(GridCoord::new(1, 1, 1)), None);
    }

    #[test]
    fn collision_keeps_first_writer() {
        // Force a collision with a size-1 table.
        let mut t = HashTable::new(1);
        let a = GridCoord::new(1, 0, 0);
        let b = GridCoord::new(2, 0, 0);
        assert_eq!(t.insert(a, 10, 1), InsertOutcome::Inserted);
        match t.insert(b, 20, 2) {
            InsertOutcome::Collision { existing } => assert_eq!(existing.index, 10),
            other => panic!("expected collision, got {other:?}"),
        }
        // Loser's coordinate aliases the winner's entry.
        assert_eq!(t.lookup(b).unwrap().index, 10);
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn index_zero_is_storable() {
        // Codebook entry 0 must round-trip despite the 0-means-empty packing.
        let mut t = HashTable::new(8);
        let c = GridCoord::new(3, 3, 3);
        t.insert(c, 0, 9);
        assert_eq!(t.lookup(c).unwrap().index, 0);
    }

    #[test]
    fn max_18_bit_index_storable() {
        let mut t = HashTable::new(8);
        let c = GridCoord::new(2, 2, 2);
        t.insert(c, (1 << 18) - 1, 0);
        assert_eq!(t.lookup(c).unwrap().index, (1 << 18) - 1);
    }

    #[test]
    fn aliased_coordinates_share_slot() {
        let size = 64;
        let a = GridCoord::new(7, 9, 11);
        // Find a different coordinate hashing to the same slot.
        let target = spatial_hash(a, size);
        let b = (0..10_000u32)
            .map(|i| GridCoord::new(i, 3, 5))
            .find(|c| *c != a && spatial_hash(*c, size) == target)
            .expect("alias exists");
        assert_ne!(spatial_hash_raw(a), spatial_hash_raw(b)); // raw differs...
        let mut t = HashTable::new(size);
        t.insert(a, 42, 0);
        // ...but the modulo aliases them.
        assert_eq!(t.lookup(b).unwrap().index, 42);
    }

    #[test]
    fn storage_is_26_bits_per_slot() {
        let t = HashTable::new(32 * 1024);
        assert_eq!(t.storage_bytes(), (32 * 1024 * 26) / 8);
        // The paper-size table is ~104 KB — small enough to stream on chip.
        assert_eq!(t.storage_bytes(), 106_496);
    }

    #[test]
    fn load_factor() {
        let mut t = HashTable::new(4);
        assert_eq!(t.load_factor(), 0.0);
        t.insert(GridCoord::new(0, 1, 0), 1, 0);
        assert_eq!(t.load_factor(), 0.25);
    }

    #[test]
    #[should_panic(expected = "18 bits")]
    fn oversized_index_panics() {
        let mut t = HashTable::new(8);
        t.insert(GridCoord::new(0, 0, 0), 1 << 18, 0);
    }
}
