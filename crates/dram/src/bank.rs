//! Per-bank DRAM state machine (open-page policy).
//!
//! Each bank tracks its open row and the earliest cycle at which the next
//! command may issue, enforcing tRCD / tRP / tRAS / tCL / burst occupancy —
//! the subset of Ramulator's timing rules that determines sustained
//! bandwidth for the access patterns this workspace generates.

use crate::timing::DramTimings;

/// State of one DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// No row open.
    Idle,
    /// A row is open in the row buffer.
    Active {
        /// The open row index.
        row: u64,
    },
}

/// Result of accessing one column through a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the first data beat appears on the bus.
    pub data_cycle: u64,
    /// Cycle at which the bank can accept the next command.
    pub ready_cycle: u64,
    /// Whether the access hit the open row.
    pub row_hit: bool,
}

/// One DRAM bank with open-page row-buffer policy.
#[derive(Debug, Clone)]
pub struct Bank {
    state: BankState,
    /// Earliest cycle the next command may issue.
    ready_at: u64,
    /// Cycle the current row was activated (for tRAS).
    activated_at: u64,
    row_hits: u64,
    row_misses: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A fresh idle bank.
    pub fn new() -> Self {
        Self { state: BankState::Idle, ready_at: 0, activated_at: 0, row_hits: 0, row_misses: 0 }
    }

    /// Current state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// Row-hit count so far.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-miss (activate) count so far.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Performs a read or write of one burst at (`row`) starting no earlier
    /// than `now`, returning data timing and advancing the bank state.
    pub fn access(&mut self, t: &DramTimings, now: u64, row: u64, is_write: bool) -> AccessResult {
        let start = now.max(self.ready_at);
        let cas = if is_write { t.t_cwl } else { t.t_cl };
        match self.state {
            BankState::Active { row: open } if open == row => {
                // Row hit: CAS directly.
                self.row_hits += 1;
                let data = start + cas;
                self.ready_at = start + t.t_ccd.max(t.t_bl);
                AccessResult { data_cycle: data, ready_cycle: self.ready_at, row_hit: true }
            }
            BankState::Active { .. } => {
                // Row conflict: precharge (respecting tRAS), activate, CAS.
                self.row_misses += 1;
                let pre_at = start.max(self.activated_at + t.t_ras);
                let act_at = pre_at + t.t_rp;
                let rd_at = act_at + t.t_rcd;
                let data = rd_at + cas;
                self.state = BankState::Active { row };
                self.activated_at = act_at;
                self.ready_at = rd_at + t.t_ccd.max(t.t_bl);
                AccessResult { data_cycle: data, ready_cycle: self.ready_at, row_hit: false }
            }
            BankState::Idle => {
                // Row empty: activate then CAS.
                self.row_misses += 1;
                let act_at = start;
                let rd_at = act_at + t.t_rcd;
                let data = rd_at + cas;
                self.state = BankState::Active { row };
                self.activated_at = act_at;
                self.ready_at = rd_at + t.t_ccd.max(t.t_bl);
                AccessResult { data_cycle: data, ready_cycle: self.ready_at, row_hit: false }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTimings {
        DramTimings::lpddr4_3200()
    }

    #[test]
    fn first_access_is_a_miss() {
        let mut b = Bank::new();
        let r = b.access(&t(), 0, 5, false);
        assert!(!r.row_hit);
        assert_eq!(r.data_cycle, t().t_rcd + t().t_cl);
        assert_eq!(b.state(), BankState::Active { row: 5 });
    }

    #[test]
    fn same_row_hits() {
        let mut b = Bank::new();
        let first = b.access(&t(), 0, 5, false);
        let second = b.access(&t(), first.ready_cycle, 5, false);
        assert!(second.row_hit);
        // Hit latency is just CAS from issue.
        assert_eq!(second.data_cycle, first.ready_cycle + t().t_cl);
        assert_eq!(b.row_hits(), 1);
        assert_eq!(b.row_misses(), 1);
    }

    #[test]
    fn row_conflict_pays_precharge_activate() {
        let mut b = Bank::new();
        let first = b.access(&t(), 0, 5, false);
        let conflict = b.access(&t(), first.ready_cycle, 9, false);
        assert!(!conflict.row_hit);
        // Conflict must be strictly slower than a hit would have been.
        assert!(conflict.data_cycle > first.ready_cycle + t().t_cl);
        assert_eq!(b.state(), BankState::Active { row: 9 });
    }

    #[test]
    fn tras_enforced_before_precharge() {
        let mut b = Bank::new();
        // First access activates at 0; the second conflicts immediately,
        // and precharge cannot start before tRAS.
        b.access(&t(), 0, 1, false);
        let r = b.access(&t(), 0, 2, false);
        let tm = t();
        assert!(r.data_cycle >= tm.t_ras + tm.t_rp + tm.t_rcd + tm.t_cl);
    }

    #[test]
    fn writes_use_cwl() {
        let mut b = Bank::new();
        let r = b.access(&t(), 0, 3, true);
        assert_eq!(r.data_cycle, t().t_rcd + t().t_cwl);
    }

    #[test]
    fn back_to_back_hits_spaced_by_burst() {
        let mut b = Bank::new();
        let tm = t();
        let a = b.access(&tm, 0, 1, false);
        let c = b.access(&tm, a.ready_cycle, 1, false);
        assert_eq!(c.data_cycle - a.data_cycle, tm.t_ccd.max(tm.t_bl));
    }
}
