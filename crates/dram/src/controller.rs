//! The memory controller: address mapping, per-bank scheduling, and trace
//! replay.
//!
//! Requests are serviced in order (FCFS) but distribute across banks through
//! the address mapping, so sequential streams pipeline across banks and
//! reach near-peak bandwidth while irregular gathers degrade through row
//! misses — the behaviour that separates SpNeRF's streamed table transfers
//! from VQRF's scattered voxel fetches.

use crate::bank::Bank;
use crate::timing::DramTimings;

/// One memory request: byte address + size + direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Starting byte address.
    pub addr: u64,
    /// Bytes to transfer.
    pub bytes: u32,
    /// Write (true) or read (false).
    pub is_write: bool,
}

impl Request {
    /// A read request.
    pub fn read(addr: u64, bytes: u32) -> Self {
        Self { addr, bytes, is_write: false }
    }

    /// A write request.
    pub fn write(addr: u64, bytes: u32) -> Self {
        Self { addr, bytes, is_write: true }
    }
}

/// Aggregate result of replaying a request trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceResult {
    /// Total controller cycles from first issue to last data beat.
    pub cycles: u64,
    /// Total bytes transferred (rounded up to whole bursts).
    pub bytes_moved: u64,
    /// Useful bytes requested.
    pub bytes_requested: u64,
    /// Bursts that hit an open row.
    pub row_hits: u64,
    /// Bursts that required activation.
    pub row_misses: u64,
    /// Wall-clock time in nanoseconds.
    pub time_ns: f64,
    /// Achieved bandwidth in GB/s over requested bytes.
    pub achieved_gbps: f64,
}

impl TraceResult {
    /// Row-buffer hit rate over all bursts.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Fraction of peak bandwidth achieved.
    pub fn efficiency(&self, t: &DramTimings) -> f64 {
        self.achieved_gbps / t.peak_bandwidth_gbps()
    }
}

/// A DRAM memory controller over `banks` banks.
#[derive(Debug, Clone)]
pub struct MemoryController {
    timings: DramTimings,
    banks: Vec<Bank>,
}

impl MemoryController {
    /// Creates a controller for the given device timings.
    pub fn new(timings: DramTimings) -> Self {
        let banks = (0..timings.banks).map(|_| Bank::new()).collect();
        Self { timings, banks }
    }

    /// The device timings.
    pub fn timings(&self) -> &DramTimings {
        &self.timings
    }

    /// Maps a byte address to `(bank, row)`: row-interleaved low-order bank
    /// bits so sequential streams rotate across banks.
    pub fn map_address(&self, addr: u64) -> (usize, u64) {
        let burst = self.timings.burst_bytes() as u64;
        let row_bytes = self.timings.row_bytes as u64;
        let nbanks = self.banks.len() as u64;
        let burst_idx = addr / burst;
        let bank = (burst_idx % nbanks) as usize;
        let row = addr / (row_bytes * nbanks);
        (bank, row)
    }

    /// Replays a request trace from cycle 0 and reports aggregate timing,
    /// including periodic all-bank refresh (tREFI/tRFC).
    ///
    /// Requests larger than one burst are split into sequential bursts.
    pub fn run_trace(&mut self, trace: &[Request]) -> TraceResult {
        let burst = self.timings.burst_bytes() as u64;
        let mut now = 0u64;
        let mut last_data = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut bursts = 0u64;
        let mut requested = 0u64;
        let mut next_refresh = self.timings.t_refi;

        for req in trace {
            requested += req.bytes as u64;
            let mut addr = req.addr;
            let end = req.addr + req.bytes as u64;
            while addr < end {
                // Periodic refresh: an all-bank stall of tRFC every tREFI.
                while self.timings.t_refi > 0 && now >= next_refresh {
                    now += self.timings.t_rfc;
                    next_refresh += self.timings.t_refi;
                }
                let (bank_idx, row) = self.map_address(addr);
                let res = self.banks[bank_idx].access(&self.timings, now, row, req.is_write);
                if res.row_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                bursts += 1;
                // The shared bus serializes bursts: advance global time by
                // the burst occupancy once issued.
                now = now.max(res.data_cycle.saturating_sub(self.timings.t_cl)) + 1;
                last_data = last_data.max(res.data_cycle + self.timings.t_bl);
                addr = (addr / burst + 1) * burst;
            }
        }

        let cycles = last_data;
        let time_ns = self.timings.cycles_to_ns(cycles);
        let bytes_moved = bursts * burst;
        let achieved = if time_ns > 0.0 {
            requested as f64 / time_ns // bytes per ns == GB/s
        } else {
            0.0
        };
        TraceResult {
            cycles,
            bytes_moved,
            bytes_requested: requested,
            row_hits: hits,
            row_misses: misses,
            time_ns,
            achieved_gbps: achieved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_trace(bytes: u64, chunk: u32) -> Vec<Request> {
        (0..bytes / chunk as u64).map(|i| Request::read(i * chunk as u64, chunk)).collect()
    }

    #[test]
    fn sequential_stream_achieves_high_efficiency() {
        let t = DramTimings::lpddr4_3200();
        let mut mc = MemoryController::new(t);
        let res = mc.run_trace(&seq_trace(4 << 20, 256));
        let eff = res.efficiency(&t);
        assert!(eff > 0.7, "sequential efficiency {eff:.2} too low");
        assert!(res.row_hit_rate() > 0.8, "hit rate {:.2}", res.row_hit_rate());
    }

    #[test]
    fn random_gather_is_much_slower() {
        let t = DramTimings::lpddr4_3200();
        let mut seq = MemoryController::new(t);
        let seq_res = seq.run_trace(&seq_trace(1 << 20, 256));

        // Pseudo-random 64 B touches over a 256 MB region.
        let mut state = 0x12345678u64;
        let trace: Vec<Request> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Request::read(state % (256 << 20), 64)
            })
            .collect();
        let mut rnd = MemoryController::new(t);
        let rnd_res = rnd.run_trace(&trace);
        assert!(
            rnd_res.achieved_gbps < seq_res.achieved_gbps / 2.0,
            "gather {} GB/s should be well below stream {} GB/s",
            rnd_res.achieved_gbps,
            seq_res.achieved_gbps
        );
        assert!(rnd_res.row_hit_rate() < 0.5);
    }

    #[test]
    fn bytes_accounting() {
        let t = DramTimings::lpddr4_3200();
        let mut mc = MemoryController::new(t);
        let res = mc.run_trace(&[Request::read(0, 100)]); // sub-burst request
        assert_eq!(res.bytes_requested, 100);
        assert_eq!(res.bytes_moved, t.burst_bytes() as u64); // rounded up
    }

    #[test]
    fn large_request_splits_into_bursts() {
        let t = DramTimings::lpddr4_3200();
        let mut mc = MemoryController::new(t);
        let res = mc.run_trace(&[Request::read(0, 1024)]);
        assert_eq!(res.row_hits + res.row_misses, 1024 / t.burst_bytes() as u64);
    }

    #[test]
    fn writes_complete() {
        let t = DramTimings::lpddr4_3200();
        let mut mc = MemoryController::new(t);
        let trace: Vec<Request> = (0..64).map(|i| Request::write(i * 256, 256)).collect();
        let res = mc.run_trace(&trace);
        assert!(res.cycles > 0);
        assert_eq!(res.bytes_requested, 64 * 256);
    }

    #[test]
    fn address_mapping_rotates_banks() {
        let t = DramTimings::lpddr4_3200();
        let mc = MemoryController::new(t);
        let (b0, _) = mc.map_address(0);
        let (b1, _) = mc.map_address(t.burst_bytes() as u64);
        assert_ne!(b0, b1, "adjacent bursts should map to different banks");
    }

    #[test]
    fn empty_trace_is_zero() {
        let t = DramTimings::lpddr4_3200();
        let mut mc = MemoryController::new(t);
        let res = mc.run_trace(&[]);
        assert_eq!(res.cycles, 0);
        assert_eq!(res.bytes_requested, 0);
    }

    #[test]
    fn refresh_costs_a_few_percent_of_bandwidth() {
        let with = DramTimings::lpddr4_3200();
        let without = DramTimings { t_refi: 0, ..with };
        let trace = seq_trace(8 << 20, 256);
        let r_with = MemoryController::new(with).run_trace(&trace);
        let r_without = MemoryController::new(without).run_trace(&trace);
        assert!(
            r_with.cycles > r_without.cycles,
            "refresh must add cycles ({} vs {})",
            r_with.cycles,
            r_without.cycles
        );
        let overhead = r_with.cycles as f64 / r_without.cycles as f64 - 1.0;
        assert!(
            (0.005..0.15).contains(&overhead),
            "refresh overhead {:.3} outside the realistic few-percent band",
            overhead
        );
    }

    #[test]
    fn faster_device_finishes_sooner() {
        let trace = seq_trace(1 << 20, 256);
        let mut slow = MemoryController::new(DramTimings::lpddr4_1600());
        let mut fast = MemoryController::new(DramTimings::lpddr4_3200());
        let s = slow.run_trace(&trace);
        let f = fast.run_trace(&trace);
        assert!(f.time_ns < s.time_ns, "3200 must beat 1600");
    }
}
