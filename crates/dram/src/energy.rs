//! DRAM energy accounting (pJ/bit scale models).
//!
//! Converts a [`TraceResult`] into joules
//! using device-class energy coefficients: per-bit I/O + core access energy,
//! per-activate row energy, and background power. Coefficients follow
//! published LPDDR4/LPDDR5/HBM2 characterizations (≈4–8 pJ/bit for LPDDR4,
//! ≈3.9 pJ/bit for HBM2).

use crate::controller::TraceResult;
use crate::timing::DramTimings;

/// Energy coefficients for one DRAM device class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Name of the device class.
    pub name: &'static str,
    /// Energy per transferred bit (I/O + core), picojoules.
    pub pj_per_bit: f64,
    /// Energy per row activation, picojoules.
    pub pj_per_activate: f64,
    /// Background (standby + refresh) power, milliwatts.
    pub background_mw: f64,
}

impl EnergyModel {
    /// LPDDR4/LPDDR4X-class coefficients.
    pub const fn lpddr4() -> Self {
        Self { name: "LPDDR4", pj_per_bit: 6.0, pj_per_activate: 900.0, background_mw: 80.0 }
    }

    /// LPDDR5-class coefficients.
    pub const fn lpddr5() -> Self {
        Self { name: "LPDDR5", pj_per_bit: 4.5, pj_per_activate: 850.0, background_mw: 90.0 }
    }

    /// HBM2-class coefficients.
    pub const fn hbm2() -> Self {
        Self { name: "HBM2", pj_per_bit: 3.9, pj_per_activate: 700.0, background_mw: 500.0 }
    }

    /// The matching model for a timing preset.
    pub fn for_timings(t: &DramTimings) -> Self {
        if t.name.starts_with("HBM2") {
            Self::hbm2()
        } else if t.name.starts_with("LPDDR5") {
            Self::lpddr5()
        } else {
            Self::lpddr4()
        }
    }

    /// Total energy in joules for a replayed trace.
    pub fn energy_j(&self, res: &TraceResult) -> f64 {
        let transfer = res.bytes_moved as f64 * 8.0 * self.pj_per_bit * 1e-12;
        let activates = res.row_misses as f64 * self.pj_per_activate * 1e-12;
        let background = self.background_mw * 1e-3 * res.time_ns * 1e-9;
        transfer + activates + background
    }

    /// Average power in watts over the trace duration.
    pub fn avg_power_w(&self, res: &TraceResult) -> f64 {
        if res.time_ns <= 0.0 {
            0.0
        } else {
            self.energy_j(res) / (res.time_ns * 1e-9)
        }
    }

    /// Energy for moving `bytes` with a given row-hit profile, without a
    /// full trace — used by the analytical platform models.
    pub fn energy_for_bytes_j(&self, bytes: u64, row_hit_rate: f64, time_ns: f64) -> f64 {
        let bursts_missing = bytes as f64 / 256.0 * (1.0 - row_hit_rate.clamp(0.0, 1.0));
        let transfer = bytes as f64 * 8.0 * self.pj_per_bit * 1e-12;
        let activates = bursts_missing * self.pj_per_activate * 1e-12;
        let background = self.background_mw * 1e-3 * time_ns * 1e-9;
        transfer + activates + background
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{MemoryController, Request};

    fn stream_result(bytes: u64) -> TraceResult {
        let mut mc = MemoryController::new(DramTimings::lpddr4_3200());
        let trace: Vec<Request> = (0..bytes / 256).map(|i| Request::read(i * 256, 256)).collect();
        mc.run_trace(&trace)
    }

    #[test]
    fn energy_scales_with_bytes() {
        let m = EnergyModel::lpddr4();
        let small = m.energy_j(&stream_result(1 << 18));
        let large = m.energy_j(&stream_result(1 << 20));
        assert!(large > 3.0 * small, "4x bytes should cost ~4x energy");
    }

    #[test]
    fn per_bit_energy_in_expected_band() {
        // A large stream's energy per bit should approach pj_per_bit (plus
        // small activate/background overhead).
        let m = EnergyModel::lpddr4();
        let res = stream_result(8 << 20);
        let pj_per_bit = m.energy_j(&res) * 1e12 / (res.bytes_moved as f64 * 8.0);
        assert!((6.0..12.0).contains(&pj_per_bit), "effective {pj_per_bit:.1} pJ/bit out of band");
    }

    #[test]
    fn random_traffic_costs_more_per_byte() {
        let m = EnergyModel::lpddr4();
        let seq = stream_result(1 << 20);
        let mut mc = MemoryController::new(DramTimings::lpddr4_3200());
        let mut state = 7u64;
        let trace: Vec<Request> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                Request::read(state % (512 << 20), 256)
            })
            .collect();
        let rnd = mc.run_trace(&trace);
        let seq_per_byte = m.energy_j(&seq) / seq.bytes_moved as f64;
        let rnd_per_byte = m.energy_j(&rnd) / rnd.bytes_moved as f64;
        assert!(rnd_per_byte > seq_per_byte, "activates must make gathers costlier");
    }

    #[test]
    fn model_selection_by_timings() {
        assert_eq!(EnergyModel::for_timings(&DramTimings::hbm2_a100()).name, "HBM2");
        assert_eq!(EnergyModel::for_timings(&DramTimings::lpddr5_onx()).name, "LPDDR5");
        assert_eq!(EnergyModel::for_timings(&DramTimings::lpddr4_3200()).name, "LPDDR4");
        assert_eq!(EnergyModel::for_timings(&DramTimings::lpddr4_1600()).name, "LPDDR4");
    }

    #[test]
    fn analytic_energy_close_to_trace_energy() {
        let m = EnergyModel::lpddr4();
        let res = stream_result(4 << 20);
        let analytic = m.energy_for_bytes_j(res.bytes_moved, res.row_hit_rate(), res.time_ns);
        let traced = m.energy_j(&res);
        let ratio = analytic / traced;
        assert!((0.5..2.0).contains(&ratio), "analytic/traced = {ratio:.2}");
    }
}
