//! # spnerf-dram
//!
//! A Ramulator-like DRAM timing and energy model for the SpNeRF
//! reproduction (DATE 2025). The paper obtains DRAM timing/power from
//! Ramulator configured as LPDDR4-3200 at 59.7 GB/s; this crate provides the
//! equivalent quantities — sustained bandwidth, latency, and energy per
//! request stream — through a bank-state-machine model:
//!
//! * [`timing`] — device presets (LPDDR4-3200/1600, LPDDR5, HBM2) and
//!   geometry/timing parameters,
//! * [`bank`] — per-bank open-page state machine (tRCD/tRP/tRAS/tCL/burst),
//! * [`controller`] — address mapping, trace replay, bandwidth accounting,
//! * [`energy`] — pJ/bit + activate + background energy coefficients,
//! * [`trace`] — sequential / strided / gather trace generators matching the
//!   workloads of SpNeRF (streamed tables) vs VQRF (scattered vertices).
//!
//! # Examples
//!
//! Measure sustained bandwidth of a sequential stream:
//!
//! ```
//! use spnerf_dram::controller::MemoryController;
//! use spnerf_dram::timing::DramTimings;
//! use spnerf_dram::trace::sequential;
//!
//! let timings = DramTimings::lpddr4_3200();
//! let mut mc = MemoryController::new(timings);
//! let result = mc.run_trace(&sequential(0, 1 << 20, 256));
//! assert!(result.efficiency(&timings) > 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod controller;
pub mod energy;
pub mod timing;
pub mod trace;

pub use controller::{MemoryController, Request, TraceResult};
pub use energy::EnergyModel;
pub use timing::DramTimings;
