//! DRAM device timing parameters and presets.
//!
//! The paper obtains DRAM timing and power from Ramulator configured as
//! LPDDR4-3200 with 59.7 GB/s. That bandwidth corresponds to a 3733 MT/s
//! LPDDR4X part on a 128-bit bus (the Jetson Xavier NX memory system); the
//! preset below adopts the paper's stated bandwidth. Additional presets
//! cover the comparison platforms: RT-NeRF's LPDDR4-1600 (17 GB/s), the
//! Orin NX's LPDDR5 (102.4 GB/s) and the A100's HBM2 (1555 GB/s).

/// Timing and geometry of one DRAM configuration. All timings in memory-
/// controller clock cycles; the controller clock is `data_rate_mts / 2`
/// (DDR: two transfers per clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTimings {
    /// Human-readable configuration name.
    pub name: &'static str,
    /// Data rate in mega-transfers per second.
    pub data_rate_mts: u64,
    /// Data bus width in bits (per channel).
    pub bus_width_bits: u64,
    /// Independent channels.
    pub channels: u64,
    /// Banks per channel.
    pub banks: usize,
    /// Bytes per row (page size).
    pub row_bytes: usize,
    /// ACT → RD/WR delay (tRCD).
    pub t_rcd: u64,
    /// PRE → ACT delay (tRP).
    pub t_rp: u64,
    /// Minimum ACT → PRE (tRAS).
    pub t_ras: u64,
    /// Read CAS latency (tCL).
    pub t_cl: u64,
    /// Write CAS latency (tCWL).
    pub t_cwl: u64,
    /// Burst duration in controller cycles (BL/2 for DDR).
    pub t_bl: u64,
    /// Minimum column-to-column delay (tCCD).
    pub t_ccd: u64,
    /// Average refresh interval (tREFI) in controller cycles.
    pub t_refi: u64,
    /// Refresh cycle time (tRFC) in controller cycles — the all-bank stall
    /// each refresh costs.
    pub t_rfc: u64,
}

impl DramTimings {
    /// LPDDR4 at the paper's 59.7 GB/s operating point (Table I / §V-A).
    pub const fn lpddr4_3200() -> Self {
        Self {
            name: "LPDDR4-3200 (59.7 GB/s)",
            data_rate_mts: 3733,
            bus_width_bits: 128,
            channels: 1,
            banks: 8,
            row_bytes: 2048,
            t_rcd: 29,
            t_rp: 32,
            t_ras: 67,
            t_cl: 29,
            t_cwl: 15,
            t_bl: 8, // BL16 on a DDR bus
            t_ccd: 8,
            t_refi: 7280, // ≈3.9 µs at 1866 MHz
            t_rfc: 336,   // ≈180 ns
        }
    }

    /// LPDDR4-1600 at 17 GB/s — RT-NeRF's DRAM configuration (Table II).
    pub const fn lpddr4_1600() -> Self {
        Self {
            name: "LPDDR4-1600 (17 GB/s)",
            data_rate_mts: 1066,
            bus_width_bits: 128,
            channels: 1,
            banks: 8,
            row_bytes: 2048,
            t_rcd: 15,
            t_rp: 16,
            t_ras: 34,
            t_cl: 14,
            t_cwl: 8,
            t_bl: 8,
            t_ccd: 8,
            t_refi: 2080, // ≈3.9 µs at 533 MHz
            t_rfc: 96,
        }
    }

    /// LPDDR5 at 102.4 GB/s — the Jetson Orin NX memory system (Table I).
    pub const fn lpddr5_onx() -> Self {
        Self {
            name: "LPDDR5 (102.4 GB/s)",
            data_rate_mts: 6400,
            bus_width_bits: 128,
            channels: 1,
            banks: 16,
            row_bytes: 2048,
            t_rcd: 36,
            t_rp: 38,
            t_ras: 84,
            t_cl: 40,
            t_cwl: 20,
            t_bl: 8,
            t_ccd: 8,
            t_refi: 12480, // ≈3.9 µs at 3200 MHz
            t_rfc: 672,
        }
    }

    /// HBM2 at 1555 GB/s — the A100 memory system (Table I).
    pub const fn hbm2_a100() -> Self {
        Self {
            name: "HBM2 (1555 GB/s)",
            data_rate_mts: 2430,
            bus_width_bits: 5120,
            channels: 1,
            banks: 32,
            row_bytes: 1024,
            t_rcd: 17,
            t_rp: 17,
            t_ras: 34,
            t_cl: 17,
            t_cwl: 9,
            t_bl: 2, // BL4 over a very wide bus
            t_ccd: 2,
            t_refi: 4738, // ≈3.9 µs at 1215 MHz
            t_rfc: 425,   // ≈350 ns (HBM2 per-channel)
        }
    }

    /// Controller clock frequency in Hz (`data_rate / 2`, DDR).
    pub fn clock_hz(&self) -> f64 {
        self.data_rate_mts as f64 * 1e6 / 2.0
    }

    /// Peak theoretical bandwidth in bytes/second.
    pub fn peak_bandwidth_bps(&self) -> f64 {
        self.data_rate_mts as f64 * 1e6 * (self.bus_width_bits as f64 / 8.0) * self.channels as f64
    }

    /// Peak bandwidth in GB/s (decimal).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.peak_bandwidth_bps() / 1e9
    }

    /// Bytes transferred by one burst.
    pub fn burst_bytes(&self) -> usize {
        // One burst keeps the bus busy for t_bl controller cycles, i.e.
        // 2·t_bl transfers of bus_width bits.
        (2 * self.t_bl * self.bus_width_bits / 8) as usize
    }

    /// Converts controller cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz() * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpddr4_matches_paper_bandwidth() {
        let t = DramTimings::lpddr4_3200();
        let bw = t.peak_bandwidth_gbps();
        assert!((bw - 59.7).abs() < 0.3, "expected ≈59.7 GB/s, got {bw}");
    }

    #[test]
    fn rtnerf_config_is_17_gbps() {
        let bw = DramTimings::lpddr4_1600().peak_bandwidth_gbps();
        assert!((bw - 17.0).abs() < 0.2, "got {bw}");
    }

    #[test]
    fn onx_config_is_102_gbps() {
        let bw = DramTimings::lpddr5_onx().peak_bandwidth_gbps();
        assert!((bw - 102.4).abs() < 0.5, "got {bw}");
    }

    #[test]
    fn hbm2_config_is_1555_gbps() {
        let bw = DramTimings::hbm2_a100().peak_bandwidth_gbps();
        assert!((bw - 1555.0).abs() < 10.0, "got {bw}");
    }

    #[test]
    fn burst_moves_full_bus_width() {
        let t = DramTimings::lpddr4_3200();
        // BL16 × 128-bit = 256 B per burst.
        assert_eq!(t.burst_bytes(), 256);
    }

    #[test]
    fn timing_sanity() {
        for t in [
            DramTimings::lpddr4_3200(),
            DramTimings::lpddr4_1600(),
            DramTimings::lpddr5_onx(),
            DramTimings::hbm2_a100(),
        ] {
            assert!(t.t_ras >= t.t_rcd, "{}: tRAS ≥ tRCD", t.name);
            assert!(t.banks > 0 && t.row_bytes > 0);
            assert!(t.clock_hz() > 0.0);
        }
    }

    #[test]
    fn cycles_to_ns_scales_with_clock() {
        let t = DramTimings::lpddr4_3200();
        let ns = t.cycles_to_ns(t.data_rate_mts / 2); // 1e6 cycles... scaled
        assert!(ns > 0.0);
        // 1 controller cycle at 1866.5 MHz ≈ 0.536 ns.
        assert!((t.cycles_to_ns(1) - 0.5357).abs() < 0.01);
    }
}
