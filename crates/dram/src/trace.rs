//! Synthetic access-trace generators.
//!
//! The accelerator simulator and the platform models exercise the DRAM model
//! with three archetypes:
//!
//! * [`sequential`] — SpNeRF streaming a subgrid's hash table / bitmap slice
//!   into on-chip SRAM (double-buffered, near-peak bandwidth);
//! * [`strided`] — plane-separated feature-channel reads;
//! * [`gather`] — VQRF's irregular per-vertex fetches from the restored
//!   grid, the pattern that makes edge GPUs memory-bound.

use crate::controller::Request;

/// A sequential read stream of `bytes` bytes starting at `base`, issued in
/// `chunk`-byte requests.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn sequential(base: u64, bytes: u64, chunk: u32) -> Vec<Request> {
    assert!(chunk > 0, "chunk must be non-zero");
    let n = bytes.div_ceil(chunk as u64);
    (0..n).map(|i| Request::read(base + i * chunk as u64, chunk)).collect()
}

/// A strided read pattern: `count` requests of `bytes_each`, `stride` bytes
/// apart — feature-plane access with plane separation.
///
/// # Panics
///
/// Panics if `bytes_each` is zero.
pub fn strided(base: u64, count: usize, stride: u64, bytes_each: u32) -> Vec<Request> {
    assert!(bytes_each > 0, "bytes_each must be non-zero");
    (0..count as u64).map(|i| Request::read(base + i * stride, bytes_each)).collect()
}

/// A deterministic pseudo-random gather: `count` reads of `bytes_each`
/// scattered over `region_bytes` — the irregular voxel-vertex fetch pattern
/// of hash-table-free rendering.
///
/// # Panics
///
/// Panics if `region_bytes` or `bytes_each` is zero.
pub fn gather(count: usize, region_bytes: u64, bytes_each: u32, seed: u64) -> Vec<Request> {
    assert!(region_bytes > 0, "region must be non-empty");
    assert!(bytes_each > 0, "bytes_each must be non-zero");
    let mut state = seed;
    (0..count)
        .map(|_| {
            // SplitMix64 step — deterministic, well-spread addresses.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let addr = (z % region_bytes) & !63; // 64 B aligned
            Request::read(addr, bytes_each)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::MemoryController;
    use crate::timing::DramTimings;

    #[test]
    fn sequential_covers_requested_bytes() {
        let t = sequential(0, 1000, 256);
        assert_eq!(t.len(), 4);
        let total: u64 = t.iter().map(|r| r.bytes as u64).sum();
        assert!(total >= 1000);
        assert_eq!(t[1].addr, 256);
    }

    #[test]
    fn strided_spacing() {
        let t = strided(100, 5, 4096, 64);
        assert_eq!(t.len(), 5);
        assert_eq!(t[2].addr - t[1].addr, 4096);
    }

    #[test]
    fn gather_is_deterministic_and_in_region() {
        let a = gather(100, 1 << 20, 64, 42);
        let b = gather(100, 1 << 20, 64, 42);
        assert_eq!(a, b);
        for r in &a {
            assert!(r.addr < 1 << 20);
            assert_eq!(r.addr % 64, 0);
        }
        let c = gather(100, 1 << 20, 64, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn archetype_bandwidth_ordering() {
        // sequential > strided > gather on the same device.
        let timings = DramTimings::lpddr4_3200();
        let mut mc = MemoryController::new(timings);
        let seq = mc.run_trace(&sequential(0, 1 << 20, 256));
        let mut mc = MemoryController::new(timings);
        let str_ = mc.run_trace(&strided(0, 4096, 8192, 256));
        let mut mc = MemoryController::new(timings);
        let gat = mc.run_trace(&gather(4096, 1 << 30, 64, 7));
        assert!(
            seq.achieved_gbps > str_.achieved_gbps,
            "seq {} vs strided {}",
            seq.achieved_gbps,
            str_.achieved_gbps
        );
        assert!(
            str_.achieved_gbps > gat.achieved_gbps,
            "strided {} vs gather {}",
            str_.achieved_gbps,
            gat.achieved_gbps
        );
    }
}
