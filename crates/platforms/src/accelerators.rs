//! Published operating points of the edge-accelerator baselines
//! (Table II): RT-NeRF.Edge and NeuRex.Edge.
//!
//! The paper compares against these accelerators' published numbers rather
//! than re-implementations; this module encodes the same data. NeuRex only
//! publishes normalized speedup, so — exactly like the paper's Table II
//! footnote — its FPS is inferred from the Jetson XNX rendering speed.

/// A published accelerator operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorSpec {
    /// Accelerator name.
    pub name: &'static str,
    /// On-chip SRAM in MB.
    pub sram_mb: f64,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Process node in nm.
    pub tech_nm: u32,
    /// Power in W.
    pub power_w: f64,
    /// DRAM description as printed in Table II.
    pub dram: &'static str,
    /// Rendering speed in FPS.
    pub fps: f64,
}

impl AcceleratorSpec {
    /// RT-NeRF.Edge (ICCAD 2022) — Table II column 1.
    pub fn rt_nerf_edge() -> Self {
        Self {
            name: "RT-NeRF.Edge",
            sram_mb: 3.5,
            area_mm2: 18.85,
            tech_nm: 28,
            power_w: 8.0,
            dram: "LPDDR4-1600 17 GB/s",
            fps: 45.0,
        }
    }

    /// NeuRex.Edge (ISCA 2023) — Table II column 2, FPS as the paper infers
    /// it from the Jetson XNX speed (6.57 FPS).
    pub fn neurex_edge() -> Self {
        Self {
            name: "NeuRex.Edge",
            sram_mb: 0.86,
            area_mm2: 1.31,
            tech_nm: 28,
            power_w: 1.31,
            dram: "LPDDR4-3200 59.7 GB/s",
            fps: 6.57,
        }
    }

    /// NeuRex.Edge with its FPS re-inferred from a modeled XNX speed, using
    /// the same speedup factor the paper's footnote applies
    /// (`6.57 FPS / 0.71 XNX-FPS ≈ 9.25×`).
    pub fn neurex_edge_from_xnx(xnx_fps: f64) -> Self {
        Self { fps: xnx_fps * 9.25, ..Self::neurex_edge() }
    }

    /// Energy efficiency in FPS/W.
    pub fn energy_efficiency(&self) -> f64 {
        self.fps / self.power_w
    }

    /// Area efficiency in FPS/mm².
    pub fn area_efficiency(&self) -> f64 {
        self.fps / self.area_mm2
    }

    /// Both baselines in Table II order.
    pub fn baselines() -> [AcceleratorSpec; 2] {
        [Self::rt_nerf_edge(), Self::neurex_edge()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rt_nerf_row() {
        let rt = AcceleratorSpec::rt_nerf_edge();
        assert_eq!(rt.sram_mb, 3.5);
        assert_eq!(rt.area_mm2, 18.85);
        assert_eq!(rt.power_w, 8.0);
        assert_eq!(rt.fps, 45.0);
        // Published efficiencies: 5.63 FPS/W and 2.38 FPS/mm².
        assert!((rt.energy_efficiency() - 5.63).abs() < 0.01);
        assert!((rt.area_efficiency() - 2.38).abs() < 0.03);
    }

    #[test]
    fn table2_neurex_row() {
        let nx = AcceleratorSpec::neurex_edge();
        assert_eq!(nx.sram_mb, 0.86);
        assert_eq!(nx.power_w, 1.31);
        assert_eq!(nx.fps, 6.57);
        // Published energy efficiency is 5.15 FPS/W; the straight division
        // gives 5.02 — the paper's own rounding.
        assert!((nx.energy_efficiency() - 5.02).abs() < 0.05);
    }

    #[test]
    fn neurex_inference_from_xnx() {
        // At the paper's XNX speed (≈0.71 FPS) the inferred NeuRex FPS
        // recovers the published 6.57.
        let nx = AcceleratorSpec::neurex_edge_from_xnx(0.71);
        assert!((nx.fps - 6.57).abs() < 0.05, "inferred {}", nx.fps);
    }

    #[test]
    fn paper_speedup_targets() {
        // SpNeRF at 67.56 FPS is 1.5× RT-NeRF and 10.3× NeuRex.
        let sp = 67.56;
        assert!((sp / AcceleratorSpec::rt_nerf_edge().fps - 1.5).abs() < 0.01);
        assert!((sp / AcceleratorSpec::neurex_edge().fps - 10.28).abs() < 0.05);
    }
}
