//! # spnerf-platforms
//!
//! Baseline platform models for the SpNeRF reproduction (DATE 2025):
//!
//! * [`spec`] — Table I platform specifications (A100, Jetson Orin NX,
//!   Jetson Xavier NX) with calibrated roofline parameters,
//! * [`vqrf_workload`] — the bytes/FLOPs the original VQRF restore+render
//!   flow moves per frame,
//! * [`roofline`] — the GPU execution model behind Fig. 2(a)'s runtime
//!   split and Fig. 8's Jetson baselines,
//! * [`accelerators`] — published RT-NeRF.Edge / NeuRex.Edge operating
//!   points (Table II).
//!
//! # Examples
//!
//! Model VQRF on a Jetson Xavier NX:
//!
//! ```
//! use spnerf_platforms::roofline::estimate_frame;
//! use spnerf_platforms::spec::PlatformSpec;
//! use spnerf_platforms::vqrf_workload::VqrfGpuWorkload;
//!
//! let workload = VqrfGpuWorkload::new(160 * 160 * 160, 25_600_000, 1_280_000, 1 << 20);
//! let est = estimate_frame(&PlatformSpec::xnx(), &workload);
//! assert!(est.memory_fraction() > 0.5); // memory-bound, as profiled
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerators;
pub mod roofline;
pub mod spec;
pub mod vqrf_workload;

pub use accelerators::AcceleratorSpec;
pub use roofline::{estimate_frame, GpuFrameEstimate};
pub use spec::PlatformSpec;
pub use vqrf_workload::VqrfGpuWorkload;
