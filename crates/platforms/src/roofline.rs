//! Roofline-style GPU execution model for the VQRF flow.
//!
//! Produces per-frame time split into restore, gather and compute phases —
//! the quantities behind Fig. 2(a) (memory-access share of runtime) and the
//! Jetson baselines of Fig. 8 (absolute FPS). Phases serialize, as the
//! profiled kernels do.

use crate::spec::PlatformSpec;
use crate::vqrf_workload::VqrfGpuWorkload;

/// Modeled timing of one VQRF frame on a GPU platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuFrameEstimate {
    /// Seconds spent restoring the dense grid (streaming write + read).
    pub t_restore_s: f64,
    /// Seconds spent gathering voxel vertices (irregular reads, L2-filtered).
    pub t_gather_s: f64,
    /// Seconds spent in interpolation + MLP compute.
    pub t_compute_s: f64,
}

impl GpuFrameEstimate {
    /// Total frame time.
    pub fn total_s(&self) -> f64 {
        self.t_restore_s + self.t_gather_s + self.t_compute_s
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        1.0 / self.total_s()
    }

    /// Fraction of runtime spent accessing memory — the Fig. 2(a) metric.
    pub fn memory_fraction(&self) -> f64 {
        (self.t_restore_s + self.t_gather_s) / self.total_s()
    }
}

/// Estimates one VQRF frame on `platform`.
pub fn estimate_frame(platform: &PlatformSpec, w: &VqrfGpuWorkload) -> GpuFrameEstimate {
    let bw = platform.effective_bandwidth_bps();
    let t_restore_s = w.restore_traffic_bytes() as f64 / bw;
    // Gather traffic is filtered by the L2: only misses reach DRAM. The
    // working set is the restored grid itself.
    let miss = platform.l2_miss_rate(w.restored_bytes);
    let t_gather_s = w.gather_bytes * miss / bw;
    let t_compute_s = w.total_flops() / platform.effective_fp16_flops();
    GpuFrameEstimate { t_restore_s, t_gather_s, t_compute_s }
}

/// Energy per frame on the platform (board power × frame time).
pub fn frame_energy_j(platform: &PlatformSpec, est: &GpuFrameEstimate) -> f64 {
    platform.power_w * est.total_s()
}

/// Energy efficiency in FPS/W.
pub fn energy_efficiency(platform: &PlatformSpec, est: &GpuFrameEstimate) -> f64 {
    est.fps() / platform.power_w
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A paper-scale frame: 160³ grid, 640k rays, ~40 marched and ~2 shaded
    /// samples per ray.
    fn paper_frame() -> VqrfGpuWorkload {
        VqrfGpuWorkload::new(160 * 160 * 160, 25_600_000, 1_280_000, 1 << 20)
    }

    #[test]
    fn edge_platforms_are_memory_bound() {
        let w = paper_frame();
        for p in [PlatformSpec::xnx(), PlatformSpec::onx()] {
            let est = estimate_frame(&p, &w);
            assert!(
                est.memory_fraction() > 0.6,
                "{} memory fraction {:.2} should dominate",
                p.name,
                est.memory_fraction()
            );
        }
    }

    #[test]
    fn a100_is_not_memory_bound() {
        let est = estimate_frame(&PlatformSpec::a100(), &paper_frame());
        assert!(
            est.memory_fraction() < 0.35,
            "A100 memory fraction {:.2} should be small",
            est.memory_fraction()
        );
    }

    #[test]
    fn fig2a_ratio_band() {
        // Edge memory-share is 4.79×–5.14× the A100's in the paper; the
        // model should land in a generous band around that.
        let w = paper_frame();
        let a100 = estimate_frame(&PlatformSpec::a100(), &w).memory_fraction();
        for p in [PlatformSpec::xnx(), PlatformSpec::onx()] {
            let edge = estimate_frame(&p, &w).memory_fraction();
            let ratio = edge / a100;
            assert!(
                (3.0..8.0).contains(&ratio),
                "{}: edge/A100 memory-share ratio {ratio:.2} outside band",
                p.name
            );
        }
    }

    #[test]
    fn fps_ordering_matches_hardware_class() {
        let w = paper_frame();
        let a = estimate_frame(&PlatformSpec::a100(), &w).fps();
        let o = estimate_frame(&PlatformSpec::onx(), &w).fps();
        let x = estimate_frame(&PlatformSpec::xnx(), &w).fps();
        assert!(a > 20.0 * o, "A100 {a:.1} must crush ONX {o:.2}");
        assert!(o > x, "ONX {o:.2} must beat XNX {x:.2}");
        // Jetsons render around or below 1–2 FPS on VQRF.
        assert!(x < 2.0, "XNX fps {x:.2}");
    }

    #[test]
    fn onx_to_xnx_speed_ratio_near_paper() {
        // 95.1 / 63.5 ⇒ ONX ≈ 1.5× XNX.
        let w = paper_frame();
        let o = estimate_frame(&PlatformSpec::onx(), &w).fps();
        let x = estimate_frame(&PlatformSpec::xnx(), &w).fps();
        let ratio = o / x;
        assert!((1.2..1.9).contains(&ratio), "ONX/XNX ratio {ratio:.2}");
    }

    #[test]
    fn energy_metrics_consistent() {
        let w = paper_frame();
        let p = PlatformSpec::xnx();
        let est = estimate_frame(&p, &w);
        let e = frame_energy_j(&p, &est);
        assert!((e - p.power_w * est.total_s()).abs() < 1e-12);
        let eff = energy_efficiency(&p, &est);
        assert!((eff - est.fps() / 20.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_grids_slow_every_platform() {
        let small = VqrfGpuWorkload::new(128usize.pow(3), 25_600_000, 1_280_000, 1 << 20);
        let large = VqrfGpuWorkload::new(200usize.pow(3), 25_600_000, 1_280_000, 1 << 20);
        for p in PlatformSpec::all() {
            let fs = estimate_frame(&p, &small).fps();
            let fl = estimate_frame(&p, &large).fps();
            assert!(fl < fs, "{}: larger grid must be slower", p.name);
        }
    }
}
