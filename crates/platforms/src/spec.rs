//! Table I: the profiled computing platforms.
//!
//! Specifications of the NVIDIA A100 (high-end) and the Jetson Orin NX /
//! Xavier NX (edge) exactly as the paper lists them, plus the calibration
//! parameters the roofline model needs (bandwidth efficiency, compute
//! utilization, cache-reuse factors). The calibration values are chosen so
//! the modeled VQRF runtime split reproduces Fig. 2(a) and the modeled edge
//! FPS sits in the Fig. 8 speedup bands; see EXPERIMENTS.md.

use spnerf_dram::timing::DramTimings;

/// A GPU platform from Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformSpec {
    /// Platform name.
    pub name: &'static str,
    /// Process node in nm.
    pub tech_nm: u32,
    /// Board power in W (Table I).
    pub power_w: f64,
    /// DRAM configuration.
    pub dram: DramTimings,
    /// GPU L2 cache in bytes.
    pub l2_bytes: usize,
    /// Peak FP32 throughput in TFLOPS.
    pub fp32_tflops: f64,
    /// Peak FP16 throughput in TFLOPS.
    pub fp16_tflops: f64,
    /// Calibrated model parameters.
    pub model: GpuModelParams,
}

/// Calibration parameters of the GPU execution model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModelParams {
    /// Fraction of peak DRAM bandwidth sustained on the mixed
    /// restore+gather traffic.
    pub bw_efficiency: f64,
    /// Fraction of peak FP16 throughput sustained on the small-batch
    /// interpolation/MLP kernels.
    pub compute_utilization: f64,
    /// Temporal-reuse multiplier: how many times its capacity the L2
    /// effectively serves during one frame (voxels are shared between rays).
    pub l2_reuse_factor: f64,
    /// Upper bound on the modeled L2 hit rate.
    pub max_hit_rate: f64,
}

impl PlatformSpec {
    /// NVIDIA A100 (SXM4 40 GB) — Table I column 1.
    pub fn a100() -> Self {
        Self {
            name: "A100",
            tech_nm: 7,
            power_w: 400.0,
            dram: DramTimings::hbm2_a100(),
            l2_bytes: 40 << 20,
            fp32_tflops: 19.5,
            fp16_tflops: 78.0,
            model: GpuModelParams {
                bw_efficiency: 0.80,
                compute_utilization: 0.13,
                l2_reuse_factor: 10.0,
                max_hit_rate: 0.98,
            },
        }
    }

    /// Jetson Orin NX 16 GB — Table I column 2.
    pub fn onx() -> Self {
        Self {
            name: "ONX",
            tech_nm: 8,
            power_w: 25.0,
            dram: DramTimings::lpddr5_onx(),
            l2_bytes: 4 << 20,
            fp32_tflops: 1.9,
            fp16_tflops: 3.8,
            model: GpuModelParams {
                bw_efficiency: 0.36,
                compute_utilization: 0.065,
                l2_reuse_factor: 8.0,
                max_hit_rate: 0.95,
            },
        }
    }

    /// Jetson Xavier NX 16 GB — Table I column 3.
    pub fn xnx() -> Self {
        Self {
            name: "XNX",
            tech_nm: 16,
            power_w: 20.0,
            dram: DramTimings::lpddr4_3200(),
            l2_bytes: 512 << 10,
            fp32_tflops: 0.885,
            fp16_tflops: 1.69,
            model: GpuModelParams {
                bw_efficiency: 0.50,
                compute_utilization: 0.10,
                l2_reuse_factor: 8.0,
                max_hit_rate: 0.95,
            },
        }
    }

    /// The three profiled platforms in Table I order.
    pub fn all() -> [PlatformSpec; 3] {
        [Self::a100(), Self::onx(), Self::xnx()]
    }

    /// Modeled L2 miss rate for a working set of `working_set_bytes`.
    pub fn l2_miss_rate(&self, working_set_bytes: usize) -> f64 {
        if working_set_bytes == 0 {
            return 0.0;
        }
        let coverage = self.model.l2_reuse_factor * self.l2_bytes as f64 / working_set_bytes as f64;
        1.0 - coverage.min(self.model.max_hit_rate)
    }

    /// Effective DRAM bandwidth in bytes/s.
    pub fn effective_bandwidth_bps(&self) -> f64 {
        self.dram.peak_bandwidth_bps() * self.model.bw_efficiency
    }

    /// Effective FP16 compute in FLOP/s.
    pub fn effective_fp16_flops(&self) -> f64 {
        self.fp16_tflops * 1e12 * self.model.compute_utilization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let a100 = PlatformSpec::a100();
        assert_eq!(a100.tech_nm, 7);
        assert_eq!(a100.power_w, 400.0);
        assert!((a100.dram.peak_bandwidth_gbps() - 1555.0).abs() < 10.0);
        assert_eq!(a100.l2_bytes, 40 << 20);

        let onx = PlatformSpec::onx();
        assert_eq!(onx.tech_nm, 8);
        assert_eq!(onx.power_w, 25.0);
        assert!((onx.dram.peak_bandwidth_gbps() - 102.4).abs() < 0.5);

        let xnx = PlatformSpec::xnx();
        assert_eq!(xnx.tech_nm, 16);
        assert_eq!(xnx.power_w, 20.0);
        assert!((xnx.dram.peak_bandwidth_gbps() - 59.7).abs() < 0.3);
        assert_eq!(xnx.l2_bytes, 512 << 10);
        assert!((xnx.fp16_tflops - 1.69).abs() < 1e-9);
    }

    #[test]
    fn miss_rate_orders_by_cache_size() {
        let ws = 213 << 20; // a restored 160³ grid
        let a = PlatformSpec::a100().l2_miss_rate(ws);
        let o = PlatformSpec::onx().l2_miss_rate(ws);
        let x = PlatformSpec::xnx().l2_miss_rate(ws);
        assert!(a < o && o < x, "miss rates A100 {a:.2} < ONX {o:.2} < XNX {x:.2}");
        assert!(x > 0.9, "XNX's 512 KB L2 must miss almost always, got {x:.2}");
        assert!(a < 0.1, "A100's 40 MB L2 must mostly hit, got {a:.2}");
    }

    #[test]
    fn miss_rate_bounds() {
        let p = PlatformSpec::xnx();
        assert_eq!(p.l2_miss_rate(0), 0.0);
        let tiny = p.l2_miss_rate(1024);
        assert!((0.0..=1.0).contains(&tiny));
        assert!(tiny <= 1.0 - 0.0);
        let huge = p.l2_miss_rate(usize::MAX / 2);
        assert!(huge <= 1.0 && huge > 0.99);
    }

    #[test]
    fn effective_rates_below_peaks() {
        for p in PlatformSpec::all() {
            assert!(p.effective_bandwidth_bps() < p.dram.peak_bandwidth_bps());
            assert!(p.effective_fp16_flops() < p.fp16_tflops * 1e12);
        }
    }
}
