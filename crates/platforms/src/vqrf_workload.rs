//! Bytes-moved / FLOPs model of the VQRF restore+render flow on a GPU.
//!
//! The original VQRF flow (Fig. 1, top) restores the full voxel grid and
//! then renders from it. On a GPU that means, per frame:
//!
//! * **restore traffic** — write the full f32 grid, read the compressed
//!   model;
//! * **gather traffic** — for every marched sample, fetch 8 vertices; the
//!   features are stored as 13 separate channel planes, so each vertex
//!   touches 13 distinct cache sectors (32 B each) — the irregular pattern
//!   that makes the workload memory-bound on edge GPUs;
//! * **compute** — trilinear interpolation plus the 3-layer MLP on the
//!   shaded samples.

use spnerf_render::mlp::Mlp;

/// Cache-sector bytes touched per vertex fetch: 13 channel planes × 32 B
/// sectors.
pub const SECTOR_BYTES_PER_VERTEX: usize = 13 * 32;

/// Fraction of vertex fetches that are unique after intra-warp/L1
/// deduplication (neighbouring samples share cell corners).
pub const UNIQUE_VERTEX_FRACTION: f64 = 0.35;

/// Per-frame workload of VQRF on a GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VqrfGpuWorkload {
    /// Bytes of the restored f32 voxel grid (written once, then the gather
    /// working set).
    pub restored_bytes: usize,
    /// Bytes of the compressed model read during restore.
    pub compressed_bytes: usize,
    /// Vertex fetches issued by interpolation (samples × 8).
    pub vertex_fetches: u64,
    /// DRAM bytes a fully-missing gather stream would touch.
    pub gather_bytes: f64,
    /// FP16 FLOPs of MLP evaluation.
    pub mlp_flops: f64,
    /// FP16 FLOPs of trilinear interpolation.
    pub interp_flops: f64,
}

impl VqrfGpuWorkload {
    /// Builds the workload from frame statistics.
    ///
    /// * `grid_voxels` — voxel count of the (restored) grid,
    /// * `samples_marched` / `samples_shaded` — from the reference renderer,
    /// * `compressed_bytes` — size of the compressed VQRF artifact.
    pub fn new(
        grid_voxels: usize,
        samples_marched: u64,
        samples_shaded: u64,
        compressed_bytes: usize,
    ) -> Self {
        let restored_bytes = grid_voxels * 13 * 4;
        let vertex_fetches = samples_marched * 8;
        let gather_bytes =
            vertex_fetches as f64 * UNIQUE_VERTEX_FRACTION * SECTOR_BYTES_PER_VERTEX as f64;
        // Interp: 8 corners × 13 channels × (1 mul + 1 add) + weight math.
        let interp_flops = samples_marched as f64 * (8.0 * 13.0 * 2.0 + 24.0);
        let mlp_flops = samples_shaded as f64 * Mlp::macs_per_sample() as f64 * 2.0;
        Self {
            restored_bytes,
            compressed_bytes,
            vertex_fetches,
            gather_bytes,
            mlp_flops,
            interp_flops,
        }
    }

    /// Total restore-phase DRAM traffic (write grid + read compressed).
    pub fn restore_traffic_bytes(&self) -> usize {
        self.restored_bytes + self.compressed_bytes
    }

    /// Total compute FLOPs.
    pub fn total_flops(&self) -> f64 {
        self.mlp_flops + self.interp_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restored_grid_is_13_f32_channels() {
        let w = VqrfGpuWorkload::new(160 * 160 * 160, 0, 0, 1 << 20);
        assert_eq!(w.restored_bytes, 160 * 160 * 160 * 13 * 4);
        // ≈ 213 MB for a 160³ grid — far beyond any edge L2.
        assert!(w.restored_bytes > 200 << 20);
    }

    #[test]
    fn gather_traffic_scales_with_samples() {
        let a = VqrfGpuWorkload::new(1 << 20, 1_000_000, 100_000, 1 << 20);
        let b = VqrfGpuWorkload::new(1 << 20, 2_000_000, 100_000, 1 << 20);
        assert!((b.gather_bytes / a.gather_bytes - 2.0).abs() < 1e-9);
        assert_eq!(a.vertex_fetches, 8_000_000);
    }

    #[test]
    fn flops_dominated_by_mlp() {
        let w = VqrfGpuWorkload::new(1 << 20, 25_000_000, 1_250_000, 1 << 20);
        assert!(w.mlp_flops > w.interp_flops);
        // 1.25M shaded × 21760 MACs × 2 ≈ 54 GFLOP.
        assert!((w.mlp_flops / 1e9 - 54.4).abs() < 1.0);
    }

    #[test]
    fn restore_traffic_includes_compressed_read() {
        let w = VqrfGpuWorkload::new(1000, 0, 0, 4096);
        assert_eq!(w.restore_traffic_bytes(), 1000 * 52 + 4096);
    }
}
