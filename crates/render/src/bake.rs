//! The deterministic bake pass: precomputes a [`BakedGrid`] from any
//! [`VoxelSource`] and color [`Mlp`] for deferred (SNeRG-style) rendering.
//!
//! Baking walks every occupied vertex once, in the grid's canonical x-major
//! order, and stores:
//!
//! * **density** — copied verbatim, so the baked support (and therefore
//!   marching, early termination, and empty-space skipping) is identical to
//!   the source's;
//! * **diffuse RGB** — the full color MLP evaluated at the vertex's
//!   features with a fixed [`canonical_view_dir`] encoding, the one
//!   expensive step the render loop no longer pays per sample;
//! * **specular feature** — a compact [`SPEC_DIM`]-channel projection of
//!   the vertex features (identity-truncation of the leading channels),
//!   which the marcher accumulates along the ray for the per-pixel
//!   [`crate::mlp::DeferredMlp`].
//!
//! The pass is a pure function of `(source, mlp)`: single-threaded, no RNG,
//! no ambient state. Baking twice yields byte-identical grids
//! ([`BakedGrid::digest`] pins this), and because [`Mlp::forward_with`]'s
//! scalar and lane paths are bitwise-equal, the bake output is also
//! independent of the `simd` feature.

use crate::mlp::{encode_direction, Mlp, MlpScratch, MLP_INPUT_DIM};
use crate::source::VoxelSource;
use crate::vec3::Vec3;
use spnerf_voxel::baked::{BakedGrid, SPEC_DIM};
use spnerf_voxel::FEATURE_DIM;

/// The fixed view direction diffuse colors are baked at (towards −z, the
/// default orbit camera's dominant viewing axis). Every bake uses this same
/// direction, so baked grids are comparable across scenes and sessions.
pub fn canonical_view_dir() -> Vec3 {
    Vec3::new(0.0, 0.0, -1.0)
}

/// Bakes `source` through `mlp` into a [`BakedGrid`].
///
/// See the module docs for what is precomputed and the determinism
/// contract. Cost is one MLP forward per occupied vertex — paid once,
/// then amortized over every subsequent deferred render.
///
/// # Examples
///
/// ```
/// use spnerf_render::bake::bake;
/// use spnerf_render::mlp::Mlp;
/// use spnerf_render::scene::{build_grid, SceneId};
///
/// let grid = build_grid(SceneId::Lego, 16);
/// let baked = bake(&grid, &Mlp::random(42));
/// assert_eq!(baked.occupied_count(), grid.occupied_count());
/// assert_eq!(baked.digest(), bake(&grid, &Mlp::random(42)).digest());
/// ```
pub fn bake<S: VoxelSource + ?Sized>(source: &S, mlp: &Mlp) -> BakedGrid {
    let dims = source.dims();
    let mut baked = BakedGrid::zeros(dims);
    let mut input = [0.0f32; MLP_INPUT_DIM];
    input[FEATURE_DIM..].copy_from_slice(&encode_direction(canonical_view_dir()));
    let mut scratch = MlpScratch::new();
    for c in dims.iter() {
        let Some(data) = source.fetch(c) else { continue };
        if data.density <= 0.0 {
            continue;
        }
        input[..FEATURE_DIM].copy_from_slice(&data.features);
        let diffuse = mlp.forward_with(&input, &mut scratch);
        let mut spec = [0.0f32; SPEC_DIM];
        spec.copy_from_slice(&data.features[..SPEC_DIM]);
        baked.set_voxel(c, data.density, diffuse, spec);
    }
    baked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{build_grid, SceneId};
    use crate::source::support_bitmap;

    #[test]
    fn bake_is_idempotent_bit_for_bit() {
        // The satellite contract: bake twice ⇒ identical digest. The grid
        // and MLP are both pure functions of their seeds, so the whole
        // chain must reproduce.
        let grid = build_grid(SceneId::Mic, 14);
        let mlp = Mlp::random(42);
        let a = bake(&grid, &mlp);
        let b = bake(&grid, &mlp);
        assert_eq!(a.digest(), b.digest(), "bake must be deterministic");
        assert_eq!(a, b);
    }

    #[test]
    fn bake_preserves_support_and_density_exactly() {
        let grid = build_grid(SceneId::Lego, 12);
        let baked = bake(&grid, &Mlp::random(7));
        assert_eq!(baked.occupied_count(), grid.occupied_count());
        assert_eq!(
            support_bitmap(baked.as_grid()),
            support_bitmap(&grid),
            "baked support must equal the source support (skipping depends on it)"
        );
        for c in grid.dims().iter() {
            match grid.fetch(c) {
                Some(data) => assert_eq!(baked.density(c).to_bits(), data.density.to_bits()),
                None => assert_eq!(baked.density(c), 0.0, "empty vertex {c} must stay empty"),
            }
        }
    }

    #[test]
    fn baked_payload_is_mlp_output_and_truncated_features() {
        let grid = build_grid(SceneId::Chair, 10);
        let mlp = Mlp::random(3);
        let baked = bake(&grid, &mlp);
        let mut input = [0.0f32; MLP_INPUT_DIM];
        input[FEATURE_DIM..].copy_from_slice(&encode_direction(canonical_view_dir()));
        let mut checked = 0usize;
        for c in grid.dims().iter() {
            let Some(data) = grid.fetch(c) else { continue };
            input[..FEATURE_DIM].copy_from_slice(&data.features);
            let want = mlp.forward(&input);
            let got = baked.diffuse(c);
            for ch in 0..3 {
                assert_eq!(got[ch].to_bits(), want[ch].to_bits(), "diffuse diverged at {c}");
                assert!((0.0..=1.0).contains(&got[ch]), "diffuse out of range at {c}");
            }
            assert_eq!(&baked.spec(c)[..], &data.features[..SPEC_DIM], "spec projection at {c}");
            checked += 1;
        }
        assert!(checked > 0, "test scene must have occupied vertices");
    }

    #[test]
    fn different_mlps_bake_different_colors() {
        let grid = build_grid(SceneId::Drums, 10);
        let a = bake(&grid, &Mlp::random(1));
        let b = bake(&grid, &Mlp::random(2));
        assert_ne!(a.digest(), b.digest());
        // ... but identical support either way.
        assert_eq!(a.occupied_count(), b.occupied_count());
    }
}
