//! Pinhole cameras and pose generation.
//!
//! Synthetic-NeRF renders 800×800 views from poses orbiting the object; the
//! reproduction generates equivalent orbit poses procedurally.

use crate::ray::Ray;
use crate::vec3::Vec3;

/// A camera pose: rotation (world-from-camera, column-major basis vectors)
/// plus position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Camera right vector in world space.
    pub right: Vec3,
    /// Camera up vector in world space.
    pub up: Vec3,
    /// Camera forward vector in world space (viewing direction).
    pub forward: Vec3,
    /// Camera position in world space.
    pub position: Vec3,
}

impl Pose {
    /// Builds a pose at `eye` looking toward `target` with the given world
    /// up hint.
    ///
    /// # Panics
    ///
    /// Panics if `eye == target` or the up hint is parallel to the view
    /// direction.
    pub fn look_at(eye: Vec3, target: Vec3, up_hint: Vec3) -> Self {
        let forward = (target - eye).normalized();
        let right = forward.cross(up_hint).normalized();
        let up = right.cross(forward);
        Self { right, up, forward, position: eye }
    }
}

/// A pinhole camera: image size, focal length in pixels, and pose.
///
/// # Examples
///
/// ```
/// use spnerf_render::camera::PinholeCamera;
/// use spnerf_render::vec3::Vec3;
///
/// let cam = PinholeCamera::look_at(
///     64, 64, 80.0,
///     Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0),
/// );
/// let ray = cam.ray_for_pixel(32, 32);
/// // The central ray points straight at the target.
/// assert!((ray.dir - Vec3::new(0.0, 0.0, 1.0)).length() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinholeCamera {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Focal length in pixel units.
    pub focal: f32,
    /// Camera pose.
    pub pose: Pose,
}

impl PinholeCamera {
    /// Creates a camera with a look-at pose.
    ///
    /// # Panics
    ///
    /// Panics if `width`, `height` or `focal` is zero/non-positive, or the
    /// look-at construction is degenerate.
    pub fn look_at(width: u32, height: u32, focal: f32, eye: Vec3, target: Vec3, up: Vec3) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        assert!(focal > 0.0, "focal length must be positive");
        Self { width, height, focal, pose: Pose::look_at(eye, target, up) }
    }

    /// The world-space ray through the center of pixel `(px, py)`.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is outside the image.
    pub fn ray_for_pixel(&self, px: u32, py: u32) -> Ray {
        assert!(px < self.width && py < self.height, "pixel ({px},{py}) outside image");
        let x = (px as f32 + 0.5) - self.width as f32 * 0.5;
        // Image y grows downward; camera up grows upward.
        let y = self.height as f32 * 0.5 - (py as f32 + 0.5);
        let dir = (self.pose.right * (x / self.focal)
            + self.pose.up * (y / self.focal)
            + self.pose.forward)
            .normalized();
        Ray::new(self.pose.position, dir)
    }

    /// Total pixel (= primary ray) count.
    pub fn ray_count(&self) -> usize {
        self.width as usize * self.height as usize
    }
}

/// Generates `n` poses orbiting `target` at distance `radius` and elevation
/// angle `elevation_rad`, evenly spaced in azimuth — the Synthetic-NeRF test
/// trajectory.
pub fn orbit_poses(n: usize, target: Vec3, radius: f32, elevation_rad: f32) -> Vec<Pose> {
    assert!(n > 0, "need at least one pose");
    (0..n)
        .map(|i| {
            let az = i as f32 / n as f32 * std::f32::consts::TAU;
            let eye = target
                + Vec3::new(
                    radius * elevation_rad.cos() * az.cos(),
                    radius * elevation_rad.sin(),
                    radius * elevation_rad.cos() * az.sin(),
                );
            Pose::look_at(eye, target, Vec3::new(0.0, 1.0, 0.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn look_at_is_orthonormal() {
        let p = Pose::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        assert!((p.right.length() - 1.0).abs() < 1e-6);
        assert!((p.up.length() - 1.0).abs() < 1e-6);
        assert!((p.forward.length() - 1.0).abs() < 1e-6);
        assert!(p.right.dot(p.up).abs() < 1e-6);
        assert!(p.right.dot(p.forward).abs() < 1e-6);
        assert!(p.up.dot(p.forward).abs() < 1e-6);
    }

    #[test]
    fn central_ray_points_forward() {
        let cam = PinholeCamera::look_at(
            101,
            101,
            100.0,
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let r = cam.ray_for_pixel(50, 50);
        assert!((r.dir - cam.pose.forward).length() < 1e-2);
    }

    #[test]
    fn corner_rays_diverge_symmetrically() {
        let cam = PinholeCamera::look_at(
            64,
            64,
            64.0,
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let tl = cam.ray_for_pixel(0, 0);
        let br = cam.ray_for_pixel(63, 63);
        // Top-left ray goes up-left, bottom-right down-right; symmetric about forward.
        assert!((tl.dir.x + br.dir.x).abs() < 1e-6);
        assert!((tl.dir.y + br.dir.y).abs() < 1e-6);
    }

    #[test]
    fn orbit_poses_lie_on_circle() {
        let poses = orbit_poses(8, Vec3::ZERO, 4.0, 0.5);
        assert_eq!(poses.len(), 8);
        for p in &poses {
            assert!((p.position.length() - 4.0).abs() < 1e-5);
            // All look at the origin.
            assert!(p.forward.dot((Vec3::ZERO - p.position).normalized()) > 0.999);
        }
    }

    #[test]
    #[should_panic(expected = "outside image")]
    fn oob_pixel_panics() {
        let cam = PinholeCamera::look_at(
            4,
            4,
            4.0,
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let _ = cam.ray_for_pixel(4, 0);
    }
}
