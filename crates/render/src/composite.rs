//! Volume-rendering composition: density → alpha, transmittance, and
//! front-to-back accumulation.
//!
//! Implements the standard emission-absorption volume rendering equation
//! used by NeRF-family renderers:
//! `C = Σ T_i · α_i · c_i + T_N · C_bg` with `α_i = 1 − exp(−σ_i δ)` and
//! `T_i = Π_{j<i} (1 − α_j)`.

use crate::vec3::Vec3;

/// Converts a density sample to an opacity given the step length `dt`.
///
/// Negative densities are treated as empty (alpha 0).
pub fn alpha_from_density(sigma: f32, dt: f32) -> f32 {
    if sigma <= 0.0 {
        0.0
    } else {
        1.0 - (-sigma * dt).exp()
    }
}

/// Front-to-back ray accumulator.
///
/// # Examples
///
/// ```
/// use spnerf_render::composite::RayAccumulator;
/// use spnerf_render::vec3::Vec3;
///
/// let mut acc = RayAccumulator::new();
/// acc.add_sample(1.0, Vec3::new(1.0, 0.0, 0.0)); // fully opaque red sample
/// assert!(acc.is_opaque(1e-3));
/// let c = acc.finalize(Vec3::ONE);
/// assert_eq!(c, Vec3::new(1.0, 0.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayAccumulator {
    color: Vec3,
    transmittance: f32,
}

impl Default for RayAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl RayAccumulator {
    /// A fresh accumulator (full transmittance, no color).
    pub fn new() -> Self {
        Self { color: Vec3::ZERO, transmittance: 1.0 }
    }

    /// Adds one sample with opacity `alpha` and radiance `rgb`.
    ///
    /// Alpha is clamped to `[0, 1]`.
    pub fn add_sample(&mut self, alpha: f32, rgb: Vec3) {
        let a = alpha.clamp(0.0, 1.0);
        self.color = self.color + rgb * (self.transmittance * a);
        self.transmittance *= 1.0 - a;
    }

    /// Remaining transmittance `T`.
    pub fn transmittance(&self) -> f32 {
        self.transmittance
    }

    /// Accumulated opacity `1 − T`.
    pub fn opacity(&self) -> f32 {
        1.0 - self.transmittance
    }

    /// Whether the ray can be terminated early (`T < threshold`) — the
    /// early-ray-termination optimization both the software renderer and the
    /// accelerator pipeline apply.
    pub fn is_opaque(&self, threshold: f32) -> bool {
        self.transmittance < threshold
    }

    /// Composites the remaining transmittance against a background color and
    /// returns the final pixel value.
    pub fn finalize(&self, background: Vec3) -> Vec3 {
        self.color + background * self.transmittance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_for_empty() {
        assert_eq!(alpha_from_density(0.0, 0.1), 0.0);
        assert_eq!(alpha_from_density(-5.0, 0.1), 0.0);
    }

    #[test]
    fn alpha_monotonic_in_density_and_step() {
        let a1 = alpha_from_density(1.0, 0.1);
        let a2 = alpha_from_density(2.0, 0.1);
        let a3 = alpha_from_density(1.0, 0.2);
        assert!(a2 > a1);
        assert!(a3 > a1);
        assert!((0.0..1.0).contains(&a1));
    }

    #[test]
    fn empty_ray_shows_background() {
        let acc = RayAccumulator::new();
        let bg = Vec3::new(0.2, 0.4, 0.6);
        assert_eq!(acc.finalize(bg), bg);
    }

    #[test]
    fn opaque_sample_blocks_background() {
        let mut acc = RayAccumulator::new();
        acc.add_sample(1.0, Vec3::new(0.5, 0.5, 0.5));
        let out = acc.finalize(Vec3::ONE);
        assert_eq!(out, Vec3::splat(0.5));
        assert_eq!(acc.opacity(), 1.0);
    }

    #[test]
    fn half_transparent_blend() {
        let mut acc = RayAccumulator::new();
        acc.add_sample(0.5, Vec3::new(1.0, 0.0, 0.0));
        let out = acc.finalize(Vec3::new(0.0, 0.0, 1.0));
        assert!((out.x - 0.5).abs() < 1e-6);
        assert!((out.z - 0.5).abs() < 1e-6);
    }

    #[test]
    fn transmittance_is_product_of_survival() {
        let mut acc = RayAccumulator::new();
        acc.add_sample(0.25, Vec3::ONE);
        acc.add_sample(0.5, Vec3::ONE);
        assert!((acc.transmittance() - 0.75 * 0.5).abs() < 1e-6);
    }

    #[test]
    fn order_matters_front_to_back() {
        let mut red_first = RayAccumulator::new();
        red_first.add_sample(0.6, Vec3::new(1.0, 0.0, 0.0));
        red_first.add_sample(0.6, Vec3::new(0.0, 1.0, 0.0));
        let mut green_first = RayAccumulator::new();
        green_first.add_sample(0.6, Vec3::new(0.0, 1.0, 0.0));
        green_first.add_sample(0.6, Vec3::new(1.0, 0.0, 0.0));
        let a = red_first.finalize(Vec3::ZERO);
        let b = green_first.finalize(Vec3::ZERO);
        assert!(a.x > a.y, "front sample dominates");
        assert!(b.y > b.x);
    }

    #[test]
    fn early_termination_threshold() {
        let mut acc = RayAccumulator::new();
        assert!(!acc.is_opaque(1e-3));
        for _ in 0..20 {
            acc.add_sample(0.5, Vec3::ONE);
        }
        assert!(acc.is_opaque(1e-3));
    }

    #[test]
    fn alpha_clamped() {
        let mut acc = RayAccumulator::new();
        acc.add_sample(5.0, Vec3::ONE); // clamps to 1
        assert_eq!(acc.transmittance(), 0.0);
        let mut acc2 = RayAccumulator::new();
        acc2.add_sample(-1.0, Vec3::ONE); // clamps to 0
        assert_eq!(acc2.transmittance(), 1.0);
    }
}
