//! Volume-rendering composition: density → alpha, transmittance, and
//! front-to-back accumulation.
//!
//! Implements the standard emission-absorption volume rendering equation
//! used by NeRF-family renderers:
//! `C = Σ T_i · α_i · c_i + T_N · C_bg` with `α_i = 1 − exp(−σ_i δ)` and
//! `T_i = Π_{j<i} (1 − α_j)`.

use crate::lanes::{F32x8, LANE_WIDTH};
use crate::vec3::Vec3;

/// Converts a density sample to an opacity given the step length `dt`.
///
/// Negative densities are treated as empty (alpha 0).
pub fn alpha_from_density(sigma: f32, dt: f32) -> f32 {
    if sigma <= 0.0 {
        0.0
    } else {
        1.0 - (-sigma * dt).exp()
    }
}

/// The compositing inner loop: `acc[c] += values[c] * w` for every channel.
///
/// Dispatches to the lane-blocked kernel under the `simd` feature and to
/// the scalar reference otherwise; the two are **bitwise identical** (see
/// [`accumulate_weighted_lanes`]), so the feature flag never changes a
/// composited pixel or an accumulated specular feature.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn accumulate_weighted(acc: &mut [f32], values: &[f32], w: f32) {
    #[cfg(feature = "simd")]
    {
        accumulate_weighted_lanes(acc, values, w);
    }
    #[cfg(not(feature = "simd"))]
    {
        accumulate_weighted_scalar(acc, values, w);
    }
}

/// Scalar reference for [`accumulate_weighted`]: one multiply and one add
/// per channel (two IEEE rounding steps), channels in ascending order.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn accumulate_weighted_scalar(acc: &mut [f32], values: &[f32], w: f32) {
    assert_eq!(acc.len(), values.len(), "channel counts must match");
    for (a, v) in acc.iter_mut().zip(values) {
        *a += *v * w;
    }
}

/// Lane-blocked twin of [`accumulate_weighted_scalar`], bitwise-identical
/// for every input.
///
/// Channels are independent outputs, so they map onto [`F32x8`] lanes the
/// same way the GEMV kernels lane their neurons: each lane computes exactly
/// `acc[c] + values[c] * w` with the unfused [`F32x8::mul_add`] (two
/// rounding steps, like the scalar path), and ragged tails go through the
/// zero-padding loads and length-clamped stores. Always compiled, so the
/// equivalence is pinned under either feature.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn accumulate_weighted_lanes(acc: &mut [f32], values: &[f32], w: f32) {
    assert_eq!(acc.len(), values.len(), "channel counts must match");
    let wv = F32x8::splat(w);
    for start in (0..acc.len()).step_by(LANE_WIDTH) {
        let end = acc.len().min(start + LANE_WIDTH);
        let a = F32x8::load_padded(&acc[start..]);
        let v = F32x8::load_padded(&values[start..]);
        wv.mul_add(v, a).store_padded(&mut acc[start..end]);
    }
}

/// Front-to-back ray accumulator.
///
/// # Examples
///
/// ```
/// use spnerf_render::composite::RayAccumulator;
/// use spnerf_render::vec3::Vec3;
///
/// let mut acc = RayAccumulator::new();
/// acc.add_sample(1.0, Vec3::new(1.0, 0.0, 0.0)); // fully opaque red sample
/// assert!(acc.is_opaque(1e-3));
/// let c = acc.finalize(Vec3::ONE);
/// assert_eq!(c, Vec3::new(1.0, 0.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayAccumulator {
    color: Vec3,
    transmittance: f32,
}

impl Default for RayAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl RayAccumulator {
    /// A fresh accumulator (full transmittance, no color).
    pub fn new() -> Self {
        Self { color: Vec3::ZERO, transmittance: 1.0 }
    }

    /// Adds one sample with opacity `alpha` and radiance `rgb`.
    ///
    /// Alpha is clamped to `[0, 1]`. The channel update runs through
    /// [`accumulate_weighted`], so under `--features simd` the blend is
    /// lane-blocked — bitwise-identical to the scalar formula
    /// `C += c · (T · α)`.
    pub fn add_sample(&mut self, alpha: f32, rgb: Vec3) {
        let a = alpha.clamp(0.0, 1.0);
        let mut ch = [self.color.x, self.color.y, self.color.z];
        accumulate_weighted(&mut ch, &[rgb.x, rgb.y, rgb.z], self.transmittance * a);
        self.color = Vec3::new(ch[0], ch[1], ch[2]);
        self.transmittance *= 1.0 - a;
    }

    /// Remaining transmittance `T`.
    pub fn transmittance(&self) -> f32 {
        self.transmittance
    }

    /// Accumulated opacity `1 − T`.
    pub fn opacity(&self) -> f32 {
        1.0 - self.transmittance
    }

    /// Whether the ray can be terminated early (`T < threshold`) — the
    /// early-ray-termination optimization both the software renderer and the
    /// accelerator pipeline apply.
    pub fn is_opaque(&self, threshold: f32) -> bool {
        self.transmittance < threshold
    }

    /// Composites the remaining transmittance against a background color and
    /// returns the final pixel value.
    pub fn finalize(&self, background: Vec3) -> Vec3 {
        self.color + background * self.transmittance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_for_empty() {
        assert_eq!(alpha_from_density(0.0, 0.1), 0.0);
        assert_eq!(alpha_from_density(-5.0, 0.1), 0.0);
    }

    #[test]
    fn alpha_monotonic_in_density_and_step() {
        let a1 = alpha_from_density(1.0, 0.1);
        let a2 = alpha_from_density(2.0, 0.1);
        let a3 = alpha_from_density(1.0, 0.2);
        assert!(a2 > a1);
        assert!(a3 > a1);
        assert!((0.0..1.0).contains(&a1));
    }

    #[test]
    fn empty_ray_shows_background() {
        let acc = RayAccumulator::new();
        let bg = Vec3::new(0.2, 0.4, 0.6);
        assert_eq!(acc.finalize(bg), bg);
    }

    #[test]
    fn opaque_sample_blocks_background() {
        let mut acc = RayAccumulator::new();
        acc.add_sample(1.0, Vec3::new(0.5, 0.5, 0.5));
        let out = acc.finalize(Vec3::ONE);
        assert_eq!(out, Vec3::splat(0.5));
        assert_eq!(acc.opacity(), 1.0);
    }

    #[test]
    fn half_transparent_blend() {
        let mut acc = RayAccumulator::new();
        acc.add_sample(0.5, Vec3::new(1.0, 0.0, 0.0));
        let out = acc.finalize(Vec3::new(0.0, 0.0, 1.0));
        assert!((out.x - 0.5).abs() < 1e-6);
        assert!((out.z - 0.5).abs() < 1e-6);
    }

    #[test]
    fn transmittance_is_product_of_survival() {
        let mut acc = RayAccumulator::new();
        acc.add_sample(0.25, Vec3::ONE);
        acc.add_sample(0.5, Vec3::ONE);
        assert!((acc.transmittance() - 0.75 * 0.5).abs() < 1e-6);
    }

    #[test]
    fn order_matters_front_to_back() {
        let mut red_first = RayAccumulator::new();
        red_first.add_sample(0.6, Vec3::new(1.0, 0.0, 0.0));
        red_first.add_sample(0.6, Vec3::new(0.0, 1.0, 0.0));
        let mut green_first = RayAccumulator::new();
        green_first.add_sample(0.6, Vec3::new(0.0, 1.0, 0.0));
        green_first.add_sample(0.6, Vec3::new(1.0, 0.0, 0.0));
        let a = red_first.finalize(Vec3::ZERO);
        let b = green_first.finalize(Vec3::ZERO);
        assert!(a.x > a.y, "front sample dominates");
        assert!(b.y > b.x);
    }

    #[test]
    fn early_termination_threshold() {
        let mut acc = RayAccumulator::new();
        assert!(!acc.is_opaque(1e-3));
        for _ in 0..20 {
            acc.add_sample(0.5, Vec3::ONE);
        }
        assert!(acc.is_opaque(1e-3));
    }

    #[test]
    fn accumulate_weighted_lanes_is_bitwise_scalar() {
        // Ragged lengths (tails shorter than a lane) and full blocks alike.
        for len in [0usize, 1, 3, 8, 9, 12, 16, 31] {
            let mut scalar: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
            let mut lanes = scalar.clone();
            let values: Vec<f32> = (0..len).map(|i| (i as f32 * 0.91).cos() * 5.0 - 1.0).collect();
            for w in [0.0f32, 1.0, 0.12345, -2.5, 1e-8] {
                accumulate_weighted_scalar(&mut scalar, &values, w);
                accumulate_weighted_lanes(&mut lanes, &values, w);
                for (c, (s, l)) in scalar.iter().zip(&lanes).enumerate() {
                    assert_eq!(s.to_bits(), l.to_bits(), "channel {c} diverged at len {len} w {w}");
                }
            }
        }
    }

    #[test]
    fn accumulate_weighted_matches_the_manual_blend() {
        let mut acc = [0.5f32, -1.0, 2.0];
        accumulate_weighted(&mut acc, &[1.0, 2.0, 3.0], 0.25);
        assert_eq!(acc[0].to_bits(), (0.5f32 + 1.0 * 0.25).to_bits());
        assert_eq!(acc[1].to_bits(), (-1.0f32 + 2.0 * 0.25).to_bits());
        assert_eq!(acc[2].to_bits(), (2.0f32 + 3.0 * 0.25).to_bits());
    }

    #[test]
    #[should_panic(expected = "channel counts must match")]
    fn accumulate_weighted_rejects_length_mismatch() {
        let mut acc = [0.0f32; 3];
        accumulate_weighted_scalar(&mut acc, &[0.0; 4], 1.0);
    }

    #[test]
    fn alpha_clamped() {
        let mut acc = RayAccumulator::new();
        acc.add_sample(5.0, Vec3::ONE); // clamps to 1
        assert_eq!(acc.transmittance(), 0.0);
        let mut acc2 = RayAccumulator::new();
        acc2.add_sample(-1.0, Vec3::ONE); // clamps to 0
        assert_eq!(acc2.transmittance(), 1.0);
    }
}
