//! Tile-parallel render engine: a [`TileScheduler`] that partitions the
//! image into rectangular tiles and a scoped worker pool that traces them
//! concurrently.
//!
//! This mirrors how the accelerator literature scales the workload —
//! Potamoi streams rays through independently scheduled chunks and RT-NeRF
//! balances tiles across on-device units — applied to the CPU reference so
//! every figure bin and PSNR sweep saturates a many-core host instead of
//! one core.
//!
//! # Determinism guarantee
//!
//! Primary rays are independent and [`crate::renderer::trace_ray`] is pure,
//! so parallelism cannot change any pixel. Workers pull tiles from an
//! atomic counter (dynamic load balancing), but results are written back
//! and [`RenderStats`] are merged **in tile index order** on the calling
//! thread; the produced [`ImageBuffer`] and stats are therefore
//! bitwise-identical to [`crate::renderer::render_view_serial`] for every
//! tile size and thread count, including `parallelism: 0` (all cores).
//!
//! # Example
//!
//! ```
//! use spnerf_render::mlp::Mlp;
//! use spnerf_render::renderer::{render_view, render_view_serial, RenderConfig};
//! use spnerf_render::scene::{build_grid, default_camera, scene_aabb, SceneId};
//!
//! let grid = build_grid(SceneId::Lego, 24);
//! let mlp = Mlp::random(0);
//! let camera = default_camera(16, 16, 0, 8);
//! let cfg = RenderConfig { samples_per_ray: 32, parallelism: 4, tile_size: 8, ..Default::default() };
//! let parallel = render_view(&grid, &mlp, &camera, &scene_aabb(), &cfg);
//! let serial = render_view_serial(&grid, &mlp, &camera, &scene_aabb(), &cfg);
//! assert_eq!(parallel, serial);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::camera::PinholeCamera;
use crate::image::ImageBuffer;
use crate::mlp::{Mlp, MlpScratch};
use crate::ray::{Aabb, Ray};
use crate::renderer::{
    trace_packet_shaded, trace_ray_shaded, RenderConfig, RenderFrame, RenderStats, Shader,
};
use crate::source::VoxelSource;
use crate::vec3::Vec3;

/// Environment variable consulted by [`threads_from_args_or_env`] when no
/// `--threads` flag is given.
pub const THREADS_ENV_VAR: &str = "SPNERF_THREADS";

/// A rectangular region of the output image (pixel coordinates, inclusive
/// origin, exclusive extent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Leftmost pixel column.
    pub x0: u32,
    /// Topmost pixel row.
    pub y0: u32,
    /// Width in pixels (non-zero).
    pub width: u32,
    /// Height in pixels (non-zero).
    pub height: u32,
}

impl Tile {
    /// Pixels covered by this tile.
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Pixel coordinates of this tile in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let (x0, y0, w) = (self.x0, self.y0, self.width);
        (0..self.height).flat_map(move |dy| (0..w).map(move |dx| (x0 + dx, y0 + dy)))
    }
}

/// Partitions a `width × height` image into square tiles of side
/// `tile_size` (edge tiles are clipped), enumerated in row-major order.
///
/// The enumeration order is the engine's determinism anchor: results are
/// merged back in exactly this order regardless of which worker rendered
/// which tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileScheduler {
    width: u32,
    height: u32,
    tile_size: u32,
}

impl TileScheduler {
    /// Creates a scheduler for an image.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the tile size is zero.
    pub fn new(width: u32, height: u32, tile_size: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        assert!(tile_size > 0, "tile_size must be non-zero");
        Self { width, height, tile_size }
    }

    /// Tiles along the x axis.
    pub fn tiles_x(&self) -> u32 {
        self.width.div_ceil(self.tile_size)
    }

    /// Tiles along the y axis.
    pub fn tiles_y(&self) -> u32 {
        self.height.div_ceil(self.tile_size)
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles_x() as usize * self.tiles_y() as usize
    }

    /// The `index`-th tile in row-major order, clipped to the image.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ tile_count()`.
    pub fn tile(&self, index: usize) -> Tile {
        assert!(index < self.tile_count(), "tile index {index} out of range");
        let tx = (index % self.tiles_x() as usize) as u32;
        let ty = (index / self.tiles_x() as usize) as u32;
        let x0 = tx * self.tile_size;
        let y0 = ty * self.tile_size;
        Tile {
            x0,
            y0,
            width: self.tile_size.min(self.width - x0),
            height: self.tile_size.min(self.height - y0),
        }
    }

    /// All tiles in row-major order.
    pub fn tiles(&self) -> impl Iterator<Item = Tile> + '_ {
        (0..self.tile_count()).map(|i| self.tile(i))
    }
}

/// Resolves a [`RenderConfig::parallelism`] value to a concrete worker
/// count: `0` maps to the host's available parallelism (at least 1), any
/// other value is taken as-is.
pub fn resolve_parallelism(parallelism: usize) -> usize {
    if parallelism == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    } else {
        parallelism
    }
}

/// Extracts a thread count from CLI arguments (`--threads N` or
/// `--threads=N`), falling back to the `SPNERF_THREADS` environment
/// variable. Returns `None` when neither is present; malformed values
/// panic with a usage message rather than being silently ignored.
pub fn threads_from_args_or_env(args: &[String]) -> Option<usize> {
    let mut scratch = args.to_vec();
    take_threads_args(&mut scratch)
}

/// Like [`threads_from_args_or_env`], but also removes the flag (and its
/// value) from `args`, so callers with positional arguments can parse the
/// remainder undisturbed. The first occurrence wins.
pub fn take_threads_args(args: &mut Vec<String>) -> Option<usize> {
    let parse = |v: &str, origin: &str| -> usize {
        v.parse().unwrap_or_else(|_| panic!("{origin}: expected a thread count, got '{v}'"))
    };
    let mut found = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            let v = args.get(i + 1).unwrap_or_else(|| panic!("--threads requires a value"));
            if found.is_none() {
                found = Some(parse(v, "--threads"));
            }
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--threads=") {
            if found.is_none() {
                found = Some(parse(v, "--threads"));
            }
            args.remove(i);
        } else {
            i += 1;
        }
    }
    found.or_else(|| std::env::var(THREADS_ENV_VAR).ok().map(|v| parse(&v, THREADS_ENV_VAR)))
}

/// One rendered tile: pixel colors in the tile's row-major order plus the
/// tile's aggregated statistics.
struct TileOutput {
    pixels: Vec<Vec3>,
    stats: RenderStats,
}

/// Renders one tile serially on the calling thread.
///
/// Rays are grouped into packets of [`RenderConfig::packet_size`] (in the
/// tile's row-major pixel order) and marched in lockstep through
/// [`trace_packet`], sharing one MLP scratch per tile; `packet_size ≤ 1`
/// keeps the historical ray-at-a-time loop. Pixels and stats are
/// bitwise-identical at every packet size.
fn render_tile<S: VoxelSource + ?Sized>(
    source: &S,
    shader: Shader<'_>,
    camera: &PinholeCamera,
    frame: &RenderFrame,
    cfg: &RenderConfig,
    tile: Tile,
) -> TileOutput {
    let mut pixels = Vec::with_capacity(tile.pixel_count());
    let mut stats = RenderStats::default();
    let mut scratch = MlpScratch::new();
    if cfg.packet_size <= 1 {
        for (px, py) in tile.pixels() {
            let ray = camera.ray_for_pixel(px, py);
            let (color, ray_stats) =
                trace_ray_shaded(source, shader, frame, ray, cfg, &mut scratch);
            stats.record_ray(&ray_stats);
            pixels.push(color);
        }
        return TileOutput { pixels, stats };
    }
    let coords: Vec<(u32, u32)> = tile.pixels().collect();
    for chunk in coords.chunks(cfg.packet_size) {
        let rays: Vec<Ray> = chunk.iter().map(|&(px, py)| camera.ray_for_pixel(px, py)).collect();
        for (color, ray_stats) in
            trace_packet_shaded(source, shader, frame, &rays, cfg, &mut scratch)
        {
            stats.record_ray(&ray_stats);
            pixels.push(color);
        }
    }
    TileOutput { pixels, stats }
}

/// Renders one view through the tile scheduler and worker pool, honoring
/// [`RenderConfig::parallelism`] and [`RenderConfig::tile_size`].
///
/// This is the engine behind [`crate::renderer::render_view`]; see the
/// module docs for the determinism guarantee.
///
/// # Panics
///
/// Panics if `cfg.samples_per_ray` or `cfg.tile_size` is zero, or if a
/// worker thread panics.
pub fn render_view_tiled<S: VoxelSource + Sync>(
    source: &S,
    mlp: &Mlp,
    camera: &PinholeCamera,
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (ImageBuffer, RenderStats) {
    render_view_tiled_shaded(source, Shader::PerSample(mlp), camera, aabb, cfg)
}

/// [`render_view_tiled`] generalized over the shading model — the engine
/// behind [`crate::renderer::render_view_shaded`] and therefore the
/// bake-and-defer render path. The determinism guarantee is unchanged:
/// both [`Shader`] variants are pure per-ray computations, so images and
/// stats are bitwise-identical to the serial reference at every thread
/// count, tile size, and packet size.
///
/// # Panics
///
/// Panics if `cfg.samples_per_ray` or `cfg.tile_size` is zero, or if a
/// worker thread panics.
pub fn render_view_tiled_shaded<S: VoxelSource + Sync>(
    source: &S,
    shader: Shader<'_>,
    camera: &PinholeCamera,
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (ImageBuffer, RenderStats) {
    let sched = TileScheduler::new(camera.width, camera.height, cfg.tile_size);
    let n_tiles = sched.tile_count();
    let workers = resolve_parallelism(cfg.parallelism).clamp(1, n_tiles);
    let frame = RenderFrame::new(source.dims(), aabb, cfg);
    if workers == 1 {
        // One worker loops over the tiles in index order on the calling
        // thread — the same per-tile packeting as the pool, without the
        // thread or per-tile buffers (bitwise-identical by construction).
        let mut img = ImageBuffer::new(camera.width, camera.height);
        let mut stats = RenderStats::default();
        for tile in sched.tiles() {
            let out = render_tile(source, shader, camera, &frame, cfg, tile);
            for ((px, py), color) in tile.pixels().zip(&out.pixels) {
                img.set(px, py, *color);
            }
            stats += out.stats;
        }
        return (img, stats);
    }

    // Dynamic scheduling: workers race on an atomic tile cursor, so a
    // slow (dense) tile never stalls the rest of the frame.
    let next = AtomicUsize::new(0);
    let rendered = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tiles {
                            break done;
                        }
                        let out = render_tile(source, shader, camera, &frame, cfg, sched.tile(i));
                        done.push((i, out));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("render worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut outputs: Vec<Option<TileOutput>> = (0..n_tiles).map(|_| None).collect();
    for (i, out) in rendered {
        outputs[i] = Some(out);
    }

    // Merge in tile index order — the determinism anchor.
    let mut img = ImageBuffer::new(camera.width, camera.height);
    let mut stats = RenderStats::default();
    for (tile, out) in sched.tiles().zip(outputs) {
        let out = out.expect("every tile index was rendered exactly once");
        for ((px, py), color) in tile.pixels().zip(&out.pixels) {
            img.set(px, py, *color);
        }
        stats += out.stats;
    }
    (img, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::renderer::render_view_serial;
    use crate::scene::{build_grid, default_camera, scene_aabb, SceneId};

    #[test]
    fn scheduler_covers_image_exactly_once() {
        for (w, h, t) in [(7u32, 5u32, 3u32), (8, 8, 8), (1, 9, 2), (16, 4, 32)] {
            let sched = TileScheduler::new(w, h, t);
            let mut seen = vec![0u32; (w * h) as usize];
            for tile in sched.tiles() {
                assert!(tile.width > 0 && tile.height > 0);
                for (px, py) in tile.pixels() {
                    assert!(px < w && py < h, "pixel ({px},{py}) outside {w}x{h}");
                    seen[(py * w + px) as usize] += 1;
                }
            }
            assert!(seen.iter().all(|c| *c == 1), "{w}x{h}/{t}: tiles must partition the image");
        }
    }

    #[test]
    fn scheduler_clips_ragged_edges() {
        let sched = TileScheduler::new(10, 6, 4);
        assert_eq!(sched.tiles_x(), 3);
        assert_eq!(sched.tiles_y(), 2);
        assert_eq!(sched.tile_count(), 6);
        // Rightmost column and bottom row are clipped.
        assert_eq!(sched.tile(2), Tile { x0: 8, y0: 0, width: 2, height: 4 });
        assert_eq!(sched.tile(5), Tile { x0: 8, y0: 4, width: 2, height: 2 });
    }

    #[test]
    #[should_panic(expected = "tile_size must be non-zero")]
    fn zero_tile_size_panics() {
        let _ = TileScheduler::new(8, 8, 0);
    }

    #[test]
    fn tile_pixels_are_row_major() {
        let t = Tile { x0: 2, y0: 1, width: 2, height: 2 };
        let px: Vec<_> = t.pixels().collect();
        assert_eq!(px, vec![(2, 1), (3, 1), (2, 2), (3, 2)]);
        assert_eq!(t.pixel_count(), 4);
    }

    #[test]
    fn resolve_parallelism_handles_auto() {
        assert_eq!(resolve_parallelism(3), 3);
        assert!(resolve_parallelism(0) >= 1);
    }

    #[test]
    fn threads_flag_parsing() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(threads_from_args_or_env(&args(&["--quick", "--threads", "4"])), Some(4));
        assert_eq!(threads_from_args_or_env(&args(&["--threads=2"])), Some(2));
        // First occurrence wins.
        assert_eq!(threads_from_args_or_env(&args(&["--threads", "3", "--threads=9"])), Some(3));
        // The env fallback is deliberately not asserted here: it depends on
        // the ambient SPNERF_THREADS, which the CI smoke jobs exercise.
    }

    #[test]
    fn take_threads_args_strips_flag_tokens() {
        let mut args: Vec<String> = ["prog", "lego", "--threads", "4", "48", "--threads=7", "64"]
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(take_threads_args(&mut args), Some(4));
        assert_eq!(args, vec!["prog", "lego", "48", "64"]);
    }

    #[test]
    fn engine_matches_serial_at_many_shapes() {
        let grid = build_grid(SceneId::Ficus, 24);
        let mlp = Mlp::random(3);
        let base = RenderConfig { samples_per_ray: 24, ..Default::default() };
        for (w, h) in [(9u32, 7u32), (16, 16)] {
            let cam = default_camera(w, h, 0, 4);
            let serial = render_view_serial(&grid, &mlp, &cam, &scene_aabb(), &base);
            for (tile_size, threads) in [(1, 2), (3, 4), (32, 8), (4, 0)] {
                let cfg = RenderConfig { tile_size, parallelism: threads, ..base };
                let got = render_view_tiled(&grid, &mlp, &cam, &scene_aabb(), &cfg);
                assert_eq!(got, serial, "{w}x{h} tile={tile_size} threads={threads}");
            }
        }
    }
}
