//! Multi-view quality evaluation.
//!
//! The paper reports PSNR over Synthetic-NeRF's test trajectories (many
//! poses per scene), not a single view. This module renders a source and a
//! reference over a shared pose set and aggregates per-view PSNR — the
//! harness binaries use one pose for speed, but the machinery (and the
//! tests) cover the trajectory case.
//!
//! Per-view renders honor [`RenderConfig::parallelism`] /
//! [`RenderConfig::tile_size`], so trajectory evaluation scales with the
//! tile engine while staying bitwise-deterministic.

use crate::camera::{orbit_poses, PinholeCamera};
use crate::mlp::Mlp;
use crate::ray::Aabb;
use crate::renderer::{render_view, RenderConfig, RenderStats};
use crate::source::VoxelSource;
use crate::vec3::Vec3;

/// Count / mean / min / max over a sample set — the one aggregation rule
/// every summary in the workspace shares.
///
/// [`PsnrStats::from_values`] delegates here for per-view PSNR, and the
/// `spnerf-serve` report bin uses it (together with [`percentile`]) for
/// virtual-time latency accounting, so no consumer carries its own copy of
/// the mean/min/max loop.
///
/// # Examples
///
/// ```
/// use spnerf_render::eval::SummaryStats;
///
/// let s = SummaryStats::from_values(&[2.0, 8.0, 5.0]);
/// assert_eq!((s.count, s.mean, s.min, s.max), (3, 5.0, 2.0, 8.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Samples aggregated.
    pub count: usize,
    /// Arithmetic mean (summed in slice order, so equal inputs give
    /// bitwise-equal means).
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SummaryStats {
    /// Aggregates a sample set.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "need at least one value to summarize");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self { count: values.len(), mean, min, max }
    }
}

/// Nearest-rank percentile: the smallest sample such that at least
/// `q` percent of the set is ≤ it. Exact set membership (never an
/// interpolated value), so integer inputs yield integer outputs and equal
/// inputs yield bitwise-equal percentiles — the property the deterministic
/// serving report relies on.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `(0, 100]`.
///
/// # Examples
///
/// ```
/// use spnerf_render::eval::percentile;
///
/// let latencies = [5.0, 1.0, 9.0, 3.0];
/// assert_eq!(percentile(&latencies, 50.0), 3.0);
/// assert_eq!(percentile(&latencies, 100.0), 9.0);
/// ```
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "need at least one value for a percentile");
    assert!(q > 0.0 && q <= 100.0, "percentile rank must be in (0, 100], got {q}");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregated PSNR over a pose set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsnrStats {
    /// Views evaluated.
    pub views: usize,
    /// Mean PSNR in dB.
    pub mean_db: f64,
    /// Worst view.
    pub min_db: f64,
    /// Best view.
    pub max_db: f64,
}

impl PsnrStats {
    /// Aggregates per-view PSNR values (dB) into summary statistics.
    ///
    /// This is the single aggregation rule shared by [`psnr_over_views`]
    /// and the `spnerf` pipeline's `RenderSession`, so batch responses and
    /// trajectory evaluation can never disagree on the summary. It is
    /// [`SummaryStats::from_values`] under PSNR field names.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        let s = SummaryStats::from_values(values);
        Self { views: s.count, mean_db: s.mean, min_db: s.min, max_db: s.max }
    }
}

/// Cameras on the standard evaluation orbit (radius 2.8, elevation 0.45).
pub fn evaluation_cameras(width: u32, height: u32, count: usize) -> Vec<PinholeCamera> {
    orbit_poses(count, Vec3::ZERO, 2.8, 0.45)
        .into_iter()
        .map(|pose| PinholeCamera { width, height, focal: width as f32 * 1.1, pose })
        .collect()
}

/// Renders `source` and `reference` over `cameras` and aggregates the
/// per-view PSNR of source-vs-reference. Also returns the source's total
/// render statistics (workload measurement over the whole trajectory).
///
/// # Panics
///
/// Panics if `cameras` is empty.
pub fn psnr_over_views<S: VoxelSource + Sync, R: VoxelSource + Sync>(
    source: &S,
    reference: &R,
    mlp: &Mlp,
    cameras: &[PinholeCamera],
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (PsnrStats, RenderStats) {
    assert!(!cameras.is_empty(), "need at least one camera");
    let mut total_stats = RenderStats::default();
    let mut psnrs = Vec::with_capacity(cameras.len());
    for cam in cameras {
        let (ref_img, _) = render_view(reference, mlp, cam, aabb, cfg);
        let (img, stats) = render_view(source, mlp, cam, aabb, cfg);
        total_stats += stats;
        psnrs.push(img.psnr(&ref_img));
    }
    (PsnrStats::from_values(&psnrs), total_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{build_grid, scene_aabb, SceneId};

    #[test]
    fn identical_sources_give_infinite_psnr() {
        let grid = build_grid(SceneId::Mic, 20);
        let mlp = Mlp::random(0);
        let cams = evaluation_cameras(8, 8, 3);
        let cfg = RenderConfig { samples_per_ray: 16, ..Default::default() };
        let (stats, render_stats) = psnr_over_views(&grid, &grid, &mlp, &cams, &scene_aabb(), &cfg);
        assert_eq!(stats.views, 3);
        assert!(stats.mean_db.is_infinite());
        assert_eq!(render_stats.rays, 3 * 64);
    }

    #[test]
    fn stats_ordering() {
        // Different sources: min ≤ mean ≤ max, all finite.
        let gt = build_grid(SceneId::Lego, 24);
        let other = build_grid(SceneId::Lego, 20); // coarser grid ⇒ differs
        let mlp = Mlp::random(0);
        let cams = evaluation_cameras(10, 10, 4);
        let cfg = RenderConfig { samples_per_ray: 24, ..Default::default() };
        let (s, _) = psnr_over_views(&other, &gt, &mlp, &cams, &scene_aabb(), &cfg);
        assert!(s.min_db <= s.mean_db && s.mean_db <= s.max_db);
        assert!(s.min_db.is_finite() && s.max_db.is_finite());
        assert!(s.min_db > 5.0, "renders should still correlate: {:.1}", s.min_db);
    }

    #[test]
    fn from_values_aggregates() {
        let s = PsnrStats::from_values(&[30.0, 20.0, 40.0]);
        assert_eq!(s.views, 3);
        assert_eq!(s.mean_db, 30.0);
        assert_eq!(s.min_db, 20.0);
        assert_eq!(s.max_db, 40.0);
    }

    #[test]
    #[should_panic(expected = "at least one value to summarize")]
    fn from_values_rejects_empty() {
        let _ = PsnrStats::from_values(&[]);
    }

    #[test]
    fn summary_stats_match_psnr_stats() {
        // PsnrStats is SummaryStats under other names — same values in,
        // bitwise-same numbers out.
        let vals = [31.25, 28.5, 40.0, 33.75];
        let s = SummaryStats::from_values(&vals);
        let p = PsnrStats::from_values(&vals);
        assert_eq!((s.count, s.mean, s.min, s.max), (p.views, p.mean_db, p.min_db, p.max_db));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0];
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 100.0);
        assert_eq!(percentile(&v, 99.0), 100.0);
        assert_eq!(percentile(&v, 10.0), 10.0);
        // A tiny rank clamps to the first sample.
        assert_eq!(percentile(&v, 0.5), 10.0);
        // Exact set membership, never interpolation.
        let odd = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&odd, 50.0), 2.0);
        assert_eq!(percentile(&odd, 66.6), 2.0);
        assert_eq!(percentile(&odd, 67.0), 3.0);
        // Singleton: every rank is the one sample.
        assert_eq!(percentile(&[7.5], 1.0), 7.5);
        assert_eq!(percentile(&[7.5], 100.0), 7.5);
    }

    #[test]
    fn percentile_boundary_semantics() {
        // q → 0+ clamps the nearest rank to the first (smallest) sample;
        // q = 100 is always the maximum. These are the edges the serving
        // report leans on for p0-ish and p100 latency lines.
        let v = [4.0, 2.0, 8.0, 6.0];
        assert_eq!(percentile(&v, 1e-9), 2.0);
        assert_eq!(percentile(&v, 100.0), 8.0);
        // The rank is ceil(q/100 · n): exactly at a 1/n boundary the first
        // sample still answers, and any amount above it moves to the second.
        assert_eq!(percentile(&v, 25.0), 2.0);
        assert_eq!(percentile(&v, 25.0 + 1e-9), 4.0);
        assert_eq!(percentile(&v, 50.0), 4.0);
        assert_eq!(percentile(&v, 75.0 + 1e-9), 8.0);
        // A single-element set answers every legal rank with its one value.
        for q in [1e-9, 0.5, 50.0, 99.999, 100.0] {
            assert_eq!(percentile(&[7.5], q), 7.5);
        }
    }

    #[test]
    #[should_panic(expected = "percentile rank must be in (0, 100]")]
    fn percentile_rejects_out_of_range_rank() {
        let _ = percentile(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile rank must be in (0, 100]")]
    fn percentile_rejects_rank_above_100() {
        let _ = percentile(&[1.0], 100.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one value for a percentile")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn cameras_lie_on_the_orbit() {
        let cams = evaluation_cameras(16, 16, 6);
        assert_eq!(cams.len(), 6);
        for c in &cams {
            assert!((c.pose.position.length() - 2.8).abs() < 1e-4);
            assert_eq!(c.width, 16);
        }
    }

    #[test]
    #[should_panic(expected = "at least one camera")]
    fn empty_cameras_panic() {
        let grid = build_grid(SceneId::Mic, 16);
        let mlp = Mlp::random(0);
        let cfg = RenderConfig::default();
        let _ = psnr_over_views(&grid, &grid, &mlp, &[], &scene_aabb(), &cfg);
    }
}
