//! Multi-view quality evaluation.
//!
//! The paper reports PSNR over Synthetic-NeRF's test trajectories (many
//! poses per scene), not a single view. This module renders a source and a
//! reference over a shared pose set and aggregates per-view PSNR — the
//! harness binaries use one pose for speed, but the machinery (and the
//! tests) cover the trajectory case.
//!
//! Per-view renders honor [`RenderConfig::parallelism`] /
//! [`RenderConfig::tile_size`], so trajectory evaluation scales with the
//! tile engine while staying bitwise-deterministic.

use crate::camera::{orbit_poses, PinholeCamera};
use crate::mlp::Mlp;
use crate::ray::Aabb;
use crate::renderer::{render_view, RenderConfig, RenderStats};
use crate::source::VoxelSource;
use crate::vec3::Vec3;

/// Aggregated PSNR over a pose set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsnrStats {
    /// Views evaluated.
    pub views: usize,
    /// Mean PSNR in dB.
    pub mean_db: f64,
    /// Worst view.
    pub min_db: f64,
    /// Best view.
    pub max_db: f64,
}

impl PsnrStats {
    /// Aggregates per-view PSNR values (dB) into summary statistics.
    ///
    /// This is the single aggregation rule shared by [`psnr_over_views`]
    /// and the `spnerf` pipeline's `RenderSession`, so batch responses and
    /// trajectory evaluation can never disagree on the summary.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "need at least one PSNR value");
        let mean_db = values.iter().sum::<f64>() / values.len() as f64;
        let min_db = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_db = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self { views: values.len(), mean_db, min_db, max_db }
    }
}

/// Cameras on the standard evaluation orbit (radius 2.8, elevation 0.45).
pub fn evaluation_cameras(width: u32, height: u32, count: usize) -> Vec<PinholeCamera> {
    orbit_poses(count, Vec3::ZERO, 2.8, 0.45)
        .into_iter()
        .map(|pose| PinholeCamera { width, height, focal: width as f32 * 1.1, pose })
        .collect()
}

/// Renders `source` and `reference` over `cameras` and aggregates the
/// per-view PSNR of source-vs-reference. Also returns the source's total
/// render statistics (workload measurement over the whole trajectory).
///
/// # Panics
///
/// Panics if `cameras` is empty.
pub fn psnr_over_views<S: VoxelSource + Sync, R: VoxelSource + Sync>(
    source: &S,
    reference: &R,
    mlp: &Mlp,
    cameras: &[PinholeCamera],
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (PsnrStats, RenderStats) {
    assert!(!cameras.is_empty(), "need at least one camera");
    let mut total_stats = RenderStats::default();
    let mut psnrs = Vec::with_capacity(cameras.len());
    for cam in cameras {
        let (ref_img, _) = render_view(reference, mlp, cam, aabb, cfg);
        let (img, stats) = render_view(source, mlp, cam, aabb, cfg);
        total_stats += stats;
        psnrs.push(img.psnr(&ref_img));
    }
    (PsnrStats::from_values(&psnrs), total_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{build_grid, scene_aabb, SceneId};

    #[test]
    fn identical_sources_give_infinite_psnr() {
        let grid = build_grid(SceneId::Mic, 20);
        let mlp = Mlp::random(0);
        let cams = evaluation_cameras(8, 8, 3);
        let cfg = RenderConfig { samples_per_ray: 16, ..Default::default() };
        let (stats, render_stats) = psnr_over_views(&grid, &grid, &mlp, &cams, &scene_aabb(), &cfg);
        assert_eq!(stats.views, 3);
        assert!(stats.mean_db.is_infinite());
        assert_eq!(render_stats.rays, 3 * 64);
    }

    #[test]
    fn stats_ordering() {
        // Different sources: min ≤ mean ≤ max, all finite.
        let gt = build_grid(SceneId::Lego, 24);
        let other = build_grid(SceneId::Lego, 20); // coarser grid ⇒ differs
        let mlp = Mlp::random(0);
        let cams = evaluation_cameras(10, 10, 4);
        let cfg = RenderConfig { samples_per_ray: 24, ..Default::default() };
        let (s, _) = psnr_over_views(&other, &gt, &mlp, &cams, &scene_aabb(), &cfg);
        assert!(s.min_db <= s.mean_db && s.mean_db <= s.max_db);
        assert!(s.min_db.is_finite() && s.max_db.is_finite());
        assert!(s.min_db > 5.0, "renders should still correlate: {:.1}", s.min_db);
    }

    #[test]
    fn from_values_aggregates() {
        let s = PsnrStats::from_values(&[30.0, 20.0, 40.0]);
        assert_eq!(s.views, 3);
        assert_eq!(s.mean_db, 30.0);
        assert_eq!(s.min_db, 20.0);
        assert_eq!(s.max_db, 40.0);
    }

    #[test]
    #[should_panic(expected = "at least one PSNR value")]
    fn from_values_rejects_empty() {
        let _ = PsnrStats::from_values(&[]);
    }

    #[test]
    fn cameras_lie_on_the_orbit() {
        let cams = evaluation_cameras(16, 16, 6);
        assert_eq!(cams.len(), 6);
        for c in &cams {
            assert!((c.pose.position.length() - 2.8).abs() < 1e-4);
            assert_eq!(c.width, 16);
        }
    }

    #[test]
    #[should_panic(expected = "at least one camera")]
    fn empty_cameras_panic() {
        let grid = build_grid(SceneId::Mic, 16);
        let mlp = Mlp::random(0);
        let cfg = RenderConfig::default();
        let _ = psnr_over_views(&grid, &grid, &mlp, &[], &scene_aabb(), &cfg);
    }
}
