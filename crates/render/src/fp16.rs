//! Software IEEE 754 binary16 ("half", FP16).
//!
//! The SpNeRF accelerator computes on chip in FP16 (Section IV-A) while voxel
//! data lives off chip in INT8. This module provides a bit-exact `f32 ↔ f16`
//! conversion (round-to-nearest-even, subnormals, infinities, NaN) plus
//! arithmetic performed at f32 precision and re-rounded to f16 — the behaviour
//! of an FP16 multiply/add datapath with an f32-accurate core.
//!
//! Implemented in-tree because the offline dependency set does not include
//! the `half` crate.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An IEEE 754 binary16 value stored as its 16 raw bits.
///
/// # Examples
///
/// ```
/// use spnerf_render::fp16::F16;
///
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// let y = x * F16::from_f32(2.0);
/// assert_eq!(y.to_f32(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7e00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest positive normal value (2⁻¹⁴).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value (2⁻²⁴).
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon (2⁻¹⁰): difference between 1.0 and the next value.
    pub const EPSILON: F16 = F16(0x1400);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        F16(f32_to_f16_bits(x))
    }

    /// Converts to `f32` exactly (every f16 is representable in f32).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Creates a value from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x03ff) != 0
    }

    /// Whether the value is ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == 0x7c00
    }

    /// Whether the value is finite (neither ∞ nor NaN).
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7c00) != 0x7c00
    }

    /// Whether the value is subnormal (non-zero with biased exponent 0).
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7c00) == 0 && (self.0 & 0x03ff) != 0
    }

    /// Sign bit (true when negative, including -0).
    pub fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        F16(self.0 & 0x7fff)
    }

    /// Fused a·b + c evaluated at f32 precision, rounded once to f16 — the
    /// operation of one FP16 MAC in the systolic array.
    pub fn mul_add(self, b: F16, c: F16) -> F16 {
        F16::from_f32(self.to_f32() * b.to_f32() + c.to_f32())
    }

    /// The rounding error committed when storing `x` as f16.
    pub fn rounding_error(x: f32) -> f32 {
        (F16::from_f32(x).to_f32() - x).abs()
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

impl PartialEq for F16 {
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32() // IEEE semantics: NaN ≠ NaN, -0 == +0
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Add for F16 {
    type Output = F16;
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for F16 {
    type Output = F16;
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for F16 {
    type Output = F16;
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for F16 {
    type Output = F16;
    fn div(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Converts an `f32` to raw f16 bits with round-to-nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let exp32 = ((b >> 23) & 0xff) as i32;
    let frac32 = b & 0x007f_ffff;

    if exp32 == 0xff {
        // Infinity or NaN. Preserve NaN-ness by forcing a non-zero payload.
        if frac32 == 0 {
            return sign | 0x7c00;
        }
        let payload = ((frac32 >> 13) as u16) & 0x03ff;
        return sign | 0x7c00 | if payload == 0 { 0x0200 } else { payload };
    }

    let e = exp32 - 127; // unbiased exponent
    if e >= 16 {
        return sign | 0x7c00; // overflow → ±∞
    }
    if e >= -14 {
        // Normal half.
        let exp16 = (e + 15) as u32;
        let mut mant = frac32 >> 13;
        let rem = frac32 & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (mant & 1) == 1) {
            mant += 1; // may carry into the exponent, which is correct
        }
        let bits = (exp16 << 10) + mant;
        if bits >= 0x7c00 {
            return sign | 0x7c00; // rounded up to ∞
        }
        return sign | bits as u16;
    }
    if e >= -25 {
        // Subnormal half: drop (13 + (-14 - e)) bits of the 24-bit significand.
        let mant32 = frac32 | 0x0080_0000;
        let shift = (13 + (-14 - e)) as u32;
        let mut m = mant32 >> shift;
        let rem = mant32 & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && (m & 1) == 1) {
            m += 1; // m == 0x400 becomes the smallest normal — still correct bits
        }
        return sign | m as u16;
    }
    sign // underflow → ±0
}

/// Converts raw f16 bits to `f32` exactly.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let frac = (h & 0x03ff) as u32;
    let bits = match (exp, frac) {
        (0, 0) => sign,
        (0, f) => {
            // Subnormal: value = f × 2⁻²⁴, exact in f32.
            let v = f as f32 / 16_777_216.0;
            return if sign != 0 { -v } else { v };
        }
        (31, 0) => sign | 0x7f80_0000,
        (31, f) => sign | 0x7f80_0000 | (f << 13) | 0x0040_0000, // quiet NaN
        (e, f) => sign | ((e + 112) << 23) | (f << 13),
    };
    f32::from_bits(bits)
}

/// Rounds every element of `v` through f16 — models storing a vector in an
/// FP16 buffer.
pub fn round_slice_to_f16(v: &mut [f32]) {
    for x in v.iter_mut() {
        *x = F16::from_f32(*x).to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers() {
        for i in -2048i32..=2048 {
            let x = i as f32;
            assert_eq!(F16::from_f32(x).to_f32(), x, "integer {i} must round-trip");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3c00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xc000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7bff);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(2.0f32.powi(-14)).to_bits(), 0x0400);
        assert_eq!(F16::from_f32(2.0f32.powi(-24)).to_bits(), 0x0001);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_infinite());
        assert!(F16::from_f32(65520.0).is_infinite()); // rounds up past MAX
        assert_eq!(F16::from_f32(65519.0).to_bits(), 0x7bff); // rounds down to MAX
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(F16::from_f32(1e-10).to_bits(), 0);
        assert_eq!(F16::from_f32(-1e-10).to_bits(), 0x8000);
    }

    #[test]
    fn nan_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.is_nan());
        assert!(F16::NAN.to_f32().is_nan());
        assert_ne!(F16::NAN, F16::NAN); // IEEE: NaN ≠ NaN
    }

    #[test]
    fn subnormal_round_trip() {
        for f in 1u16..=0x3ff {
            let h = F16::from_bits(f);
            assert!(h.is_subnormal());
            assert_eq!(F16::from_f32(h.to_f32()).to_bits(), f);
        }
    }

    #[test]
    fn all_finite_bit_patterns_round_trip() {
        for bits in 0u16..=0xffff {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "bits {bits:#06x} failed round-trip");
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and 1+2^-10 → ties to even (1.0).
        let x = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(x).to_bits(), 0x3c00);
        // 1 + 3·2^-11 is between 1+2^-10 and 1+2^-9 → ties to even (1+2^-9).
        let y = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(y).to_bits(), 0x3c02);
        // Slightly above the tie rounds up.
        let z = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(z).to_bits(), 0x3c01);
    }

    #[test]
    fn arithmetic_rounds_like_fp16() {
        let a = F16::from_f32(0.1);
        let b = F16::from_f32(0.2);
        let c = a + b;
        // Result equals rounding the f32 sum of the rounded inputs.
        let expect = F16::from_f32(a.to_f32() + b.to_f32());
        assert_eq!(c.to_bits(), expect.to_bits());
        assert!((c.to_f32() - 0.3).abs() < 1e-3);
    }

    #[test]
    fn mul_add_matches_composition_when_exact() {
        let a = F16::from_f32(3.0);
        let b = F16::from_f32(4.0);
        let c = F16::from_f32(5.0);
        assert_eq!(a.mul_add(b, c).to_f32(), 17.0);
    }

    #[test]
    fn negation_flips_sign_bit_only() {
        let x = F16::from_f32(1.5);
        assert_eq!((-x).to_f32(), -1.5);
        assert_eq!((-(-x)).to_bits(), x.to_bits());
    }

    #[test]
    fn comparisons() {
        assert!(F16::from_f32(1.0) < F16::from_f32(2.0));
        assert!(F16::from_f32(-1.0) < F16::ZERO);
        assert_eq!(F16::from_f32(0.0), F16::from_f32(-0.0)); // IEEE -0 == +0
    }

    #[test]
    fn epsilon_is_ulp_of_one() {
        let next = F16::from_bits(F16::ONE.to_bits() + 1);
        assert_eq!((next - F16::ONE).to_bits(), F16::EPSILON.to_bits());
    }

    #[test]
    fn round_slice() {
        let mut v = [0.1f32, 1.0, 1e6];
        round_slice_to_f16(&mut v);
        assert_eq!(v[1], 1.0);
        assert!(v[2].is_infinite());
        assert_ne!(v[0], 0.1); // 0.1 is not representable
    }
}
