//! RGB image buffers, PSNR/MSE metrics, and PPM output.
//!
//! PSNR between a reference render and a compressed-model render is the
//! image-quality metric of the paper's Fig. 6(b) and Fig. 7.

use std::io::{self, Write};

use crate::vec3::Vec3;

/// A float RGB image (components nominally in `[0, 1]`).
///
/// # Examples
///
/// ```
/// use spnerf_render::image::ImageBuffer;
/// use spnerf_render::vec3::Vec3;
///
/// let a = ImageBuffer::filled(8, 8, Vec3::splat(0.5));
/// let b = ImageBuffer::filled(8, 8, Vec3::splat(0.5));
/// assert!(a.psnr(&b).is_infinite()); // identical images
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImageBuffer {
    width: u32,
    height: u32,
    data: Vec<Vec3>,
}

impl ImageBuffer {
    /// A black image.
    pub fn new(width: u32, height: u32) -> Self {
        Self::filled(width, height, Vec3::ZERO)
    }

    /// An image filled with a constant color.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: u32, height: u32, color: Vec3) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self { width, height, data: vec![color; width as usize * height as usize] }
    }

    /// Builds an image by evaluating `f(x, y)` per pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> Vec3) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: u32, y: u32) -> Vec3 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.data[(y * self.width + x) as usize]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: u32, y: u32, c: Vec3) {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.data[(y * self.width + x) as usize] = c;
    }

    /// All pixels in row-major order.
    pub fn pixels(&self) -> &[Vec3] {
        &self.data
    }

    /// Mean squared error against `other` over all channels.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn mse(&self, other: &ImageBuffer) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image dimensions differ"
        );
        let mut acc = 0.0f64;
        for (a, b) in self.data.iter().zip(&other.data) {
            let d = *a - *b;
            acc += (d.x as f64).powi(2) + (d.y as f64).powi(2) + (d.z as f64).powi(2);
        }
        acc / (self.data.len() as f64 * 3.0)
    }

    /// Peak signal-to-noise ratio in dB against `other` (peak = 1.0).
    /// Identical images give `+∞`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn psnr(&self, other: &ImageBuffer) -> f64 {
        let mse = self.mse(other);
        if mse == 0.0 {
            f64::INFINITY
        } else {
            -10.0 * mse.log10()
        }
    }

    /// Writes the image as binary PPM (P6), clamping to `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_ppm<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "P6\n{} {}\n255", self.width, self.height)?;
        let mut row = Vec::with_capacity(self.width as usize * 3);
        for y in 0..self.height {
            row.clear();
            for x in 0..self.width {
                let c = self.get(x, y);
                for ch in [c.x, c.y, c.z] {
                    row.push((ch.clamp(0.0, 1.0) * 255.0).round() as u8);
                }
            }
            w.write_all(&row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut img = ImageBuffer::new(4, 3);
        img.set(2, 1, Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(img.get(2, 1), Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(img.get(0, 0), Vec3::ZERO);
    }

    #[test]
    fn mse_of_known_difference() {
        let a = ImageBuffer::filled(2, 2, Vec3::ZERO);
        let b = ImageBuffer::filled(2, 2, Vec3::splat(0.5));
        assert!((a.mse(&b) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn psnr_of_known_difference() {
        let a = ImageBuffer::filled(2, 2, Vec3::ZERO);
        let b = ImageBuffer::filled(2, 2, Vec3::splat(0.1));
        // mse = 0.01 → psnr = 20 dB.
        assert!((a.psnr(&b) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let a = ImageBuffer::filled(3, 3, Vec3::splat(0.7));
        assert!(a.psnr(&a.clone()).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a = ImageBuffer::filled(2, 2, Vec3::ZERO);
        let small = ImageBuffer::filled(2, 2, Vec3::splat(0.01));
        let big = ImageBuffer::filled(2, 2, Vec3::splat(0.2));
        assert!(a.psnr(&small) > a.psnr(&big));
    }

    #[test]
    fn ppm_header_and_size() {
        let img = ImageBuffer::filled(3, 2, Vec3::splat(1.0));
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        let header = b"P6\n3 2\n255\n";
        assert_eq!(&buf[..header.len()], header);
        assert_eq!(buf.len(), header.len() + 3 * 2 * 3);
        assert_eq!(*buf.last().unwrap(), 255);
    }

    #[test]
    fn from_fn_coordinates() {
        let img = ImageBuffer::from_fn(4, 4, |x, y| Vec3::new(x as f32, y as f32, 0.0));
        assert_eq!(img.get(3, 1), Vec3::new(3.0, 1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn mse_dimension_mismatch_panics() {
        let a = ImageBuffer::new(2, 2);
        let b = ImageBuffer::new(3, 2);
        let _ = a.mse(&b);
    }
}
