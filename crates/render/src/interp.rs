//! Trilinear interpolation over voxel grids (Eq. (2) of the paper).
//!
//! A continuous sample position is surrounded by 8 voxel vertices; each
//! vertex contributes with weight
//! `w = (1 − |x_p − x_g|)·(1 − |y_p − y_g|)·(1 − |z_p − z_g|)` — the formula
//! the accelerator's Grid ID Unit computes in FP16. The weighted sum over
//! density and color features is what the Trilinear Interpolation Unit
//! produces.

use spnerf_voxel::coord::{GridCoord, GridDims};

use crate::lanes::F32x8;
use crate::source::{VoxelData, VoxelSource};
use crate::vec3::Vec3;
use spnerf_voxel::FEATURE_DIM;

/// Mapping between a world-space AABB and continuous grid coordinates.
///
/// Grid vertex `(i, j, k)` sits at the world position obtained by linearly
/// mapping `[0, n−1]` onto the AABB extent per axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridFrame {
    dims: GridDims,
    origin: Vec3,
    scale: Vec3, // grid units per world unit
}

impl GridFrame {
    /// Creates a frame mapping `aabb` onto grid `dims`.
    pub fn new(dims: GridDims, aabb_min: Vec3, aabb_max: Vec3) -> Self {
        let size = aabb_max - aabb_min;
        let scale = Vec3::new(
            (dims.nx.max(2) - 1) as f32 / size.x.max(1e-9),
            (dims.ny.max(2) - 1) as f32 / size.y.max(1e-9),
            (dims.nz.max(2) - 1) as f32 / size.z.max(1e-9),
        );
        Self { dims, origin: aabb_min, scale }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// World position → continuous grid coordinates.
    pub fn world_to_grid(&self, p: Vec3) -> Vec3 {
        (p - self.origin) * self.scale
    }

    /// Continuous grid coordinates → world position.
    pub fn grid_to_world(&self, g: Vec3) -> Vec3 {
        Vec3::new(g.x / self.scale.x, g.y / self.scale.y, g.z / self.scale.z) + self.origin
    }
}

/// The interpolation cell of a continuous grid position: the lower-corner
/// vertex plus the 8 corner weights, ordered like
/// [`GridCoord::cell_corners`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrilinearCell {
    /// Lower corner vertex.
    pub base: GridCoord,
    /// Corner weights; always sums to 1.
    pub weights: [f32; 8],
}

/// Computes the interpolation cell for a continuous grid position, or `None`
/// when the position (clamped cell) falls outside the grid.
///
/// Positions within half a voxel outside the boundary are clamped onto it,
/// matching the renderer's behaviour at the AABB faces.
pub fn trilinear_cell(dims: GridDims, g: Vec3) -> Option<TrilinearCell> {
    let max = Vec3::new((dims.nx - 1) as f32, (dims.ny - 1) as f32, (dims.nz - 1) as f32);
    if g.x < -0.5 || g.y < -0.5 || g.z < -0.5 {
        return None;
    }
    if g.x > max.x + 0.5 || g.y > max.y + 0.5 || g.z > max.z + 0.5 {
        return None;
    }
    let gx = g.x.clamp(0.0, max.x - 1e-4);
    let gy = g.y.clamp(0.0, max.y - 1e-4);
    let gz = g.z.clamp(0.0, max.z - 1e-4);
    let bx = gx.floor();
    let by = gy.floor();
    let bz = gz.floor();
    let (fx, fy, fz) = (gx - bx, gy - by, gz - bz);
    let base = GridCoord::new(bx as u32, by as u32, bz as u32);
    let mut weights = [0.0f32; 8];
    for (i, w) in weights.iter_mut().enumerate() {
        let wx = if i & 1 == 1 { fx } else { 1.0 - fx };
        let wy = if (i >> 1) & 1 == 1 { fy } else { 1.0 - fy };
        let wz = if (i >> 2) & 1 == 1 { fz } else { 1.0 - fz };
        *w = wx * wy * wz;
    }
    Some(TrilinearCell { base, weights })
}

/// Result of interpolating a voxel source at one sample position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterpSample {
    /// Interpolated density.
    pub density: f32,
    /// Interpolated color features.
    pub features: [f32; spnerf_voxel::FEATURE_DIM],
    /// How many of the 8 corners were occupied.
    pub occupied_corners: u8,
}

impl InterpSample {
    /// An all-zero sample (empty space).
    pub fn empty() -> Self {
        Self { density: 0.0, features: [0.0; spnerf_voxel::FEATURE_DIM], occupied_corners: 0 }
    }
}

/// Interpolates `source` at continuous grid position `g`.
///
/// Empty corners (where the source returns `None`) contribute zero, exactly
/// as the hardware's masked lookups do. Returns an empty sample when the
/// position is outside the grid.
pub fn interpolate<S: VoxelSource + ?Sized>(source: &S, g: Vec3) -> InterpSample {
    let Some(cell) = trilinear_cell(source.dims(), g) else {
        return InterpSample::empty();
    };
    interpolate_cell(source, &cell)
}

/// Interpolates `source` over an already-computed [`TrilinearCell`] — the
/// arithmetic core of [`interpolate`], split out so callers that resolve
/// the cell themselves (the empty-space-skipping ray marcher) don't compute
/// it twice. Bitwise-identical to [`interpolate`] at the cell's position.
///
/// Dispatches to [`interpolate_cell_lanes`] under the `simd` feature and to
/// [`interpolate_cell_scalar`] otherwise; the two are bitwise-identical, so
/// the feature flag never changes a rendered pixel.
pub fn interpolate_cell<S: VoxelSource + ?Sized>(source: &S, cell: &TrilinearCell) -> InterpSample {
    #[cfg(feature = "simd")]
    {
        interpolate_cell_lanes(source, cell)
    }
    #[cfg(not(feature = "simd"))]
    {
        interpolate_cell_scalar(source, cell)
    }
}

/// The scalar reference implementation of [`interpolate_cell`]: one corner
/// at a time, one feature channel at a time. This is the conformance anchor
/// the lane kernel is pinned against.
pub fn interpolate_cell_scalar<S: VoxelSource + ?Sized>(
    source: &S,
    cell: &TrilinearCell,
) -> InterpSample {
    let corners = cell.base.cell_corners();
    let mut out = InterpSample::empty();
    for (corner, w) in corners.iter().zip(cell.weights) {
        if w == 0.0 {
            continue;
        }
        if let Some(VoxelData { density, features }) = source.fetch(*corner) {
            out.density += w * density;
            for (o, f) in out.features.iter_mut().zip(features) {
                *o += w * f;
            }
            out.occupied_corners += 1;
        }
    }
    out
}

/// The lane-batched implementation of [`interpolate_cell`], bitwise-equal
/// to [`interpolate_cell_scalar`].
///
/// Structure follows the accelerator's Trilinear Interpolation Unit:
/// *gather* the contributing corners first (the same `w == 0` and masked
/// occupancy tests as the scalar path, in the same corner order), then
/// *blend* all [`FEATURE_DIM`] feature channels in lane form — two [`F32x8`]
/// vectors (channels 0..8 and 8..12 zero-padded) scaled by the splatted
/// corner weight. The lanes hold independent output channels and corners
/// accumulate sequentially, so each channel's float-addition order is
/// exactly the scalar one; see [`crate::lanes`] for the bitwise contract.
pub fn interpolate_cell_lanes<S: VoxelSource + ?Sized>(
    source: &S,
    cell: &TrilinearCell,
) -> InterpSample {
    const EMPTY: VoxelData = VoxelData { density: 0.0, features: [0.0; FEATURE_DIM] };
    let corners = cell.base.cell_corners();
    // Gather phase: contributing corners in scalar order.
    let mut weights = [0.0f32; 8];
    let mut data = [EMPTY; 8];
    let mut n = 0usize;
    for (corner, w) in corners.iter().zip(cell.weights) {
        if w == 0.0 {
            continue;
        }
        if let Some(vd) = source.fetch(*corner) {
            weights[n] = w;
            data[n] = vd;
            n += 1;
        }
    }
    // Blend phase: density stays scalar (one channel), features run as two
    // 8-wide lanes with an unfused multiply-then-add per corner.
    let mut density = 0.0f32;
    let mut lo = F32x8::ZERO;
    let mut hi = F32x8::ZERO;
    for (w, vd) in weights[..n].iter().zip(&data[..n]) {
        density += w * vd.density;
        let wl = F32x8::splat(*w);
        lo = wl.mul_add(F32x8::load_padded(&vd.features[..8]), lo);
        hi = wl.mul_add(F32x8::load_padded(&vd.features[8..]), hi);
    }
    let mut out = InterpSample::empty();
    out.density = density;
    lo.store_padded(&mut out.features[..8]);
    hi.store_padded(&mut out.features[8..]);
    out.occupied_corners = n as u8;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnerf_voxel::grid::DenseGrid;
    use spnerf_voxel::FEATURE_DIM;

    #[test]
    fn weights_partition_unity() {
        let dims = GridDims::cube(8);
        for g in
            [Vec3::new(0.0, 0.0, 0.0), Vec3::new(3.25, 4.5, 6.75), Vec3::new(6.999, 0.001, 3.5)]
        {
            let cell = trilinear_cell(dims, g).unwrap();
            let sum: f32 = cell.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "weights sum to {sum} at {g:?}");
        }
    }

    #[test]
    fn exact_at_vertices() {
        let dims = GridDims::cube(4);
        let cell = trilinear_cell(dims, Vec3::new(2.0, 1.0, 1.0)).unwrap();
        // All weight on the base corner.
        assert!(cell.weights[0] > 0.999);
        assert_eq!(cell.base, GridCoord::new(2, 1, 1));
        // At the upper boundary the base shifts down so the cell stays in
        // bounds; the weight mass moves to the +z corner instead.
        let top = trilinear_cell(dims, Vec3::new(2.0, 1.0, 3.0)).unwrap();
        assert_eq!(top.base, GridCoord::new(2, 1, 2));
        assert!(top.weights[4] > 0.999);
    }

    #[test]
    fn midpoint_weights_equal() {
        let dims = GridDims::cube(4);
        let cell = trilinear_cell(dims, Vec3::new(0.5, 0.5, 0.5)).unwrap();
        for w in cell.weights {
            assert!((w - 0.125).abs() < 1e-6);
        }
    }

    #[test]
    fn outside_returns_none() {
        let dims = GridDims::cube(4);
        assert!(trilinear_cell(dims, Vec3::new(-1.0, 0.0, 0.0)).is_none());
        assert!(trilinear_cell(dims, Vec3::new(0.0, 5.0, 0.0)).is_none());
    }

    #[test]
    fn boundary_clamps() {
        let dims = GridDims::cube(4);
        // Half a voxel outside clamps onto the face.
        let cell = trilinear_cell(dims, Vec3::new(3.4, 1.0, 1.0)).unwrap();
        assert_eq!(cell.base.x, 2); // base clamped so the cell stays in bounds
    }

    #[test]
    fn interpolation_is_linear_along_edge() {
        let mut g = DenseGrid::zeros(GridDims::cube(4));
        g.set_density(GridCoord::new(1, 1, 1), 1.0);
        g.set_density(GridCoord::new(2, 1, 1), 3.0);
        let s = interpolate(&g, Vec3::new(1.25, 1.0, 1.0));
        assert!((s.density - 1.5).abs() < 1e-5);
        assert_eq!(s.occupied_corners, 2);
    }

    #[test]
    fn interpolated_features_blend() {
        let mut g = DenseGrid::zeros(GridDims::cube(4));
        g.set_density(GridCoord::new(1, 1, 1), 1.0);
        g.set_features(GridCoord::new(1, 1, 1), &[1.0; FEATURE_DIM]);
        g.set_density(GridCoord::new(2, 1, 1), 1.0);
        g.set_features(GridCoord::new(2, 1, 1), &[0.0; FEATURE_DIM]);
        let s = interpolate(&g, Vec3::new(1.75, 1.0, 1.0));
        assert!((s.features[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn empty_space_interpolates_to_zero() {
        let g = DenseGrid::zeros(GridDims::cube(4));
        let s = interpolate(&g, Vec3::new(1.5, 1.5, 1.5));
        assert_eq!(s.density, 0.0);
        assert_eq!(s.occupied_corners, 0);
    }

    #[test]
    fn lane_kernel_is_bitwise_scalar() {
        // Dense-ish cell, partially occupied cell, boundary-clamped cell:
        // the lane blend must reproduce the scalar result bit for bit,
        // including the occupied-corner count (proptest sweeps the wide
        // input space in tests/lane_equivalence.rs).
        let mut g = DenseGrid::zeros(GridDims::cube(5));
        for (i, c) in [(1u32, 1u32, 1u32), (2, 1, 1), (1, 2, 1), (2, 2, 2), (4, 4, 4)]
            .iter()
            .enumerate()
            .map(|(i, &(x, y, z))| (i, GridCoord::new(x, y, z)))
        {
            g.set_density(c, 0.3 + i as f32 * 0.17);
            let f: Vec<f32> = (0..FEATURE_DIM).map(|k| (i * 7 + k) as f32 * 0.013).collect();
            g.set_features(c, &f);
        }
        for pos in [
            Vec3::new(1.3, 1.6, 1.1),
            Vec3::new(2.0, 2.0, 2.0),
            Vec3::new(4.2, 4.3, 4.4),
            Vec3::new(0.5, 0.5, 0.5),
        ] {
            let cell = trilinear_cell(g.dims(), pos).unwrap();
            let s = interpolate_cell_scalar(&g, &cell);
            let l = interpolate_cell_lanes(&g, &cell);
            assert_eq!(s.density.to_bits(), l.density.to_bits(), "density at {pos:?}");
            for (a, b) in s.features.iter().zip(l.features) {
                assert_eq!(a.to_bits(), b.to_bits(), "feature channel at {pos:?}");
            }
            assert_eq!(s.occupied_corners, l.occupied_corners);
            // The dispatching entry point agrees with both.
            assert_eq!(interpolate_cell(&g, &cell), s);
        }
    }

    #[test]
    fn grid_frame_round_trip() {
        let frame = GridFrame::new(GridDims::cube(9), Vec3::splat(-1.0), Vec3::splat(1.0));
        let w = Vec3::new(0.3, -0.6, 0.9);
        let g = frame.world_to_grid(w);
        let back = frame.grid_to_world(g);
        assert!((back - w).length() < 1e-5);
        // AABB min maps to vertex 0, max to vertex n-1.
        assert!((frame.world_to_grid(Vec3::splat(-1.0)) - Vec3::ZERO).length() < 1e-5);
        assert!((frame.world_to_grid(Vec3::splat(1.0)) - Vec3::splat(8.0)).length() < 1e-4);
    }
}
