//! Explicit-width lane arithmetic for the hot-path kernels.
//!
//! Stable Rust has no `std::simd`, so this module hand-rolls the one lane
//! type the renderer needs: [`F32x8`], eight `f32` elements — one 256-bit
//! vector register's worth — stored as a plain array so the autovectorizer
//! can map every element-wise operation onto packed instructions.
//!
//! # The bitwise contract
//!
//! Every operation here is **element-wise**: there are no horizontal
//! reductions, no reassociation, and [`F32x8::mul_add`] is deliberately an
//! unfused multiply-then-add. A kernel that accumulates lane-wise in the
//! same per-element order as its scalar reference therefore produces
//! bit-identical results — which is what lets the `simd` feature flag flip
//! between [`crate::interp::interpolate_cell_scalar`] /
//! [`crate::interp::interpolate_cell_lanes`] (and the MLP GEMV pair) without
//! perturbing a single pixel of any golden render.
//!
//! The trick is choosing the lane axis: both vectorized kernels put
//! *independent outputs* in the lanes (feature channels for interpolation,
//! output neurons for the GEMV) and keep the reduction axis sequential, so
//! each output's float-addition order is exactly the scalar one.

use std::ops::{Add, AddAssign, Mul};

/// Number of `f32` elements per [`F32x8`] lane vector.
pub const LANE_WIDTH: usize = 8;

/// An 8-wide `f32` lane vector with element-wise arithmetic.
///
/// # Examples
///
/// ```
/// use spnerf_render::lanes::F32x8;
///
/// let acc = F32x8::splat(1.0);
/// let w = F32x8::from_array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
/// // Unfused acc + w * 2.0 per element.
/// let r = F32x8::splat(2.0).mul_add(w, acc);
/// assert_eq!(r.to_array()[3], 1.0 + 2.0 * 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F32x8([f32; LANE_WIDTH]);

impl F32x8 {
    /// All elements zero.
    pub const ZERO: F32x8 = F32x8([0.0; LANE_WIDTH]);

    /// Broadcasts one value into every lane.
    pub const fn splat(v: f32) -> Self {
        Self([v; LANE_WIDTH])
    }

    /// Wraps an element array.
    pub const fn from_array(a: [f32; LANE_WIDTH]) -> Self {
        Self(a)
    }

    /// The element array.
    pub const fn to_array(self) -> [f32; LANE_WIDTH] {
        self.0
    }

    /// Loads up to [`LANE_WIDTH`] elements from the front of `s`,
    /// zero-filling the tail — the padded load used at ragged edges
    /// (e.g. feature channels 8..12, or an output block past `out_dim`).
    pub fn load_padded(s: &[f32]) -> Self {
        let mut a = [0.0f32; LANE_WIDTH];
        let n = s.len().min(LANE_WIDTH);
        a[..n].copy_from_slice(&s[..n]);
        Self(a)
    }

    /// Stores the first `out.len().min(LANE_WIDTH)` elements into `out` —
    /// the padded store matching [`F32x8::load_padded`].
    pub fn store_padded(self, out: &mut [f32]) {
        let n = out.len().min(LANE_WIDTH);
        out[..n].copy_from_slice(&self.0[..n]);
    }

    /// Element-wise unfused multiply-then-add: `acc + self * m` per lane.
    ///
    /// Two IEEE 754 rounding steps, exactly like the scalar
    /// `acc += w * x` it replaces — **not** a fused `mul_add`, which would
    /// round once and break bitwise equality with the scalar reference.
    pub fn mul_add(self, m: F32x8, acc: F32x8) -> F32x8 {
        let mut out = [0.0f32; LANE_WIDTH];
        for ((o, (a, b)), c) in out.iter_mut().zip(self.0.iter().zip(m.0)).zip(acc.0) {
            *o = c + a * b;
        }
        Self(out)
    }
}

impl Add for F32x8 {
    type Output = F32x8;

    fn add(self, rhs: F32x8) -> F32x8 {
        let mut out = [0.0f32; LANE_WIDTH];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0)) {
            *o = a + b;
        }
        Self(out)
    }
}

impl AddAssign for F32x8 {
    fn add_assign(&mut self, rhs: F32x8) {
        *self = *self + rhs;
    }
}

impl Mul for F32x8 {
    type Output = F32x8;

    fn mul(self, rhs: F32x8) -> F32x8 {
        let mut out = [0.0f32; LANE_WIDTH];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0)) {
            *o = a * b;
        }
        Self(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_roundtrip() {
        let v = F32x8::splat(2.5);
        assert_eq!(v.to_array(), [2.5; 8]);
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(F32x8::from_array(a).to_array(), a);
    }

    #[test]
    fn padded_load_zero_fills() {
        let v = F32x8::load_padded(&[1.0, 2.0, 3.0]);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // Over-long slices truncate.
        let long: Vec<f32> = (0..12).map(|i| i as f32).collect();
        assert_eq!(F32x8::load_padded(&long).to_array()[7], 7.0);
    }

    #[test]
    fn padded_store_respects_length() {
        let v = F32x8::from_array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut out = [0.0f32; 3];
        v.store_padded(&mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        let mut full = [0.0f32; 8];
        v.store_padded(&mut full);
        assert_eq!(full, v.to_array());
    }

    #[test]
    fn elementwise_ops() {
        let a = F32x8::from_array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(0.5);
        assert_eq!((a + b).to_array()[2], 3.5);
        assert_eq!((a * b).to_array()[5], 3.0);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn mul_add_is_unfused_and_matches_scalar_order() {
        // The exact double-rounding of `acc + a*b` must be preserved: pick
        // operands where fused and unfused differ in the last ulp.
        let a = 0.1f32;
        let b = 0.2f32;
        let acc = 0.3f32;
        let lane = F32x8::splat(a).mul_add(F32x8::splat(b), F32x8::splat(acc));
        let scalar = acc + a * b;
        for l in lane.to_array() {
            assert_eq!(l.to_bits(), scalar.to_bits());
        }
    }
}
