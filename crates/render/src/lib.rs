//! # spnerf-render
//!
//! Neural-rendering substrate for the SpNeRF reproduction (DATE 2025): the
//! CPU reference implementation of everything the accelerator pipelines.
//!
//! * [`mod@bake`] — the deterministic bake pass feeding the deferred
//!   (SNeRG-style) render path,
//! * [`fp16`] — software IEEE 754 binary16 (the accelerator's on-chip
//!   number format),
//! * [`vec3`] — 3-D vector math,
//! * [`camera`] / [`ray`] — pinhole cameras, orbit poses, AABB clipping and
//!   uniform ray sampling,
//! * [`interp`] — Eq. (2) trilinear interpolation and world↔grid frames,
//! * [`mlp`] — the 3-layer color MLP (128/128/3) with the 39-element input
//!   vector of the paper's Fig. 5,
//! * [`composite`] — the volume-rendering equation,
//! * [`image`] — image buffers, PSNR and PPM output,
//! * [`scene`] — procedural Synthetic-NeRF-like scenes with calibrated
//!   sparsity,
//! * [`source`] / [`renderer`] — the [`source::VoxelSource`]-generic
//!   renderer whose [`renderer::RenderStats`] feed the accelerator
//!   simulator, with hierarchical empty-space skipping
//!   ([`renderer::SkipMode`] over a [`source::WithOccupancy`] source) that
//!   drops marched samples without changing a single pixel,
//! * [`engine`] — the tile-parallel render engine: a
//!   [`engine::TileScheduler`] partitions each view into rectangular tiles
//!   and a scoped worker pool traces them concurrently over any
//!   `VoxelSource + Sync`,
//! * [`temporal`] — deterministic camera trajectories (orbit, dolly,
//!   handheld jitter) rendered as frame sequences with Cicero-style
//!   forward-warp reuse: [`temporal::ReuseMode::Off`] stays
//!   bitwise-identical to per-frame rendering while
//!   [`temporal::ReuseMode::Warp`] re-marches only disoccluded, depth-edge
//!   and validation rays, carrying per-pixel skip caches across frames.
//!
//! # Render engine architecture
//!
//! Rendering is layered: [`renderer::trace_ray`] is the pure per-ray kernel
//! (march → decode → interpolate → MLP → composite) over a read-only
//! [`renderer::RenderFrame`]; the [`engine`] fans rays out across worker
//! threads tile by tile; [`renderer::render_view`] is the front door that
//! honors [`renderer::RenderConfig::parallelism`] (`0` = all cores) and
//! [`renderer::RenderConfig::tile_size`]. Because rays are independent and
//! tile results are merged back in deterministic tile order, the engine's
//! images and stats are **bitwise-identical** to the serial reference
//! ([`renderer::render_view_serial`]) at every thread count and tile size.
//!
//! # Examples
//!
//! Render the ground truth of a scene:
//!
//! ```
//! use spnerf_render::mlp::Mlp;
//! use spnerf_render::renderer::{render_view, RenderConfig};
//! use spnerf_render::scene::{build_grid, default_camera, scene_aabb, SceneId};
//!
//! let grid = build_grid(SceneId::Lego, 24);
//! let mlp = Mlp::random(0);
//! let camera = default_camera(16, 16, 0, 8);
//! let cfg = RenderConfig { samples_per_ray: 32, ..Default::default() };
//! let (image, stats) = render_view(&grid, &mlp, &camera, &scene_aabb(), &cfg);
//! assert_eq!(image.width(), 16);
//! assert!(stats.samples_marched > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bake;
pub mod camera;
pub mod composite;
pub mod engine;
pub mod eval;
pub mod fp16;
pub mod image;
pub mod interp;
pub mod lanes;
pub mod mlp;
pub mod ray;
pub mod renderer;
pub mod scene;
pub mod source;
pub mod temporal;
pub mod vec3;

pub use bake::bake;
pub use camera::PinholeCamera;
pub use engine::{resolve_parallelism, threads_from_args_or_env, Tile, TileScheduler};
pub use fp16::F16;
pub use image::ImageBuffer;
pub use lanes::F32x8;
pub use mlp::{DeferredMlp, Mlp, MlpF16, MlpScratch};
pub use ray::{Aabb, Ray};
pub use renderer::{
    render_view, render_view_serial, render_view_serial_shaded, render_view_shaded, trace_packet,
    trace_ray, trace_ray_traced, RenderConfig, RenderStats, Shader, SkipCache, SkipMode, TracedRay,
};
pub use scene::SceneId;
pub use source::{support_bitmap, VoxelData, VoxelSource, WithOccupancy};
pub use temporal::{
    advance_frame, render_trajectory_shaded, PathKind, ReuseMode, ReuseState, TemporalFrame,
    TrajectorySpec, WarpConfig,
};
pub use vec3::Vec3;
