//! The 3-layer rendering MLP (channel sizes 128, 128, 3) and the
//! view-direction encoding.
//!
//! VQRF (and therefore SpNeRF) uses a small color MLP: the interpolated
//! 12-dim voxel feature is concatenated with a 27-dim positional encoding of
//! the view direction, forming the 39×1 input vector the paper's Fig. 5
//! stores in block-circulant layout. Density does **not** pass through the
//! MLP — it comes straight from the grid.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fp16::{f16_bits_to_f32, f32_to_f16_bits};
use crate::lanes::{F32x8, LANE_WIDTH};
use crate::vec3::Vec3;
use spnerf_voxel::baked::SPEC_DIM;
use spnerf_voxel::FEATURE_DIM;

/// Dimension of the view-direction encoding: raw direction (3) plus sin/cos
/// at 4 frequencies per component (3 × 2 × 4 = 24).
pub const VIEW_ENC_DIM: usize = 27;

/// MLP input width: voxel features ⊕ view encoding = 12 + 27 = 39, the
/// vector of the paper's block-circulant buffer.
pub const MLP_INPUT_DIM: usize = FEATURE_DIM + VIEW_ENC_DIM;

/// Hidden layer width.
pub const MLP_HIDDEN_DIM: usize = 128;

/// Output channels (RGB).
pub const MLP_OUTPUT_DIM: usize = 3;

/// Encodes a (normalized) view direction into [`VIEW_ENC_DIM`] values:
/// `[d, sin(2^k d), cos(2^k d)]` for `k = 0..4`, per component.
pub fn encode_direction(dir: Vec3) -> [f32; VIEW_ENC_DIM] {
    let mut out = [0.0f32; VIEW_ENC_DIM];
    let d = dir.to_array();
    out[..3].copy_from_slice(&d);
    let mut idx = 3;
    for k in 0..4 {
        let f = (1u32 << k) as f32;
        for c in d {
            out[idx] = (f * c).sin();
            out[idx + 1] = (f * c).cos();
            idx += 2;
        }
    }
    out
}

/// Rounds `out_dim` up to the next [`LANE_WIDTH`] multiple — the padded
/// output width of the lane-blocked weight layout.
const fn pad_to_lanes(out_dim: usize) -> usize {
    out_dim.div_ceil(LANE_WIDTH) * LANE_WIDTH
}

/// Re-lays row-major `out_dim × in_dim` weights as the in-major
/// `in_dim × padded_out` operand the lane GEMV streams: element
/// `(i, o)` lands at `i * padded_out + o`, padding columns are zero.
fn lane_transpose(weights: &[f32], in_dim: usize, out_dim: usize) -> Vec<f32> {
    let padded = pad_to_lanes(out_dim);
    let mut t = vec![0.0f32; in_dim * padded];
    for o in 0..out_dim {
        for i in 0..in_dim {
            t[i * padded + o] = weights[o * in_dim + i];
        }
    }
    t
}

/// One dense layer: `out = act(W x + b)`.
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim` (the scalar path's layout).
    weights: Vec<f32>,
    /// The same weights in lane-blocked in-major `in_dim × padded_out`
    /// layout ([`lane_transpose`]), streamed by the lane GEMV.
    weights_t: Vec<f32>,
    bias: Vec<f32>,
}

impl Layer {
    /// Bytes this layer holds in memory: row-major weights, the
    /// lane-blocked `weights_t` mirror (including its padding columns —
    /// they are allocated), and the bias, all `f32`.
    fn resident_bytes(&self) -> usize {
        (self.weights.len() + self.weights_t.len() + self.bias.len()) * std::mem::size_of::<f32>()
    }

    fn from_parts(in_dim: usize, out_dim: usize, weights: Vec<f32>, bias: Vec<f32>) -> Self {
        debug_assert_eq!(weights.len(), in_dim * out_dim);
        debug_assert_eq!(bias.len(), out_dim);
        let weights_t = lane_transpose(&weights, in_dim, out_dim);
        Self { in_dim, out_dim, weights, weights_t, bias }
    }

    fn random(in_dim: usize, out_dim: usize, gain: f32, rng: &mut StdRng) -> Self {
        // Xavier-uniform initialization keeps activations in range without
        // training; `gain` tunes the network's input sensitivity so feature
        // perturbations show up in rendered images at realistic magnitudes.
        let bound = gain * (6.0f32 / (in_dim + out_dim) as f32).sqrt();
        let weights = (0..in_dim * out_dim).map(|_| rng.gen_range(-bound..bound)).collect();
        let bias = (0..out_dim).map(|_| rng.gen_range(-0.1..0.1f32)).collect();
        Self::from_parts(in_dim, out_dim, weights, bias)
    }

    /// This layer with every weight and bias rounded through IEEE binary16
    /// (round-to-nearest-even) — the f32 twin of a [`LayerF16`].
    fn rounded_f16(&self) -> Self {
        let round = |v: &f32| f16_bits_to_f32(f32_to_f16_bits(*v));
        Self::from_parts(
            self.in_dim,
            self.out_dim,
            self.weights.iter().map(round).collect(),
            self.bias.iter().map(round).collect(),
        )
    }

    /// The scalar reference GEMV: one output row at a time, inputs in
    /// ascending `i` order.
    fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        for (o, slot) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias[o];
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *slot = acc;
        }
    }

    /// The lane-blocked GEMV, bitwise-equal to [`Layer::forward_into`].
    ///
    /// Each [`F32x8`] lane holds 8 *independent* output neurons; inputs
    /// stream in the same ascending `i` order as the scalar path with an
    /// unfused multiply-then-add, so every output's float-addition order —
    /// and therefore its bits — is unchanged. The padded tail columns
    /// accumulate zeros and are never stored.
    fn forward_into_lanes(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        let padded = pad_to_lanes(self.out_dim);
        for jb in (0..padded).step_by(LANE_WIDTH) {
            let mut acc = F32x8::load_padded(&self.bias[jb.min(self.bias.len())..]);
            for (i, xi) in x.iter().enumerate() {
                let w = F32x8::load_padded(&self.weights_t[i * padded + jb..i * padded + jb + 8]);
                acc = F32x8::splat(*xi).mul_add(w, acc);
            }
            acc.store_padded(&mut out[jb..self.out_dim.min(jb + LANE_WIDTH)]);
        }
    }
}

/// The 3-layer color MLP (39 → 128 → 128 → 3).
///
/// Hidden activations are ReLU; the RGB output is squashed by a sigmoid so
/// rendered colors live in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use spnerf_render::mlp::{encode_direction, Mlp, MLP_INPUT_DIM};
/// use spnerf_render::vec3::Vec3;
///
/// let mlp = Mlp::random(42);
/// let mut input = [0.1f32; MLP_INPUT_DIM];
/// input[12..].copy_from_slice(&encode_direction(Vec3::new(0.0, 0.0, 1.0)));
/// let rgb = mlp.forward(&input);
/// assert!(rgb.iter().all(|c| (0.0..=1.0).contains(c)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    l1: Layer,
    l2: Layer,
    l3: Layer,
}

impl Mlp {
    /// A deterministic randomly-initialized MLP. The same seed always yields
    /// the same network, so renders are reproducible across runs.
    pub fn random(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            l1: Layer::random(MLP_INPUT_DIM, MLP_HIDDEN_DIM, 1.2, &mut rng),
            l2: Layer::random(MLP_HIDDEN_DIM, MLP_HIDDEN_DIM, 1.2, &mut rng),
            l3: Layer::random(MLP_HIDDEN_DIM, MLP_OUTPUT_DIM, 2.5, &mut rng),
        }
    }

    /// Runs the network on one 39-element input, returning RGB in `[0, 1]`.
    ///
    /// Dispatches to the lane GEMV under the `simd` feature and to the
    /// scalar reference otherwise; the two are bitwise-identical (see
    /// [`crate::lanes`]), so the feature flag never changes a pixel.
    pub fn forward(&self, input: &[f32; MLP_INPUT_DIM]) -> [f32; MLP_OUTPUT_DIM] {
        self.forward_with(input, &mut MlpScratch::new())
    }

    /// [`Mlp::forward`] reusing caller-owned hidden-activation buffers, so
    /// packeted ray marching ([`crate::renderer::trace_packet`]) amortizes
    /// the scratch across every sample of a tile.
    pub fn forward_with(
        &self,
        input: &[f32; MLP_INPUT_DIM],
        scratch: &mut MlpScratch,
    ) -> [f32; MLP_OUTPUT_DIM] {
        #[cfg(feature = "simd")]
        {
            self.forward_lanes_with(input, scratch)
        }
        #[cfg(not(feature = "simd"))]
        {
            self.forward_scalar_with(input, scratch)
        }
    }

    /// The scalar reference forward pass — the conformance anchor the lane
    /// and fp16 variants are pinned against.
    pub fn forward_scalar(&self, input: &[f32; MLP_INPUT_DIM]) -> [f32; MLP_OUTPUT_DIM] {
        self.forward_scalar_with(input, &mut MlpScratch::new())
    }

    /// [`Mlp::forward_scalar`] with caller-owned scratch.
    pub fn forward_scalar_with(
        &self,
        input: &[f32; MLP_INPUT_DIM],
        scratch: &mut MlpScratch,
    ) -> [f32; MLP_OUTPUT_DIM] {
        let mut out = [0.0f32; MLP_OUTPUT_DIM];
        self.l1.forward_into(input, &mut scratch.h1);
        relu(&mut scratch.h1);
        self.l2.forward_into(&scratch.h1, &mut scratch.h2);
        relu(&mut scratch.h2);
        self.l3.forward_into(&scratch.h2, &mut out);
        for o in &mut out {
            *o = sigmoid(*o);
        }
        out
    }

    /// The lane-blocked forward pass, bitwise-equal to
    /// [`Mlp::forward_scalar`]; always compiled so tests pin the
    /// equivalence regardless of the `simd` feature.
    pub fn forward_lanes(&self, input: &[f32; MLP_INPUT_DIM]) -> [f32; MLP_OUTPUT_DIM] {
        self.forward_lanes_with(input, &mut MlpScratch::new())
    }

    /// [`Mlp::forward_lanes`] with caller-owned scratch.
    pub fn forward_lanes_with(
        &self,
        input: &[f32; MLP_INPUT_DIM],
        scratch: &mut MlpScratch,
    ) -> [f32; MLP_OUTPUT_DIM] {
        let mut out = [0.0f32; MLP_OUTPUT_DIM];
        self.l1.forward_into_lanes(input, &mut scratch.h1);
        relu(&mut scratch.h1);
        self.l2.forward_into_lanes(&scratch.h1, &mut scratch.h2);
        relu(&mut scratch.h2);
        self.l3.forward_into_lanes(&scratch.h2, &mut out);
        for o in &mut out {
            *o = sigmoid(*o);
        }
        out
    }

    /// This network with every weight and bias rounded through IEEE
    /// binary16 — the f32 twin of [`MlpF16::from_mlp`], used to pin the
    /// fp16 GEMV bitwise (decode-then-multiply equals rounding the weights
    /// first).
    pub fn quantized_f16(&self) -> Mlp {
        Mlp { l1: self.l1.rounded_f16(), l2: self.l2.rounded_f16(), l3: self.l3.rounded_f16() }
    }

    /// Multiply-accumulate operations per forward pass — the quantity the
    /// accelerator's systolic array executes per sample.
    pub const fn macs_per_sample() -> usize {
        MLP_INPUT_DIM * MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM * MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM * MLP_OUTPUT_DIM
    }

    /// Bytes an in-memory copy of this network occupies: `f32` weights and
    /// biases plus the lane-blocked `weights_t` mirror each layer keeps for
    /// the lane GEMV. This is the host-resident footprint a scene cache
    /// charges per bundle, as opposed to [`Mlp::weight_bytes_f16`] (the
    /// accelerator's on-chip SRAM budget).
    pub fn resident_bytes(&self) -> usize {
        [&self.l1, &self.l2, &self.l3].iter().map(|l| l.resident_bytes()).sum()
    }

    /// Weight-buffer bytes at FP16 (weights + biases), the accelerator's
    /// weight SRAM requirement.
    pub fn weight_bytes_f16(&self) -> usize {
        let params = MLP_INPUT_DIM * MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM * MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM * MLP_OUTPUT_DIM
            + MLP_OUTPUT_DIM;
        params * 2
    }

    /// Layer shapes `(in, out)` in order — consumed by the systolic-array
    /// cycle model.
    pub const fn layer_shapes() -> [(usize, usize); 3] {
        [
            (MLP_INPUT_DIM, MLP_HIDDEN_DIM),
            (MLP_HIDDEN_DIM, MLP_HIDDEN_DIM),
            (MLP_HIDDEN_DIM, MLP_OUTPUT_DIM),
        ]
    }

    /// Weights of layer `li` re-laid-out as the `in_dim × out_dim`
    /// row-major B operand of a batched GEMM `X(batch×in) · W(in×out)` —
    /// the order the MLP Unit's weight buffer streams into the systolic
    /// array.
    ///
    /// # Panics
    ///
    /// Panics if `li >= 3`.
    pub fn layer_weights_gemm(&self, li: usize) -> Vec<f32> {
        let layer = self.layer(li);
        let mut out = vec![0.0f32; layer.in_dim * layer.out_dim];
        for o in 0..layer.out_dim {
            for i in 0..layer.in_dim {
                out[i * layer.out_dim + o] = layer.weights[o * layer.in_dim + i];
            }
        }
        out
    }

    /// Bias vector of layer `li`.
    ///
    /// # Panics
    ///
    /// Panics if `li >= 3`.
    pub fn layer_bias(&self, li: usize) -> &[f32] {
        &self.layer(li).bias
    }

    fn layer(&self, li: usize) -> &Layer {
        match li {
            0 => &self.l1,
            1 => &self.l2,
            2 => &self.l3,
            _ => panic!("layer index {li} out of range (MLP has 3 layers)"),
        }
    }
}

/// Reusable hidden-activation buffers for [`Mlp::forward_with`] and
/// [`MlpF16::forward_with`].
///
/// One scratch per worker (or per ray packet) replaces two 128-element
/// stack zeroings per sample with buffer reuse; contents are fully
/// overwritten by each forward pass, so reuse never changes results.
#[derive(Debug, Clone)]
pub struct MlpScratch {
    h1: [f32; MLP_HIDDEN_DIM],
    h2: [f32; MLP_HIDDEN_DIM],
}

impl MlpScratch {
    /// Fresh zeroed scratch.
    pub fn new() -> Self {
        Self { h1: [0.0; MLP_HIDDEN_DIM], h2: [0.0; MLP_HIDDEN_DIM] }
    }
}

impl Default for MlpScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// One dense layer with fp16-storage weights (decoded to f32 on load).
#[derive(Debug, Clone, PartialEq)]
struct LayerF16 {
    in_dim: usize,
    out_dim: usize,
    /// Lane-blocked in-major `in_dim × padded_out` weights as binary16 bit
    /// patterns — the layout the accelerator's weight SRAM streams.
    weights_t: Vec<u16>,
    /// Row-major `out_dim × in_dim` weights as binary16 bit patterns (the
    /// scalar path's layout).
    weights: Vec<u16>,
    bias: Vec<u16>,
}

impl LayerF16 {
    fn from_layer(l: &Layer) -> Self {
        Self {
            in_dim: l.in_dim,
            out_dim: l.out_dim,
            weights_t: l.weights_t.iter().map(|w| f32_to_f16_bits(*w)).collect(),
            weights: l.weights.iter().map(|w| f32_to_f16_bits(*w)).collect(),
            bias: l.bias.iter().map(|b| f32_to_f16_bits(*b)).collect(),
        }
    }

    /// Scalar GEMV decoding each weight on load; the fp16 conformance
    /// reference.
    fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        for (o, slot) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = f16_bits_to_f32(self.bias[o]);
            for (w, xi) in row.iter().zip(x) {
                acc += f16_bits_to_f32(*w) * xi;
            }
            *slot = acc;
        }
    }

    /// Lane-blocked GEMV over decoded fp16 weights, bitwise-equal to
    /// [`LayerF16::forward_into`].
    fn forward_into_lanes(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        let padded = pad_to_lanes(self.out_dim);
        for jb in (0..padded).step_by(LANE_WIDTH) {
            let mut bias = [0.0f32; LANE_WIDTH];
            for (slot, b) in bias.iter_mut().zip(&self.bias[jb.min(self.bias.len())..]) {
                *slot = f16_bits_to_f32(*b);
            }
            let mut acc = F32x8::from_array(bias);
            for (i, xi) in x.iter().enumerate() {
                let mut w = [0.0f32; LANE_WIDTH];
                for (slot, bits) in w.iter_mut().zip(&self.weights_t[i * padded + jb..]) {
                    *slot = f16_bits_to_f32(*bits);
                }
                acc = F32x8::splat(*xi).mul_add(F32x8::from_array(w), acc);
            }
            acc.store_padded(&mut out[jb..self.out_dim.min(jb + LANE_WIDTH)]);
        }
    }
}

/// The color MLP with weights stored as IEEE binary16 bit patterns — the
/// accelerator's on-chip weight format ([`Mlp::weight_bytes_f16`] is its
/// SRAM footprint), wired through [`crate::fp16`]'s software conversions.
///
/// Activations stay f32: weights are decoded on load (one
/// [`f16_bits_to_f32`] per MAC), which models a weight-SRAM-bound datapath
/// rather than an fp16 ALU. Output is therefore bitwise-equal to an f32
/// [`Mlp`] whose weights were rounded through binary16
/// ([`Mlp::quantized_f16`]) — pinned by tests — and only tolerance-close to
/// the full-precision network.
///
/// # Examples
///
/// ```
/// use spnerf_render::mlp::{Mlp, MlpF16, MLP_INPUT_DIM};
///
/// let mlp = Mlp::random(42);
/// let f16 = MlpF16::from_mlp(&mlp);
/// let input = [0.1f32; MLP_INPUT_DIM];
/// let (full, quant) = (mlp.forward(&input), f16.forward(&input));
/// assert!(full.iter().zip(quant).all(|(a, b)| (a - b).abs() < 0.05));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MlpF16 {
    l1: LayerF16,
    l2: LayerF16,
    l3: LayerF16,
}

impl MlpF16 {
    /// Rounds an f32 network's weights and biases into fp16 storage
    /// (round-to-nearest-even, via [`f32_to_f16_bits`]).
    pub fn from_mlp(mlp: &Mlp) -> Self {
        Self {
            l1: LayerF16::from_layer(&mlp.l1),
            l2: LayerF16::from_layer(&mlp.l2),
            l3: LayerF16::from_layer(&mlp.l3),
        }
    }

    /// Runs the network (lane-blocked GEMV), returning RGB in `[0, 1]`.
    pub fn forward(&self, input: &[f32; MLP_INPUT_DIM]) -> [f32; MLP_OUTPUT_DIM] {
        self.forward_with(input, &mut MlpScratch::new())
    }

    /// [`MlpF16::forward`] with caller-owned scratch.
    pub fn forward_with(
        &self,
        input: &[f32; MLP_INPUT_DIM],
        scratch: &mut MlpScratch,
    ) -> [f32; MLP_OUTPUT_DIM] {
        let mut out = [0.0f32; MLP_OUTPUT_DIM];
        self.l1.forward_into_lanes(input, &mut scratch.h1);
        relu(&mut scratch.h1);
        self.l2.forward_into_lanes(&scratch.h1, &mut scratch.h2);
        relu(&mut scratch.h2);
        self.l3.forward_into_lanes(&scratch.h2, &mut out);
        for o in &mut out {
            *o = sigmoid(*o);
        }
        out
    }

    /// The scalar (decode-on-load) forward pass, bitwise-equal to
    /// [`MlpF16::forward`]; the fp16 conformance reference.
    pub fn forward_scalar(&self, input: &[f32; MLP_INPUT_DIM]) -> [f32; MLP_OUTPUT_DIM] {
        let mut scratch = MlpScratch::new();
        let mut out = [0.0f32; MLP_OUTPUT_DIM];
        self.l1.forward_into(input, &mut scratch.h1);
        relu(&mut scratch.h1);
        self.l2.forward_into(&scratch.h1, &mut scratch.h2);
        relu(&mut scratch.h2);
        self.l3.forward_into(&scratch.h2, &mut out);
        for o in &mut out {
            *o = sigmoid(*o);
        }
        out
    }

    /// Bytes of fp16 weight + bias storage actually held (excludes the
    /// lane-padding columns, matching [`Mlp::weight_bytes_f16`]).
    pub fn weight_bytes(&self) -> usize {
        [&self.l1, &self.l2, &self.l3].iter().map(|l| (l.weights.len() + l.bias.len()) * 2).sum()
    }
}

/// Input width of the deferred view-dependence MLP: the ray-accumulated
/// specular feature ⊕ view encoding = 9 + 27 = 36.
pub const DEFERRED_INPUT_DIM: usize = SPEC_DIM + VIEW_ENC_DIM;

/// Hidden width of the deferred view-dependence MLP — deliberately small
/// (SNeRG-style): it runs once per *pixel*, not once per sample.
pub const DEFERRED_HIDDEN_DIM: usize = 32;

/// The small deferred view-dependence MLP (36 → 32 → 32 → 3).
///
/// In the bake-and-defer path the big per-sample color [`Mlp`] is evaluated
/// only during the bake pass; at render time the marcher accumulates a
/// [`SPEC_DIM`]-channel specular feature along the ray and this network
/// turns it — together with the view-direction encoding — into a specular
/// RGB residual **once per pixel**. Hidden activations are ReLU; the output
/// is squashed by a sigmoid like the main network.
///
/// Like every hot-path kernel, the lane-blocked forward pass is
/// bitwise-identical to the scalar reference, so the `simd` feature never
/// changes a deferred pixel.
///
/// # Examples
///
/// ```
/// use spnerf_render::mlp::{DeferredMlp, DEFERRED_INPUT_DIM};
///
/// let mlp = DeferredMlp::random(42);
/// let rgb = mlp.forward(&[0.1; DEFERRED_INPUT_DIM]);
/// assert!(rgb.iter().all(|c| (0.0..=1.0).contains(c)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeferredMlp {
    l1: Layer,
    l2: Layer,
    l3: Layer,
}

impl DeferredMlp {
    /// A deterministic randomly-initialized deferred MLP. The seed is
    /// salted internally so a scene's deferred network differs from its
    /// color [`Mlp`] even when both derive from the same scene seed.
    pub fn random(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEFE_11ED_BA5E_D0E5);
        Self {
            l1: Layer::random(DEFERRED_INPUT_DIM, DEFERRED_HIDDEN_DIM, 1.2, &mut rng),
            l2: Layer::random(DEFERRED_HIDDEN_DIM, DEFERRED_HIDDEN_DIM, 1.2, &mut rng),
            l3: Layer::random(DEFERRED_HIDDEN_DIM, MLP_OUTPUT_DIM, 2.5, &mut rng),
        }
    }

    /// Runs the network on one accumulated-feature ⊕ view-encoding input,
    /// returning RGB in `[0, 1]`. Dispatches to the lane GEMV under the
    /// `simd` feature; both implementations are bitwise-identical.
    pub fn forward(&self, input: &[f32; DEFERRED_INPUT_DIM]) -> [f32; MLP_OUTPUT_DIM] {
        #[cfg(feature = "simd")]
        {
            self.forward_lanes(input)
        }
        #[cfg(not(feature = "simd"))]
        {
            self.forward_scalar(input)
        }
    }

    /// The scalar reference forward pass.
    pub fn forward_scalar(&self, input: &[f32; DEFERRED_INPUT_DIM]) -> [f32; MLP_OUTPUT_DIM] {
        let mut h1 = [0.0f32; DEFERRED_HIDDEN_DIM];
        let mut h2 = [0.0f32; DEFERRED_HIDDEN_DIM];
        let mut out = [0.0f32; MLP_OUTPUT_DIM];
        self.l1.forward_into(input, &mut h1);
        relu(&mut h1);
        self.l2.forward_into(&h1, &mut h2);
        relu(&mut h2);
        self.l3.forward_into(&h2, &mut out);
        for o in &mut out {
            *o = sigmoid(*o);
        }
        out
    }

    /// The lane-blocked forward pass, bitwise-equal to
    /// [`DeferredMlp::forward_scalar`]; always compiled so tests pin the
    /// equivalence regardless of the `simd` feature.
    pub fn forward_lanes(&self, input: &[f32; DEFERRED_INPUT_DIM]) -> [f32; MLP_OUTPUT_DIM] {
        let mut h1 = [0.0f32; DEFERRED_HIDDEN_DIM];
        let mut h2 = [0.0f32; DEFERRED_HIDDEN_DIM];
        let mut out = [0.0f32; MLP_OUTPUT_DIM];
        self.l1.forward_into_lanes(input, &mut h1);
        relu(&mut h1);
        self.l2.forward_into_lanes(&h1, &mut h2);
        relu(&mut h2);
        self.l3.forward_into_lanes(&h2, &mut out);
        for o in &mut out {
            *o = sigmoid(*o);
        }
        out
    }

    /// Multiply-accumulate operations per deferred evaluation — the
    /// per-*pixel* cost the accelerator's cycle model charges in place of
    /// [`Mlp::macs_per_sample`] per-sample work.
    pub const fn macs_per_pixel() -> usize {
        DEFERRED_INPUT_DIM * DEFERRED_HIDDEN_DIM
            + DEFERRED_HIDDEN_DIM * DEFERRED_HIDDEN_DIM
            + DEFERRED_HIDDEN_DIM * MLP_OUTPUT_DIM
    }

    /// Bytes an in-memory copy of this network occupies (`f32` weights,
    /// lane-blocked mirror, biases) — see [`Mlp::resident_bytes`].
    pub fn resident_bytes(&self) -> usize {
        [&self.l1, &self.l2, &self.l3].iter().map(|l| l.resident_bytes()).sum()
    }

    /// Weight-buffer bytes at FP16 (weights + biases) — the deferred
    /// network's share of the accelerator's weight SRAM.
    pub const fn weight_bytes_f16() -> usize {
        let params = DEFERRED_INPUT_DIM * DEFERRED_HIDDEN_DIM
            + DEFERRED_HIDDEN_DIM
            + DEFERRED_HIDDEN_DIM * DEFERRED_HIDDEN_DIM
            + DEFERRED_HIDDEN_DIM
            + DEFERRED_HIDDEN_DIM * MLP_OUTPUT_DIM
            + MLP_OUTPUT_DIM;
        params * 2
    }

    /// Layer shapes `(in, out)` in order — consumed by the systolic-array
    /// cycle model.
    pub const fn layer_shapes() -> [(usize, usize); 3] {
        [
            (DEFERRED_INPUT_DIM, DEFERRED_HIDDEN_DIM),
            (DEFERRED_HIDDEN_DIM, DEFERRED_HIDDEN_DIM),
            (DEFERRED_HIDDEN_DIM, MLP_OUTPUT_DIM),
        ]
    }
}

fn relu(v: &mut [f32]) {
    for x in v.iter_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = Mlp::random(7);
        let b = Mlp::random(7);
        assert_eq!(a, b);
        let c = Mlp::random(8);
        assert_ne!(a, c);
    }

    #[test]
    fn output_in_unit_interval() {
        let mlp = Mlp::random(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let mut input = [0.0f32; MLP_INPUT_DIM];
            for x in &mut input {
                *x = rng.gen_range(-2.0..2.0);
            }
            let rgb = mlp.forward(&input);
            assert!(rgb.iter().all(|c| (0.0..=1.0).contains(c)), "rgb {rgb:?}");
        }
    }

    #[test]
    fn output_depends_on_features_and_direction() {
        let mlp = Mlp::random(3);
        let base = [0.2f32; MLP_INPUT_DIM];
        let mut feat_changed = base;
        feat_changed[0] = 0.9;
        let mut dir_changed = base;
        dir_changed[20] = 0.9;
        let o0 = mlp.forward(&base);
        assert_ne!(o0, mlp.forward(&feat_changed));
        assert_ne!(o0, mlp.forward(&dir_changed));
    }

    #[test]
    fn direction_encoding_shape() {
        let e = encode_direction(Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(e[0], 0.0);
        assert_eq!(e[2], 1.0);
        // sin(0)=0 and cos(0)=1 entries present for the zero components.
        assert_eq!(e[3], 0.0);
        assert_eq!(e[4], 1.0);
        // Frequency 1 on z: sin(1), cos(1).
        assert!((e[7] - 1.0f32.sin()).abs() < 1e-6);
        assert!((e[8] - 1.0f32.cos()).abs() < 1e-6);
    }

    #[test]
    fn encoding_distinguishes_directions() {
        let a = encode_direction(Vec3::new(1.0, 0.0, 0.0));
        let b = encode_direction(Vec3::new(0.0, 1.0, 0.0));
        assert_ne!(a, b);
    }

    fn random_inputs(seed: u64, n: usize) -> Vec<[f32; MLP_INPUT_DIM]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut input = [0.0f32; MLP_INPUT_DIM];
                for x in &mut input {
                    *x = rng.gen_range(-2.0..2.0);
                }
                input
            })
            .collect()
    }

    #[test]
    fn lane_gemv_is_bitwise_scalar() {
        let mlp = Mlp::random(9);
        for input in random_inputs(21, 32) {
            let s = mlp.forward_scalar(&input);
            let l = mlp.forward_lanes(&input);
            for (a, b) in s.iter().zip(l) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane GEMV diverged from scalar");
            }
            // The dispatching entry point agrees with both.
            assert_eq!(mlp.forward(&input), s);
        }
    }

    #[test]
    fn scratch_reuse_changes_nothing() {
        let mlp = Mlp::random(4);
        let mut scratch = MlpScratch::default();
        for input in random_inputs(5, 16) {
            assert_eq!(mlp.forward_with(&input, &mut scratch), mlp.forward(&input));
        }
    }

    #[test]
    fn fp16_lane_gemv_is_bitwise_its_scalar_reference() {
        let mlp = MlpF16::from_mlp(&Mlp::random(13));
        for input in random_inputs(31, 32) {
            let s = mlp.forward_scalar(&input);
            let l = mlp.forward(&input);
            for (a, b) in s.iter().zip(l) {
                assert_eq!(a.to_bits(), b.to_bits(), "fp16 lane GEMV diverged from scalar");
            }
        }
    }

    #[test]
    fn fp16_mlp_equals_quantized_f32_twin_bitwise() {
        // Decoding fp16 weights on load must equal rounding the f32 weights
        // through binary16 up front: the storage format is the only change.
        let mlp = Mlp::random(17);
        let f16 = MlpF16::from_mlp(&mlp);
        let twin = mlp.quantized_f16();
        for input in random_inputs(3, 16) {
            let a = f16.forward_scalar(&input);
            let b = twin.forward_scalar(&input);
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn fp16_mlp_is_close_to_full_precision() {
        // vs the unrounded network only a tolerance holds (binary16 keeps
        // ~3 decimal digits; sigmoid keeps outputs in [0,1]).
        let mlp = Mlp::random(29);
        let f16 = MlpF16::from_mlp(&mlp);
        for input in random_inputs(7, 32) {
            let full = mlp.forward(&input);
            let quant = f16.forward(&input);
            for (a, b) in full.iter().zip(quant) {
                assert!((a - b).abs() < 0.05, "fp16 drift too large: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fp16_weight_bytes_match_budget() {
        let mlp = Mlp::random(0);
        assert_eq!(MlpF16::from_mlp(&mlp).weight_bytes(), mlp.weight_bytes_f16());
    }

    #[test]
    fn macs_match_paper_layer_sizes() {
        // 39·128 + 128·128 + 128·3 = 21760.
        assert_eq!(Mlp::macs_per_sample(), 21_760);
        assert_eq!(MLP_INPUT_DIM, 39);
    }

    #[test]
    fn weight_bytes() {
        let mlp = Mlp::random(0);
        let params = 39 * 128 + 128 + 128 * 128 + 128 + 128 * 3 + 3;
        assert_eq!(mlp.weight_bytes_f16(), params * 2);
        // Fits comfortably in the 58 KB MLP buffer budget of the paper.
        assert!(mlp.weight_bytes_f16() < 58 * 1024);
    }

    #[test]
    fn resident_bytes_count_every_f32_actually_held() {
        // Per layer: in·out row-major weights + in·pad(out) lane mirror +
        // out bias. pad rounds out up to the 8-lane width, so 128 stays 128
        // and 3 pads to 8.
        let expect = |i: usize, o: usize| (i * o + i * o.div_ceil(8) * 8 + o) * 4;
        let mlp = Mlp::random(0);
        assert_eq!(
            mlp.resident_bytes(),
            expect(39, 128) + expect(128, 128) + expect(128, 3),
            "color MLP resident bytes must match the layer shapes"
        );
        let deferred = DeferredMlp::random(0);
        assert_eq!(
            deferred.resident_bytes(),
            expect(36, 32) + expect(32, 32) + expect(32, 3),
            "deferred MLP resident bytes must match the layer shapes"
        );
        // The resident copy is strictly larger than the fp16 SRAM budget:
        // full precision plus the lane mirror.
        assert!(mlp.resident_bytes() > mlp.weight_bytes_f16());
    }

    #[test]
    fn deferred_mlp_is_deterministic_and_distinct_from_the_color_mlp() {
        assert_eq!(DeferredMlp::random(7), DeferredMlp::random(7));
        assert_ne!(DeferredMlp::random(7), DeferredMlp::random(8));
        // The internal salt keeps the seed-42 deferred weights independent
        // of the seed-42 color weights (both are drawn from StdRng).
        let color = Mlp::random(42);
        let deferred = DeferredMlp::random(42);
        assert_ne!(color.layer_bias(0)[0].to_bits(), deferred.l1.bias[0].to_bits());
    }

    #[test]
    fn deferred_lane_gemv_is_bitwise_scalar() {
        let mlp = DeferredMlp::random(23);
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..32 {
            let mut input = [0.0f32; DEFERRED_INPUT_DIM];
            for x in &mut input {
                *x = rng.gen_range(-2.0..2.0);
            }
            let s = mlp.forward_scalar(&input);
            let l = mlp.forward_lanes(&input);
            for (a, b) in s.iter().zip(l) {
                assert_eq!(a.to_bits(), b.to_bits(), "deferred lane GEMV diverged from scalar");
            }
            assert_eq!(mlp.forward(&input), s, "dispatch must agree with both");
            assert!(s.iter().all(|c| (0.0..=1.0).contains(c)), "rgb out of range: {s:?}");
        }
    }

    #[test]
    fn deferred_macs_collapse_per_sample_work() {
        // 36·32 + 32·32 + 32·3 = 2272 — ~9.6x fewer MACs than one
        // per-sample forward, before the per-pixel amortization.
        assert_eq!(DeferredMlp::macs_per_pixel(), 2_272);
        assert!(Mlp::macs_per_sample() / DeferredMlp::macs_per_pixel() >= 9);
        assert_eq!(DEFERRED_INPUT_DIM, 36);
        let params = 36 * 32 + 32 + 32 * 32 + 32 + 32 * 3 + 3;
        assert_eq!(DeferredMlp::weight_bytes_f16(), params * 2);
    }
}
