//! The 3-layer rendering MLP (channel sizes 128, 128, 3) and the
//! view-direction encoding.
//!
//! VQRF (and therefore SpNeRF) uses a small color MLP: the interpolated
//! 12-dim voxel feature is concatenated with a 27-dim positional encoding of
//! the view direction, forming the 39×1 input vector the paper's Fig. 5
//! stores in block-circulant layout. Density does **not** pass through the
//! MLP — it comes straight from the grid.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vec3::Vec3;
use spnerf_voxel::FEATURE_DIM;

/// Dimension of the view-direction encoding: raw direction (3) plus sin/cos
/// at 4 frequencies per component (3 × 2 × 4 = 24).
pub const VIEW_ENC_DIM: usize = 27;

/// MLP input width: voxel features ⊕ view encoding = 12 + 27 = 39, the
/// vector of the paper's block-circulant buffer.
pub const MLP_INPUT_DIM: usize = FEATURE_DIM + VIEW_ENC_DIM;

/// Hidden layer width.
pub const MLP_HIDDEN_DIM: usize = 128;

/// Output channels (RGB).
pub const MLP_OUTPUT_DIM: usize = 3;

/// Encodes a (normalized) view direction into [`VIEW_ENC_DIM`] values:
/// `[d, sin(2^k d), cos(2^k d)]` for `k = 0..4`, per component.
pub fn encode_direction(dir: Vec3) -> [f32; VIEW_ENC_DIM] {
    let mut out = [0.0f32; VIEW_ENC_DIM];
    let d = dir.to_array();
    out[..3].copy_from_slice(&d);
    let mut idx = 3;
    for k in 0..4 {
        let f = (1u32 << k) as f32;
        for c in d {
            out[idx] = (f * c).sin();
            out[idx + 1] = (f * c).cos();
            idx += 2;
        }
    }
    out
}

/// One dense layer: `out = act(W x + b)`.
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim`.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Layer {
    fn random(in_dim: usize, out_dim: usize, gain: f32, rng: &mut StdRng) -> Self {
        // Xavier-uniform initialization keeps activations in range without
        // training; `gain` tunes the network's input sensitivity so feature
        // perturbations show up in rendered images at realistic magnitudes.
        let bound = gain * (6.0f32 / (in_dim + out_dim) as f32).sqrt();
        let weights = (0..in_dim * out_dim).map(|_| rng.gen_range(-bound..bound)).collect();
        let bias = (0..out_dim).map(|_| rng.gen_range(-0.1..0.1f32)).collect();
        Self { in_dim, out_dim, weights, bias }
    }

    fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        for (o, slot) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias[o];
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *slot = acc;
        }
    }
}

/// The 3-layer color MLP (39 → 128 → 128 → 3).
///
/// Hidden activations are ReLU; the RGB output is squashed by a sigmoid so
/// rendered colors live in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use spnerf_render::mlp::{encode_direction, Mlp, MLP_INPUT_DIM};
/// use spnerf_render::vec3::Vec3;
///
/// let mlp = Mlp::random(42);
/// let mut input = [0.1f32; MLP_INPUT_DIM];
/// input[12..].copy_from_slice(&encode_direction(Vec3::new(0.0, 0.0, 1.0)));
/// let rgb = mlp.forward(&input);
/// assert!(rgb.iter().all(|c| (0.0..=1.0).contains(c)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    l1: Layer,
    l2: Layer,
    l3: Layer,
}

impl Mlp {
    /// A deterministic randomly-initialized MLP. The same seed always yields
    /// the same network, so renders are reproducible across runs.
    pub fn random(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            l1: Layer::random(MLP_INPUT_DIM, MLP_HIDDEN_DIM, 1.2, &mut rng),
            l2: Layer::random(MLP_HIDDEN_DIM, MLP_HIDDEN_DIM, 1.2, &mut rng),
            l3: Layer::random(MLP_HIDDEN_DIM, MLP_OUTPUT_DIM, 2.5, &mut rng),
        }
    }

    /// Runs the network on one 39-element input, returning RGB in `[0, 1]`.
    pub fn forward(&self, input: &[f32; MLP_INPUT_DIM]) -> [f32; MLP_OUTPUT_DIM] {
        let mut h1 = [0.0f32; MLP_HIDDEN_DIM];
        let mut h2 = [0.0f32; MLP_HIDDEN_DIM];
        let mut out = [0.0f32; MLP_OUTPUT_DIM];
        self.l1.forward_into(input, &mut h1);
        relu(&mut h1);
        self.l2.forward_into(&h1, &mut h2);
        relu(&mut h2);
        self.l3.forward_into(&h2, &mut out);
        for o in &mut out {
            *o = sigmoid(*o);
        }
        out
    }

    /// Multiply-accumulate operations per forward pass — the quantity the
    /// accelerator's systolic array executes per sample.
    pub const fn macs_per_sample() -> usize {
        MLP_INPUT_DIM * MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM * MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM * MLP_OUTPUT_DIM
    }

    /// Weight-buffer bytes at FP16 (weights + biases), the accelerator's
    /// weight SRAM requirement.
    pub fn weight_bytes_f16(&self) -> usize {
        let params = MLP_INPUT_DIM * MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM * MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM
            + MLP_HIDDEN_DIM * MLP_OUTPUT_DIM
            + MLP_OUTPUT_DIM;
        params * 2
    }

    /// Layer shapes `(in, out)` in order — consumed by the systolic-array
    /// cycle model.
    pub const fn layer_shapes() -> [(usize, usize); 3] {
        [
            (MLP_INPUT_DIM, MLP_HIDDEN_DIM),
            (MLP_HIDDEN_DIM, MLP_HIDDEN_DIM),
            (MLP_HIDDEN_DIM, MLP_OUTPUT_DIM),
        ]
    }

    /// Weights of layer `li` re-laid-out as the `in_dim × out_dim`
    /// row-major B operand of a batched GEMM `X(batch×in) · W(in×out)` —
    /// the order the MLP Unit's weight buffer streams into the systolic
    /// array.
    ///
    /// # Panics
    ///
    /// Panics if `li >= 3`.
    pub fn layer_weights_gemm(&self, li: usize) -> Vec<f32> {
        let layer = self.layer(li);
        let mut out = vec![0.0f32; layer.in_dim * layer.out_dim];
        for o in 0..layer.out_dim {
            for i in 0..layer.in_dim {
                out[i * layer.out_dim + o] = layer.weights[o * layer.in_dim + i];
            }
        }
        out
    }

    /// Bias vector of layer `li`.
    ///
    /// # Panics
    ///
    /// Panics if `li >= 3`.
    pub fn layer_bias(&self, li: usize) -> &[f32] {
        &self.layer(li).bias
    }

    fn layer(&self, li: usize) -> &Layer {
        match li {
            0 => &self.l1,
            1 => &self.l2,
            2 => &self.l3,
            _ => panic!("layer index {li} out of range (MLP has 3 layers)"),
        }
    }
}

fn relu(v: &mut [f32]) {
    for x in v.iter_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = Mlp::random(7);
        let b = Mlp::random(7);
        assert_eq!(a, b);
        let c = Mlp::random(8);
        assert_ne!(a, c);
    }

    #[test]
    fn output_in_unit_interval() {
        let mlp = Mlp::random(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let mut input = [0.0f32; MLP_INPUT_DIM];
            for x in &mut input {
                *x = rng.gen_range(-2.0..2.0);
            }
            let rgb = mlp.forward(&input);
            assert!(rgb.iter().all(|c| (0.0..=1.0).contains(c)), "rgb {rgb:?}");
        }
    }

    #[test]
    fn output_depends_on_features_and_direction() {
        let mlp = Mlp::random(3);
        let base = [0.2f32; MLP_INPUT_DIM];
        let mut feat_changed = base;
        feat_changed[0] = 0.9;
        let mut dir_changed = base;
        dir_changed[20] = 0.9;
        let o0 = mlp.forward(&base);
        assert_ne!(o0, mlp.forward(&feat_changed));
        assert_ne!(o0, mlp.forward(&dir_changed));
    }

    #[test]
    fn direction_encoding_shape() {
        let e = encode_direction(Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(e[0], 0.0);
        assert_eq!(e[2], 1.0);
        // sin(0)=0 and cos(0)=1 entries present for the zero components.
        assert_eq!(e[3], 0.0);
        assert_eq!(e[4], 1.0);
        // Frequency 1 on z: sin(1), cos(1).
        assert!((e[7] - 1.0f32.sin()).abs() < 1e-6);
        assert!((e[8] - 1.0f32.cos()).abs() < 1e-6);
    }

    #[test]
    fn encoding_distinguishes_directions() {
        let a = encode_direction(Vec3::new(1.0, 0.0, 0.0));
        let b = encode_direction(Vec3::new(0.0, 1.0, 0.0));
        assert_ne!(a, b);
    }

    #[test]
    fn macs_match_paper_layer_sizes() {
        // 39·128 + 128·128 + 128·3 = 21760.
        assert_eq!(Mlp::macs_per_sample(), 21_760);
        assert_eq!(MLP_INPUT_DIM, 39);
    }

    #[test]
    fn weight_bytes() {
        let mlp = Mlp::random(0);
        let params = 39 * 128 + 128 + 128 * 128 + 128 + 128 * 3 + 3;
        assert_eq!(mlp.weight_bytes_f16(), params * 2);
        // Fits comfortably in the 58 KB MLP buffer budget of the paper.
        assert!(mlp.weight_bytes_f16() < 58 * 1024);
    }
}
