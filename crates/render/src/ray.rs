//! Rays, axis-aligned bounding boxes, and uniform ray sampling.
//!
//! Ray sampling is the step immediately before SpNeRF's online decoding
//! (Fig. 3): each ray is clipped against the scene AABB and sampled at
//! uniform intervals; every sample position is then decoded against the
//! sparse voxel grid.

use crate::vec3::Vec3;

/// A ray with normalized direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Normalized direction.
    pub dir: Vec3,
}

impl Ray {
    /// Creates a ray; the direction is normalized.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is (near) zero length.
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Self { origin, dir: dir.normalized() }
    }

    /// Point at parameter `t`.
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }
}

/// An axis-aligned bounding box.
///
/// # Examples
///
/// ```
/// use spnerf_render::ray::{Aabb, Ray};
/// use spnerf_render::vec3::Vec3;
///
/// let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
/// let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
/// let (t0, t1) = b.intersect(&r).unwrap();
/// assert_eq!((t0, t1), (4.0, 6.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box.
    ///
    /// # Panics
    ///
    /// Panics if any `min` component exceeds the matching `max`.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        assert!(min.x <= max.x && min.y <= max.y && min.z <= max.z, "AABB min must not exceed max");
        Self { min, max }
    }

    /// The unit-centered box `[-half, half]³`.
    pub fn centered(half: f32) -> Self {
        Self::new(Vec3::splat(-half), Vec3::splat(half))
    }

    /// Box extent per axis.
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Whether `p` lies inside (inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Slab-method ray intersection: entry/exit parameters `(t0, t1)` with
    /// `t0 ≤ t1`, clamped to the forward half-line (`t0 ≥ 0`). `None` when
    /// the ray misses.
    pub fn intersect(&self, ray: &Ray) -> Option<(f32, f32)> {
        let mut t0 = 0.0f32;
        let mut t1 = f32::INFINITY;
        for axis in 0..3 {
            let (o, d, lo, hi) = match axis {
                0 => (ray.origin.x, ray.dir.x, self.min.x, self.max.x),
                1 => (ray.origin.y, ray.dir.y, self.min.y, self.max.y),
                _ => (ray.origin.z, ray.dir.z, self.min.z, self.max.z),
            };
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (mut ta, mut tb) = ((lo - o) * inv, (hi - o) * inv);
            if ta > tb {
                std::mem::swap(&mut ta, &mut tb);
            }
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

/// Uniform samples of a ray inside an AABB.
///
/// The iterator yields `(t, position)` pairs at spacing `step` starting half
/// a step inside the box, exactly like the grid-aligned marching the
/// accelerator's position buffer is filled with.
#[derive(Debug, Clone)]
pub struct UniformSampler {
    ray: Ray,
    t: f32,
    t_end: f32,
    step: f32,
}

impl UniformSampler {
    /// Samples `ray` within `aabb` at the given step size. Returns an empty
    /// sampler when the ray misses the box.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn new(ray: Ray, aabb: &Aabb, step: f32) -> Self {
        assert!(step > 0.0, "step must be positive");
        match aabb.intersect(&ray) {
            Some((t0, t1)) => Self { ray, t: t0 + step * 0.5, t_end: t1, step },
            None => Self { ray, t: 1.0, t_end: 0.0, step },
        }
    }

    /// The constant inter-sample distance (the `dt` of the volume-rendering
    /// alpha computation).
    pub fn step(&self) -> f32 {
        self.step
    }
}

impl Iterator for UniformSampler {
    type Item = (f32, Vec3);

    fn next(&mut self) -> Option<(f32, Vec3)> {
        if self.t >= self.t_end {
            return None;
        }
        let t = self.t;
        self.t += self.step;
        Some((t, self.ray.at(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_through_center() {
        let b = Aabb::centered(1.0);
        let r = Ray::new(Vec3::new(-5.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(b.intersect(&r), Some((4.0, 6.0)));
    }

    #[test]
    fn miss_returns_none() {
        let b = Aabb::centered(1.0);
        let r = Ray::new(Vec3::new(-5.0, 3.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(b.intersect(&r), None);
        // Pointing away from the box.
        let r2 = Ray::new(Vec3::new(-5.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.intersect(&r2), None);
    }

    #[test]
    fn origin_inside_starts_at_zero() {
        let b = Aabb::centered(1.0);
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let (t0, t1) = b.intersect(&r).unwrap();
        assert_eq!(t0, 0.0);
        assert_eq!(t1, 1.0);
    }

    #[test]
    fn axis_parallel_ray_inside_slab() {
        let b = Aabb::centered(1.0);
        // dir.y == 0, origin y inside the slab → fine.
        let r = Ray::new(Vec3::new(-5.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert!(b.intersect(&r).is_some());
        // origin y outside the slab → miss.
        let r2 = Ray::new(Vec3::new(-5.0, 1.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(b.intersect(&r2), None);
    }

    #[test]
    fn sampler_covers_span_uniformly() {
        let b = Aabb::centered(1.0);
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let samples: Vec<_> = UniformSampler::new(r, &b, 0.5).collect();
        // Span is [4, 6], step 0.5 → samples at t = 4.25, 4.75, 5.25, 5.75.
        assert_eq!(samples.len(), 4);
        assert!((samples[0].0 - 4.25).abs() < 1e-6);
        assert!((samples[3].0 - 5.75).abs() < 1e-6);
        for (_, p) in &samples {
            assert!(b.contains(*p));
        }
    }

    #[test]
    fn sampler_empty_on_miss() {
        let b = Aabb::centered(1.0);
        let r = Ray::new(Vec3::new(-5.0, 3.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(UniformSampler::new(r, &b, 0.1).count(), 0);
    }

    #[test]
    fn ray_at() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(r.at(3.0), Vec3::new(0.0, 3.0, 0.0)); // dir normalized
    }

    #[test]
    #[should_panic(expected = "min must not exceed")]
    fn bad_aabb_panics() {
        let _ = Aabb::new(Vec3::ONE, Vec3::ZERO);
    }
}
