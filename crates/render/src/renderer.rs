//! The CPU reference renderer: ray march → (source decode) → trilinear
//! interpolation → MLP → compositing.
//!
//! This is the software counterpart of the whole accelerator pipeline. It is
//! generic over [`VoxelSource`], so the identical code path renders the dense
//! ground truth, the VQRF gold model and SpNeRF's online decoder — PSNR
//! deltas then isolate the data representation, as in Fig. 6(b).
//!
//! Its [`RenderStats`] (samples marched, samples shaded, early terminations)
//! are also the per-frame workload descriptor the cycle-level accelerator
//! simulator consumes.
//!
//! # Layering
//!
//! The renderer is split into three layers:
//!
//! 1. [`trace_ray`] — the pure per-ray kernel: march, decode, shade,
//!    composite one primary ray against a shared read-only [`RenderFrame`];
//! 2. [`crate::engine`] — the tile scheduler and worker pool that fan rays
//!    out over threads and merge results back deterministically;
//! 3. [`render_view`] — the front door: renders one view honoring
//!    [`RenderConfig::parallelism`] / [`RenderConfig::tile_size`].
//!
//! [`render_view_serial`] is the single-threaded row-major reference the
//! parallel engine is tested against: for every scene and thread count the
//! engine's image and stats are bitwise-identical to it.

use crate::camera::PinholeCamera;
use crate::composite::{accumulate_weighted, alpha_from_density, RayAccumulator};
use crate::engine;
use crate::image::ImageBuffer;
use crate::interp::{interpolate_cell, trilinear_cell, GridFrame, TrilinearCell};
use crate::mlp::{
    encode_direction, DeferredMlp, Mlp, MlpScratch, DEFERRED_INPUT_DIM, MLP_INPUT_DIM,
};
use crate::ray::{Aabb, Ray, UniformSampler};
use crate::source::VoxelSource;
use crate::vec3::Vec3;
use spnerf_voxel::baked::{DIFFUSE_DIM, SPEC_DIM};
use spnerf_voxel::coord::{GridCoord, GridDims};
use spnerf_voxel::mip::OccupancyMip;
use spnerf_voxel::FEATURE_DIM;

/// Ratio between the ray-march extent and the AABB's largest edge.
///
/// `samples_per_ray` uniform samples must span the longest chord a ray can
/// cut through the scene box. For a cube that chord is the space diagonal,
/// `√3 ≈ 1.7321` times the edge length; this factor rounds it up to 1.74 so
/// the spacing `step = edge · 1.74 / samples_per_ray` always covers the
/// diagonal with a small safety margin. The value matches the historical
/// literal bit-for-bit, so renders are unchanged.
pub const RAY_DIAGONAL_FACTOR: f32 = 1.74;

/// Empty-space skipping policy of the ray marcher.
///
/// Skipping is **provably safe**: a sample is skipped only when the
/// occupancy pyramid proves all 8 corners of its interpolation cell are
/// unoccupied — exactly the samples whose interpolated density would be
/// `≤ 0` and contribute nothing. Rendered images are therefore
/// bitwise-identical to [`SkipMode::Off`]; only
/// [`RenderStats::samples_marched`] (and the cycles/DRAM traffic derived
/// from it) drops, mirroring how the paper's pruning removes work without
/// changing output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkipMode {
    /// March every sample (the historical behaviour, and the default).
    #[default]
    Off,
    /// Skip macro-blocks the source's [`OccupancyMip`] proves empty.
    /// Requires the source to carry a pyramid
    /// ([`crate::source::VoxelSource::occupancy_mip`]); sources without one
    /// render exactly as [`SkipMode::Off`].
    Mip {
        /// Coarsest pyramid level consulted (clamped to the levels built);
        /// `0` degenerates to per-cell checks. Use [`SkipMode::mip`] for
        /// the whole pyramid.
        levels: usize,
    },
}

impl SkipMode {
    /// [`SkipMode::Mip`] using every pyramid level — the sensible default
    /// when skipping is wanted at all.
    pub const fn mip() -> Self {
        SkipMode::Mip { levels: usize::MAX }
    }

    /// Whether this mode skips at all.
    pub const fn is_on(&self) -> bool {
        matches!(self, SkipMode::Mip { .. })
    }
}

/// How samples along a ray turn into radiance.
///
/// [`Shader::PerSample`] is the classical NeRF path: the full color [`Mlp`]
/// runs on every positive-density sample. [`Shader::Deferred`] is the
/// SNeRG-style bake-and-defer path over a pre-baked source (see
/// [`crate::bake::bake`]): the marcher composites the baked diffuse color
/// and accumulates the baked specular feature along the ray, then runs the
/// small [`DeferredMlp`] **once per pixel** in the ray epilogue —
/// collapsing MLP work from `samples_shaded` to `pixels_shaded`
/// evaluations, the workload change [`RayStats::pixels_shaded`] charges
/// through the accelerator model.
///
/// Both variants are pure per-ray computations, so every determinism
/// guarantee (threads, tiles, packet sizes, `simd` feature) holds for both.
#[derive(Debug, Clone, Copy)]
pub enum Shader<'a> {
    /// Evaluate the full color MLP on every shaded sample.
    PerSample(&'a Mlp),
    /// Composite baked diffuse colors and defer view dependence to one
    /// small per-pixel MLP. The source must carry baked payloads in its
    /// feature channels (diffuse RGB in `0..3`, specular feature in
    /// `3..12`), as produced by [`crate::bake::bake`].
    Deferred(&'a DeferredMlp),
}

/// Rendering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Uniform samples across the AABB diameter per ray.
    pub samples_per_ray: usize,
    /// Multiplier applied to grid densities before the alpha computation
    /// (grids store normalized densities; this sets shell opacity).
    pub density_scale: f32,
    /// Terminate a ray once transmittance falls below this threshold.
    pub early_stop: f32,
    /// Background color composited behind the volume (Synthetic-NeRF uses
    /// white).
    pub background: Vec3,
    /// Worker threads for tile-parallel rendering: `1` renders serially,
    /// `0` uses every available core. Output is bitwise-identical at any
    /// value.
    pub parallelism: usize,
    /// Square tile side (pixels) used by the tile scheduler. Must be
    /// non-zero.
    pub tile_size: u32,
    /// Empty-space skipping policy. Images are bitwise-identical in every
    /// mode; `Mip` drops [`RenderStats::samples_marched`] on sources that
    /// carry an occupancy pyramid.
    pub skip_mode: SkipMode,
    /// Rays marched in lockstep per packet by the tile engine (`0` is
    /// treated as `1`, the historical ray-at-a-time loop). Packeting
    /// amortizes per-sample setup (shared MLP scratch) across the packet;
    /// each ray keeps its own sampler, accumulator, and stats, so images
    /// and stats are bitwise-identical at every packet size.
    pub packet_size: usize,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            samples_per_ray: 128,
            density_scale: 110.0,
            early_stop: 1e-3,
            background: Vec3::ONE,
            parallelism: 1,
            tile_size: 32,
            skip_mode: SkipMode::Off,
            packet_size: 1,
        }
    }
}

/// Workload statistics of one rendered view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RenderStats {
    /// Primary rays cast.
    pub rays: usize,
    /// Sample positions marched (each is one SGPU decode: 8 vertex lookups).
    pub samples_marched: usize,
    /// Samples with positive interpolated density (each is one MLP
    /// evaluation on the systolic array).
    pub samples_shaded: usize,
    /// Rays that hit the early-termination threshold.
    pub rays_terminated_early: usize,
    /// Sample positions the occupancy pyramid proved empty and skipped
    /// without decoding (always 0 under [`SkipMode::Off`]). Skipped samples
    /// are charged no GID/MLP work — `samples_marched + samples_skipped`
    /// is invariant across skip modes.
    pub samples_skipped: usize,
    /// Per-pixel deferred-MLP evaluations (one per ray that shaded at
    /// least one sample). Always 0 under [`Shader::PerSample`]; under
    /// [`Shader::Deferred`] this replaces `samples_shaded` as the MLP
    /// workload — the `samples_shaded / pixels_shaded` ratio is the
    /// bake-and-defer MLP-work collapse.
    pub pixels_shaded: usize,
    /// Rays whose radiance was forward-warped from the previous frame of a
    /// trajectory instead of being marched (see
    /// [`crate::temporal`]). Always 0 for single-frame renders and under
    /// [`crate::temporal::ReuseMode::Off`]. Warped rays are charged no
    /// march/decode/MLP work; together with [`RenderStats::rays_remarched`]
    /// they partition [`RenderStats::rays`] on temporal frames.
    pub rays_warped: usize,
    /// Rays of a temporal frame that were marched in full (disoccluded,
    /// depth-edge, or validation rays — plus every ray of a frame rendered
    /// without reusable state). Always 0 for single-frame renders and under
    /// [`crate::temporal::ReuseMode::Off`].
    pub rays_remarched: usize,
}

impl RenderStats {
    /// Average marched samples per ray.
    pub fn avg_marched_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.samples_marched as f64 / self.rays as f64
        }
    }

    /// Average shaded (MLP-evaluated) samples per ray.
    pub fn avg_shaded_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.samples_shaded as f64 / self.rays as f64
        }
    }

    /// Accumulates another view's statistics.
    pub fn merge(&mut self, other: &RenderStats) {
        self.rays += other.rays;
        self.samples_marched += other.samples_marched;
        self.samples_shaded += other.samples_shaded;
        self.rays_terminated_early += other.rays_terminated_early;
        self.samples_skipped += other.samples_skipped;
        self.pixels_shaded += other.pixels_shaded;
        self.rays_warped += other.rays_warped;
        self.rays_remarched += other.rays_remarched;
    }

    /// Folds one traced ray into the totals. The temporal reuse columns
    /// ([`RenderStats::rays_warped`] / [`RenderStats::rays_remarched`]) are
    /// frame-level bookkeeping, not per-ray properties, so they are left
    /// untouched here — the temporal driver sets them once per frame.
    pub fn record_ray(&mut self, ray: &RayStats) {
        self.rays += 1;
        self.samples_marched += ray.samples_marched;
        self.samples_shaded += ray.samples_shaded;
        self.rays_terminated_early += usize::from(ray.terminated_early);
        self.samples_skipped += ray.samples_skipped;
        self.pixels_shaded += ray.pixels_shaded;
    }
}

impl std::ops::AddAssign<RenderStats> for RenderStats {
    fn add_assign(&mut self, other: RenderStats) {
        self.merge(&other);
    }
}

impl std::ops::AddAssign<&RenderStats> for RenderStats {
    fn add_assign(&mut self, other: &RenderStats) {
        self.merge(other);
    }
}

/// Workload statistics of one traced ray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RayStats {
    /// Sample positions marched along this ray.
    pub samples_marched: usize,
    /// Samples with positive density (MLP evaluations).
    pub samples_shaded: usize,
    /// Whether the ray hit the early-termination threshold.
    pub terminated_early: bool,
    /// Sample positions skipped by the occupancy pyramid (see
    /// [`RenderStats::samples_skipped`]).
    pub samples_skipped: usize,
    /// Deferred-MLP evaluations on this ray: `1` when
    /// [`Shader::Deferred`] shaded at least one sample, `0` otherwise (and
    /// always `0` under [`Shader::PerSample`]).
    pub pixels_shaded: usize,
}

/// Opaque cross-frame empty-space cache handle.
///
/// Wraps the ray marcher's cached empty macro-block — a claim about
/// the *grid* ("this cell range is provably empty"), not about any
/// particular ray. Seeding the next frame's skipper with it is therefore
/// exactness-preserving for any ray: a seeded skipper skips exactly the
/// samples an unseeded one would also skip (after one pyramid descent),
/// so pixels are bitwise-unchanged and only the descent order of
/// book-keeping differs — and that book-keeping
/// ([`RayStats::samples_skipped`]) is identical too, because cached-range
/// skips and pyramid-descent skips are counted the same way.
///
/// The handle is only valid for the source it was produced from: after a
/// model respecialization it must be dropped (the facade's temporal cache
/// does this), because a stale empty-region claim about a *different* grid
/// would be unsound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipCache(Option<(GridCoord, GridCoord)>);

impl SkipCache {
    /// The empty handle: seeding with it is exactly the historical
    /// (unseeded) marching path.
    pub const EMPTY: Self = SkipCache(None);

    /// Whether the handle carries a cached empty region.
    pub fn is_hint(&self) -> bool {
        self.0.is_some()
    }
}

/// Everything [`trace_ray_traced`] learns about one primary ray: the
/// composited color, the opacity-weighted mean march depth (world-space
/// distance along the ray; `+∞` for rays that shaded nothing), the per-ray
/// workload statistics, and the final empty-space cache handle for
/// cross-frame carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracedRay {
    /// Composited pixel color (identical to [`trace_ray_shaded`]'s).
    pub color: Vec3,
    /// Opacity-weighted mean depth of the shaded samples along the ray,
    /// in world units from the ray origin; `f32::INFINITY` when no sample
    /// shaded (pure background). This is the depth the temporal
    /// forward-warp reprojects radiance at.
    pub depth: f32,
    /// Per-ray workload statistics (identical to [`trace_ray_shaded`]'s).
    pub stats: RayStats,
    /// The skipper's final cached empty region, reusable as the seed of a
    /// nearby ray in the next frame (see [`SkipCache`]).
    pub skip_cache: SkipCache,
}

/// Per-view context precomputed once and shared read-only by every ray:
/// the world↔grid frame, the scene AABB, and the march step size.
#[derive(Debug, Clone)]
pub struct RenderFrame {
    grid: GridFrame,
    aabb: Aabb,
    step: f32,
}

impl RenderFrame {
    /// Builds the per-view context for a source of dimensions `dims`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.samples_per_ray` is zero.
    pub fn new(dims: GridDims, aabb: &Aabb, cfg: &RenderConfig) -> Self {
        assert!(cfg.samples_per_ray > 0, "samples_per_ray must be non-zero");
        let step = aabb.size().max_component() * RAY_DIAGONAL_FACTOR / cfg.samples_per_ray as f32;
        Self { grid: GridFrame::new(dims, aabb.min, aabb.max), aabb: *aabb, step }
    }

    /// The world↔grid coordinate frame.
    pub fn grid(&self) -> &GridFrame {
        &self.grid
    }

    /// The scene bounding box rays are clipped against.
    pub fn aabb(&self) -> &Aabb {
        &self.aabb
    }

    /// The uniform inter-sample distance along each ray.
    pub fn step(&self) -> f32 {
        self.step
    }
}

/// Per-ray empty-space skipper: the DDA-style coarse traversal state over a
/// source's [`OccupancyMip`].
///
/// Each admitted sample re-derives its interpolation cell with the exact
/// arithmetic `interpolate` uses, so a skip decision is an *integer*
/// statement about that cell's 8 corners — never a float extrapolation
/// along the ray. That is what makes skipping provably pixel-exact: every
/// skipped sample would have interpolated to density `≤ 0` and hit the
/// `continue` branch anyway.
struct EmptySkipper<'a> {
    mip: &'a OccupancyMip,
    max_level: usize,
    /// Conservative grid-space occupied box (the mip's occupied AABB
    /// dilated by the cell + boundary-clamp reach of 1.5 vertices);
    /// positions outside cannot contribute. `None` when the grid is
    /// entirely empty.
    clip: Option<(Vec3, Vec3)>,
    /// Inclusive cell-base range of the last empty macro-block found —
    /// successive samples inside it skip on three integer range checks,
    /// without re-descending the pyramid.
    cached: Option<(GridCoord, GridCoord)>,
}

impl<'a> EmptySkipper<'a> {
    fn new(mip: &'a OccupancyMip, max_level: usize) -> Self {
        // Dilation bound: a contributing sample has a cell corner on an
        // occupied vertex, so its base ∈ [lo−1, hi] and its (unclamped)
        // grid position ∈ [lo−1.5, hi+1.5] per axis (trilinear_cell admits
        // positions up to 0.5 outside the cell lattice). Small-integer ±1.5
        // arithmetic is exact in f32, so the containment test below never
        // rounds a contributing sample out.
        let clip = mip.occupied_bounds().map(|(lo, hi)| {
            (
                Vec3::new(lo.x as f32, lo.y as f32, lo.z as f32) - Vec3::splat(1.5),
                Vec3::new(hi.x as f32, hi.y as f32, hi.z as f32) + Vec3::splat(1.5),
            )
        });
        Self { mip, max_level, clip, cached: None }
    }

    /// Decides one sample at continuous grid position `g`: `Some(cell)`
    /// when it must be marched, `None` when it is provably empty.
    fn admit(&mut self, dims: GridDims, g: Vec3) -> Option<TrilinearCell> {
        // Ray-interval clipping against the occupied AABB: outside the
        // dilated box no cell corner can reach an occupied vertex.
        match self.clip {
            None => return None,
            Some((lo, hi)) => {
                if g.x < lo.x || g.y < lo.y || g.z < lo.z {
                    return None;
                }
                if g.x > hi.x || g.y > hi.y || g.z > hi.z {
                    return None;
                }
            }
        }
        // Outside the grid the interpolated sample is empty by definition.
        let cell = trilinear_cell(dims, g)?;
        let b = cell.base;
        if let Some((lo, hi)) = self.cached {
            if (lo.x..=hi.x).contains(&b.x)
                && (lo.y..=hi.y).contains(&b.y)
                && (lo.z..=hi.z).contains(&b.z)
            {
                return None;
            }
        }
        if let Some(region) = self.mip.empty_region(b, self.max_level) {
            self.cached = Some(region);
            return None;
        }
        Some(cell)
    }
}

/// The marching state of one ray: accumulator, statistics, the MLP input
/// buffer with the view-direction encoding pre-written (features are
/// overwritten per shaded sample), the deferred specular-feature
/// accumulator, and the optional empty-space skipper.
///
/// [`trace_ray`] and [`trace_packet`] both drive rays through
/// [`RayState::step`], so the per-sample arithmetic — and therefore every
/// pixel — is identical whether rays march alone or in a packet.
struct RayState<'a> {
    acc: RayAccumulator,
    stats: RayStats,
    input: [f32; MLP_INPUT_DIM],
    /// Alpha-weighted specular feature accumulated along the ray — the
    /// deferred analogue of the color accumulator, fed to the per-pixel
    /// [`DeferredMlp`] in [`RayState::finish`]. Unused (all zeros) under
    /// [`Shader::PerSample`].
    spec: [f32; SPEC_DIM],
    /// `Σ T·α·t` over the shaded samples — the numerator of the
    /// opacity-weighted mean depth [`TracedRay::depth`] reports. Pure
    /// extra additions on the side of the color accumulator, so tracking
    /// it never changes a composited pixel.
    depth: f32,
    skipper: Option<EmptySkipper<'a>>,
}

/// The immutable per-render context [`RayState::step`] reads: one copy per
/// traced ray or packet, so stepping passes two references instead of five.
#[derive(Clone, Copy)]
struct StepCtx<'a> {
    shader: Shader<'a>,
    frame: &'a RenderFrame,
    cfg: &'a RenderConfig,
    dims: GridDims,
}

impl<'a> RayState<'a> {
    fn new<S: VoxelSource + ?Sized>(source: &'a S, ray: &Ray, cfg: &RenderConfig) -> Self {
        Self::with_cache(source, ray, cfg, SkipCache::EMPTY)
    }

    /// [`RayState::new`] with the skipper's empty-region cache pre-seeded
    /// from a previous frame (a no-op without a skipper, and exactly
    /// [`RayState::new`] for [`SkipCache::EMPTY`]).
    fn with_cache<S: VoxelSource + ?Sized>(
        source: &'a S,
        ray: &Ray,
        cfg: &RenderConfig,
        seed: SkipCache,
    ) -> Self {
        let mut input = [0.0f32; MLP_INPUT_DIM];
        input[FEATURE_DIM..].copy_from_slice(&encode_direction(ray.dir));
        let skipper = match cfg.skip_mode {
            SkipMode::Off => None,
            SkipMode::Mip { levels } => source.occupancy_mip().map(|mip| {
                let mut skipper = EmptySkipper::new(mip, levels);
                skipper.cached = seed.0;
                skipper
            }),
        };
        Self {
            acc: RayAccumulator::new(),
            stats: RayStats::default(),
            input,
            spec: [0.0; SPEC_DIM],
            depth: 0.0,
            skipper,
        }
    }

    /// Processes one sample position; returns `true` when the ray hit the
    /// early-termination threshold and must stop marching.
    fn step<S: VoxelSource + ?Sized>(
        &mut self,
        source: &S,
        ctx: &StepCtx<'_>,
        scratch: &mut MlpScratch,
        t: f32,
        pos: Vec3,
    ) -> bool {
        let StepCtx { shader, frame, cfg, dims } = *ctx;
        let g = frame.grid.world_to_grid(pos);
        let cell = match &mut self.skipper {
            Some(skipper) => match skipper.admit(dims, g) {
                Some(cell) => Some(cell),
                None => {
                    self.stats.samples_skipped += 1;
                    return false;
                }
            },
            None => trilinear_cell(dims, g),
        };
        self.stats.samples_marched += 1;
        let sample = match cell {
            Some(cell) => interpolate_cell(source, &cell),
            None => crate::interp::InterpSample::empty(),
        };
        if sample.density <= 0.0 {
            return false;
        }
        self.stats.samples_shaded += 1;
        let alpha = alpha_from_density(sample.density * cfg.density_scale, frame.step);
        match shader {
            Shader::PerSample(mlp) => {
                self.input[..FEATURE_DIM].copy_from_slice(&sample.features);
                let rgb = mlp.forward_with(&self.input, scratch);
                // Depth uses the same front-to-back weight `T·α` the color
                // accumulator applies, captured *before* `add_sample`
                // updates the transmittance — a pure side accumulation, so
                // pixels stay bitwise-identical to the historical path.
                let w = self.acc.transmittance() * alpha.clamp(0.0, 1.0);
                self.depth += w * t;
                self.acc.add_sample(alpha, Vec3::new(rgb[0], rgb[1], rgb[2]));
            }
            Shader::Deferred(_) => {
                // No per-sample MLP: the baked payload already carries the
                // diffuse color (channels 0..3) and the specular feature
                // (channels 3..12). The specular feature is accumulated
                // with the same front-to-back weight `T·α` the color
                // accumulator applies — captured *before* `add_sample`
                // updates the transmittance.
                let w = self.acc.transmittance() * alpha.clamp(0.0, 1.0);
                accumulate_weighted(&mut self.spec, &sample.features[DIFFUSE_DIM..], w);
                self.depth += w * t;
                let diffuse = Vec3::new(sample.features[0], sample.features[1], sample.features[2]);
                self.acc.add_sample(alpha, diffuse);
            }
        }
        if self.acc.is_opaque(cfg.early_stop) {
            self.stats.terminated_early = true;
            return true;
        }
        false
    }

    fn finish(self, ctx: &StepCtx<'_>) -> (Vec3, RayStats) {
        let traced = self.finish_traced(ctx);
        (traced.color, traced.stats)
    }

    fn finish_traced(mut self, ctx: &StepCtx<'_>) -> TracedRay {
        let mut color = self.acc.finalize(ctx.cfg.background);
        if let Shader::Deferred(deferred) = ctx.shader {
            if self.stats.samples_shaded > 0 {
                // The one deferred-MLP evaluation this pixel pays: view
                // dependence from the accumulated specular feature and the
                // ray's (pre-encoded) view direction, scaled by the ray's
                // opacity so empty pixels stay pure background.
                self.stats.pixels_shaded += 1;
                let mut input = [0.0f32; DEFERRED_INPUT_DIM];
                input[..SPEC_DIM].copy_from_slice(&self.spec);
                input[SPEC_DIM..].copy_from_slice(&self.input[FEATURE_DIM..]);
                let rgb = deferred.forward(&input);
                color = color + Vec3::new(rgb[0], rgb[1], rgb[2]) * self.acc.opacity();
            }
        }
        // Normalizing by the accumulated opacity makes the depth a mean
        // over the shaded samples (shaded ⇒ α > 0 ⇒ opacity > 0); rays
        // that shaded nothing have no surface and report +∞.
        let depth = if self.stats.samples_shaded > 0 {
            self.depth / self.acc.opacity()
        } else {
            f32::INFINITY
        };
        TracedRay {
            color,
            depth,
            stats: self.stats,
            skip_cache: SkipCache(self.skipper.as_ref().and_then(|s| s.cached)),
        }
    }
}

/// Traces one primary ray: march the AABB, decode and interpolate each
/// sample, shade positive-density samples through the MLP, and composite.
///
/// Pure in its inputs — no shared mutable state — which is what lets the
/// tile engine run it from many threads with bitwise-reproducible output.
///
/// Under [`SkipMode::Mip`] (and a source carrying an occupancy pyramid)
/// samples in provably-empty macro-blocks are skipped: they are counted in
/// [`RayStats::samples_skipped`] instead of
/// [`RayStats::samples_marched`], and the returned color is
/// bitwise-identical to [`SkipMode::Off`].
pub fn trace_ray<S: VoxelSource + ?Sized>(
    source: &S,
    mlp: &Mlp,
    frame: &RenderFrame,
    ray: Ray,
    cfg: &RenderConfig,
) -> (Vec3, RayStats) {
    trace_ray_with(source, mlp, frame, ray, cfg, &mut MlpScratch::new())
}

/// [`trace_ray`] reusing caller-owned MLP scratch, so a tile's rays share
/// one pair of hidden-activation buffers. Output is bitwise-identical to
/// [`trace_ray`]: the scratch is fully overwritten by every MLP evaluation.
pub fn trace_ray_with<S: VoxelSource + ?Sized>(
    source: &S,
    mlp: &Mlp,
    frame: &RenderFrame,
    ray: Ray,
    cfg: &RenderConfig,
    scratch: &mut MlpScratch,
) -> (Vec3, RayStats) {
    trace_ray_shaded(source, Shader::PerSample(mlp), frame, ray, cfg, scratch)
}

/// [`trace_ray`] generalized over the shading model: the per-ray kernel
/// behind both the per-sample and the bake-and-defer render paths.
///
/// With [`Shader::PerSample`] this is exactly [`trace_ray_with`]. With
/// [`Shader::Deferred`] the march composites baked diffuse color,
/// accumulates the baked specular feature, and pays one [`DeferredMlp`]
/// evaluation in the epilogue ([`RayStats::pixels_shaded`]).
pub fn trace_ray_shaded<S: VoxelSource + ?Sized>(
    source: &S,
    shader: Shader<'_>,
    frame: &RenderFrame,
    ray: Ray,
    cfg: &RenderConfig,
    scratch: &mut MlpScratch,
) -> (Vec3, RayStats) {
    let traced = trace_ray_traced(source, shader, frame, ray, cfg, scratch, SkipCache::EMPTY);
    (traced.color, traced.stats)
}

/// [`trace_ray_shaded`] with full temporal instrumentation: additionally
/// returns the opacity-weighted march depth and the final empty-space
/// cache handle, and accepts a [`SkipCache`] seed carried over from a
/// previous frame.
///
/// The color and stats are **bitwise-identical** to [`trace_ray_shaded`]
/// for every seed: depth tracking is a pure side accumulation, and a seed
/// only changes *how* a provably-empty sample is proven empty (cached
/// range vs pyramid descent), never whether it is skipped — both proofs
/// count into [`RayStats::samples_skipped`] identically. This is the
/// per-ray kernel of [`crate::temporal`].
pub fn trace_ray_traced<S: VoxelSource + ?Sized>(
    source: &S,
    shader: Shader<'_>,
    frame: &RenderFrame,
    ray: Ray,
    cfg: &RenderConfig,
    scratch: &mut MlpScratch,
    seed: SkipCache,
) -> TracedRay {
    let ctx = StepCtx { shader, frame, cfg, dims: source.dims() };
    let mut state = RayState::with_cache(source, &ray, cfg, seed);
    for (t, pos) in UniformSampler::new(ray, &frame.aabb, frame.step) {
        if state.step(source, &ctx, scratch, t, pos) {
            break;
        }
    }
    state.finish_traced(&ctx)
}

/// Traces a packet of primary rays in lockstep: sample `k` of every live
/// ray is processed before sample `k + 1` of any, sharing one MLP scratch.
///
/// Each ray keeps its own sampler, accumulator, skipper, and statistics —
/// the packet only interleaves *when* per-ray work happens, never *what* —
/// so the returned colors and stats are bitwise-identical to calling
/// [`trace_ray`] per ray, at any packet size. Rays that terminate early or
/// exhaust their sample range drop out of the lockstep individually.
///
/// This is the CPU analogue of the accelerator batching samples across its
/// parallel ray units to keep the shared MLP array busy; the tile engine
/// packets rays per [`RenderConfig::packet_size`].
pub fn trace_packet<S: VoxelSource + ?Sized>(
    source: &S,
    mlp: &Mlp,
    frame: &RenderFrame,
    rays: &[Ray],
    cfg: &RenderConfig,
    scratch: &mut MlpScratch,
) -> Vec<(Vec3, RayStats)> {
    trace_packet_shaded(source, Shader::PerSample(mlp), frame, rays, cfg, scratch)
}

/// [`trace_packet`] generalized over the shading model, exactly as
/// [`trace_ray_shaded`] generalizes [`trace_ray`]. Bitwise-identical to
/// per-ray [`trace_ray_shaded`] calls at any packet size, for either
/// [`Shader`] variant.
pub fn trace_packet_shaded<S: VoxelSource + ?Sized>(
    source: &S,
    shader: Shader<'_>,
    frame: &RenderFrame,
    rays: &[Ray],
    cfg: &RenderConfig,
    scratch: &mut MlpScratch,
) -> Vec<(Vec3, RayStats)> {
    let ctx = StepCtx { shader, frame, cfg, dims: source.dims() };
    struct Lane<'a> {
        sampler: UniformSampler,
        state: RayState<'a>,
        done: bool,
    }
    let mut lanes: Vec<Lane<'_>> = rays
        .iter()
        .map(|ray| Lane {
            sampler: UniformSampler::new(*ray, &frame.aabb, frame.step),
            state: RayState::new(source, ray, cfg),
            done: false,
        })
        .collect();
    loop {
        let mut progressed = false;
        for lane in &mut lanes {
            if lane.done {
                continue;
            }
            match lane.sampler.next() {
                None => lane.done = true,
                Some((t, pos)) => {
                    progressed = true;
                    if lane.state.step(source, &ctx, scratch, t, pos) {
                        lane.done = true;
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
    lanes.into_iter().map(|lane| lane.state.finish(&ctx)).collect()
}

/// Renders one view of `source` through `camera`, returning the image and
/// the workload statistics.
///
/// Dispatches to the tile-parallel engine per
/// [`RenderConfig::parallelism`]; output images and stats are
/// bitwise-identical to [`render_view_serial`] at any thread count and tile
/// size.
///
/// # Panics
///
/// Panics if `cfg.samples_per_ray` or `cfg.tile_size` is zero.
pub fn render_view<S: VoxelSource + Sync>(
    source: &S,
    mlp: &Mlp,
    camera: &PinholeCamera,
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (ImageBuffer, RenderStats) {
    engine::render_view_tiled(source, mlp, camera, aabb, cfg)
}

/// [`render_view`] generalized over the shading model: the front door of
/// the bake-and-defer path (and, with [`Shader::PerSample`], exactly
/// [`render_view`]).
///
/// The same determinism guarantee holds: output is bitwise-identical to
/// [`render_view_serial_shaded`] at any thread count, tile size, and
/// packet size.
///
/// # Panics
///
/// Panics if `cfg.samples_per_ray` or `cfg.tile_size` is zero.
pub fn render_view_shaded<S: VoxelSource + Sync>(
    source: &S,
    shader: Shader<'_>,
    camera: &PinholeCamera,
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (ImageBuffer, RenderStats) {
    engine::render_view_tiled_shaded(source, shader, camera, aabb, cfg)
}

/// The single-threaded row-major reference renderer.
///
/// This is the determinism oracle: the tile engine's output must equal it
/// bitwise. It ignores `cfg.parallelism` / `cfg.tile_size` /
/// `cfg.packet_size` (rays march one at a time in row-major order) and
/// does not require `Sync`, so it also serves trait-object sources.
///
/// # Panics
///
/// Panics if `cfg.samples_per_ray` is zero.
pub fn render_view_serial<S: VoxelSource + ?Sized>(
    source: &S,
    mlp: &Mlp,
    camera: &PinholeCamera,
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (ImageBuffer, RenderStats) {
    render_view_serial_shaded(source, Shader::PerSample(mlp), camera, aabb, cfg)
}

/// [`render_view_serial`] generalized over the shading model — the
/// determinism oracle for [`render_view_shaded`].
///
/// # Panics
///
/// Panics if `cfg.samples_per_ray` is zero.
pub fn render_view_serial_shaded<S: VoxelSource + ?Sized>(
    source: &S,
    shader: Shader<'_>,
    camera: &PinholeCamera,
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (ImageBuffer, RenderStats) {
    let frame = RenderFrame::new(source.dims(), aabb, cfg);
    let mut stats = RenderStats::default();
    let mut img = ImageBuffer::new(camera.width, camera.height);
    let mut scratch = MlpScratch::new();
    for py in 0..camera.height {
        for px in 0..camera.width {
            let (color, ray_stats) = trace_ray_shaded(
                source,
                shader,
                &frame,
                camera.ray_for_pixel(px, py),
                cfg,
                &mut scratch,
            );
            stats.record_ray(&ray_stats);
            img.set(px, py, color);
        }
    }
    (img, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{build_grid, default_camera, scene_aabb, SceneId};
    use spnerf_voxel::coord::GridDims;
    use spnerf_voxel::grid::DenseGrid;

    fn tiny_cfg() -> RenderConfig {
        RenderConfig { samples_per_ray: 48, ..Default::default() }
    }

    #[test]
    fn empty_grid_renders_background() {
        let grid = DenseGrid::zeros(GridDims::cube(16));
        let mlp = Mlp::random(0);
        let cam = default_camera(8, 8, 0, 4);
        let (img, stats) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        for p in img.pixels() {
            assert_eq!(*p, Vec3::ONE);
        }
        assert_eq!(stats.samples_shaded, 0);
        assert!(stats.samples_marched > 0);
    }

    #[test]
    fn scene_renders_something_not_background() {
        let grid = build_grid(SceneId::Lego, 32);
        let mlp = Mlp::random(0);
        let cam = default_camera(16, 16, 0, 4);
        let (img, stats) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        assert!(stats.samples_shaded > 0, "object must be hit");
        let non_bg = img.pixels().iter().filter(|p| (**p - Vec3::ONE).length() > 0.05).count();
        assert!(non_bg > 10, "object should cover some pixels, got {non_bg}");
    }

    #[test]
    fn deterministic_render() {
        let grid = build_grid(SceneId::Mic, 24);
        let mlp = Mlp::random(1);
        let cam = default_camera(8, 8, 1, 4);
        let (a, _) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        let (b, _) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let grid = build_grid(SceneId::Lego, 28);
        let mlp = Mlp::random(0);
        let cam = default_camera(13, 11, 0, 4);
        let serial = render_view_serial(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        for threads in [1, 2, 3, 8] {
            let cfg = RenderConfig { parallelism: threads, tile_size: 5, ..tiny_cfg() };
            let parallel = render_view(&grid, &mlp, &cam, &scene_aabb(), &cfg);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn stats_relationships_hold() {
        let grid = build_grid(SceneId::Chair, 28);
        let mlp = Mlp::random(0);
        let cam = default_camera(12, 12, 2, 4);
        let (_, stats) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        assert_eq!(stats.rays, 144);
        assert!(stats.samples_shaded <= stats.samples_marched);
        assert!(stats.rays_terminated_early <= stats.rays);
        assert!(stats.avg_marched_per_ray() > 1.0);
    }

    #[test]
    fn more_samples_increase_march_count() {
        let grid = build_grid(SceneId::Drums, 24);
        let mlp = Mlp::random(0);
        let cam = default_camera(6, 6, 0, 4);
        let lo = RenderConfig { samples_per_ray: 16, ..Default::default() };
        let hi = RenderConfig { samples_per_ray: 64, ..Default::default() };
        let (_, s_lo) = render_view(&grid, &mlp, &cam, &scene_aabb(), &lo);
        let (_, s_hi) = render_view(&grid, &mlp, &cam, &scene_aabb(), &hi);
        assert!(s_hi.samples_marched > 2 * s_lo.samples_marched);
    }

    #[test]
    fn early_stop_reduces_shading() {
        let grid = build_grid(SceneId::Hotdog, 28);
        let mlp = Mlp::random(0);
        let cam = default_camera(10, 10, 0, 4);
        let eager = RenderConfig { early_stop: 0.5, ..tiny_cfg() };
        let never = RenderConfig { early_stop: 0.0, ..tiny_cfg() };
        let (_, s_eager) = render_view(&grid, &mlp, &cam, &scene_aabb(), &eager);
        let (_, s_never) = render_view(&grid, &mlp, &cam, &scene_aabb(), &never);
        assert!(s_eager.samples_shaded <= s_never.samples_shaded);
        assert!(s_eager.rays_terminated_early > 0);
        assert_eq!(s_never.rays_terminated_early, 0);
    }

    #[test]
    fn diagonal_factor_covers_cube_diagonal() {
        // The named constant must clear √3 (the cube space diagonal) while
        // keeping the historical literal's exact value.
        assert!(RAY_DIAGONAL_FACTOR > 3.0f32.sqrt());
        assert_eq!(RAY_DIAGONAL_FACTOR, 1.74);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RenderStats {
            rays: 1,
            samples_marched: 2,
            samples_shaded: 3,
            rays_terminated_early: 0,
            samples_skipped: 4,
            pixels_shaded: 1,
            rays_warped: 2,
            rays_remarched: 3,
        };
        let b = RenderStats {
            rays: 10,
            samples_marched: 20,
            samples_shaded: 30,
            rays_terminated_early: 5,
            samples_skipped: 40,
            pixels_shaded: 6,
            rays_warped: 7,
            rays_remarched: 8,
        };
        a.merge(&b);
        assert_eq!(a.rays, 11);
        assert_eq!(a.samples_marched, 22);
        assert_eq!(a.samples_shaded, 33);
        assert_eq!(a.rays_terminated_early, 5);
        assert_eq!(a.samples_skipped, 44);
        assert_eq!(a.pixels_shaded, 7);
        assert_eq!(a.rays_warped, 9);
        assert_eq!(a.rays_remarched, 11);
    }

    #[test]
    fn add_assign_matches_merge() {
        let b = RenderStats {
            rays: 4,
            samples_marched: 40,
            samples_shaded: 14,
            rays_terminated_early: 2,
            samples_skipped: 6,
            pixels_shaded: 3,
            rays_warped: 1,
            rays_remarched: 2,
        };
        let mut via_merge = RenderStats::default();
        via_merge.merge(&b);
        let mut by_value = RenderStats::default();
        by_value += b;
        let mut by_ref = RenderStats::default();
        by_ref += &b;
        assert_eq!(by_value, via_merge);
        assert_eq!(by_ref, via_merge);
    }

    #[test]
    fn record_ray_accumulates() {
        let mut s = RenderStats::default();
        s.record_ray(&RayStats {
            samples_marched: 7,
            samples_shaded: 3,
            terminated_early: true,
            samples_skipped: 2,
            pixels_shaded: 1,
        });
        s.record_ray(&RayStats {
            samples_marched: 5,
            samples_shaded: 0,
            terminated_early: false,
            samples_skipped: 1,
            pixels_shaded: 0,
        });
        assert_eq!(s.rays, 2);
        assert_eq!(s.samples_marched, 12);
        assert_eq!(s.samples_shaded, 3);
        assert_eq!(s.rays_terminated_early, 1);
        assert_eq!(s.samples_skipped, 3);
        assert_eq!(s.pixels_shaded, 1);
    }

    #[test]
    fn avg_marched_per_ray_divides_by_rays() {
        let s =
            RenderStats { rays: 4, samples_marched: 10, samples_shaded: 6, ..Default::default() };
        assert_eq!(s.avg_marched_per_ray(), 2.5);
        assert_eq!(s.avg_shaded_per_ray(), 1.5);
    }

    #[test]
    fn avg_with_zero_rays_is_zero() {
        let s = RenderStats::default();
        assert_eq!(s.avg_marched_per_ray(), 0.0);
        assert_eq!(s.avg_shaded_per_ray(), 0.0);
    }

    #[test]
    fn skip_mode_is_pixel_exact_and_drops_marched_samples() {
        use crate::source::WithOccupancy;
        for id in [SceneId::Lego, SceneId::Mic] {
            let grid = build_grid(id, 28);
            let mlp = Mlp::random(0);
            let cam = default_camera(12, 12, 0, 4);
            let off = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
            let skippable = WithOccupancy::build(&grid);
            let cfg = RenderConfig { skip_mode: SkipMode::mip(), ..tiny_cfg() };
            let on = render_view(&skippable, &mlp, &cam, &scene_aabb(), &cfg);
            assert_eq!(on.0, off.0, "{id:?}: images must be bitwise-identical");
            assert_eq!(on.1.samples_shaded, off.1.samples_shaded);
            assert_eq!(on.1.rays_terminated_early, off.1.rays_terminated_early);
            assert!(
                on.1.samples_marched < off.1.samples_marched,
                "{id:?}: skipping must remove marched samples"
            );
            assert_eq!(
                on.1.samples_marched + on.1.samples_skipped,
                off.1.samples_marched + off.1.samples_skipped,
                "{id:?}: marched + skipped is invariant"
            );
            assert_eq!(off.1.samples_skipped, 0, "Off never skips");
        }
    }

    #[test]
    fn skip_levels_zero_still_exact() {
        use crate::source::WithOccupancy;
        let grid = build_grid(SceneId::Drums, 24);
        let mlp = Mlp::random(1);
        let cam = default_camera(9, 9, 2, 4);
        let off = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        let skippable = WithOccupancy::build(&grid);
        let cfg = RenderConfig { skip_mode: SkipMode::Mip { levels: 0 }, ..tiny_cfg() };
        let on = render_view(&skippable, &mlp, &cam, &scene_aabb(), &cfg);
        assert_eq!(on.0, off.0, "fine-level-only skipping stays exact");
        assert!(on.1.samples_skipped > 0);
    }

    #[test]
    fn skip_without_a_pyramid_is_off() {
        let grid = build_grid(SceneId::Chair, 24);
        let mlp = Mlp::random(0);
        let cam = default_camera(8, 8, 0, 4);
        let cfg = RenderConfig { skip_mode: SkipMode::mip(), ..tiny_cfg() };
        let on = render_view(&grid, &mlp, &cam, &scene_aabb(), &cfg);
        let off = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        assert_eq!(on, off, "a bare source has no pyramid, so nothing skips");
        assert_eq!(on.1.samples_skipped, 0);
    }

    #[test]
    fn empty_scene_skips_every_sample() {
        use crate::source::WithOccupancy;
        let grid = DenseGrid::zeros(GridDims::cube(16));
        let mlp = Mlp::random(0);
        let cam = default_camera(8, 8, 0, 4);
        let skippable = WithOccupancy::build(&grid);
        let cfg = RenderConfig { skip_mode: SkipMode::mip(), ..tiny_cfg() };
        let (img, stats) = render_view(&skippable, &mlp, &cam, &scene_aabb(), &cfg);
        for p in img.pixels() {
            assert_eq!(*p, Vec3::ONE);
        }
        assert_eq!(stats.samples_marched, 0, "an empty grid needs no decodes at all");
        assert!(stats.samples_skipped > 0);
    }

    #[test]
    fn traced_ray_matches_shaded_and_reports_depth() {
        let grid = build_grid(SceneId::Lego, 28);
        let mlp = Mlp::random(0);
        let cam = default_camera(10, 10, 0, 4);
        let cfg = tiny_cfg();
        let frame = RenderFrame::new(grid.dims(), &scene_aabb(), &cfg);
        let mut scratch = MlpScratch::new();
        let shader = Shader::PerSample(&mlp);
        let mut hits = 0;
        for py in 0..10 {
            for px in 0..10 {
                let ray = cam.ray_for_pixel(px, py);
                let (color, stats) =
                    trace_ray_shaded(&grid, shader, &frame, ray, &cfg, &mut scratch);
                let traced = trace_ray_traced(
                    &grid,
                    shader,
                    &frame,
                    ray,
                    &cfg,
                    &mut scratch,
                    SkipCache::EMPTY,
                );
                assert_eq!(traced.color, color, "traced color must be bitwise-identical");
                assert_eq!(traced.stats, stats);
                if stats.samples_shaded > 0 {
                    hits += 1;
                    // Depth sits inside the march range of the 2.8-radius orbit
                    // camera over the [-1, 1]³ box.
                    assert!(
                        traced.depth > 0.5 && traced.depth < 6.0,
                        "depth {} out of range at ({px},{py})",
                        traced.depth
                    );
                } else {
                    assert!(traced.depth.is_infinite(), "background rays have no depth");
                }
            }
        }
        assert!(hits > 0, "object must be hit");
    }

    #[test]
    fn skip_cache_seed_is_exactness_preserving() {
        use crate::source::WithOccupancy;
        let grid = build_grid(SceneId::Mic, 28);
        let mlp = Mlp::random(1);
        let cam = default_camera(12, 12, 1, 4);
        let cfg = RenderConfig { skip_mode: SkipMode::mip(), ..tiny_cfg() };
        let skippable = WithOccupancy::build(&grid);
        let frame = RenderFrame::new(skippable.dims(), &scene_aabb(), &cfg);
        let mut scratch = MlpScratch::new();
        let shader = Shader::PerSample(&mlp);
        // March column-adjacent rays, seeding each from its upper neighbor
        // (the temporal carry pattern): colors, stats, and the final cache
        // must match the unseeded march bit for bit.
        let mut carried = 0;
        for px in 0..12 {
            let mut seed = SkipCache::EMPTY;
            for py in 0..12 {
                let ray = cam.ray_for_pixel(px, py);
                let fresh = trace_ray_traced(
                    &skippable,
                    shader,
                    &frame,
                    ray,
                    &cfg,
                    &mut scratch,
                    SkipCache::EMPTY,
                );
                let seeded =
                    trace_ray_traced(&skippable, shader, &frame, ray, &cfg, &mut scratch, seed);
                assert_eq!(seeded.color, fresh.color, "seed must never change a pixel");
                assert_eq!(seeded.stats, fresh.stats, "seed must never change the accounting");
                assert_eq!(seeded.depth.to_bits(), fresh.depth.to_bits());
                if seed.is_hint() {
                    carried += 1;
                }
                seed = seeded.skip_cache;
            }
        }
        assert!(carried > 0, "the cache must actually carry between rays");
    }

    #[test]
    fn per_sample_shader_is_the_classic_path() {
        let grid = build_grid(SceneId::Lego, 24);
        let mlp = Mlp::random(0);
        let cam = default_camera(10, 10, 0, 4);
        let classic = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        let shaded =
            render_view_shaded(&grid, Shader::PerSample(&mlp), &cam, &scene_aabb(), &tiny_cfg());
        assert_eq!(shaded, classic, "PerSample must be exactly the historical path");
        assert_eq!(shaded.1.pixels_shaded, 0, "no deferred evaluations in per-sample mode");
    }

    #[test]
    fn deferred_collapses_mlp_work_to_pixels() {
        use crate::bake::bake;
        use crate::mlp::DeferredMlp;
        let grid = build_grid(SceneId::Lego, 28);
        let baked = bake(&grid, &Mlp::random(0));
        let deferred = DeferredMlp::random(0);
        let cam = default_camera(12, 12, 0, 4);
        let (img, stats) = render_view_shaded(
            &baked,
            Shader::Deferred(&deferred),
            &cam,
            &scene_aabb(),
            &tiny_cfg(),
        );
        assert!(stats.pixels_shaded > 0, "object must be hit");
        assert!(stats.pixels_shaded <= stats.rays, "at most one deferred eval per ray");
        assert!(
            stats.samples_shaded > stats.pixels_shaded,
            "deferred work ({}) must be below per-sample work ({})",
            stats.pixels_shaded,
            stats.samples_shaded
        );
        // Every ray that shaded nothing stays pure background.
        let non_bg = img.pixels().iter().filter(|p| **p != Vec3::ONE).count();
        assert_eq!(non_bg, stats.pixels_shaded, "exactly the shaded pixels deviate");
        // Marching workload is identical to per-sample rendering of the
        // same baked grid: density (and therefore support) is copied
        // verbatim by the bake.
        let per_sample = render_view(&baked, &Mlp::random(0), &cam, &scene_aabb(), &tiny_cfg());
        assert_eq!(stats.samples_marched, per_sample.1.samples_marched);
        assert_eq!(stats.samples_shaded, per_sample.1.samples_shaded);
    }

    #[test]
    fn deferred_parallel_matches_serial_reference() {
        use crate::bake::bake;
        use crate::mlp::DeferredMlp;
        let grid = build_grid(SceneId::Mic, 24);
        let baked = bake(&grid, &Mlp::random(1));
        let deferred = DeferredMlp::random(1);
        let cam = default_camera(13, 11, 1, 4);
        let shader = Shader::Deferred(&deferred);
        let serial = render_view_serial_shaded(&baked, shader, &cam, &scene_aabb(), &tiny_cfg());
        for (threads, packet) in [(2usize, 1usize), (3, 4), (8, 7)] {
            let cfg = RenderConfig {
                parallelism: threads,
                tile_size: 5,
                packet_size: packet,
                ..tiny_cfg()
            };
            let parallel = render_view_shaded(&baked, shader, &cam, &scene_aabb(), &cfg);
            assert_eq!(parallel, serial, "threads={threads} packet={packet}");
        }
    }

    #[test]
    fn deferred_skip_mode_is_pixel_exact() {
        use crate::bake::bake;
        use crate::mlp::DeferredMlp;
        use crate::source::WithOccupancy;
        let grid = build_grid(SceneId::Drums, 24);
        let baked = bake(&grid, &Mlp::random(2));
        let deferred = DeferredMlp::random(2);
        let cam = default_camera(10, 10, 2, 4);
        let shader = Shader::Deferred(&deferred);
        let off = render_view_shaded(&baked, shader, &cam, &scene_aabb(), &tiny_cfg());
        let skippable = WithOccupancy::build(&baked);
        let cfg = RenderConfig { skip_mode: SkipMode::mip(), ..tiny_cfg() };
        let on = render_view_shaded(&skippable, shader, &cam, &scene_aabb(), &cfg);
        assert_eq!(on.0, off.0, "skipping must not change a deferred pixel");
        assert_eq!(on.1.pixels_shaded, off.1.pixels_shaded);
        assert_eq!(on.1.samples_shaded, off.1.samples_shaded);
        assert!(on.1.samples_marched < off.1.samples_marched);
    }
}
