//! The CPU reference renderer: ray march → (source decode) → trilinear
//! interpolation → MLP → compositing.
//!
//! This is the software counterpart of the whole accelerator pipeline. It is
//! generic over [`VoxelSource`], so the identical code path renders the dense
//! ground truth, the VQRF gold model and SpNeRF's online decoder — PSNR
//! deltas then isolate the data representation, as in Fig. 6(b).
//!
//! Its [`RenderStats`] (samples marched, samples shaded, early terminations)
//! are also the per-frame workload descriptor the cycle-level accelerator
//! simulator consumes.
//!
//! # Layering
//!
//! The renderer is split into three layers:
//!
//! 1. [`trace_ray`] — the pure per-ray kernel: march, decode, shade,
//!    composite one primary ray against a shared read-only [`RenderFrame`];
//! 2. [`crate::engine`] — the tile scheduler and worker pool that fan rays
//!    out over threads and merge results back deterministically;
//! 3. [`render_view`] — the front door: renders one view honoring
//!    [`RenderConfig::parallelism`] / [`RenderConfig::tile_size`].
//!
//! [`render_view_serial`] is the single-threaded row-major reference the
//! parallel engine is tested against: for every scene and thread count the
//! engine's image and stats are bitwise-identical to it.

use crate::camera::PinholeCamera;
use crate::composite::{alpha_from_density, RayAccumulator};
use crate::engine;
use crate::image::ImageBuffer;
use crate::interp::{interpolate, GridFrame};
use crate::mlp::{encode_direction, Mlp, MLP_INPUT_DIM};
use crate::ray::{Aabb, Ray, UniformSampler};
use crate::source::VoxelSource;
use crate::vec3::Vec3;
use spnerf_voxel::coord::GridDims;
use spnerf_voxel::FEATURE_DIM;

/// Ratio between the ray-march extent and the AABB's largest edge.
///
/// `samples_per_ray` uniform samples must span the longest chord a ray can
/// cut through the scene box. For a cube that chord is the space diagonal,
/// `√3 ≈ 1.7321` times the edge length; this factor rounds it up to 1.74 so
/// the spacing `step = edge · 1.74 / samples_per_ray` always covers the
/// diagonal with a small safety margin. The value matches the historical
/// literal bit-for-bit, so renders are unchanged.
pub const RAY_DIAGONAL_FACTOR: f32 = 1.74;

/// Rendering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Uniform samples across the AABB diameter per ray.
    pub samples_per_ray: usize,
    /// Multiplier applied to grid densities before the alpha computation
    /// (grids store normalized densities; this sets shell opacity).
    pub density_scale: f32,
    /// Terminate a ray once transmittance falls below this threshold.
    pub early_stop: f32,
    /// Background color composited behind the volume (Synthetic-NeRF uses
    /// white).
    pub background: Vec3,
    /// Worker threads for tile-parallel rendering: `1` renders serially,
    /// `0` uses every available core. Output is bitwise-identical at any
    /// value.
    pub parallelism: usize,
    /// Square tile side (pixels) used by the tile scheduler. Must be
    /// non-zero.
    pub tile_size: u32,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            samples_per_ray: 128,
            density_scale: 110.0,
            early_stop: 1e-3,
            background: Vec3::ONE,
            parallelism: 1,
            tile_size: 32,
        }
    }
}

/// Workload statistics of one rendered view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RenderStats {
    /// Primary rays cast.
    pub rays: usize,
    /// Sample positions marched (each is one SGPU decode: 8 vertex lookups).
    pub samples_marched: usize,
    /// Samples with positive interpolated density (each is one MLP
    /// evaluation on the systolic array).
    pub samples_shaded: usize,
    /// Rays that hit the early-termination threshold.
    pub rays_terminated_early: usize,
}

impl RenderStats {
    /// Average marched samples per ray.
    pub fn avg_marched_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.samples_marched as f64 / self.rays as f64
        }
    }

    /// Average shaded (MLP-evaluated) samples per ray.
    pub fn avg_shaded_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.samples_shaded as f64 / self.rays as f64
        }
    }

    /// Accumulates another view's statistics.
    pub fn merge(&mut self, other: &RenderStats) {
        self.rays += other.rays;
        self.samples_marched += other.samples_marched;
        self.samples_shaded += other.samples_shaded;
        self.rays_terminated_early += other.rays_terminated_early;
    }

    /// Folds one traced ray into the totals.
    pub fn record_ray(&mut self, ray: &RayStats) {
        self.rays += 1;
        self.samples_marched += ray.samples_marched;
        self.samples_shaded += ray.samples_shaded;
        self.rays_terminated_early += usize::from(ray.terminated_early);
    }
}

impl std::ops::AddAssign<RenderStats> for RenderStats {
    fn add_assign(&mut self, other: RenderStats) {
        self.merge(&other);
    }
}

impl std::ops::AddAssign<&RenderStats> for RenderStats {
    fn add_assign(&mut self, other: &RenderStats) {
        self.merge(other);
    }
}

/// Workload statistics of one traced ray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RayStats {
    /// Sample positions marched along this ray.
    pub samples_marched: usize,
    /// Samples with positive density (MLP evaluations).
    pub samples_shaded: usize,
    /// Whether the ray hit the early-termination threshold.
    pub terminated_early: bool,
}

/// Per-view context precomputed once and shared read-only by every ray:
/// the world↔grid frame, the scene AABB, and the march step size.
#[derive(Debug, Clone)]
pub struct RenderFrame {
    grid: GridFrame,
    aabb: Aabb,
    step: f32,
}

impl RenderFrame {
    /// Builds the per-view context for a source of dimensions `dims`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.samples_per_ray` is zero.
    pub fn new(dims: GridDims, aabb: &Aabb, cfg: &RenderConfig) -> Self {
        assert!(cfg.samples_per_ray > 0, "samples_per_ray must be non-zero");
        let step = aabb.size().max_component() * RAY_DIAGONAL_FACTOR / cfg.samples_per_ray as f32;
        Self { grid: GridFrame::new(dims, aabb.min, aabb.max), aabb: *aabb, step }
    }

    /// The world↔grid coordinate frame.
    pub fn grid(&self) -> &GridFrame {
        &self.grid
    }

    /// The scene bounding box rays are clipped against.
    pub fn aabb(&self) -> &Aabb {
        &self.aabb
    }

    /// The uniform inter-sample distance along each ray.
    pub fn step(&self) -> f32 {
        self.step
    }
}

/// Traces one primary ray: march the AABB, decode and interpolate each
/// sample, shade positive-density samples through the MLP, and composite.
///
/// Pure in its inputs — no shared mutable state — which is what lets the
/// tile engine run it from many threads with bitwise-reproducible output.
pub fn trace_ray<S: VoxelSource + ?Sized>(
    source: &S,
    mlp: &Mlp,
    frame: &RenderFrame,
    ray: Ray,
    cfg: &RenderConfig,
) -> (Vec3, RayStats) {
    let dir_enc = encode_direction(ray.dir);
    let mut acc = RayAccumulator::new();
    let mut stats = RayStats::default();
    for (_t, pos) in UniformSampler::new(ray, &frame.aabb, frame.step) {
        stats.samples_marched += 1;
        let sample = interpolate(source, frame.grid.world_to_grid(pos));
        if sample.density <= 0.0 {
            continue;
        }
        stats.samples_shaded += 1;
        let mut input = [0.0f32; MLP_INPUT_DIM];
        input[..FEATURE_DIM].copy_from_slice(&sample.features);
        input[FEATURE_DIM..].copy_from_slice(&dir_enc);
        let rgb = mlp.forward(&input);
        let alpha = alpha_from_density(sample.density * cfg.density_scale, frame.step);
        acc.add_sample(alpha, Vec3::new(rgb[0], rgb[1], rgb[2]));
        if acc.is_opaque(cfg.early_stop) {
            stats.terminated_early = true;
            break;
        }
    }
    (acc.finalize(cfg.background), stats)
}

/// Renders one view of `source` through `camera`, returning the image and
/// the workload statistics.
///
/// Dispatches to the tile-parallel engine per
/// [`RenderConfig::parallelism`]; output images and stats are
/// bitwise-identical to [`render_view_serial`] at any thread count and tile
/// size.
///
/// # Panics
///
/// Panics if `cfg.samples_per_ray` or `cfg.tile_size` is zero.
pub fn render_view<S: VoxelSource + Sync>(
    source: &S,
    mlp: &Mlp,
    camera: &PinholeCamera,
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (ImageBuffer, RenderStats) {
    engine::render_view_tiled(source, mlp, camera, aabb, cfg)
}

/// The single-threaded row-major reference renderer.
///
/// This is the determinism oracle: the tile engine's output must equal it
/// bitwise. It ignores `cfg.parallelism` / `cfg.tile_size` and does not
/// require `Sync`, so it also serves trait-object sources.
///
/// # Panics
///
/// Panics if `cfg.samples_per_ray` is zero.
pub fn render_view_serial<S: VoxelSource + ?Sized>(
    source: &S,
    mlp: &Mlp,
    camera: &PinholeCamera,
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (ImageBuffer, RenderStats) {
    let frame = RenderFrame::new(source.dims(), aabb, cfg);
    let mut stats = RenderStats::default();
    let mut img = ImageBuffer::new(camera.width, camera.height);
    for py in 0..camera.height {
        for px in 0..camera.width {
            let (color, ray_stats) =
                trace_ray(source, mlp, &frame, camera.ray_for_pixel(px, py), cfg);
            stats.record_ray(&ray_stats);
            img.set(px, py, color);
        }
    }
    (img, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{build_grid, default_camera, scene_aabb, SceneId};
    use spnerf_voxel::coord::GridDims;
    use spnerf_voxel::grid::DenseGrid;

    fn tiny_cfg() -> RenderConfig {
        RenderConfig { samples_per_ray: 48, ..Default::default() }
    }

    #[test]
    fn empty_grid_renders_background() {
        let grid = DenseGrid::zeros(GridDims::cube(16));
        let mlp = Mlp::random(0);
        let cam = default_camera(8, 8, 0, 4);
        let (img, stats) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        for p in img.pixels() {
            assert_eq!(*p, Vec3::ONE);
        }
        assert_eq!(stats.samples_shaded, 0);
        assert!(stats.samples_marched > 0);
    }

    #[test]
    fn scene_renders_something_not_background() {
        let grid = build_grid(SceneId::Lego, 32);
        let mlp = Mlp::random(0);
        let cam = default_camera(16, 16, 0, 4);
        let (img, stats) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        assert!(stats.samples_shaded > 0, "object must be hit");
        let non_bg = img.pixels().iter().filter(|p| (**p - Vec3::ONE).length() > 0.05).count();
        assert!(non_bg > 10, "object should cover some pixels, got {non_bg}");
    }

    #[test]
    fn deterministic_render() {
        let grid = build_grid(SceneId::Mic, 24);
        let mlp = Mlp::random(1);
        let cam = default_camera(8, 8, 1, 4);
        let (a, _) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        let (b, _) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let grid = build_grid(SceneId::Lego, 28);
        let mlp = Mlp::random(0);
        let cam = default_camera(13, 11, 0, 4);
        let serial = render_view_serial(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        for threads in [1, 2, 3, 8] {
            let cfg = RenderConfig { parallelism: threads, tile_size: 5, ..tiny_cfg() };
            let parallel = render_view(&grid, &mlp, &cam, &scene_aabb(), &cfg);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn stats_relationships_hold() {
        let grid = build_grid(SceneId::Chair, 28);
        let mlp = Mlp::random(0);
        let cam = default_camera(12, 12, 2, 4);
        let (_, stats) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        assert_eq!(stats.rays, 144);
        assert!(stats.samples_shaded <= stats.samples_marched);
        assert!(stats.rays_terminated_early <= stats.rays);
        assert!(stats.avg_marched_per_ray() > 1.0);
    }

    #[test]
    fn more_samples_increase_march_count() {
        let grid = build_grid(SceneId::Drums, 24);
        let mlp = Mlp::random(0);
        let cam = default_camera(6, 6, 0, 4);
        let lo = RenderConfig { samples_per_ray: 16, ..Default::default() };
        let hi = RenderConfig { samples_per_ray: 64, ..Default::default() };
        let (_, s_lo) = render_view(&grid, &mlp, &cam, &scene_aabb(), &lo);
        let (_, s_hi) = render_view(&grid, &mlp, &cam, &scene_aabb(), &hi);
        assert!(s_hi.samples_marched > 2 * s_lo.samples_marched);
    }

    #[test]
    fn early_stop_reduces_shading() {
        let grid = build_grid(SceneId::Hotdog, 28);
        let mlp = Mlp::random(0);
        let cam = default_camera(10, 10, 0, 4);
        let eager = RenderConfig { early_stop: 0.5, ..tiny_cfg() };
        let never = RenderConfig { early_stop: 0.0, ..tiny_cfg() };
        let (_, s_eager) = render_view(&grid, &mlp, &cam, &scene_aabb(), &eager);
        let (_, s_never) = render_view(&grid, &mlp, &cam, &scene_aabb(), &never);
        assert!(s_eager.samples_shaded <= s_never.samples_shaded);
        assert!(s_eager.rays_terminated_early > 0);
        assert_eq!(s_never.rays_terminated_early, 0);
    }

    #[test]
    fn diagonal_factor_covers_cube_diagonal() {
        // The named constant must clear √3 (the cube space diagonal) while
        // keeping the historical literal's exact value.
        assert!(RAY_DIAGONAL_FACTOR > 3.0f32.sqrt());
        assert_eq!(RAY_DIAGONAL_FACTOR, 1.74);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RenderStats {
            rays: 1,
            samples_marched: 2,
            samples_shaded: 3,
            rays_terminated_early: 0,
        };
        let b = RenderStats {
            rays: 10,
            samples_marched: 20,
            samples_shaded: 30,
            rays_terminated_early: 5,
        };
        a.merge(&b);
        assert_eq!(a.rays, 11);
        assert_eq!(a.samples_marched, 22);
        assert_eq!(a.samples_shaded, 33);
        assert_eq!(a.rays_terminated_early, 5);
    }

    #[test]
    fn add_assign_matches_merge() {
        let b = RenderStats {
            rays: 4,
            samples_marched: 40,
            samples_shaded: 14,
            rays_terminated_early: 2,
        };
        let mut via_merge = RenderStats::default();
        via_merge.merge(&b);
        let mut by_value = RenderStats::default();
        by_value += b;
        let mut by_ref = RenderStats::default();
        by_ref += &b;
        assert_eq!(by_value, via_merge);
        assert_eq!(by_ref, via_merge);
    }

    #[test]
    fn record_ray_accumulates() {
        let mut s = RenderStats::default();
        s.record_ray(&RayStats { samples_marched: 7, samples_shaded: 3, terminated_early: true });
        s.record_ray(&RayStats { samples_marched: 5, samples_shaded: 0, terminated_early: false });
        assert_eq!(s.rays, 2);
        assert_eq!(s.samples_marched, 12);
        assert_eq!(s.samples_shaded, 3);
        assert_eq!(s.rays_terminated_early, 1);
    }

    #[test]
    fn avg_marched_per_ray_divides_by_rays() {
        let s =
            RenderStats { rays: 4, samples_marched: 10, samples_shaded: 6, ..Default::default() };
        assert_eq!(s.avg_marched_per_ray(), 2.5);
        assert_eq!(s.avg_shaded_per_ray(), 1.5);
    }

    #[test]
    fn avg_with_zero_rays_is_zero() {
        let s = RenderStats::default();
        assert_eq!(s.avg_marched_per_ray(), 0.0);
        assert_eq!(s.avg_shaded_per_ray(), 0.0);
    }
}
