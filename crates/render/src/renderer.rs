//! The CPU reference renderer: ray march → (source decode) → trilinear
//! interpolation → MLP → compositing.
//!
//! This is the software counterpart of the whole accelerator pipeline. It is
//! generic over [`VoxelSource`], so the identical code path renders the dense
//! ground truth, the VQRF gold model and SpNeRF's online decoder — PSNR
//! deltas then isolate the data representation, as in Fig. 6(b).
//!
//! Its [`RenderStats`] (samples marched, samples shaded, early terminations)
//! are also the per-frame workload descriptor the cycle-level accelerator
//! simulator consumes.

use crate::camera::PinholeCamera;
use crate::composite::{alpha_from_density, RayAccumulator};
use crate::image::ImageBuffer;
use crate::interp::{interpolate, GridFrame};
use crate::mlp::{encode_direction, Mlp, MLP_INPUT_DIM};
use crate::ray::{Aabb, UniformSampler};
use crate::source::VoxelSource;
use crate::vec3::Vec3;
use spnerf_voxel::FEATURE_DIM;

/// Rendering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Uniform samples across the AABB diameter per ray.
    pub samples_per_ray: usize,
    /// Multiplier applied to grid densities before the alpha computation
    /// (grids store normalized densities; this sets shell opacity).
    pub density_scale: f32,
    /// Terminate a ray once transmittance falls below this threshold.
    pub early_stop: f32,
    /// Background color composited behind the volume (Synthetic-NeRF uses
    /// white).
    pub background: Vec3,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self { samples_per_ray: 128, density_scale: 110.0, early_stop: 1e-3, background: Vec3::ONE }
    }
}

/// Workload statistics of one rendered view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RenderStats {
    /// Primary rays cast.
    pub rays: usize,
    /// Sample positions marched (each is one SGPU decode: 8 vertex lookups).
    pub samples_marched: usize,
    /// Samples with positive interpolated density (each is one MLP
    /// evaluation on the systolic array).
    pub samples_shaded: usize,
    /// Rays that hit the early-termination threshold.
    pub rays_terminated_early: usize,
}

impl RenderStats {
    /// Average marched samples per ray.
    pub fn avg_marched_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.samples_marched as f64 / self.rays as f64
        }
    }

    /// Average shaded (MLP-evaluated) samples per ray.
    pub fn avg_shaded_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.samples_shaded as f64 / self.rays as f64
        }
    }

    /// Accumulates another view's statistics.
    pub fn merge(&mut self, other: &RenderStats) {
        self.rays += other.rays;
        self.samples_marched += other.samples_marched;
        self.samples_shaded += other.samples_shaded;
        self.rays_terminated_early += other.rays_terminated_early;
    }
}

/// Renders one view of `source` through `camera`, returning the image and
/// the workload statistics.
pub fn render_view<S: VoxelSource>(
    source: &S,
    mlp: &Mlp,
    camera: &PinholeCamera,
    aabb: &Aabb,
    cfg: &RenderConfig,
) -> (ImageBuffer, RenderStats) {
    assert!(cfg.samples_per_ray > 0, "samples_per_ray must be non-zero");
    let frame = GridFrame::new(source.dims(), aabb.min, aabb.max);
    let step = aabb.size().max_component() * 1.74 / cfg.samples_per_ray as f32;
    let mut stats = RenderStats::default();
    let mut img = ImageBuffer::new(camera.width, camera.height);

    for py in 0..camera.height {
        for px in 0..camera.width {
            let ray = camera.ray_for_pixel(px, py);
            stats.rays += 1;
            let dir_enc = encode_direction(ray.dir);
            let mut acc = RayAccumulator::new();
            for (_t, pos) in UniformSampler::new(ray, aabb, step) {
                stats.samples_marched += 1;
                let sample = interpolate(source, frame.world_to_grid(pos));
                if sample.density <= 0.0 {
                    continue;
                }
                stats.samples_shaded += 1;
                let mut input = [0.0f32; MLP_INPUT_DIM];
                input[..FEATURE_DIM].copy_from_slice(&sample.features);
                input[FEATURE_DIM..].copy_from_slice(&dir_enc);
                let rgb = mlp.forward(&input);
                let alpha = alpha_from_density(sample.density * cfg.density_scale, step);
                acc.add_sample(alpha, Vec3::new(rgb[0], rgb[1], rgb[2]));
                if acc.is_opaque(cfg.early_stop) {
                    stats.rays_terminated_early += 1;
                    break;
                }
            }
            img.set(px, py, acc.finalize(cfg.background));
        }
    }
    (img, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{build_grid, default_camera, scene_aabb, SceneId};
    use spnerf_voxel::coord::GridDims;
    use spnerf_voxel::grid::DenseGrid;

    fn tiny_cfg() -> RenderConfig {
        RenderConfig { samples_per_ray: 48, ..Default::default() }
    }

    #[test]
    fn empty_grid_renders_background() {
        let grid = DenseGrid::zeros(GridDims::cube(16));
        let mlp = Mlp::random(0);
        let cam = default_camera(8, 8, 0, 4);
        let (img, stats) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        for p in img.pixels() {
            assert_eq!(*p, Vec3::ONE);
        }
        assert_eq!(stats.samples_shaded, 0);
        assert!(stats.samples_marched > 0);
    }

    #[test]
    fn scene_renders_something_not_background() {
        let grid = build_grid(SceneId::Lego, 32);
        let mlp = Mlp::random(0);
        let cam = default_camera(16, 16, 0, 4);
        let (img, stats) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        assert!(stats.samples_shaded > 0, "object must be hit");
        let non_bg = img.pixels().iter().filter(|p| (**p - Vec3::ONE).length() > 0.05).count();
        assert!(non_bg > 10, "object should cover some pixels, got {non_bg}");
    }

    #[test]
    fn deterministic_render() {
        let grid = build_grid(SceneId::Mic, 24);
        let mlp = Mlp::random(1);
        let cam = default_camera(8, 8, 1, 4);
        let (a, _) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        let (b, _) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn stats_relationships_hold() {
        let grid = build_grid(SceneId::Chair, 28);
        let mlp = Mlp::random(0);
        let cam = default_camera(12, 12, 2, 4);
        let (_, stats) = render_view(&grid, &mlp, &cam, &scene_aabb(), &tiny_cfg());
        assert_eq!(stats.rays, 144);
        assert!(stats.samples_shaded <= stats.samples_marched);
        assert!(stats.rays_terminated_early <= stats.rays);
        assert!(stats.avg_marched_per_ray() > 1.0);
    }

    #[test]
    fn more_samples_increase_march_count() {
        let grid = build_grid(SceneId::Drums, 24);
        let mlp = Mlp::random(0);
        let cam = default_camera(6, 6, 0, 4);
        let lo = RenderConfig { samples_per_ray: 16, ..Default::default() };
        let hi = RenderConfig { samples_per_ray: 64, ..Default::default() };
        let (_, s_lo) = render_view(&grid, &mlp, &cam, &scene_aabb(), &lo);
        let (_, s_hi) = render_view(&grid, &mlp, &cam, &scene_aabb(), &hi);
        assert!(s_hi.samples_marched > 2 * s_lo.samples_marched);
    }

    #[test]
    fn early_stop_reduces_shading() {
        let grid = build_grid(SceneId::Hotdog, 28);
        let mlp = Mlp::random(0);
        let cam = default_camera(10, 10, 0, 4);
        let eager = RenderConfig { early_stop: 0.5, ..tiny_cfg() };
        let never = RenderConfig { early_stop: 0.0, ..tiny_cfg() };
        let (_, s_eager) = render_view(&grid, &mlp, &cam, &scene_aabb(), &eager);
        let (_, s_never) = render_view(&grid, &mlp, &cam, &scene_aabb(), &never);
        assert!(s_eager.samples_shaded <= s_never.samples_shaded);
        assert!(s_eager.rays_terminated_early > 0);
        assert_eq!(s_never.rays_terminated_early, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RenderStats {
            rays: 1,
            samples_marched: 2,
            samples_shaded: 3,
            rays_terminated_early: 0,
        };
        let b = RenderStats {
            rays: 10,
            samples_marched: 20,
            samples_shaded: 30,
            rays_terminated_early: 5,
        };
        a.merge(&b);
        assert_eq!(a.rays, 11);
        assert_eq!(a.samples_marched, 22);
        assert_eq!(a.samples_shaded, 33);
        assert_eq!(a.rays_terminated_early, 5);
    }
}
