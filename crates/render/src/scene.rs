//! Procedural Synthetic-NeRF-like scenes.
//!
//! The paper evaluates on the eight Synthetic-NeRF scenes (chair, drums,
//! ficus, hotdog, lego, materials, mic, ship). Trained VQRF checkpoints are
//! not available offline, so this module synthesizes voxel grids with the
//! same *statistical* properties instead:
//!
//! * geometry is a signed-distance composition per scene (seat+legs for
//!   chair, hull+masts+water for ship, …), so occupied voxels form thin
//!   surface shells with realistic spatial coherence;
//! * per-scene occupancy is **calibrated by quantile thresholding** to the
//!   paper's Fig. 2(b) sparsity band (2.01 % – 6.48 % non-zero);
//! * color features are smooth functions of position and surface normal, so
//!   vector quantization and hash-collision errors behave like they do on
//!   real data.
//!
//! See DESIGN.md §2 for the substitution argument.

use spnerf_voxel::coord::GridDims;
use spnerf_voxel::grid::{DenseGrid, FEATURE_DIM};

use crate::camera::{orbit_poses, PinholeCamera};
use crate::ray::Aabb;
use crate::vec3::Vec3;

/// The eight Synthetic-NeRF scene identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SceneId {
    /// A chair: seat, back rest and four legs.
    Chair,
    /// A drum kit: shells, cymbals and stands.
    Drums,
    /// A potted ficus: trunk and foliage blobs (the 2nd-sparsest scene).
    Ficus,
    /// A hotdog on a plate (dense: large plate surface).
    Hotdog,
    /// A lego bulldozer: blocky body, blade and tracks.
    Lego,
    /// An array of material test spheres.
    Materials,
    /// A studio microphone (the sparsest scene, 2.01 % non-zero).
    Mic,
    /// A sailing ship on water (the densest scene, 6.48 % non-zero).
    Ship,
}

impl SceneId {
    /// All eight scenes in the paper's order.
    pub const fn all() -> [SceneId; 8] {
        [
            SceneId::Chair,
            SceneId::Drums,
            SceneId::Ficus,
            SceneId::Hotdog,
            SceneId::Lego,
            SceneId::Materials,
            SceneId::Mic,
            SceneId::Ship,
        ]
    }

    /// Lower-case scene name as used in dataset directories.
    pub const fn name(self) -> &'static str {
        match self {
            SceneId::Chair => "chair",
            SceneId::Drums => "drums",
            SceneId::Ficus => "ficus",
            SceneId::Hotdog => "hotdog",
            SceneId::Lego => "lego",
            SceneId::Materials => "materials",
            SceneId::Mic => "mic",
            SceneId::Ship => "ship",
        }
    }

    /// Calibration spec for this scene.
    pub const fn spec(self) -> SceneSpec {
        match self {
            SceneId::Chair => SceneSpec::new(self, 144, 0.0320, [0.72, 0.52, 0.34], 11),
            SceneId::Drums => SceneSpec::new(self, 152, 0.0410, [0.75, 0.22, 0.24], 12),
            SceneId::Ficus => SceneSpec::new(self, 136, 0.0250, [0.28, 0.62, 0.30], 13),
            SceneId::Hotdog => SceneSpec::new(self, 156, 0.0530, [0.80, 0.56, 0.30], 14),
            SceneId::Lego => SceneSpec::new(self, 148, 0.0480, [0.90, 0.75, 0.20], 15),
            SceneId::Materials => SceneSpec::new(self, 144, 0.0360, [0.55, 0.58, 0.66], 16),
            SceneId::Mic => SceneSpec::new(self, 128, 0.0201, [0.70, 0.70, 0.72], 17),
            SceneId::Ship => SceneSpec::new(self, 160, 0.0648, [0.46, 0.36, 0.28], 18),
        }
    }
}

impl std::fmt::Display for SceneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-scene calibration parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneSpec {
    /// Scene identity.
    pub id: SceneId,
    /// Grid side length the figure harnesses use (paper-scale resolution).
    pub paper_grid_side: u32,
    /// Target fraction of occupied voxels (Fig. 2(b) band).
    pub target_occupancy: f64,
    /// Base albedo of the palette.
    pub base_color: [f32; 3],
    /// Deterministic noise seed.
    pub seed: u64,
}

impl SceneSpec {
    const fn new(
        id: SceneId,
        paper_grid_side: u32,
        target_occupancy: f64,
        base_color: [f32; 3],
        seed: u64,
    ) -> Self {
        Self { id, paper_grid_side, target_occupancy, base_color, seed }
    }
}

/// The world-space bounding box every scene occupies: `[-1, 1]³`.
pub fn scene_aabb() -> Aabb {
    Aabb::centered(1.0)
}

/// Builds the scene's voxel grid at the paper-scale resolution.
pub fn build_paper_grid(id: SceneId) -> DenseGrid {
    build_grid(id, id.spec().paper_grid_side)
}

/// Builds the scene's voxel grid at an arbitrary cubic resolution.
///
/// Occupancy is calibrated to the scene's target by quantile thresholding of
/// the |SDF| field, so even small test grids land near the paper's sparsity.
///
/// # Panics
///
/// Panics if `side < 8`.
pub fn build_grid(id: SceneId, side: u32) -> DenseGrid {
    assert!(side >= 8, "grid side must be at least 8");
    let spec = id.spec();
    let dims = GridDims::cube(side);
    let n = dims.len();

    // Evaluate the scene's |SDF| at every vertex.
    let mut field = vec![0.0f32; n];
    for (i, c) in dims.iter().enumerate() {
        let p = vertex_world(c.x, c.y, c.z, side);
        field[i] = scene_sdf(id, p).abs();
    }

    // Rank-based occupancy: exactly k vertices are occupied. A pure
    // threshold would over-count on flat primitives (box/plane SDFs produce
    // many tied distances); ranking with an index tiebreak is exact.
    let k = ((n as f64) * spec.target_occupancy).round().max(1.0) as usize;
    let k = k.min(n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.select_nth_unstable_by(k - 1, |a, b| {
        field[*a as usize]
            .partial_cmp(&field[*b as usize])
            .expect("SDF values are finite")
            .then(a.cmp(b))
    });
    let tau = field[order[k - 1] as usize].max(1e-6);

    let mut grid = DenseGrid::zeros(dims);
    for &i in &order[..k] {
        let c = dims.coord_of(i as usize);
        let d = field[i as usize];
        let p = vertex_world(c.x, c.y, c.z, side);
        // Density peaks on the surface and fades towards the shell edge.
        let density = 0.05 + 0.95 * (1.0 - d / tau).max(0.0);
        grid.set_density(c, density);
        grid.set_features(c, &feature_vector(id, &spec, p, tau));
    }
    grid
}

/// A default orbit camera for rendering the scene.
pub fn default_camera(
    width: u32,
    height: u32,
    pose_index: usize,
    pose_count: usize,
) -> PinholeCamera {
    let poses = orbit_poses(pose_count.max(1), Vec3::ZERO, 2.8, 0.45);
    let pose = poses[pose_index % poses.len()];
    PinholeCamera {
        width,
        height,
        // ~50° horizontal FoV like the Synthetic-NeRF cameras.
        focal: width as f32 * 1.1,
        pose,
    }
}

fn vertex_world(x: u32, y: u32, z: u32, side: u32) -> Vec3 {
    let s = (side - 1) as f32;
    Vec3::new(x as f32 / s * 2.0 - 1.0, y as f32 / s * 2.0 - 1.0, z as f32 / s * 2.0 - 1.0)
}

fn feature_vector(id: SceneId, spec: &SceneSpec, p: Vec3, tau: f32) -> [f32; FEATURE_DIM] {
    // Numeric SDF gradient → pseudo surface normal.
    let h = 0.01;
    let g = Vec3::new(
        scene_sdf(id, p + Vec3::new(h, 0.0, 0.0)) - scene_sdf(id, p - Vec3::new(h, 0.0, 0.0)),
        scene_sdf(id, p + Vec3::new(0.0, h, 0.0)) - scene_sdf(id, p - Vec3::new(0.0, h, 0.0)),
        scene_sdf(id, p + Vec3::new(0.0, 0.0, h)) - scene_sdf(id, p - Vec3::new(0.0, 0.0, h)),
    );
    let len = g.length();
    let n = if len > 1e-6 { g / len } else { Vec3::new(0.0, 1.0, 0.0) };

    let mut f = [0.0f32; FEATURE_DIM];
    // Normal channels.
    f[0] = n.x * 0.5;
    f[1] = n.y * 0.5;
    f[2] = n.z * 0.5;
    // Albedo channels: base color modulated by position.
    let modx = 0.75 + 0.25 * (3.1 * p.x + 1.7 * p.z).sin();
    let mody = 0.75 + 0.25 * (2.3 * p.y - 1.1 * p.x).sin();
    f[3] = spec.base_color[0] * modx;
    f[4] = spec.base_color[1] * mody;
    f[5] = spec.base_color[2] * (0.75 + 0.25 * (2.9 * p.z).cos());
    // Spatial texture channels.
    f[6] = 0.3 * (4.0 * p.x).sin();
    f[7] = 0.3 * (4.0 * p.y).sin();
    f[8] = 0.3 * (4.0 * p.z).sin();
    // Shell depth, radial distance, deterministic noise.
    f[9] = (scene_sdf(id, p).abs() / tau).clamp(0.0, 1.0) - 0.5;
    f[10] = p.length() * 0.4;
    f[11] = hash_noise(p, spec.seed) * 0.3;
    // Per-voxel high-frequency detail: trained NeRF features carry content
    // no codebook can compress, which is what sets the realistic VQRF PSNR
    // floor (~30–36 dB). Without it the synthetic features are so smooth
    // that VQ becomes near-lossless and PSNR comparisons degenerate.
    let detail = hash_noise_vec(p, spec.seed ^ 0xdead_beef);
    for (slot, d) in f.iter_mut().zip(detail) {
        *slot += d * FEATURE_DETAIL_AMPLITUDE;
    }
    f
}

/// Amplitude of the incompressible per-voxel feature detail.
const FEATURE_DETAIL_AMPLITUDE: f32 = 0.9;

/// Spatial frequency of the feature detail: noise is constant within
/// blocks of ~1/48 world unit (a few voxels at paper-scale grids), so
/// trilinear interpolation cannot average it away while the number of
/// distinct blocks stays far above the codebook size — mirroring the
/// incompressible texture detail of trained grids.
const FEATURE_DETAIL_CELLS: f32 = 48.0;

/// Twelve deterministic noise values in `[-0.5, 0.5]` per noise block.
fn hash_noise_vec(p: Vec3, seed: u64) -> [f32; FEATURE_DIM] {
    let mut out = [0.0f32; FEATURE_DIM];
    for (k, chunk) in out.chunks_mut(4).enumerate() {
        let qx = (p.x * FEATURE_DETAIL_CELLS).floor() as i64 as u64;
        let qy = (p.y * FEATURE_DETAIL_CELLS).floor() as i64 as u64;
        let qz = (p.z * FEATURE_DETAIL_CELLS).floor() as i64 as u64;
        let mut h = seed ^ (k as u64).wrapping_mul(0xa076_1d64_78bd_642f);
        for v in [qx, qy, qz] {
            h ^= v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h = h.rotate_left(27).wrapping_mul(0x94d0_49bb_1331_11eb);
        }
        for (j, slot) in chunk.iter_mut().enumerate() {
            let bits = (h >> (j * 16)) & 0xffff;
            *slot = bits as f32 / 65536.0 - 0.5;
        }
    }
    out
}

/// Deterministic value noise in `[-0.5, 0.5]` from a position and seed.
fn hash_noise(p: Vec3, seed: u64) -> f32 {
    let qx = (p.x * 512.0) as i64 as u64;
    let qy = (p.y * 512.0) as i64 as u64;
    let qz = (p.z * 512.0) as i64 as u64;
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for v in [qx, qy, qz] {
        h ^= v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = h.rotate_left(27).wrapping_mul(0x94d0_49bb_1331_11eb);
    }
    ((h >> 40) as f32 / (1u32 << 24) as f32) - 0.5
}

// ---------------------------------------------------------------------------
// Signed-distance primitives and per-scene compositions.
// ---------------------------------------------------------------------------

fn sd_sphere(p: Vec3, c: Vec3, r: f32) -> f32 {
    (p - c).length() - r
}

fn sd_ellipsoid(p: Vec3, c: Vec3, r: Vec3) -> f32 {
    // Standard bound-preserving approximation.
    let q = p - c;
    let k0 = Vec3::new(q.x / r.x, q.y / r.y, q.z / r.z).length();
    let k1 = Vec3::new(q.x / (r.x * r.x), q.y / (r.y * r.y), q.z / (r.z * r.z)).length();
    if k1 > 1e-9 {
        k0 * (k0 - 1.0) / k1
    } else {
        -r.min(r).max_component()
    }
}

fn sd_box(p: Vec3, c: Vec3, half: Vec3) -> f32 {
    let q = (p - c).abs() - half;
    let outside = q.max(Vec3::ZERO).length();
    let inside = q.max_component().min(0.0);
    outside + inside
}

fn sd_cylinder_y(p: Vec3, c: Vec3, r: f32, half_h: f32) -> f32 {
    let q = p - c;
    let d_radial = (q.x * q.x + q.z * q.z).sqrt() - r;
    let d_height = q.y.abs() - half_h;
    let outside = Vec3::new(d_radial.max(0.0), d_height.max(0.0), 0.0).length();
    outside + d_radial.max(d_height).min(0.0)
}

fn sd_capsule_x(p: Vec3, c: Vec3, half_len: f32, r: f32) -> f32 {
    let q = p - c;
    let x = q.x.clamp(-half_len, half_len);
    (q - Vec3::new(x, 0.0, 0.0)).length() - r
}

fn sd_torus_y(p: Vec3, c: Vec3, major: f32, minor: f32) -> f32 {
    let q = p - c;
    let ring = ((q.x * q.x + q.z * q.z).sqrt() - major).hypot(q.y);
    ring - minor
}

fn scene_sdf(id: SceneId, p: Vec3) -> f32 {
    match id {
        SceneId::Chair => {
            let seat = sd_box(p, Vec3::new(0.0, -0.1, 0.0), Vec3::new(0.45, 0.05, 0.45));
            let back = sd_box(p, Vec3::new(0.0, 0.35, -0.4), Vec3::new(0.45, 0.4, 0.05));
            let mut d = seat.min(back);
            for (sx, sz) in [(-1.0, -1.0), (-1.0, 1.0), (1.0, -1.0), (1.0, 1.0f32)] {
                d = d.min(sd_cylinder_y(p, Vec3::new(0.38 * sx, -0.4, 0.38 * sz), 0.05, 0.3));
            }
            d
        }
        SceneId::Drums => {
            let kick = sd_cylinder_y(p, Vec3::new(0.0, -0.3, 0.0), 0.40, 0.25);
            let tom1 = sd_cylinder_y(p, Vec3::new(-0.45, -0.1, 0.2), 0.25, 0.18);
            let tom2 = sd_cylinder_y(p, Vec3::new(0.45, -0.1, 0.2), 0.25, 0.18);
            let cym1 = sd_cylinder_y(p, Vec3::new(-0.4, 0.4, -0.3), 0.30, 0.02);
            let cym2 = sd_cylinder_y(p, Vec3::new(0.4, 0.4, -0.3), 0.30, 0.02);
            let stand1 = sd_cylinder_y(p, Vec3::new(-0.4, 0.0, -0.3), 0.02, 0.42);
            let stand2 = sd_cylinder_y(p, Vec3::new(0.4, 0.0, -0.3), 0.02, 0.42);
            let hoop = sd_torus_y(p, Vec3::new(0.0, -0.05, 0.0), 0.42, 0.03);
            kick.min(tom1).min(tom2).min(cym1).min(cym2).min(stand1).min(stand2).min(hoop)
        }
        SceneId::Ficus => {
            let trunk = sd_cylinder_y(p, Vec3::new(0.0, -0.3, 0.0), 0.04, 0.35);
            let pot = sd_cylinder_y(p, Vec3::new(0.0, -0.62, 0.0), 0.18, 0.1);
            let mut d = trunk.min(pot);
            let blobs = [
                (0.0, 0.35, 0.0, 0.20),
                (0.22, 0.25, 0.10, 0.14),
                (-0.20, 0.30, -0.12, 0.15),
                (0.10, 0.50, -0.15, 0.13),
                (-0.15, 0.48, 0.15, 0.12),
                (0.25, 0.45, 0.18, 0.10),
                (-0.28, 0.18, 0.05, 0.11f32),
            ];
            for (x, y, z, r) in blobs {
                d = d.min(sd_sphere(p, Vec3::new(x, y, z), r));
            }
            d
        }
        SceneId::Hotdog => {
            let plate = sd_cylinder_y(p, Vec3::new(0.0, -0.42, 0.0), 0.72, 0.035);
            let bun1 = sd_capsule_x(p, Vec3::new(0.0, -0.28, 0.10), 0.42, 0.13);
            let bun2 = sd_capsule_x(p, Vec3::new(0.0, -0.28, -0.10), 0.42, 0.13);
            let sausage = sd_capsule_x(p, Vec3::new(0.0, -0.18, 0.0), 0.50, 0.08);
            plate.min(bun1).min(bun2).min(sausage)
        }
        SceneId::Lego => {
            let body = sd_box(p, Vec3::new(0.0, -0.05, 0.0), Vec3::new(0.35, 0.15, 0.25));
            let cabin = sd_box(p, Vec3::new(0.0, 0.22, -0.05), Vec3::new(0.18, 0.14, 0.18));
            let blade = sd_box(p, Vec3::new(0.0, -0.25, 0.48), Vec3::new(0.42, 0.13, 0.04));
            let track1 = sd_box(p, Vec3::new(-0.32, -0.28, 0.0), Vec3::new(0.08, 0.10, 0.36));
            let track2 = sd_box(p, Vec3::new(0.32, -0.28, 0.0), Vec3::new(0.08, 0.10, 0.36));
            let arm1 = sd_capsule_x(p, Vec3::new(0.0, -0.1, 0.35), 0.30, 0.035);
            body.min(cabin).min(blade).min(track1).min(track2).min(arm1)
        }
        SceneId::Materials => {
            let mut d = f32::INFINITY;
            for ix in -1..=1 {
                for iz in -1..=1 {
                    let c = Vec3::new(ix as f32 * 0.52, -0.3, iz as f32 * 0.52);
                    d = d.min(sd_sphere(p, c, 0.17));
                }
            }
            let tray = sd_box(p, Vec3::new(0.0, -0.52, 0.0), Vec3::new(0.8, 0.03, 0.8));
            d.min(tray)
        }
        SceneId::Mic => {
            let head = sd_sphere(p, Vec3::new(0.0, 0.45, 0.0), 0.18);
            let handle = sd_cylinder_y(p, Vec3::new(0.0, 0.1, 0.0), 0.05, 0.25);
            let stand = sd_cylinder_y(p, Vec3::new(0.0, -0.35, 0.0), 0.025, 0.30);
            let base = sd_cylinder_y(p, Vec3::new(0.0, -0.62, 0.0), 0.22, 0.03);
            head.min(handle).min(stand).min(base)
        }
        SceneId::Ship => {
            let hull = sd_ellipsoid(p, Vec3::new(0.0, -0.22, 0.0), Vec3::new(0.55, 0.16, 0.22));
            let deck = sd_box(p, Vec3::new(0.0, -0.10, 0.0), Vec3::new(0.45, 0.03, 0.16));
            let mast1 = sd_cylinder_y(p, Vec3::new(-0.18, 0.18, 0.0), 0.025, 0.40);
            let mast2 = sd_cylinder_y(p, Vec3::new(0.22, 0.12, 0.0), 0.025, 0.32);
            let sail1 = sd_box(p, Vec3::new(-0.18, 0.25, 0.0), Vec3::new(0.02, 0.22, 0.18));
            let sail2 = sd_box(p, Vec3::new(0.22, 0.18, 0.0), Vec3::new(0.02, 0.17, 0.14));
            let water = sd_box(p, Vec3::new(0.0, -0.48, 0.0), Vec3::new(0.85, 0.04, 0.85));
            hull.min(deck).min(mast1).min(mast2).min(sail1).min(sail2).min(water)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenes_distinct() {
        let names: std::collections::HashSet<_> = SceneId::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn occupancy_calibrated_to_target() {
        for id in SceneId::all() {
            let spec = id.spec();
            let g = build_grid(id, 48);
            let occ = g.occupancy();
            assert!(
                (occ - spec.target_occupancy).abs() < 0.005,
                "{id}: occupancy {occ:.4} vs target {:.4}",
                spec.target_occupancy
            );
        }
    }

    #[test]
    fn sparsity_band_matches_paper() {
        // Fig. 2(b): non-zero fraction between 2.01 % and 6.48 %.
        for id in SceneId::all() {
            let t = id.spec().target_occupancy;
            assert!((0.0201..=0.0648).contains(&t), "{id} target {t} out of band");
        }
        assert_eq!(SceneId::Mic.spec().target_occupancy, 0.0201);
        assert_eq!(SceneId::Ship.spec().target_occupancy, 0.0648);
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_grid(SceneId::Chair, 32);
        let b = build_grid(SceneId::Chair, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn densities_positive_and_bounded() {
        let g = build_grid(SceneId::Lego, 40);
        for p in g.extract_nonzero() {
            assert!(p.density > 0.0 && p.density <= 1.0);
            assert!(p.features.iter().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn features_vary_across_space() {
        let g = build_grid(SceneId::Ship, 40);
        let pts = g.extract_nonzero();
        assert!(pts.len() > 100);
        let first = pts[0].features;
        assert!(pts.iter().any(|p| p.features != first), "features must not be constant");
    }

    #[test]
    fn scene_geometry_differs() {
        let a = build_grid(SceneId::Mic, 40);
        let b = build_grid(SceneId::Ship, 40);
        assert_ne!(a.occupied_count(), b.occupied_count());
    }

    #[test]
    fn paper_grid_sides() {
        assert_eq!(SceneId::Ship.spec().paper_grid_side, 160);
        assert_eq!(SceneId::Mic.spec().paper_grid_side, 128);
    }

    #[test]
    fn camera_orbits_scene() {
        let cam = default_camera(32, 32, 0, 8);
        // Camera outside the AABB looking inward.
        assert!(!scene_aabb().contains(cam.pose.position));
        let ray = cam.ray_for_pixel(16, 16);
        assert!(scene_aabb().intersect(&ray).is_some());
    }

    #[test]
    fn sdf_primitives_sane() {
        // Sphere: negative inside, positive outside, zero on surface.
        assert!(sd_sphere(Vec3::ZERO, Vec3::ZERO, 1.0) < 0.0);
        assert!(sd_sphere(Vec3::new(2.0, 0.0, 0.0), Vec3::ZERO, 1.0) > 0.0);
        assert!(sd_sphere(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO, 1.0).abs() < 1e-6);
        // Box.
        assert!(sd_box(Vec3::ZERO, Vec3::ZERO, Vec3::splat(0.5)) < 0.0);
        assert!(sd_box(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO, Vec3::splat(0.5)) > 0.0);
        // Cylinder.
        assert!(sd_cylinder_y(Vec3::ZERO, Vec3::ZERO, 0.5, 0.5) < 0.0);
        assert!(sd_cylinder_y(Vec3::new(0.0, 2.0, 0.0), Vec3::ZERO, 0.5, 0.5) > 0.0);
        // Torus: center of the tube is on the ring.
        assert!(sd_torus_y(Vec3::new(0.5, 0.0, 0.0), Vec3::ZERO, 0.5, 0.1) < 0.0);
    }

    #[test]
    fn noise_deterministic_and_bounded() {
        let p = Vec3::new(0.3, -0.2, 0.7);
        let a = hash_noise(p, 42);
        assert_eq!(a, hash_noise(p, 42));
        assert_ne!(a, hash_noise(p, 43));
        assert!((-0.5..=0.5).contains(&a));
    }
}
