//! The [`VoxelSource`] abstraction: anything the renderer can fetch voxel
//! data from.
//!
//! The reference renderer is generic over its data source so that the same
//! rendering code measures the dense ground truth, the VQRF gold decode, and
//! SpNeRF's online decoder (with or without bitmap masking, implemented in
//! `spnerf-core`). PSNR differences between variants are then attributable
//! purely to the data path, mirroring the paper's Fig. 6(b) methodology.

use spnerf_voxel::coord::{GridCoord, GridDims};
use spnerf_voxel::grid::DenseGrid;
use spnerf_voxel::vqrf::VqrfModel;
use spnerf_voxel::FEATURE_DIM;

/// Density and color features of one occupied voxel vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoxelData {
    /// Volume density.
    pub density: f32,
    /// Color feature vector.
    pub features: [f32; FEATURE_DIM],
}

/// A source of voxel data addressed by integer vertex coordinate.
pub trait VoxelSource {
    /// Grid dimensions this source covers.
    fn dims(&self) -> GridDims;

    /// Fetches the voxel at `c`; `None` when the vertex is empty or out of
    /// bounds.
    fn fetch(&self, c: GridCoord) -> Option<VoxelData>;
}

impl VoxelSource for DenseGrid {
    fn dims(&self) -> GridDims {
        self.dims()
    }

    fn fetch(&self, c: GridCoord) -> Option<VoxelData> {
        if !self.dims().contains(c) {
            return None;
        }
        let d = self.density(c);
        if d <= 0.0 {
            return None;
        }
        let mut features = [0.0f32; FEATURE_DIM];
        features.copy_from_slice(self.features(c));
        Some(VoxelData { density: d, features })
    }
}

impl VoxelSource for VqrfModel {
    fn dims(&self) -> GridDims {
        self.dims()
    }

    fn fetch(&self, c: GridCoord) -> Option<VoxelData> {
        self.decode_at(c).map(|(density, features)| VoxelData { density, features })
    }
}

impl<T: VoxelSource + ?Sized> VoxelSource for &T {
    fn dims(&self) -> GridDims {
        (**self).dims()
    }

    fn fetch(&self, c: GridCoord) -> Option<VoxelData> {
        (**self).fetch(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnerf_voxel::vqrf::VqrfConfig;

    #[test]
    fn dense_grid_source_skips_empty() {
        let mut g = DenseGrid::zeros(GridDims::cube(4));
        g.set_density(GridCoord::new(1, 1, 1), 0.5);
        assert!(g.fetch(GridCoord::new(1, 1, 1)).is_some());
        assert!(g.fetch(GridCoord::new(0, 0, 0)).is_none());
        assert!(g.fetch(GridCoord::new(9, 9, 9)).is_none());
    }

    #[test]
    fn vqrf_source_matches_decode() {
        let mut g = DenseGrid::zeros(GridDims::cube(6));
        g.set_density(GridCoord::new(2, 3, 4), 0.7);
        g.set_features(GridCoord::new(2, 3, 4), &[0.4; FEATURE_DIM]);
        let m = VqrfModel::build(&g, &VqrfConfig { codebook_size: 2, ..Default::default() });
        let got = m.fetch(GridCoord::new(2, 3, 4)).unwrap();
        let (d, f) = m.decode_at(GridCoord::new(2, 3, 4)).unwrap();
        assert_eq!(got.density, d);
        assert_eq!(got.features, f);
    }

    #[test]
    fn sources_are_thread_shareable() {
        // Compile-time audit: every VoxelSource the tile engine renders must
        // stay `Sync` (no interior mutability), or parallel rendering breaks.
        fn assert_sync<T: VoxelSource + Sync>() {}
        assert_sync::<DenseGrid>();
        assert_sync::<VqrfModel>();
        assert_sync::<&DenseGrid>();
    }

    #[test]
    fn reference_impl_delegates() {
        let mut g = DenseGrid::zeros(GridDims::cube(4));
        g.set_density(GridCoord::new(1, 1, 1), 0.5);
        let r: &DenseGrid = &g;
        assert_eq!(r.dims(), g.dims());
        assert_eq!(r.fetch(GridCoord::new(1, 1, 1)), g.fetch(GridCoord::new(1, 1, 1)));
    }
}
