//! The [`VoxelSource`] abstraction: anything the renderer can fetch voxel
//! data from.
//!
//! The reference renderer is generic over its data source so that the same
//! rendering code measures the dense ground truth, the VQRF gold decode, and
//! SpNeRF's online decoder (with or without bitmap masking, implemented in
//! `spnerf-core`). PSNR differences between variants are then attributable
//! purely to the data path, mirroring the paper's Fig. 6(b) methodology.

use std::sync::Arc;

use spnerf_voxel::bitmap::Bitmap;
use spnerf_voxel::coord::{GridCoord, GridDims};
use spnerf_voxel::grid::DenseGrid;
use spnerf_voxel::mip::OccupancyMip;
use spnerf_voxel::vqrf::VqrfModel;
use spnerf_voxel::FEATURE_DIM;

/// Density and color features of one occupied voxel vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoxelData {
    /// Volume density.
    pub density: f32,
    /// Color feature vector.
    pub features: [f32; FEATURE_DIM],
}

/// A source of voxel data addressed by integer vertex coordinate.
pub trait VoxelSource {
    /// Grid dimensions this source covers.
    fn dims(&self) -> GridDims;

    /// Fetches the voxel at `c`; `None` when the vertex is empty or out of
    /// bounds.
    fn fetch(&self, c: GridCoord) -> Option<VoxelData>;

    /// An occupancy pyramid over this source's support, if one is attached.
    ///
    /// The renderer's empty-space skipping
    /// ([`crate::renderer::SkipMode::Mip`]) consults this; `None` (the
    /// default) renders without skipping. **Safety contract:** every vertex
    /// where [`VoxelSource::fetch`] returns `Some` must be set in the
    /// pyramid's base bitmap — an over-approximation only costs skips, an
    /// under-approximation changes pixels. [`WithOccupancy::build`]
    /// constructs the exact support and therefore always satisfies it.
    fn occupancy_mip(&self) -> Option<&OccupancyMip> {
        None
    }
}

/// The exact support of a source: one bit per vertex where
/// [`VoxelSource::fetch`] returns `Some`.
///
/// For the dense ground truth this equals [`Bitmap::from_grid`]; for the
/// SpNeRF decoder it is the *decode* support (which differs from the pruned
/// bitmap in the unmasked ablation, where hash collisions add false
/// positives — exactly why skipping must be driven by each source's own
/// support rather than one shared bitmap).
pub fn support_bitmap<S: VoxelSource + ?Sized>(source: &S) -> Bitmap {
    let dims = source.dims();
    let mut bitmap = Bitmap::zeros(dims);
    for c in dims.iter() {
        if source.fetch(c).is_some() {
            bitmap.set(c, true);
        }
    }
    bitmap
}

impl VoxelSource for DenseGrid {
    fn dims(&self) -> GridDims {
        self.dims()
    }

    fn fetch(&self, c: GridCoord) -> Option<VoxelData> {
        if !self.dims().contains(c) {
            return None;
        }
        let d = self.density(c);
        if d <= 0.0 {
            return None;
        }
        let mut features = [0.0f32; FEATURE_DIM];
        features.copy_from_slice(self.features(c));
        Some(VoxelData { density: d, features })
    }
}

impl VoxelSource for spnerf_voxel::baked::BakedGrid {
    fn dims(&self) -> GridDims {
        self.dims()
    }

    /// Fetches the *packed* baked payload: diffuse RGB in channels `0..3`,
    /// the specular feature in channels `3..12`. Reusing the
    /// [`FEATURE_DIM`]-channel layout means trilinear interpolation, support
    /// bitmaps, and occupancy pyramids all work on baked grids unchanged —
    /// and because densities are copied verbatim by the bake pass, the
    /// baked support equals the source support exactly.
    fn fetch(&self, c: GridCoord) -> Option<VoxelData> {
        self.as_grid().fetch(c)
    }
}

impl VoxelSource for VqrfModel {
    fn dims(&self) -> GridDims {
        self.dims()
    }

    fn fetch(&self, c: GridCoord) -> Option<VoxelData> {
        self.decode_at(c).map(|(density, features)| VoxelData { density, features })
    }
}

impl<T: VoxelSource + ?Sized> VoxelSource for &T {
    fn dims(&self) -> GridDims {
        (**self).dims()
    }

    fn fetch(&self, c: GridCoord) -> Option<VoxelData> {
        (**self).fetch(c)
    }

    fn occupancy_mip(&self) -> Option<&OccupancyMip> {
        (**self).occupancy_mip()
    }
}

/// A [`VoxelSource`] with an occupancy pyramid attached, enabling
/// [`crate::renderer::SkipMode::Mip`] empty-space skipping.
///
/// The pyramid is reference-counted so one build serves every render (and
/// every worker thread) of the same source — the `Arc`-shared pattern the
/// pipeline facade uses for the grid and MLP.
///
/// # Examples
///
/// ```
/// use spnerf_render::source::{VoxelSource, WithOccupancy};
/// use spnerf_voxel::coord::{GridCoord, GridDims};
/// use spnerf_voxel::grid::DenseGrid;
///
/// let mut grid = DenseGrid::zeros(GridDims::cube(8));
/// grid.set_density(GridCoord::new(3, 3, 3), 0.5);
/// let skippable = WithOccupancy::build(&grid);
/// assert!(skippable.occupancy_mip().is_some());
/// assert_eq!(skippable.fetch(GridCoord::new(3, 3, 3)), grid.fetch(GridCoord::new(3, 3, 3)));
/// ```
#[derive(Debug, Clone)]
pub struct WithOccupancy<S> {
    source: S,
    mip: Arc<OccupancyMip>,
}

impl<S: VoxelSource> WithOccupancy<S> {
    /// Attaches a prebuilt pyramid to a source.
    ///
    /// The caller vouches for the [`VoxelSource::occupancy_mip`] safety
    /// contract: the pyramid's base bitmap must cover the source's support.
    ///
    /// # Panics
    ///
    /// Panics if the pyramid's dimensions differ from the source's.
    pub fn new(source: S, mip: Arc<OccupancyMip>) -> Self {
        assert_eq!(mip.dims(), source.dims(), "occupancy pyramid dimensions must match the source");
        Self { source, mip }
    }

    /// Scans the source's exact support ([`support_bitmap`]) and builds the
    /// full pyramid over it — always sound, for any source.
    pub fn build(source: S) -> Self {
        let mip = Arc::new(OccupancyMip::build(support_bitmap(&source)));
        Self { source, mip }
    }

    /// The wrapped source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// The attached pyramid (shareable with further wrappers).
    pub fn mip(&self) -> &Arc<OccupancyMip> {
        &self.mip
    }
}

impl<S: VoxelSource> VoxelSource for WithOccupancy<S> {
    fn dims(&self) -> GridDims {
        self.source.dims()
    }

    fn fetch(&self, c: GridCoord) -> Option<VoxelData> {
        self.source.fetch(c)
    }

    fn occupancy_mip(&self) -> Option<&OccupancyMip> {
        Some(&self.mip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnerf_voxel::vqrf::VqrfConfig;

    #[test]
    fn dense_grid_source_skips_empty() {
        let mut g = DenseGrid::zeros(GridDims::cube(4));
        g.set_density(GridCoord::new(1, 1, 1), 0.5);
        assert!(g.fetch(GridCoord::new(1, 1, 1)).is_some());
        assert!(g.fetch(GridCoord::new(0, 0, 0)).is_none());
        assert!(g.fetch(GridCoord::new(9, 9, 9)).is_none());
    }

    #[test]
    fn vqrf_source_matches_decode() {
        let mut g = DenseGrid::zeros(GridDims::cube(6));
        g.set_density(GridCoord::new(2, 3, 4), 0.7);
        g.set_features(GridCoord::new(2, 3, 4), &[0.4; FEATURE_DIM]);
        let m = VqrfModel::build(&g, &VqrfConfig { codebook_size: 2, ..Default::default() });
        let got = m.fetch(GridCoord::new(2, 3, 4)).unwrap();
        let (d, f) = m.decode_at(GridCoord::new(2, 3, 4)).unwrap();
        assert_eq!(got.density, d);
        assert_eq!(got.features, f);
    }

    #[test]
    fn sources_are_thread_shareable() {
        // Compile-time audit: every VoxelSource the tile engine renders must
        // stay `Sync` (no interior mutability), or parallel rendering breaks.
        fn assert_sync<T: VoxelSource + Sync>() {}
        assert_sync::<DenseGrid>();
        assert_sync::<VqrfModel>();
        assert_sync::<&DenseGrid>();
        assert_sync::<WithOccupancy<&DenseGrid>>();
        assert_sync::<spnerf_voxel::baked::BakedGrid>();
        assert_sync::<WithOccupancy<&spnerf_voxel::baked::BakedGrid>>();
    }

    #[test]
    fn baked_grid_source_delegates_to_the_packed_view() {
        use spnerf_voxel::baked::{BakedGrid, SPEC_DIM};
        let mut baked = BakedGrid::zeros(GridDims::cube(4));
        baked.set_voxel(GridCoord::new(1, 2, 3), 0.8, [0.9, 0.5, 0.1], [0.2; SPEC_DIM]);
        let data = baked.fetch(GridCoord::new(1, 2, 3)).expect("occupied vertex");
        assert_eq!(data.density, 0.8);
        assert_eq!(&data.features[..3], &[0.9, 0.5, 0.1]);
        assert_eq!(&data.features[3..], &[0.2; SPEC_DIM]);
        assert!(baked.fetch(GridCoord::new(0, 0, 0)).is_none());
        assert_eq!(support_bitmap(&baked), support_bitmap(baked.as_grid()));
    }

    #[test]
    fn support_bitmap_matches_fetch() {
        let mut g = DenseGrid::zeros(GridDims::cube(5));
        g.set_density(GridCoord::new(1, 2, 3), 0.5);
        g.set_density(GridCoord::new(4, 4, 4), 0.25);
        g.set_density(GridCoord::new(0, 0, 0), -1.0); // fetch() = None
        let b = support_bitmap(&g);
        assert_eq!(b.count_ones(), 2);
        for c in g.dims().iter() {
            assert_eq!(b.get(c), g.fetch(c).is_some(), "support mismatch at {c}");
        }
    }

    #[test]
    fn with_occupancy_delegates_and_exposes_the_mip() {
        let mut g = DenseGrid::zeros(GridDims::cube(6));
        g.set_density(GridCoord::new(2, 2, 2), 0.9);
        let w = WithOccupancy::build(&g);
        assert_eq!(w.dims(), g.dims());
        assert_eq!(w.fetch(GridCoord::new(2, 2, 2)), g.fetch(GridCoord::new(2, 2, 2)));
        let mip = w.occupancy_mip().expect("pyramid attached");
        assert_eq!(mip.base().count_ones(), 1);
        // The reference forwarding impl must forward the pyramid too, or
        // skipping silently turns off behind `&`-indirection.
        let r = &w;
        assert!(VoxelSource::occupancy_mip(&r).is_some());
        // Bare sources carry no pyramid.
        assert!(g.occupancy_mip().is_none());
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn mismatched_mip_dims_rejected() {
        use spnerf_voxel::bitmap::Bitmap;
        use spnerf_voxel::mip::OccupancyMip;
        let g = DenseGrid::zeros(GridDims::cube(4));
        let mip = Arc::new(OccupancyMip::build(Bitmap::zeros(GridDims::cube(8))));
        let _ = WithOccupancy::new(&g, mip);
    }

    #[test]
    fn reference_impl_delegates() {
        let mut g = DenseGrid::zeros(GridDims::cube(4));
        g.set_density(GridCoord::new(1, 1, 1), 0.5);
        let r: &DenseGrid = &g;
        assert_eq!(r.dims(), g.dims());
        assert_eq!(r.fetch(GridCoord::new(1, 1, 1)), g.fetch(GridCoord::new(1, 1, 1)));
    }
}
