//! Temporal camera-path workloads: deterministic trajectories and
//! frame-to-frame radiance reuse (Cicero-style forward warping).
//!
//! Everything else in this crate renders independent still frames. Video —
//! the workload SpNeRF's edge-device target actually serves — renders
//! *paths*: a sequence of nearby cameras whose frames are largely
//! redundant. This module makes paths first class:
//!
//! * [`PathKind`] / [`TrajectorySpec`] — deterministic camera paths
//!   (orbit, dolly, handheld jitter from the seeded rand shim) expanded
//!   into [`PinholeCamera`] sequences;
//! * [`ReuseMode`] — the frame-to-frame reuse policy.
//!   [`ReuseMode::Off`] renders every frame through the ordinary tile
//!   engine and is **bitwise-identical** to a loop of independent
//!   [`crate::renderer::render_view_shaded`] calls.
//!   [`ReuseMode::Warp`] forward-warps the previous frame's radiance along
//!   the camera delta at its marched depth and re-marches only the rays
//!   that need it (disoccluded pixels, depth edges, and a rotating
//!   validation subset), carrying each pixel's empty-space
//!   [`SkipCache`] across frames;
//! * [`advance_frame`] / [`render_trajectory_shaded`] — the stateful
//!   per-frame driver and the one-shot path renderer.
//!
//! # Reuse semantics and determinism
//!
//! The warp pass is an approximation — warped pixels carry last frame's
//! radiance reprojected to this frame's grid — but a *deterministic* one:
//!
//! * the splat loop runs serially over the previous frame's pixels in
//!   row-major order with a strict nearest-depth-wins test, so conflicts
//!   resolve identically on every run;
//! * re-marched rays go through the same pure
//!   [`crate::renderer::trace_ray_traced`] kernel as still frames, and the
//!   per-frame merge is in pixel order — so a temporal frame is
//!   bitwise-identical across thread counts, tile sizes, and packet sizes
//!   (the warp path schedules rays itself and ignores the latter two);
//! * background is reused too: rays that shaded nothing are splatted at
//!   [`WarpConfig::far_depth`], so an empty sky never forces a re-march.
//!
//! Error is bounded by construction, not hope: every pixel whose warped
//! 3×3 depth neighborhood spans more than
//! [`WarpConfig::depth_edge_threshold`] (silhouettes — where disocclusion
//! happens) is re-marched, and a rotating `1/validation_stride` subset of
//! all pixels is re-marched each frame so no pixel goes more than
//! `validation_stride` frames without ground truth.
//! [`TemporalFrame::validation_error`] reports the largest warped-vs-
//! re-marched discrepancy actually observed.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::camera::{PinholeCamera, Pose};
use crate::engine::resolve_parallelism;
use crate::image::ImageBuffer;
use crate::mlp::MlpScratch;
use crate::ray::Aabb;
use crate::renderer::{
    trace_ray_traced, RenderConfig, RenderFrame, RenderStats, Shader, SkipCache, TracedRay,
};
use crate::source::VoxelSource;
use crate::vec3::Vec3;

/// The camera-path families, all deterministic functions of their fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathKind {
    /// Circular orbit around the origin (the Synthetic-NeRF test motion,
    /// restricted to a configurable azimuth sweep so successive frames
    /// stay warpable).
    Orbit {
        /// Orbit radius.
        radius: f32,
        /// Elevation angle above the equator, radians.
        elevation: f32,
        /// Azimuth of frame 0, radians.
        start_azimuth: f32,
        /// Total azimuth swept over the whole path, radians.
        sweep: f32,
    },
    /// Straight-line push from one eye position to another, always looking
    /// at a fixed target.
    Dolly {
        /// Eye position of frame 0.
        from: Vec3,
        /// Eye position of the last frame.
        to: Vec3,
        /// Look-at target held across the path.
        target: Vec3,
    },
    /// Handheld jitter: small random eye offsets around a base position,
    /// drawn from the seeded rand shim (equal seeds give equal paths, bit
    /// for bit).
    Jitter {
        /// Nominal eye position.
        base: Vec3,
        /// Look-at target held across the path.
        target: Vec3,
        /// Maximum per-axis offset from `base`.
        amplitude: f32,
        /// RNG seed for the offset stream.
        seed: u64,
    },
}

/// A complete trajectory description: path kind, frame count, and the
/// (constant) camera intrinsics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectorySpec {
    /// The camera path.
    pub kind: PathKind,
    /// Number of frames rendered along the path.
    pub frames: usize,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Focal length in pixel units.
    pub focal: f32,
}

impl TrajectorySpec {
    /// A spec with the convention focal length `width · 1.1` (the same
    /// intrinsics [`crate::scene::default_camera`] uses).
    pub fn new(kind: PathKind, frames: usize, width: u32, height: u32) -> Self {
        Self { kind, frames, width, height, focal: width as f32 * 1.1 }
    }

    /// The standard test orbit: radius 2.8 at elevation 0.45 (the
    /// [`crate::scene::default_camera`] ring), advancing a fixed 0.045 rad
    /// of azimuth per frame — with the convention focal length that is
    /// ~5% of the image width of motion per frame, enough to move every
    /// silhouette yet small enough that successive frames warp well at
    /// any frame count.
    pub fn orbit(frames: usize, width: u32, height: u32) -> Self {
        let sweep = 0.045 * frames.saturating_sub(1) as f32;
        Self::new(
            PathKind::Orbit { radius: 2.8, elevation: 0.45, start_azimuth: 0.35, sweep },
            frames,
            width,
            height,
        )
    }

    /// A standard dolly push along the frame-0 orbit viewing axis, from
    /// radius 2.8 in to radius 2.1.
    pub fn dolly(frames: usize, width: u32, height: u32) -> Self {
        let dir = orbit_eye(2.8, 0.45, 0.35).normalized();
        Self::new(
            PathKind::Dolly { from: dir * 2.8, to: dir * 2.1, target: Vec3::ZERO },
            frames,
            width,
            height,
        )
    }

    /// A standard handheld-jitter path around the frame-0 orbit eye.
    pub fn jitter(frames: usize, width: u32, height: u32, seed: u64) -> Self {
        Self::new(
            PathKind::Jitter {
                base: orbit_eye(2.8, 0.45, 0.35),
                target: Vec3::ZERO,
                amplitude: 0.04,
                seed,
            },
            frames,
            width,
            height,
        )
    }

    /// Expands the spec into its camera sequence. Pure: equal specs give
    /// equal cameras, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero, a dimension is zero, or a pose is
    /// degenerate (eye on the target).
    pub fn cameras(&self) -> Vec<PinholeCamera> {
        assert!(self.frames > 0, "a trajectory needs at least one frame");
        let denom = (self.frames - 1).max(1) as f32;
        let up = Vec3::new(0.0, 1.0, 0.0);
        let camera = |pose: Pose| PinholeCamera {
            width: self.width,
            height: self.height,
            focal: self.focal,
            pose,
        };
        match self.kind {
            PathKind::Orbit { radius, elevation, start_azimuth, sweep } => (0..self.frames)
                .map(|i| {
                    let az = start_azimuth + sweep * i as f32 / denom;
                    camera(Pose::look_at(orbit_eye(radius, elevation, az), Vec3::ZERO, up))
                })
                .collect(),
            PathKind::Dolly { from, to, target } => (0..self.frames)
                .map(|i| {
                    let eye = from + (to - from) * (i as f32 / denom);
                    camera(Pose::look_at(eye, target, up))
                })
                .collect(),
            PathKind::Jitter { base, target, amplitude, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..self.frames)
                    .map(|_| {
                        let offset = Vec3::new(
                            rng.gen_range(-1.0f32..1.0),
                            rng.gen_range(-1.0f32..1.0),
                            rng.gen_range(-1.0f32..1.0),
                        ) * amplitude;
                        camera(Pose::look_at(base + offset, target, up))
                    })
                    .collect()
            }
        }
    }
}

/// Eye position on the standard orbit ring.
fn orbit_eye(radius: f32, elevation: f32, azimuth: f32) -> Vec3 {
    Vec3::new(
        radius * elevation.cos() * azimuth.cos(),
        radius * elevation.sin(),
        radius * elevation.cos() * azimuth.sin(),
    )
}

/// Tuning knobs of the forward-warp reuse path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarpConfig {
    /// Every pixel `j` with `j % validation_stride == frame % stride` is
    /// re-marched, so each pixel is refreshed from ground truth at least
    /// once per `validation_stride` frames. `1` re-marches everything
    /// (warp becomes full rendering with extra bookkeeping).
    pub validation_stride: usize,
    /// Re-march every pixel whose warped 3×3 depth neighborhood spans more
    /// than this (world units): depth discontinuities are where occlusion
    /// relationships change, so the silhouette band is never trusted.
    pub depth_edge_threshold: f32,
    /// Re-march every pixel whose warped 3×3 neighborhood spans more than
    /// this per-channel color contrast: a warp is only sub-pixel accurate,
    /// so across a sharp texture gradient the reprojected color can be off
    /// by up to the local contrast. Smooth regions — where a sub-pixel
    /// error is invisible — stay warped.
    pub color_edge_threshold: f32,
    /// Depth at which background pixels (no shaded sample) are splatted so
    /// an empty sky warps instead of forcing a re-march. Must be far
    /// beyond the scene (the standard scenes fit in a radius-2.8 orbit).
    pub far_depth: f32,
    /// Documented accuracy contract: the largest per-channel deviation a
    /// warped pixel may show against a full re-march. The renderer does
    /// not enforce it (it *measures* [`TemporalFrame::validation_error`]);
    /// the property tests assert it over the whole corpus.
    pub tolerance: f32,
}

impl Default for WarpConfig {
    fn default() -> Self {
        Self {
            validation_stride: 16,
            depth_edge_threshold: 0.5,
            color_edge_threshold: 0.2,
            far_depth: 100.0,
            tolerance: 0.25,
        }
    }
}

/// Frame-to-frame reuse policy of a trajectory render.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ReuseMode {
    /// No reuse: every frame renders through the ordinary tile engine,
    /// bitwise-identical to independent per-frame rendering (the exactness
    /// anchor, and the default).
    #[default]
    Off,
    /// Forward-warp the previous frame and re-march only disoccluded,
    /// depth-edge, and validation rays.
    Warp(WarpConfig),
}

impl ReuseMode {
    /// [`ReuseMode::Warp`] with the default [`WarpConfig`].
    pub fn warp() -> Self {
        ReuseMode::Warp(WarpConfig::default())
    }

    /// Whether this mode reuses anything at all.
    pub fn is_on(&self) -> bool {
        matches!(self, ReuseMode::Warp(_))
    }

    /// Canonical CLI name (`off` / `warp`).
    pub fn name(&self) -> &'static str {
        match self {
            ReuseMode::Off => "off",
            ReuseMode::Warp(_) => "warp",
        }
    }
}

/// The reusable state a frame leaves behind for its successor: the camera
/// it was rendered from, its radiance and depth buffers, and each pixel's
/// final empty-space cache handle.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseState {
    camera: PinholeCamera,
    colors: Vec<Vec3>,
    depths: Vec<f32>,
    hints: Vec<SkipCache>,
}

impl ReuseState {
    /// The camera the buffered frame was rendered from.
    pub fn camera(&self) -> &PinholeCamera {
        &self.camera
    }
}

/// The forward-warp kernel: splats every pixel of the buffered previous
/// frame into the new view at its marched depth, returning the warped
/// color and depth buffers (`f32::INFINITY` depth = hole).
///
/// Serial, row-major, nearest-depth-wins with a strict `<` (ties keep the
/// first, row-major-earliest, writer) — the determinism anchor of the
/// reuse path. The primary splat rounds to the nearest target pixel; a
/// secondary pass re-splats every source pixel over its 2×2 continuous
/// footprint and fills only the pixels the primary pass left empty, so
/// rounding pinholes (two sources landing on one target under rotation)
/// don't masquerade as disocclusions and force needless re-marching.
pub fn warp_splat(
    prev: &ReuseState,
    camera: &PinholeCamera,
    wcfg: &WarpConfig,
) -> (Vec<Vec3>, Vec<f32>) {
    let (w, h) = (camera.width as usize, camera.height as usize);
    let n = w * h;
    let mut colors = vec![Vec3::ZERO; n];
    let mut depths = vec![f32::INFINITY; n];
    let mut fill_colors = vec![Vec3::ZERO; n];
    let mut fill_depths = vec![f32::INFINITY; n];
    for (i, (&color, &depth)) in prev.colors.iter().zip(&prev.depths).enumerate() {
        let (px, py) = ((i % w) as u32, (i / w) as u32);
        let t = if depth.is_finite() { depth } else { wcfg.far_depth };
        let world = prev.camera.ray_for_pixel(px, py).at(t);
        let v = world - camera.pose.position;
        let z = v.dot(camera.pose.forward);
        if z <= 1e-3 {
            continue;
        }
        let txf = camera.focal * v.dot(camera.pose.right) / z + w as f32 * 0.5 - 0.5;
        let tyf = h as f32 * 0.5 - camera.focal * v.dot(camera.pose.up) / z - 0.5;
        let nd = v.length();
        let (tx, ty) = (txf.round(), tyf.round());
        if tx >= 0.0 && ty >= 0.0 && tx < w as f32 && ty < h as f32 {
            let j = ty as usize * w + tx as usize;
            if nd < depths[j] {
                depths[j] = nd;
                colors[j] = color;
            }
        }
        for ty in [tyf.floor(), tyf.floor() + 1.0] {
            for tx in [txf.floor(), txf.floor() + 1.0] {
                if tx < 0.0 || ty < 0.0 || tx >= w as f32 || ty >= h as f32 {
                    continue;
                }
                let j = ty as usize * w + tx as usize;
                if nd < fill_depths[j] {
                    fill_depths[j] = nd;
                    fill_colors[j] = color;
                }
            }
        }
    }
    for j in 0..n {
        if !depths[j].is_finite() && fill_depths[j].is_finite() {
            depths[j] = fill_depths[j];
            colors[j] = fill_colors[j];
        }
    }
    (colors, depths)
}

/// The disocclusion-test kernel: decides which rays of a warped buffer
/// cannot be trusted and must be re-marched. Returns
/// `(remarch, holes, validation)` per-pixel masks.
///
/// A ray re-marches when it is a hole even the footprint pass never
/// covered (revealed area), part of the rotating validation subset
/// (`j % stride == frame_idx % stride`), or a trailing-edge ghost: a near
/// pixel with a markedly farther (or color-contrasting) 3×3 neighbor,
/// i.e. a foreground splat that may be covering freshly revealed
/// background. Far pixels beside near ones are *not* re-marched — the
/// warp can only err there by showing background where background
/// belongs.
pub fn disocclusion_mask(
    colors: &[Vec3],
    depths: &[f32],
    w: usize,
    h: usize,
    wcfg: &WarpConfig,
    frame_idx: usize,
) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
    let n = w * h;
    let stride = wcfg.validation_stride.max(1);
    let mut remarch = vec![false; n];
    let mut holes = vec![false; n];
    let mut validation = vec![false; n];
    for (j, flag) in remarch.iter_mut().enumerate() {
        if !depths[j].is_finite() {
            *flag = true;
            holes[j] = true;
        } else if j % stride == frame_idx % stride {
            *flag = true;
            validation[j] = true;
        }
    }
    for py in 0..h {
        for px in 0..w {
            let j = py * w + px;
            if holes[j] {
                continue;
            }
            let d = depths[j];
            let c = colors[j];
            'neighbors: for dy in py.saturating_sub(1)..=(py + 1).min(h - 1) {
                for dx in px.saturating_sub(1)..=(px + 1).min(w - 1) {
                    let k = dy * w + dx;
                    let dn = depths[k];
                    let dc = colors[k] - c;
                    if (dn.is_finite() && dn - d > wcfg.depth_edge_threshold)
                        || dc.x.abs().max(dc.y.abs()).max(dc.z.abs()) > wcfg.color_edge_threshold
                    {
                        remarch[j] = true;
                        validation[j] = false;
                        break 'neighbors;
                    }
                }
            }
        }
    }
    (remarch, holes, validation)
}

/// One rendered frame of a trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalFrame {
    /// The frame's image.
    pub image: ImageBuffer,
    /// The frame's workload statistics. On warped frames
    /// [`RenderStats::rays`] counts *all* pixels while only
    /// [`RenderStats::rays_remarched`] of them marched, so
    /// `samples_marched / rays` is the amortized per-ray cost the reuse
    /// bought.
    pub stats: RenderStats,
    /// Largest per-channel |warped − re-marched| observed at pixels that
    /// were both warped and re-marched this frame (validation rays);
    /// `0.0` on frames without reuse. A diagnostic, deliberately kept out
    /// of [`RenderStats`] (which stays `Eq`).
    pub validation_error: f32,
}

/// Renders one frame of a trajectory, consuming and replacing the reuse
/// state in `state`.
///
/// * [`ReuseMode::Off`] — delegates to the ordinary tile engine
///   ([`crate::engine::render_view_tiled_shaded`]); the result is
///   bitwise-identical to an independent still render and `state` is
///   cleared.
/// * [`ReuseMode::Warp`] — with no usable state (first frame, or a camera
///   shape change) renders every ray through the traced kernel (the image
///   is still bitwise-identical to a still render) and records reuse
///   state; otherwise forward-warps the previous frame and re-marches
///   only the rays that need it.
///
/// `frame_idx` rotates the validation phase; callers rendering a path pass
/// the frame's index along it.
///
/// # Panics
///
/// Panics if `cfg.samples_per_ray` or `cfg.tile_size` is zero, or if a
/// worker thread panics.
#[allow(clippy::too_many_arguments)] // the low-level frame step: every knob is load-bearing
pub fn advance_frame<S: VoxelSource + Sync>(
    source: &S,
    shader: Shader<'_>,
    camera: &PinholeCamera,
    aabb: &Aabb,
    cfg: &RenderConfig,
    mode: ReuseMode,
    frame_idx: usize,
    state: &mut Option<ReuseState>,
) -> TemporalFrame {
    let wcfg = match mode {
        ReuseMode::Off => {
            *state = None;
            let (image, stats) =
                crate::engine::render_view_tiled_shaded(source, shader, camera, aabb, cfg);
            return TemporalFrame { image, stats, validation_error: 0.0 };
        }
        ReuseMode::Warp(wcfg) => wcfg,
    };
    let compatible = state.as_ref().is_some_and(|s| {
        s.camera.width == camera.width
            && s.camera.height == camera.height
            && s.camera.focal == camera.focal
    });
    let frame = RenderFrame::new(source.dims(), aabb, cfg);
    if !compatible {
        *state = None;
        let n = camera.ray_count();
        let jobs: Vec<(usize, SkipCache)> = (0..n).map(|j| (j, SkipCache::EMPTY)).collect();
        let traced = trace_pixels(source, shader, camera, &frame, cfg, &jobs);
        let mut stats = RenderStats::default();
        let mut colors = Vec::with_capacity(n);
        let mut depths = Vec::with_capacity(n);
        let mut hints = Vec::with_capacity(n);
        for ray in &traced {
            stats.record_ray(&ray.stats);
            colors.push(ray.color);
            depths.push(ray.depth);
            hints.push(ray.skip_cache);
        }
        stats.rays_remarched = n;
        let image = image_from_colors(camera, &colors);
        *state = Some(ReuseState { camera: *camera, colors, depths, hints });
        return TemporalFrame { image, stats, validation_error: 0.0 };
    }

    let prev = state.take().expect("compatible implies state");
    let (w, h) = (camera.width as usize, camera.height as usize);
    let n = w * h;

    let (mut colors, mut depths) = warp_splat(&prev, camera, &wcfg);
    let (remarch, holes, validation) = disocclusion_mask(&colors, &depths, w, h, &wcfg, frame_idx);

    if std::env::var("SPNERF_TEMPORAL_DEBUG").is_ok() {
        let nh = holes.iter().filter(|&&x| x).count();
        let nv = validation.iter().filter(|&&x| x).count();
        let ne = remarch.iter().filter(|&&x| x).count() - nh - nv;
        eprintln!("frame {frame_idx}: holes={nh} validation={nv} edges={ne} total={n}");
    }

    // Re-march pass: only the selected rays, seeded with their pixel's
    // previous-frame empty-space cache.
    let jobs: Vec<(usize, SkipCache)> =
        (0..n).filter(|&j| remarch[j]).map(|j| (j, prev.hints[j])).collect();
    let traced = trace_pixels(source, shader, camera, &frame, cfg, &jobs);

    let mut hints = prev.hints;
    let mut stats = RenderStats::default();
    let mut validation_error = 0.0f32;
    for (&(j, _), ray) in jobs.iter().zip(&traced) {
        if validation[j] {
            let d = ray.color - colors[j];
            validation_error = validation_error.max(d.x.abs()).max(d.y.abs()).max(d.z.abs());
        }
        colors[j] = ray.color;
        depths[j] = ray.depth;
        hints[j] = ray.skip_cache;
        stats.record_ray(&ray.stats);
    }
    stats.rays_remarched = jobs.len();
    stats.rays_warped = n - jobs.len();
    stats.rays = n;

    let image = image_from_colors(camera, &colors);
    *state = Some(ReuseState { camera: *camera, colors, depths, hints });
    TemporalFrame { image, stats, validation_error }
}

/// Renders a whole camera path, threading reuse state frame to frame.
///
/// With [`ReuseMode::Off`] the result is bitwise-identical to calling
/// [`crate::renderer::render_view_shaded`] once per camera.
///
/// # Panics
///
/// Panics if `cfg.samples_per_ray` or `cfg.tile_size` is zero, or if a
/// worker thread panics.
pub fn render_trajectory_shaded<S: VoxelSource + Sync>(
    source: &S,
    shader: Shader<'_>,
    cameras: &[PinholeCamera],
    aabb: &Aabb,
    cfg: &RenderConfig,
    mode: ReuseMode,
) -> Vec<TemporalFrame> {
    let mut state = None;
    cameras
        .iter()
        .enumerate()
        .map(|(i, camera)| advance_frame(source, shader, camera, aabb, cfg, mode, i, &mut state))
        .collect()
}

/// Builds an image from a row-major color buffer.
fn image_from_colors(camera: &PinholeCamera, colors: &[Vec3]) -> ImageBuffer {
    let mut image = ImageBuffer::new(camera.width, camera.height);
    for (j, &c) in colors.iter().enumerate() {
        image.set(j as u32 % camera.width, j as u32 / camera.width, c);
    }
    image
}

/// Pixels re-marched per scheduling chunk; chunk boundaries only move work
/// between workers, never change any per-ray result.
const REMARCH_CHUNK: usize = 128;

/// Traces the listed pixels (each with its own [`SkipCache`] seed),
/// returning results in job order.
///
/// Parallelism mirrors the tile engine: workers race an atomic chunk
/// cursor, and results are merged back in chunk index order. Since every
/// job is a pure per-ray computation and the per-frame statistics are sums
/// of naturals, the output is bitwise-identical at every worker count.
fn trace_pixels<S: VoxelSource + Sync>(
    source: &S,
    shader: Shader<'_>,
    camera: &PinholeCamera,
    frame: &RenderFrame,
    cfg: &RenderConfig,
    jobs: &[(usize, SkipCache)],
) -> Vec<TracedRay> {
    let trace_chunk = |chunk: &[(usize, SkipCache)], scratch: &mut MlpScratch| -> Vec<TracedRay> {
        chunk
            .iter()
            .map(|&(j, seed)| {
                let (px, py) = (j as u32 % camera.width, j as u32 / camera.width);
                let ray = camera.ray_for_pixel(px, py);
                trace_ray_traced(source, shader, frame, ray, cfg, scratch, seed)
            })
            .collect()
    };
    let n_chunks = jobs.len().div_ceil(REMARCH_CHUNK);
    let workers = resolve_parallelism(cfg.parallelism).clamp(1, n_chunks.max(1));
    if workers == 1 {
        let mut scratch = MlpScratch::new();
        return trace_chunk(jobs, &mut scratch);
    }
    let next = AtomicUsize::new(0);
    let done = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut scratch = MlpScratch::new();
                    let mut out = Vec::new();
                    loop {
                        let ci = next.fetch_add(1, Ordering::Relaxed);
                        if ci >= n_chunks {
                            break out;
                        }
                        let chunk =
                            &jobs[ci * REMARCH_CHUNK..jobs.len().min((ci + 1) * REMARCH_CHUNK)];
                        out.push((ci, trace_chunk(chunk, &mut scratch)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("re-march worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut slots: Vec<Option<Vec<TracedRay>>> = (0..n_chunks).map(|_| None).collect();
    for (ci, chunk) in done {
        slots[ci] = Some(chunk);
    }
    slots.into_iter().flat_map(|c| c.expect("every chunk traced exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Mlp;
    use crate::renderer::{render_view_shaded, SkipMode};
    use crate::scene::{build_grid, scene_aabb, SceneId};

    fn tiny_cfg() -> RenderConfig {
        RenderConfig { samples_per_ray: 32, ..Default::default() }
    }

    #[test]
    fn specs_expand_deterministically() {
        for spec in [
            TrajectorySpec::orbit(6, 12, 10),
            TrajectorySpec::dolly(6, 12, 10),
            TrajectorySpec::jitter(6, 12, 10, 9),
        ] {
            let a = spec.cameras();
            let b = spec.cameras();
            assert_eq!(a.len(), 6);
            assert_eq!(a, b, "{spec:?} must expand identically every time");
            for cam in &a {
                assert_eq!((cam.width, cam.height), (12, 10));
                assert!(cam.pose.position.length() > 1.9, "eye stays outside the scene box");
            }
            // The path must actually move (frame-to-frame camera deltas).
            assert_ne!(a[0].pose.position, a[5].pose.position);
        }
        // Different jitter seeds give different paths.
        let j1 = TrajectorySpec::jitter(4, 8, 8, 1).cameras();
        let j2 = TrajectorySpec::jitter(4, 8, 8, 2).cameras();
        assert_ne!(j1, j2);
    }

    #[test]
    fn off_mode_is_bitwise_per_frame_rendering() {
        let grid = build_grid(SceneId::Lego, 24);
        let mlp = Mlp::random(0);
        let shader = Shader::PerSample(&mlp);
        let cfg = tiny_cfg();
        let cams = TrajectorySpec::orbit(3, 10, 10).cameras();
        let frames =
            render_trajectory_shaded(&grid, shader, &cams, &scene_aabb(), &cfg, ReuseMode::Off);
        for (frame, cam) in frames.iter().zip(&cams) {
            let (img, stats) = render_view_shaded(&grid, shader, cam, &scene_aabb(), &cfg);
            assert_eq!(frame.image, img);
            assert_eq!(frame.stats, stats);
            assert_eq!(frame.stats.rays_warped, 0);
            assert_eq!(frame.stats.rays_remarched, 0);
        }
    }

    #[test]
    fn warp_frame_zero_matches_a_still_render() {
        let grid = build_grid(SceneId::Mic, 24);
        let mlp = Mlp::random(1);
        let shader = Shader::PerSample(&mlp);
        let cfg = tiny_cfg();
        let cam = TrajectorySpec::orbit(3, 12, 12).cameras()[0];
        let mut state = None;
        let frame = advance_frame(
            &grid,
            shader,
            &cam,
            &scene_aabb(),
            &cfg,
            ReuseMode::warp(),
            0,
            &mut state,
        );
        let (img, stats) = render_view_shaded(&grid, shader, &cam, &scene_aabb(), &cfg);
        assert_eq!(frame.image, img, "a stateless warp frame is a full render");
        assert_eq!(frame.stats.samples_marched, stats.samples_marched);
        assert_eq!(frame.stats.rays_remarched, frame.stats.rays);
        assert!(state.is_some(), "the frame must leave reuse state behind");
    }

    #[test]
    fn warp_reuses_most_rays_and_stays_close() {
        let grid = build_grid(SceneId::Lego, 28);
        let mlp = Mlp::random(0);
        let shader = Shader::PerSample(&mlp);
        let cfg = tiny_cfg();
        let cams = TrajectorySpec::orbit(4, 16, 16).cameras();
        let frames =
            render_trajectory_shaded(&grid, shader, &cams, &scene_aabb(), &cfg, ReuseMode::warp());
        let tolerance = WarpConfig::default().tolerance;
        for (i, (frame, cam)) in frames.iter().zip(&cams).enumerate().skip(1) {
            assert!(
                frame.stats.rays_warped > frame.stats.rays_remarched,
                "frame {i}: most rays must warp ({} warped vs {} re-marched)",
                frame.stats.rays_warped,
                frame.stats.rays_remarched
            );
            assert_eq!(frame.stats.rays_warped + frame.stats.rays_remarched, frame.stats.rays);
            assert!(frame.validation_error <= tolerance, "frame {i}: {}", frame.validation_error);
            // Warped frames approximate the exact render within tolerance.
            let (exact, _) = render_view_shaded(&grid, shader, cam, &scene_aabb(), &cfg);
            for (a, b) in frame.image.pixels().iter().zip(exact.pixels()) {
                let d = *a - *b;
                for ch in [d.x, d.y, d.z] {
                    assert!(ch.abs() <= tolerance, "frame {i}: pixel drifted {}", ch.abs());
                }
            }
        }
    }

    #[test]
    fn warp_is_deterministic_across_thread_counts() {
        let grid = build_grid(SceneId::Drums, 24);
        let mlp = Mlp::random(2);
        let shader = Shader::PerSample(&mlp);
        let cams = TrajectorySpec::orbit(3, 14, 11).cameras();
        let base = render_trajectory_shaded(
            &grid,
            shader,
            &cams,
            &scene_aabb(),
            &tiny_cfg(),
            ReuseMode::warp(),
        );
        for (threads, tile, packet) in [(2usize, 4u32, 1usize), (4, 7, 3), (0, 32, 8)] {
            let cfg = RenderConfig {
                parallelism: threads,
                tile_size: tile,
                packet_size: packet,
                ..tiny_cfg()
            };
            let got = render_trajectory_shaded(
                &grid,
                shader,
                &cams,
                &scene_aabb(),
                &cfg,
                ReuseMode::warp(),
            );
            assert_eq!(got, base, "threads={threads} tile={tile} packet={packet}");
        }
    }

    #[test]
    fn skip_hints_carry_across_frames_without_changing_pixels() {
        use crate::source::WithOccupancy;
        let grid = build_grid(SceneId::Mic, 24);
        let mlp = Mlp::random(1);
        let shader = Shader::PerSample(&mlp);
        let skippable = WithOccupancy::build(&grid);
        let cfg = RenderConfig { skip_mode: SkipMode::mip(), ..tiny_cfg() };
        let cams = TrajectorySpec::orbit(3, 12, 12).cameras();
        let skipped = render_trajectory_shaded(
            &skippable,
            shader,
            &cams,
            &scene_aabb(),
            &cfg,
            ReuseMode::warp(),
        );
        let plain = render_trajectory_shaded(
            &grid,
            shader,
            &cams,
            &scene_aabb(),
            &tiny_cfg(),
            ReuseMode::warp(),
        );
        for (s, p) in skipped.iter().zip(&plain) {
            assert_eq!(s.image, p.image, "skipping must never change a temporal pixel");
            assert_eq!(s.stats.rays_remarched, p.stats.rays_remarched);
            assert!(s.stats.samples_marched < p.stats.samples_marched);
        }
    }

    #[test]
    fn camera_shape_change_resets_reuse() {
        let grid = build_grid(SceneId::Lego, 24);
        let mlp = Mlp::random(0);
        let shader = Shader::PerSample(&mlp);
        let cfg = tiny_cfg();
        let mut state = None;
        let small = TrajectorySpec::orbit(2, 10, 10).cameras();
        let big = TrajectorySpec::orbit(2, 14, 14).cameras();
        advance_frame(
            &grid,
            shader,
            &small[0],
            &scene_aabb(),
            &cfg,
            ReuseMode::warp(),
            0,
            &mut state,
        );
        let frame = advance_frame(
            &grid,
            shader,
            &big[1],
            &scene_aabb(),
            &cfg,
            ReuseMode::warp(),
            1,
            &mut state,
        );
        assert_eq!(frame.stats.rays_warped, 0, "incompatible state must not be warped from");
        assert_eq!(frame.stats.rays_remarched, frame.stats.rays);
    }
}
