//! Minimal 3-D vector math used by cameras, rays and scene SDFs.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-component `f32` vector.
///
/// # Examples
///
/// ```
/// use spnerf_render::vec3::Vec3;
///
/// let v = Vec3::new(3.0, 0.0, 4.0);
/// assert_eq!(v.length(), 5.0);
/// assert_eq!(v.normalized().length(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// All components one.
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// All components set to `s`.
    pub const fn splat(s: f32) -> Self {
        Self { x: s, y: s, z: s }
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared length (avoids the square root).
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics if the vector is (near) zero length.
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        assert!(len > 1e-12, "cannot normalize a zero-length vector");
        self / len
    }

    /// Component-wise minimum.
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise absolute value.
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Linear interpolation `self + t (o - self)`.
    pub fn lerp(self, o: Vec3, t: f32) -> Vec3 {
        self + (o - self) * t
    }

    /// Largest component.
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Components as an array.
    pub const fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for Vec3 {
    type Output = Vec3;
    fn mul(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f32) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Vec3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a * b, Vec3::new(4.0, 10.0, 18.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::ZERO;
        let b = Vec3::ONE;
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::splat(0.5));
    }

    #[test]
    fn min_max_abs() {
        let a = Vec3::new(-1.0, 2.0, -3.0);
        let b = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(a.max_component(), 2.0);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn normalize_zero_panics() {
        let _ = Vec3::ZERO.normalized();
    }
}
