//! Property tests pinning the lane kernels to their scalar references.
//!
//! Equality — not tolerance — is the contract: `interpolate_cell_lanes`
//! and `forward_lanes` must be **bitwise identical** to the scalar
//! implementations for every input, so flipping the `simd` feature can
//! never change a rendered pixel. These tests drive both implementations
//! directly (they exist under every feature combination) over random
//! cells, weights, and all five corpus archetypes; the fp16-storage MLP is
//! pinned bitwise to its own scalar reference and to the quantized-f32
//! twin, and only tolerance-checked against full precision (rounding
//! weights through binary16 genuinely changes them). The bake-and-defer
//! kernels carry the same contract: the compositing accumulator and the
//! deferred per-pixel MLP are pinned lane-vs-scalar bitwise too.

use proptest::prelude::*;
use spnerf_render::composite::{
    accumulate_weighted, accumulate_weighted_lanes, accumulate_weighted_scalar,
};
use spnerf_render::interp::{
    interpolate_cell_lanes, interpolate_cell_scalar, trilinear_cell, TrilinearCell,
};
use spnerf_render::mlp::{DeferredMlp, Mlp, MlpF16, MlpScratch, DEFERRED_INPUT_DIM, MLP_INPUT_DIM};
use spnerf_render::scene::{build_grid, SceneId};
use spnerf_render::source::VoxelSource;
use spnerf_render::vec3::Vec3;
use spnerf_testkit::corpus::{generate, Archetype, CorpusSpec};

/// Bitwise comparison of two interpolation results with a labelled panic.
fn assert_samples_bitwise(
    scalar: &spnerf_render::interp::InterpSample,
    lanes: &spnerf_render::interp::InterpSample,
    context: &str,
) {
    assert_eq!(scalar.density.to_bits(), lanes.density.to_bits(), "density diverged: {context}");
    for (ch, (s, l)) in scalar.features.iter().zip(lanes.features.iter()).enumerate() {
        assert_eq!(s.to_bits(), l.to_bits(), "feature[{ch}] diverged: {context}");
    }
    assert_eq!(scalar.occupied_corners, lanes.occupied_corners, "corner count: {context}");
}

/// Deterministic pseudo-random MLP input from a seed.
fn mlp_input(seed: u64) -> [f32; MLP_INPUT_DIM] {
    let mut x = [0.0f32; MLP_INPUT_DIM];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for slot in &mut x {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Map the top bits to roughly [-4, 4): plenty of sign and
        // magnitude variety, no overflow concerns.
        *slot = ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 8.0;
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Lane interpolation equals scalar bitwise over every corpus
    // archetype, occupancy, seed, and in-cell position — including cells
    // with any mix of occupied and empty corners.
    #[test]
    fn lane_interpolation_is_bitwise_scalar_on_corpus(
        arch_idx in 0usize..5,
        occupancy in 0.005f64..0.60,
        seed in 0u64..1000,
        fx in 0.0f32..1.0,
        fy in 0.0f32..1.0,
        fz in 0.0f32..1.0,
        cx in 0u32..15,
        cy in 0u32..15,
        cz in 0u32..15,
    ) {
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], 16, occupancy, seed);
        let grid = generate(&spec);
        let p = Vec3::new(cx as f32 + fx, cy as f32 + fy, cz as f32 + fz);
        let Some(cell) = trilinear_cell(VoxelSource::dims(&grid), p) else {
            return Ok(()); // fractional part of 1.0 can land outside
        };
        let scalar = interpolate_cell_scalar(&grid, &cell);
        let lanes = interpolate_cell_lanes(&grid, &cell);
        assert_samples_bitwise(&scalar, &lanes, &format!("{} at {p:?}", spec.label()));
    }

    // Lane interpolation equals scalar bitwise for arbitrary (even
    // unnormalized or zero) corner weights — the kernel must not rely on
    // the weights summing to one or being non-zero.
    #[test]
    fn lane_interpolation_is_bitwise_scalar_for_raw_weights(
        scene_idx in 0usize..8,
        base in 0u32..18,
        weight_seed in 0u64..10_000,
        zero_mask in 0u8..=255,
    ) {
        let grid = build_grid(SceneId::all()[scene_idx], 20);
        let raw = mlp_input(weight_seed);
        let mut weights = [0.0f32; 8];
        for (i, slot) in weights.iter_mut().enumerate() {
            // Zeroed weights exercise the skip-empty-corner fast path in
            // every corner position; the rest are arbitrary magnitudes.
            if zero_mask & (1 << i) == 0 {
                *slot = raw[i].abs();
            }
        }
        let cell = TrilinearCell {
            base: spnerf_voxel::coord::GridCoord::new(base, (base * 3) % 18, (base * 7) % 18),
            weights,
        };
        let scalar = interpolate_cell_scalar(&grid, &cell);
        let lanes = interpolate_cell_lanes(&grid, &cell);
        assert_samples_bitwise(&scalar, &lanes, &format!("base={base} mask={zero_mask:08b}"));
    }

    // The lane-blocked GEMV equals the scalar forward pass bitwise for
    // random networks and random inputs, with and without a reused
    // scratch buffer.
    #[test]
    fn lane_gemv_is_bitwise_scalar(mlp_seed in 0u64..50, input_seed in 0u64..10_000) {
        let mlp = Mlp::random(mlp_seed);
        let input = mlp_input(input_seed);
        let scalar = mlp.forward_scalar(&input);
        let lanes = mlp.forward_lanes(&input);
        for (k, (s, l)) in scalar.iter().zip(lanes.iter()).enumerate() {
            prop_assert_eq!(
                s.to_bits(), l.to_bits(),
                "output[{}] diverged: mlp_seed={} input_seed={}", k, mlp_seed, input_seed
            );
        }
        // A dirty scratch buffer must not leak between forwards.
        let mut scratch = MlpScratch::new();
        let _ = mlp.forward_lanes_with(&mlp_input(input_seed ^ 0xFFFF), &mut scratch);
        let reused = mlp.forward_lanes_with(&input, &mut scratch);
        prop_assert_eq!(reused, lanes, "scratch reuse changed the result");
    }

    // The fp16-storage MLP is pinned two ways: its lane path equals its
    // own scalar reference bitwise, and both equal the f32 network whose
    // weights were rounded through binary16 up front.
    #[test]
    fn fp16_gemv_is_bitwise_its_references(mlp_seed in 0u64..50, input_seed in 0u64..10_000) {
        let mlp = Mlp::random(mlp_seed);
        let f16 = MlpF16::from_mlp(&mlp);
        let twin = mlp.quantized_f16();
        let input = mlp_input(input_seed);
        let lanes = f16.forward(&input);
        let scalar = f16.forward_scalar(&input);
        let twin_out = twin.forward_scalar(&input);
        for k in 0..lanes.len() {
            prop_assert_eq!(
                lanes[k].to_bits(), scalar[k].to_bits(),
                "fp16 lane/scalar diverged at [{}]: mlp_seed={}", k, mlp_seed
            );
            prop_assert_eq!(
                scalar[k].to_bits(), twin_out[k].to_bits(),
                "fp16 storage disagrees with quantized twin at [{}]: mlp_seed={}", k, mlp_seed
            );
        }
        // Against full precision only closeness holds — binary16 rounding
        // really does move the weights.
        let full = mlp.forward_scalar(&input);
        for k in 0..full.len() {
            prop_assert!(
                (full[k] - lanes[k]).abs() < 0.05,
                "fp16 output [{}] drifted {} from full precision", k, (full[k] - lanes[k]).abs()
            );
        }
    }

    // The compositing accumulator's lane-blocked form equals the scalar
    // reference bitwise for any channel count (full blocks and ragged
    // tails), any starting accumulator, any weight sign or magnitude —
    // and the dispatching entry point agrees with both under either
    // feature. This is the kernel every composited pixel and every
    // accumulated specular feature runs through.
    #[test]
    fn composite_accumulate_is_bitwise_scalar(
        len in 0usize..33,
        acc_seed in 0u64..10_000,
        val_seed in 0u64..10_000,
        weight_idx in 0usize..6,
    ) {
        let raw_acc = mlp_input(acc_seed);
        let raw_val = mlp_input(val_seed);
        let w = [0.0f32, 1.0, -1.0, 0.12345, -2.5, 1e-8][weight_idx];
        let mut scalar: Vec<f32> = raw_acc.iter().cycle().take(len).copied().collect();
        let values: Vec<f32> = raw_val.iter().cycle().take(len).copied().collect();
        let mut lanes = scalar.clone();
        let mut dispatched = scalar.clone();
        accumulate_weighted_scalar(&mut scalar, &values, w);
        accumulate_weighted_lanes(&mut lanes, &values, w);
        accumulate_weighted(&mut dispatched, &values, w);
        for c in 0..len {
            prop_assert_eq!(
                scalar[c].to_bits(), lanes[c].to_bits(),
                "channel {} diverged: len={} w={}", c, len, w
            );
            prop_assert_eq!(
                scalar[c].to_bits(), dispatched[c].to_bits(),
                "dispatch diverged at channel {}: len={} w={}", c, len, w
            );
        }
    }

    // The deferred per-pixel MLP carries the same lane/scalar contract as
    // the big color MLP: bitwise equality for random networks and random
    // specular-feature ⊕ view-encoding inputs, dispatch included — so the
    // `simd` feature can never change a deferred-shaded pixel.
    #[test]
    fn deferred_mlp_is_bitwise_scalar(mlp_seed in 0u64..50, input_seed in 0u64..10_000) {
        let mlp = DeferredMlp::random(mlp_seed);
        let raw = mlp_input(input_seed);
        let mut input = [0.0f32; DEFERRED_INPUT_DIM];
        input.copy_from_slice(&raw[..DEFERRED_INPUT_DIM]);
        let scalar = mlp.forward_scalar(&input);
        let lanes = mlp.forward_lanes(&input);
        let dispatched = mlp.forward(&input);
        for (k, (s, l)) in scalar.iter().zip(lanes.iter()).enumerate() {
            prop_assert_eq!(
                s.to_bits(), l.to_bits(),
                "deferred output[{}] diverged: mlp_seed={} input_seed={}",
                k, mlp_seed, input_seed
            );
            prop_assert_eq!(
                dispatched[k].to_bits(), s.to_bits(),
                "deferred dispatch diverged at [{}]: mlp_seed={}", k, mlp_seed
            );
        }
    }
}

/// Non-proptest pin: the dispatching entry points resolve to whichever
/// implementation the `simd` feature selects, and both implementations
/// agree on every scene of the standard corpus at grid side 16 — a cheap
/// exhaustive-ish sweep that runs identically under either feature.
#[test]
fn dispatch_agrees_with_both_implementations_across_corpus() {
    for &arch in Archetype::ALL.iter() {
        let spec = CorpusSpec::new(arch, 16, 0.15, 42);
        let grid = generate(&spec);
        let dims = VoxelSource::dims(&grid);
        for i in 0..200usize {
            let p = Vec3::new(
                ((i * 7) % 15) as f32 + 0.3,
                ((i * 13) % 15) as f32 + 0.7,
                ((i * 29) % 15) as f32 + 0.45,
            );
            let cell = trilinear_cell(dims, p).unwrap();
            let scalar = interpolate_cell_scalar(&grid, &cell);
            let lanes = interpolate_cell_lanes(&grid, &cell);
            let dispatched = spnerf_render::interp::interpolate_cell(&grid, &cell);
            assert_samples_bitwise(&scalar, &lanes, &format!("{} probe {i}", spec.label()));
            assert_samples_bitwise(&scalar, &dispatched, &format!("dispatch, probe {i}"));
        }
    }
}
