//! Property tests for the tile-parallel render engine's determinism
//! guarantee: for random scenes, image sizes, tile sizes, thread counts,
//! and ray-packet sizes, the parallel image and stats are exactly equal to
//! the serial reference. Under `--features simd` the same properties pin
//! the lane kernels: a feature-flagged build must render the identical
//! image (CI runs this file in both configurations).

use proptest::prelude::*;
use spnerf_render::bake::bake;
use spnerf_render::mlp::{DeferredMlp, Mlp};
use spnerf_render::renderer::{
    render_view, render_view_serial, render_view_serial_shaded, render_view_shaded, RenderConfig,
    Shader, SkipMode,
};
use spnerf_render::scene::{build_grid, default_camera, scene_aabb, SceneId};
use spnerf_render::source::WithOccupancy;
use spnerf_testkit::corpus::{generate, Archetype, CorpusSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn parallel_render_is_bitwise_serial(
        scene_idx in 0usize..8,
        width in 3u32..=14,
        height in 3u32..=14,
        tile_size in 1u32..=10,
        threads in 1usize..=8,
        pose in 0usize..6,
        packet_size in 0usize..=9,
    ) {
        let scene = SceneId::all()[scene_idx];
        let grid = build_grid(scene, 20);
        let mlp = Mlp::random(7);
        let cam = default_camera(width, height, pose, 6);
        let cfg = RenderConfig {
            samples_per_ray: 24,
            tile_size,
            parallelism: threads,
            packet_size,
            ..Default::default()
        };
        let (serial_img, serial_stats) =
            render_view_serial(&grid, &mlp, &cam, &scene_aabb(), &cfg);
        let (img, stats) = render_view(&grid, &mlp, &cam, &scene_aabb(), &cfg);
        prop_assert_eq!(
            stats, serial_stats,
            "stats diverged: scene={} {}x{} tile={} threads={}",
            scene, width, height, tile_size, threads
        );
        prop_assert!(
            img == serial_img,
            "image diverged: scene={} {}x{} tile={} threads={}",
            scene, width, height, tile_size, threads
        );
    }

    #[test]
    fn auto_parallelism_is_bitwise_serial(
        scene_idx in 0usize..8,
        image in 4u32..=12,
    ) {
        let scene = SceneId::all()[scene_idx];
        let grid = build_grid(scene, 18);
        let mlp = Mlp::random(11);
        let cam = default_camera(image, image, 2, 6);
        // parallelism: 0 = all available cores; tiles smaller than the image
        // force multiple work items.
        let cfg = RenderConfig {
            samples_per_ray: 16,
            tile_size: 4,
            parallelism: 0,
            ..Default::default()
        };
        let serial = render_view_serial(&grid, &mlp, &cam, &scene_aabb(), &cfg);
        let parallel = render_view(&grid, &mlp, &cam, &scene_aabb(), &cfg);
        prop_assert!(parallel == serial, "auto-thread render diverged on {}", scene);
    }

    #[test]
    fn parallel_render_is_bitwise_serial_on_corpus_scenes(
        arch_idx in 0usize..5,
        occupancy in 0.01f64..0.60,
        seed in 0u64..100,
        tile_size in 1u32..=8,
        threads in 1usize..=6,
    ) {
        // The corpus spans the sparsity/structure space the eight dataset
        // scenes don't (dense blobs, pure noise, near-empty grids): the
        // engine's determinism guarantee must hold across all of it.
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], 16, occupancy, seed);
        let grid = generate(&spec);
        let mlp = Mlp::random(5);
        let cam = default_camera(11, 9, 1, 6);
        let cfg = RenderConfig {
            samples_per_ray: 20,
            tile_size,
            parallelism: threads,
            ..Default::default()
        };
        let serial = render_view_serial(&grid, &mlp, &cam, &scene_aabb(), &cfg);
        let parallel = render_view(&grid, &mlp, &cam, &scene_aabb(), &cfg);
        prop_assert!(
            parallel == serial,
            "corpus render diverged: {} tile={} threads={}",
            spec.label(), tile_size, threads
        );
    }

    #[test]
    fn skip_mode_is_pixel_exact_at_every_thread_count(
        arch_idx in 0usize..5,
        occupancy in 0.005f64..0.40,
        seed in 0u64..100,
        tile_size in 1u32..=8,
        threads in 1usize..=6,
        levels in 0usize..=6,
    ) {
        // Empty-space skipping composes with tile parallelism: for any
        // corpus scene, tile size, thread count, and pyramid depth, the
        // skipped render equals the skip-off serial reference pixel for
        // pixel, and stats are thread-count-invariant.
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], 16, occupancy, seed);
        let grid = generate(&spec);
        let skippable = WithOccupancy::build(&grid);
        let mlp = Mlp::random(5);
        let cam = default_camera(10, 8, 3, 6);
        let off = RenderConfig { samples_per_ray: 20, ..Default::default() };
        let on = RenderConfig {
            tile_size,
            parallelism: threads,
            skip_mode: SkipMode::Mip { levels },
            ..off
        };
        let (ref_img, ref_stats) = render_view_serial(&grid, &mlp, &cam, &scene_aabb(), &off);
        let (img, stats) = render_view(&skippable, &mlp, &cam, &scene_aabb(), &on);
        prop_assert!(
            img == ref_img,
            "skip render changed pixels: {} tile={} threads={} levels={}",
            spec.label(), tile_size, threads, levels
        );
        prop_assert_eq!(stats.samples_shaded, ref_stats.samples_shaded, "{}", spec.label());
        prop_assert_eq!(
            stats.samples_marched + stats.samples_skipped,
            ref_stats.samples_marched,
            "{}: marched + skipped must equal the unskipped march count",
            spec.label()
        );
        // And the serial skipped render agrees with the parallel one.
        let serial_on = render_view_serial(&skippable, &mlp, &cam, &scene_aabb(), &on);
        prop_assert!(serial_on == (img, stats), "{}: thread-count variance", spec.label());
    }

    #[test]
    fn packet_size_never_changes_a_pixel(
        arch_idx in 0usize..5,
        occupancy in 0.005f64..0.40,
        seed in 0u64..100,
        tile_size in 1u32..=8,
        threads in 1usize..=4,
        packet_size in 2usize..=16,
        levels in 0usize..=4,
    ) {
        // Ray packets are a batching strategy, not a numeric change: for
        // any corpus scene the packeted render must equal the one-ray-at-
        // a-time render bitwise, including when composed with empty-space
        // skipping (rays in one packet skip different amounts and finish
        // at different times).
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], 16, occupancy, seed);
        let grid = generate(&spec);
        let skippable = WithOccupancy::build(&grid);
        let mlp = Mlp::random(5);
        let cam = default_camera(9, 11, 4, 6);
        let base = RenderConfig {
            samples_per_ray: 20,
            tile_size,
            parallelism: threads,
            skip_mode: SkipMode::Mip { levels },
            ..Default::default()
        };
        let single = RenderConfig { packet_size: 1, ..base };
        let packeted = RenderConfig { packet_size, ..base };
        let one = render_view(&skippable, &mlp, &cam, &scene_aabb(), &single);
        let many = render_view(&skippable, &mlp, &cam, &scene_aabb(), &packeted);
        prop_assert!(
            one == many,
            "packet render diverged: {} tile={} threads={} packet={} levels={}",
            spec.label(), tile_size, threads, packet_size, levels
        );
    }

    #[test]
    fn baked_render_is_invariant_to_threads_and_packets(
        arch_idx in 0usize..5,
        occupancy in 0.01f64..0.40,
        seed in 0u64..100,
        tile_size in 1u32..=8,
        threads in 1usize..=6,
        packet_size in 0usize..=12,
        levels in 0usize..=4,
    ) {
        // The bake-and-defer path accumulates a specular feature along each
        // ray and then shades once per pixel — both steps must carry the
        // same determinism guarantee as per-sample shading: for any corpus
        // scene, the parallel/packeted/skipped baked render equals the
        // serial packet-size-1 reference bitwise, pixels and stats alike
        // (including `pixels_shaded`).
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], 16, occupancy, seed);
        let grid = generate(&spec);
        let baked = bake(&grid, &Mlp::random(5));
        let skippable = WithOccupancy::build(&baked);
        let deferred = DeferredMlp::random(9);
        let shader = Shader::Deferred(&deferred);
        let cam = default_camera(10, 9, 2, 6);
        let reference_cfg = RenderConfig {
            samples_per_ray: 20,
            packet_size: 1,
            ..Default::default()
        };
        let varied_cfg = RenderConfig {
            tile_size,
            parallelism: threads,
            packet_size,
            skip_mode: SkipMode::Mip { levels },
            ..reference_cfg
        };
        let (ref_img, ref_stats) =
            render_view_serial_shaded(&baked, shader, &cam, &scene_aabb(), &reference_cfg);
        let (img, stats) =
            render_view_shaded(&skippable, shader, &cam, &scene_aabb(), &varied_cfg);
        prop_assert!(
            img == ref_img,
            "baked render diverged: {} tile={} threads={} packet={} levels={}",
            spec.label(), tile_size, threads, packet_size, levels
        );
        prop_assert_eq!(stats.pixels_shaded, ref_stats.pixels_shaded, "{}", spec.label());
        prop_assert_eq!(stats.samples_shaded, ref_stats.samples_shaded, "{}", spec.label());
        prop_assert_eq!(
            stats.samples_marched + stats.samples_skipped,
            ref_stats.samples_marched,
            "{}: marched + skipped must equal the unskipped march count",
            spec.label()
        );
    }
}
