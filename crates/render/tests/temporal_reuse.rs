//! Property tests for the temporal trajectory path
//! ([`spnerf_render::temporal`]), over corpus archetypes × path kinds:
//!
//! * `ReuseMode::Off` is bitwise a loop of independent single-frame
//!   renders, for every source kind including the bake-and-defer path;
//! * warped frames are bitwise-deterministic across thread counts, tile
//!   sizes, and packet sizes;
//! * warp-then-validate never drifts from a full re-march by more than the
//!   configured [`WarpConfig::tolerance`], on any pixel of any frame.

use proptest::prelude::*;
use spnerf_render::bake::bake;
use spnerf_render::mlp::{DeferredMlp, Mlp};
use spnerf_render::renderer::{render_view_shaded, RenderConfig, Shader};
use spnerf_render::scene::scene_aabb;
use spnerf_render::source::VoxelSource;
use spnerf_render::temporal::{
    render_trajectory_shaded, ReuseMode, TemporalFrame, TrajectorySpec, WarpConfig,
};
use spnerf_testkit::corpus::{generate, Archetype, CorpusSpec};
use spnerf_testkit::fixtures;

/// The three path kinds at gentle test scales.
fn spec_for(path_idx: usize, frames: usize, image: u32) -> TrajectorySpec {
    match path_idx {
        0 => TrajectorySpec::orbit(frames, image, image),
        1 => TrajectorySpec::dolly(frames, image, image),
        _ => TrajectorySpec::jitter(frames, image, image, 17),
    }
}

fn corpus_grid(arch_idx: usize) -> spnerf_voxel::grid::DenseGrid {
    let spec = CorpusSpec::archetype_default(Archetype::ALL[arch_idx], 16, 31);
    generate(&spec)
}

fn render_cfg() -> RenderConfig {
    RenderConfig { samples_per_ray: 16, ..Default::default() }
}

/// Renders one trajectory over a source picked by index: the raw grid
/// per-sample, the SpNeRF masked decode per-sample, or the baked grid
/// through the deferred per-pixel shader.
fn trajectory_over_source(
    arch_idx: usize,
    source_idx: usize,
    spec: &TrajectorySpec,
    cfg: &RenderConfig,
    mode: ReuseMode,
) -> Vec<TemporalFrame> {
    let grid = corpus_grid(arch_idx);
    let mlp = Mlp::random(fixtures::MLP_SEED);
    let cams = spec.cameras();
    match source_idx {
        0 => render_trajectory_shaded(
            &&grid,
            Shader::PerSample(&mlp),
            &cams,
            &scene_aabb(),
            cfg,
            mode,
        ),
        1 => {
            let cspec = CorpusSpec::archetype_default(Archetype::ALL[arch_idx], 16, 31);
            let (_g, _v, model) = fixtures::corpus_fixture(&cspec, 32, 8, 4096);
            let view = model.masked();
            render_trajectory_shaded(
                &view,
                Shader::PerSample(&mlp),
                &cams,
                &scene_aabb(),
                cfg,
                mode,
            )
        }
        _ => {
            let baked = bake(&grid, &mlp);
            let deferred = DeferredMlp::random(fixtures::MLP_SEED);
            render_trajectory_shaded(
                &&baked,
                Shader::Deferred(&deferred),
                &cams,
                &scene_aabb(),
                cfg,
                mode,
            )
        }
    }
}

/// Renders the same `(source, cameras)` as independent single-frame calls.
fn independent_frames<S: VoxelSource + Sync>(
    source: &S,
    shader: Shader<'_>,
    spec: &TrajectorySpec,
    cfg: &RenderConfig,
) -> Vec<(spnerf_render::image::ImageBuffer, spnerf_render::renderer::RenderStats)> {
    spec.cameras()
        .iter()
        .map(|cam| render_view_shaded(source, shader, cam, &scene_aabb(), cfg))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn off_mode_is_bitwise_independent_single_frame_renders(
        arch_idx in 0usize..5,
        path_idx in 0usize..3,
        source_idx in 0usize..3,
        frames in 2usize..=4,
        image in 6u32..=10,
    ) {
        let spec = spec_for(path_idx, frames, image);
        let cfg = render_cfg();
        let traj = trajectory_over_source(arch_idx, source_idx, &spec, &cfg, ReuseMode::Off);
        // Re-derive the independent loop over the identical source.
        let grid = corpus_grid(arch_idx);
        let mlp = Mlp::random(fixtures::MLP_SEED);
        let solo = match source_idx {
            0 => independent_frames(&&grid, Shader::PerSample(&mlp), &spec, &cfg),
            1 => {
                let cspec = CorpusSpec::archetype_default(Archetype::ALL[arch_idx], 16, 31);
                let (_g, _v, model) = fixtures::corpus_fixture(&cspec, 32, 8, 4096);
                let view = model.masked();
                independent_frames(&view, Shader::PerSample(&mlp), &spec, &cfg)
            }
            _ => {
                let baked = bake(&grid, &mlp);
                let deferred = DeferredMlp::random(fixtures::MLP_SEED);
                independent_frames(&&baked, Shader::Deferred(&deferred), &spec, &cfg)
            }
        };
        prop_assert_eq!(traj.len(), solo.len());
        for (i, (t, (img, stats))) in traj.iter().zip(&solo).enumerate() {
            prop_assert!(
                t.image == *img,
                "frame {} diverged (arch={} path={} source={})",
                i, arch_idx, path_idx, source_idx
            );
            prop_assert_eq!(&t.stats, stats, "stats diverged on frame {}", i);
            prop_assert_eq!(t.stats.rays_warped, 0);
        }
    }

    #[test]
    fn warped_frames_are_deterministic_across_schedules(
        arch_idx in 0usize..5,
        path_idx in 0usize..3,
        frames in 2usize..=4,
        image in 6u32..=10,
        threads_a in 1usize..=6,
        threads_b in 1usize..=6,
        tile_a in 1u32..=8,
        tile_b in 1u32..=8,
        packet_a in 0usize..=9,
        packet_b in 0usize..=9,
    ) {
        let spec = spec_for(path_idx, frames, image);
        let cfg_a = RenderConfig {
            parallelism: threads_a, tile_size: tile_a, packet_size: packet_a, ..render_cfg()
        };
        let cfg_b = RenderConfig {
            parallelism: threads_b, tile_size: tile_b, packet_size: packet_b, ..render_cfg()
        };
        let a = trajectory_over_source(arch_idx, 1, &spec, &cfg_a, ReuseMode::warp());
        let b = trajectory_over_source(arch_idx, 1, &spec, &cfg_b, ReuseMode::warp());
        for (i, (fa, fb)) in a.iter().zip(&b).enumerate() {
            prop_assert!(
                fa.image == fb.image,
                "warped frame {} depends on the schedule (arch={} path={} \
                 threads {}/{} tiles {}/{} packets {}/{})",
                i, arch_idx, path_idx, threads_a, threads_b, tile_a, tile_b, packet_a, packet_b
            );
            prop_assert_eq!(&fa.stats, &fb.stats, "stats diverged on frame {}", i);
        }
    }

    #[test]
    fn warp_never_drifts_past_the_configured_tolerance(
        arch_idx in 0usize..5,
        path_idx in 0usize..3,
        frames in 2usize..=4,
        image in 6u32..=10,
    ) {
        let spec = spec_for(path_idx, frames, image);
        let cfg = render_cfg();
        let tol = WarpConfig::default().tolerance;
        let warp = trajectory_over_source(arch_idx, 1, &spec, &cfg, ReuseMode::warp());
        let exact = trajectory_over_source(arch_idx, 1, &spec, &cfg, ReuseMode::Off);
        for (i, (w, e)) in warp.iter().zip(&exact).enumerate() {
            prop_assert!(w.validation_error <= tol, "frame {} validation error {}", i, w.validation_error);
            let mut worst = 0.0f32;
            for (pw, pe) in w.image.pixels().iter().zip(e.image.pixels()) {
                worst = worst
                    .max((pw.x - pe.x).abs())
                    .max((pw.y - pe.y).abs())
                    .max((pw.z - pe.z).abs());
            }
            prop_assert!(
                worst <= tol,
                "frame {} drifted {} > {} (arch={} path={})",
                i, worst, tol, arch_idx, path_idx
            );
        }
    }
}
