//! Runs the deterministic serve simulation and prints its report.
//!
//! ```text
//! cargo run --release -p spnerf-serve --bin spnerf_serve -- [--quick]
//!     [--seed N] [--duration-ticks N] [--cache-bytes N] [--zipf-s S]
//!     [--replay FILE] [--threads N] [--skip-mode off|mip|mip:N]
//!     [--packet-size N]
//! ```
//!
//! Stdout is **exactly one JSON document** (the schema-versioned report,
//! self-validated before printing); the human-readable summary goes to
//! stderr. Byte-diffing two stdout captures is the supported way to check
//! determinism — CI does exactly that across seeds, render worker counts
//! and the `simd` feature.
//!
//! `--replay FILE` serves a recorded trace (see
//! `spnerf_serve::traffic::Trace::to_replay`) instead of synthesizing
//! traffic; `--seed`/`--zipf-s`/`--duration-ticks` shape the synthetic
//! trace and are rejected-by-irrelevance only informally (they are echoed
//! into the report but do not alter a replay).

use spnerf_bench::cli;
use spnerf_bench::SourceMode;
use spnerf_serve::report::validate_report_json;
use spnerf_serve::server::{run, RunMeta, ServeConfig};
use spnerf_serve::traffic::{Trace, TrafficConfig};

fn main() {
    let args = cli::parse_or_exit();
    if args.corpus {
        eprintln!("--corpus: the serve catalog is always the procedural corpus");
        std::process::exit(2);
    }
    if args.source != SourceMode::SpNerf {
        eprintln!("--source: spnerf_serve always renders both paths (by view parity)");
        std::process::exit(2);
    }
    if let Some(flag) = args.temporal_flag() {
        eprintln!("{flag}: serve traffic schedules its own trajectory requests (see traffic.rs)");
        std::process::exit(2);
    }

    let mut cfg = if args.quick { ServeConfig::quick() } else { ServeConfig::standard() };
    if let Some(threads) = args.threads {
        cfg.render.parallelism = threads;
    }
    cfg.render.skip_mode = args.skip_mode;
    if let Some(packet) = args.packet_size {
        cfg.render.packet_size = packet;
    }
    if let Some(bytes) = args.cache_bytes {
        cfg.cache_bytes = bytes;
    }

    let defaults = TrafficConfig::default();
    let seed = args.seed.unwrap_or(defaults.seed);
    let zipf_s = args.zipf_s.unwrap_or(defaults.zipf_s);
    let duration =
        args.duration_ticks.unwrap_or(if args.quick { 2000 } else { defaults.duration_ticks });

    let (trace, meta) = match &args.replay {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("--replay {path}: {e}");
                std::process::exit(2);
            });
            let trace = Trace::parse_replay(&text).unwrap_or_else(|e| {
                eprintln!("--replay {path}: {e}");
                std::process::exit(2);
            });
            // The horizon of a replay is its last arrival; the seed and
            // Zipf knobs did not shape it, so the report echoes neutral
            // values rather than pretending.
            let duration = trace.requests.last().map_or(0, |r| r.tick);
            let meta = RunMeta {
                trace_source: "replay".to_string(),
                seed: 0,
                zipf_s: 0.0,
                duration_ticks: duration,
            };
            (trace, meta)
        }
        None => {
            let tc = TrafficConfig { seed, duration_ticks: duration, zipf_s, ..defaults };
            let meta = RunMeta {
                trace_source: "synthetic".to_string(),
                seed,
                zipf_s,
                duration_ticks: duration,
            };
            (Trace::synthesize(&tc), meta)
        }
    };

    eprintln!(
        "spnerf_serve: {} trace, {} requests, {} scenes, {} tenants, cache {} bytes",
        meta.trace_source,
        trace.requests.len(),
        trace.scenes,
        trace.tenants,
        cfg.cache_bytes,
    );

    let outcome = run(&trace, &cfg, &meta);
    let json = outcome.report.to_json();
    if let Err(errors) = validate_report_json(&json) {
        eprintln!("internal error: emitted report fails its own schema:");
        for e in &errors {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }

    let r = &outcome.report;
    eprintln!(
        "  served {} / shed {} over {} ticks ({:.1} per kilotick)",
        r.served, r.shed, r.final_tick, r.throughput_per_kilotick
    );
    eprintln!(
        "  latency ticks p50 {} p95 {} p99 {} (max {})",
        r.latency_ticks.p50, r.latency_ticks.p95, r.latency_ticks.p99, r.latency_ticks.max
    );
    eprintln!(
        "  cache: {} hits, {} misses, {} evictions, peak {} of {} bytes",
        r.cache.hits,
        r.cache.misses,
        r.cache.evictions,
        r.cache.peak_resident_bytes,
        r.cache.budget_bytes
    );
    print!("{json}");
}
