//! Byte-bounded LRU cache of resident scene bundles.
//!
//! SpNeRF is a *memory-efficiency* accelerator; a multi-tenant server makes
//! the same memory-vs-throughput tradeoff at the fleet level — which scenes
//! stay resident, in how many bytes. [`SceneLru`] holds `Arc`-shared values
//! keyed by scene label and charges each entry the bytes it actually holds
//! ([`Resident::resident_bytes`], `Scene::resident_bytes()` in production).
//!
//! Two properties the proptests in `tests/cache_invariants.rs` pin:
//!
//! 1. **Budget**: after every operation, the sum of charged bytes is at
//!    most the configured budget. A value larger than the whole budget is
//!    served but never inserted ([`CacheStats::uncacheable`]).
//! 2. **Eviction order**: when insertion or [`SceneLru::reconcile`] must
//!    free bytes, entries leave in exactly least-recently-used order.
//!
//! Residency can grow *after* insertion — rendering the bake-and-defer
//! path materializes a scene's lazy baked grid. [`SceneLru::reconcile`]
//! re-measures every resident entry and evicts LRU-first until the budget
//! holds again; the serve loop calls it after every batch.
//!
//! Entries live in a `Vec` ordered LRU→MRU. No hash maps anywhere: lookup
//! is a linear scan over a handful of scenes, and iteration order (which
//! decides evictions) is fully deterministic.

use std::sync::Arc;

/// Types a [`SceneLru`] can charge by size.
pub trait Resident {
    /// Bytes this value currently holds in memory. May grow between calls
    /// (lazily built caches); [`SceneLru::reconcile`] picks up the change.
    fn resident_bytes(&self) -> usize;
}

impl Resident for spnerf::Scene {
    fn resident_bytes(&self) -> usize {
        self.resident_bytes()
    }
}

/// Hit/miss/eviction counters of one cache over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to build (and, if it fit, insert) the value.
    pub misses: u64,
    /// Entries removed to keep the byte budget.
    pub evictions: u64,
    /// Values served without insertion because they alone exceed the
    /// budget.
    pub uncacheable: u64,
}

#[derive(Debug)]
struct Entry<T> {
    key: String,
    value: Arc<T>,
    /// Bytes this entry is currently charged (its `resident_bytes()` at
    /// insert or the last [`SceneLru::reconcile`]).
    charged: usize,
}

/// A byte-bounded LRU of `Arc`-shared values keyed by string label.
///
/// # Examples
///
/// ```
/// use spnerf_serve::cache::{Resident, SceneLru};
///
/// struct Blob(usize);
/// impl Resident for Blob {
///     fn resident_bytes(&self) -> usize {
///         self.0
///     }
/// }
///
/// let mut lru = SceneLru::new(100);
/// lru.get_or_insert_with("a", || Blob(60));
/// lru.get_or_insert_with("b", || Blob(60)); // evicts "a"
/// assert_eq!(lru.stats().evictions, 1);
/// assert!(lru.resident_bytes() <= lru.budget());
/// ```
#[derive(Debug)]
pub struct SceneLru<T> {
    budget: usize,
    /// LRU at index 0, MRU at the back.
    entries: Vec<Entry<T>>,
    stats: CacheStats,
}

impl<T: Resident> SceneLru<T> {
    /// An empty cache with `budget` bytes of capacity.
    pub fn new(budget: usize) -> Self {
        Self { budget, entries: Vec::new(), stats: CacheStats::default() }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently charged across all resident entries.
    pub fn resident_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.charged).sum()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident keys in LRU→MRU order (the order evictions would take).
    pub fn keys(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.key.as_str()).collect()
    }

    /// Looks `key` up without building: a hit moves the entry to MRU and
    /// returns it; a miss returns `None` and counts nothing (use
    /// [`SceneLru::get_or_insert_with`] for the counted path).
    pub fn peek_refresh(&mut self, key: &str) -> Option<Arc<T>> {
        let i = self.entries.iter().position(|e| e.key == key)?;
        let entry = self.entries.remove(i);
        let value = Arc::clone(&entry.value);
        self.entries.push(entry);
        Some(value)
    }

    /// The cached value for `key`, building it with `build` on a miss.
    /// Hits move the entry to MRU. A freshly built value is charged its
    /// current [`Resident::resident_bytes`]; if that alone exceeds the
    /// budget the value is returned **without** being inserted (counted in
    /// [`CacheStats::uncacheable`]), otherwise LRU entries are evicted
    /// until it fits.
    pub fn get_or_insert_with(&mut self, key: &str, build: impl FnOnce() -> T) -> Arc<T> {
        if let Some(hit) = self.peek_refresh(key) {
            self.stats.hits += 1;
            return hit;
        }
        self.stats.misses += 1;
        let value = Arc::new(build());
        let charged = value.resident_bytes();
        if charged > self.budget {
            self.stats.uncacheable += 1;
            return value;
        }
        // Evict LRU-first until the newcomer fits.
        while self.resident_bytes() + charged > self.budget {
            self.entries.remove(0);
            self.stats.evictions += 1;
        }
        self.entries.push(Entry { key: key.to_string(), value: Arc::clone(&value), charged });
        value
    }

    /// Re-measures every resident entry (lazily built internals may have
    /// grown since insert) and evicts LRU-first until the budget holds
    /// again. Returns the number of entries evicted. An entry that grew
    /// past the whole budget is evicted like any other — by recency order —
    /// so the budget invariant is unconditional.
    pub fn reconcile(&mut self) -> usize {
        for e in &mut self.entries {
            e.charged = e.value.resident_bytes();
        }
        let mut evicted = 0;
        while self.resident_bytes() > self.budget {
            self.entries.remove(0);
            self.stats.evictions += 1;
            evicted += 1;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A resident whose size can grow after insertion (bake-cache stand-in).
    struct Growable(AtomicUsize);

    impl Growable {
        fn new(bytes: usize) -> Self {
            Self(AtomicUsize::new(bytes))
        }

        fn grow_to(&self, bytes: usize) {
            self.0.store(bytes, Ordering::Relaxed);
        }
    }

    impl Resident for Growable {
        fn resident_bytes(&self) -> usize {
            self.0.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn hits_refresh_recency_and_misses_insert() {
        let mut lru = SceneLru::new(100);
        lru.get_or_insert_with("a", || Growable::new(40));
        lru.get_or_insert_with("b", || Growable::new(40));
        assert_eq!(lru.keys(), ["a", "b"]);
        // Touch "a": it becomes MRU, so "b" is now first in line to go.
        lru.get_or_insert_with("a", || unreachable!("hit must not rebuild"));
        assert_eq!(lru.keys(), ["b", "a"]);
        lru.get_or_insert_with("c", || Growable::new(40));
        assert_eq!(lru.keys(), ["a", "c"], "b was LRU and must be the one evicted");
        assert_eq!(lru.stats(), CacheStats { hits: 1, misses: 3, evictions: 1, uncacheable: 0 });
        assert!(lru.resident_bytes() <= lru.budget());
    }

    #[test]
    fn oversize_values_are_served_but_never_resident() {
        let mut lru = SceneLru::new(50);
        lru.get_or_insert_with("small", || Growable::new(30));
        let big = lru.get_or_insert_with("big", || Growable::new(51));
        assert_eq!(big.resident_bytes(), 51);
        assert_eq!(lru.len(), 1, "the oversize value must not displace anything");
        assert_eq!(lru.keys(), ["small"]);
        assert_eq!(lru.stats().uncacheable, 1);
        assert_eq!(lru.stats().evictions, 0);
    }

    #[test]
    fn reconcile_picks_up_growth_and_evicts_lru_first() {
        let mut lru = SceneLru::new(100);
        let a = lru.get_or_insert_with("a", || Growable::new(30));
        lru.get_or_insert_with("b", || Growable::new(30));
        lru.get_or_insert_with("c", || Growable::new(30));
        assert_eq!(lru.reconcile(), 0, "nothing grew, nothing to do");

        // "a" (the LRU) grows; reconcile charges the growth and must evict
        // starting from "a" itself.
        a.grow_to(80);
        assert_eq!(lru.reconcile(), 1);
        assert_eq!(lru.keys(), ["b", "c"]);
        assert_eq!(lru.resident_bytes(), 60);

        // MRU growth past the whole budget still resolves by recency order.
        let c = lru.peek_refresh("c").unwrap();
        c.grow_to(150);
        assert_eq!(lru.reconcile(), 2, "b (LRU) goes first, then the oversized c");
        assert!(lru.is_empty());
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let mut lru = SceneLru::new(0);
        let v = lru.get_or_insert_with("a", || Growable::new(1));
        assert_eq!(v.resident_bytes(), 1);
        assert!(lru.is_empty());
        assert_eq!(lru.stats().uncacheable, 1);
    }

    #[test]
    fn zero_sized_values_fit_any_budget() {
        let mut lru = SceneLru::new(0);
        lru.get_or_insert_with("empty", || Growable::new(0));
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.resident_bytes(), 0);
    }
}
