//! The virtual clock every simulated component shares.
//!
//! The serve simulation never consults wall time — `std::time::Instant`
//! does not appear anywhere in the simulated path. Time is a monotone
//! `u64` tick counter advanced explicitly by the event loop, so a run is a
//! pure function of its trace and configuration: the same inputs produce
//! the same latencies on a loaded laptop and in CI, at any render worker
//! count.

/// Virtual time, in ticks. The unit is abstract; the service-time model
/// ([`crate::server`]) defines how much rendering work one tick stands for.
pub type Ticks = u64;

/// A monotone virtual clock.
///
/// # Examples
///
/// ```
/// use spnerf_serve::clock::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// clock.advance_to(10);
/// clock.advance_to(7); // stale target: no-op, never goes backwards
/// assert_eq!(clock.now(), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Ticks,
}

impl VirtualClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current tick.
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Moves the clock forward to `tick`. Targets at or before the current
    /// tick are no-ops: virtual time never runs backwards, so event-loop
    /// code can advance to `max(completion, arrival)` without ordering
    /// care.
    pub fn advance_to(&mut self, tick: Ticks) {
        self.now = self.now.max(tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_is_monotone() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance_to(5);
        assert_eq!(c.now(), 5);
        c.advance_to(5);
        assert_eq!(c.now(), 5);
        c.advance_to(3);
        assert_eq!(c.now(), 5, "clock must never run backwards");
        c.advance_to(100);
        assert_eq!(c.now(), 100);
    }
}
