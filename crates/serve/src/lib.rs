//! # spnerf-serve
//!
//! A long-lived multi-scene render **service**, simulated deterministically.
//!
//! The paper's pitch is memory efficiency on edge devices; this crate asks
//! the fleet-level version of the same question: with many scenes and a
//! byte budget, which scenes stay resident, what does a cache miss cost in
//! tail latency, and how does admission control shape per-tenant service?
//! The subsystem wires four pieces together:
//!
//! * [`traffic`] — a deterministic traffic generator (Zipf scene
//!   popularity, Poisson-ish arrivals) plus a strict text replay format,
//! * [`cache`] — a byte-bounded LRU of `Arc`-shared [`spnerf::Scene`]
//!   bundles charged by `Scene::resident_bytes()` (the same memory model
//!   the rest of the repo reports), with post-render reconciliation for
//!   lazily baked state,
//! * [`queue`] — per-scene coalescing queues under one depth bound with
//!   load shedding,
//! * [`server`] — the discrete-event engine on a [`clock::VirtualClock`]
//!   that renders real pixels through [`spnerf::RenderSession`] and charges
//!   integer virtual ticks for the work,
//!
//! and [`report`] serializes the outcome as schema-versioned JSON.
//!
//! **Determinism contract**: a run is a pure function of `(trace, config)`.
//! No wall clock, no hash-map iteration order, no float accumulation that
//! depends on thread count. Rendering goes through the tile engine, which
//! is bitwise-identical at any `parallelism`, so the same seed and replay
//! produce byte-identical reports at 1, 4, or auto workers — CI diffs the
//! bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod queue;
pub mod report;
pub mod server;
pub mod traffic;
