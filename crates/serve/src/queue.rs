//! Per-scene request queue with coalescing, admission control, and load
//! shedding.
//!
//! Requests queue per scene so the dispatcher can coalesce several camera
//! requests for the same scene into one `RenderSession` batch — the
//! streaming-server shape where work is grouped by the state it touches
//! before hitting the engine. Admission is bounded: once the total queued
//! depth reaches [`QueueConfig::max_depth`], further arrivals are shed (the
//! caller records which tenant paid).
//!
//! Dispatch order is deterministic: [`RequestQueue::next_batch`] always
//! drains the scene whose **head** request is globally oldest by
//! `(tick, seq)` — seq is a global arrival sequence number, so no two
//! requests tie. Within a scene, requests leave in FIFO order, up to
//! [`QueueConfig::max_batch`] per dispatch.

use std::collections::VecDeque;

use crate::traffic::Request;

/// Bounds of the request queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Total queued requests (across all scenes) above which arrivals are
    /// shed.
    pub max_depth: usize,
    /// Most requests coalesced into one render batch.
    pub max_batch: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self { max_depth: 32, max_batch: 4 }
    }
}

/// Per-scene FIFO queues under one global depth bound.
#[derive(Debug)]
pub struct RequestQueue {
    cfg: QueueConfig,
    /// One FIFO per catalog scene, indexed by `Request::scene`.
    scenes: Vec<VecDeque<Request>>,
    depth: usize,
    shed: u64,
}

impl RequestQueue {
    /// An empty queue over `scene_count` catalog scenes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch` is zero (a dispatcher that can never take
    /// work would loop forever).
    pub fn new(scene_count: usize, cfg: QueueConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        Self { cfg, scenes: vec![VecDeque::new(); scene_count], depth: 0, shed: 0 }
    }

    /// The configured bounds.
    pub fn config(&self) -> QueueConfig {
        self.cfg
    }

    /// Requests currently queued across every scene.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// Arrivals refused because the queue was at [`QueueConfig::max_depth`].
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Offers one arrival. Returns `true` if admitted, `false` if shed
    /// (queue at capacity — the request is dropped, not retried).
    ///
    /// # Panics
    ///
    /// Panics if `req.scene` is outside the catalog.
    pub fn offer(&mut self, req: Request) -> bool {
        assert!(req.scene < self.scenes.len(), "request for unknown scene {}", req.scene);
        if self.depth >= self.cfg.max_depth {
            self.shed += 1;
            return false;
        }
        self.scenes[req.scene].push_back(req);
        self.depth += 1;
        true
    }

    /// The `(tick, seq)` of the globally oldest queued request, if any.
    pub fn oldest(&self) -> Option<(u64, u64)> {
        self.scenes.iter().filter_map(|q| q.front()).map(|r| (r.tick, r.seq)).min()
    }

    /// Drains the next batch: up to [`QueueConfig::max_batch`] requests,
    /// FIFO, all from the scene whose head request is globally oldest.
    /// Returns `None` when the queue is empty.
    pub fn next_batch(&mut self) -> Option<Vec<Request>> {
        let oldest = self.oldest()?;
        let scene = self
            .scenes
            .iter()
            .position(|q| q.front().is_some_and(|r| (r.tick, r.seq) == oldest))
            .expect("oldest() found a head");
        let take = self.scenes[scene].len().min(self.cfg.max_batch);
        let batch: Vec<Request> = self.scenes[scene].drain(..take).collect();
        self.depth -= batch.len();
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::RequestKind;

    fn req(tick: u64, seq: u64, scene: usize) -> Request {
        Request { tick, seq, tenant: 0, scene, view: 0, kind: RequestKind::Still }
    }

    #[test]
    fn batches_coalesce_per_scene_in_fifo_order() {
        let mut q = RequestQueue::new(3, QueueConfig { max_depth: 16, max_batch: 2 });
        q.offer(req(5, 0, 1));
        q.offer(req(6, 1, 1));
        q.offer(req(6, 2, 2));
        q.offer(req(7, 3, 1));
        // Scene 1 holds the oldest head (tick 5), so it dispatches first —
        // two requests (max_batch), FIFO.
        let b = q.next_batch().unwrap();
        assert_eq!(b.iter().map(|r| r.seq).collect::<Vec<_>>(), [0, 1]);
        assert!(b.iter().all(|r| r.scene == 1), "a batch never mixes scenes");
        // Now scene 2's head (seq 2) is older than scene 1's (seq 3).
        assert_eq!(q.next_batch().unwrap()[0].seq, 2);
        assert_eq!(q.next_batch().unwrap()[0].seq, 3);
        assert!(q.next_batch().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn seq_breaks_same_tick_ties() {
        let mut q = RequestQueue::new(2, QueueConfig::default());
        q.offer(req(9, 4, 1));
        q.offer(req(9, 3, 0));
        assert_eq!(q.oldest(), Some((9, 3)));
        assert_eq!(q.next_batch().unwrap()[0].scene, 0, "lower seq wins the tie");
    }

    #[test]
    fn admission_sheds_at_max_depth() {
        let mut q = RequestQueue::new(1, QueueConfig { max_depth: 2, max_batch: 4 });
        assert!(q.offer(req(0, 0, 0)));
        assert!(q.offer(req(1, 1, 0)));
        assert!(!q.offer(req(2, 2, 0)), "third arrival exceeds depth 2");
        assert_eq!(q.shed_count(), 1);
        assert_eq!(q.depth(), 2);
        // Draining makes room again.
        q.next_batch();
        assert!(q.offer(req(3, 3, 0)));
    }

    #[test]
    #[should_panic(expected = "unknown scene")]
    fn out_of_catalog_scene_panics() {
        let mut q = RequestQueue::new(2, QueueConfig::default());
        q.offer(req(0, 0, 2));
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        let _ = RequestQueue::new(1, QueueConfig { max_depth: 4, max_batch: 0 });
    }
}
