//! The schema-versioned serve report: one JSON document per run.
//!
//! `spnerf_serve` prints exactly this document to stdout. The contract the
//! CI `serve-smoke` job pins is **byte equality**: the same trace and serve
//! configuration produce the same bytes at any render worker count and
//! under both the scalar and `simd` kernels. That works because nothing
//! environment-dependent is ever serialized — no wall-clock times, no
//! thread counts, no feature flags, no float formatting that could vary by
//! platform (Rust's `{}` float formatting is deterministic shortest-repr).
//!
//! Emission follows the same hand-rolled discipline as
//! `spnerf_bench::snapshot`: stable key order, fixed two-space indent, and
//! [`validate_report_json`] re-parses with the bench crate's strict JSON
//! parser so every emitted report is checked against its own schema before
//! the process exits 0.

use spnerf_bench::snapshot::{parse_json, Json};

/// Schema version emitted in `schema_version`.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Latency summary over served requests, in virtual ticks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean: f64,
    /// Fastest served request.
    pub min: f64,
    /// Slowest served request.
    pub max: f64,
    /// Nearest-rank 50th percentile.
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
}

impl LatencySummary {
    /// The all-zero summary an idle run (nothing served) reports.
    pub fn idle() -> Self {
        Self { mean: 0.0, min: 0.0, max: 0.0, p50: 0.0, p95: 0.0, p99: 0.0 }
    }
}

/// Cache counters and byte accounting of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheReport {
    /// Configured byte budget.
    pub budget_bytes: u64,
    /// Lookups served from a resident scene.
    pub hits: u64,
    /// Lookups that rebuilt the scene.
    pub misses: u64,
    /// Scenes evicted to keep the budget.
    pub evictions: u64,
    /// Scenes served without caching (alone above the budget).
    pub uncacheable: u64,
    /// Largest post-reconcile resident total observed.
    pub peak_resident_bytes: u64,
    /// Resident total when the run drained.
    pub final_resident_bytes: u64,
}

/// Per-tenant accounting: every admitted request's share of engine work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantReport {
    /// Requests this tenant sent.
    pub arrived: u64,
    /// Requests rendered to completion.
    pub served: u64,
    /// Requests refused at admission.
    pub shed: u64,
    /// Engine ticks charged to this tenant (batch service time split
    /// evenly across the batch, remainder to its earliest requests).
    pub work_ticks: u64,
}

/// The complete report of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// `"synthetic"` or `"replay"`.
    pub trace_source: String,
    /// Traffic seed (the synthesis seed; echoed as given for replays).
    pub seed: u64,
    /// Zipf exponent the traffic was drawn with (0 for replays unless the
    /// caller knows better — informational).
    pub zipf_s: f64,
    /// Arrival horizon in ticks.
    pub duration_ticks: u64,
    /// Virtual tick at which the last request completed (≥ horizon when
    /// the queue drained late).
    pub final_tick: u64,
    /// Total requests in the trace.
    pub requests: u64,
    /// Requests rendered to completion.
    pub served: u64,
    /// Requests refused at admission.
    pub shed: u64,
    /// Served requests per 1000 virtual ticks of horizon.
    pub throughput_per_kilotick: f64,
    /// Latency summary in virtual ticks.
    pub latency_ticks: LatencySummary,
    /// Cache counters.
    pub cache: CacheReport,
    /// Per-tenant accounting, indexed by tenant id.
    pub tenants: Vec<TenantReport>,
    /// FNV-1a digest over every response in completion order (hex,
    /// `0x` + 16 digits) — the bitwise-determinism witness.
    pub responses_digest: String,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    // JSON has no NaN/Infinity; a non-finite statistic is a harness bug.
    assert!(x.is_finite(), "non-finite value cannot be serialized to JSON");
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

impl Report {
    /// Serializes with stable key order and fixed indentation, so equal
    /// reports are equal byte-for-byte.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {REPORT_SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"trace_source\": \"{}\",\n", json_escape(&self.trace_source)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"zipf_s\": {},\n", json_f64(self.zipf_s)));
        out.push_str(&format!("  \"duration_ticks\": {},\n", self.duration_ticks));
        out.push_str(&format!("  \"final_tick\": {},\n", self.final_tick));
        out.push_str(&format!("  \"requests\": {},\n", self.requests));
        out.push_str(&format!("  \"served\": {},\n", self.served));
        out.push_str(&format!("  \"shed\": {},\n", self.shed));
        out.push_str(&format!(
            "  \"throughput_per_kilotick\": {},\n",
            json_f64(self.throughput_per_kilotick)
        ));
        let l = &self.latency_ticks;
        out.push_str("  \"latency_ticks\": {\n");
        out.push_str(&format!("    \"mean\": {},\n", json_f64(l.mean)));
        out.push_str(&format!("    \"min\": {},\n", json_f64(l.min)));
        out.push_str(&format!("    \"max\": {},\n", json_f64(l.max)));
        out.push_str(&format!("    \"p50\": {},\n", json_f64(l.p50)));
        out.push_str(&format!("    \"p95\": {},\n", json_f64(l.p95)));
        out.push_str(&format!("    \"p99\": {}\n", json_f64(l.p99)));
        out.push_str("  },\n");
        let c = &self.cache;
        out.push_str("  \"cache\": {\n");
        out.push_str(&format!("    \"budget_bytes\": {},\n", c.budget_bytes));
        out.push_str(&format!("    \"hits\": {},\n", c.hits));
        out.push_str(&format!("    \"misses\": {},\n", c.misses));
        out.push_str(&format!("    \"evictions\": {},\n", c.evictions));
        out.push_str(&format!("    \"uncacheable\": {},\n", c.uncacheable));
        out.push_str(&format!("    \"peak_resident_bytes\": {},\n", c.peak_resident_bytes));
        out.push_str(&format!("    \"final_resident_bytes\": {}\n", c.final_resident_bytes));
        out.push_str("  },\n");
        out.push_str("  \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            let comma = if i + 1 < self.tenants.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"tenant\": {i}, \"arrived\": {}, \"served\": {}, \"shed\": {}, \
                 \"work_ticks\": {} }}{comma}\n",
                t.arrived, t.served, t.shed, t.work_ticks
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"responses_digest\": \"{}\"\n", self.responses_digest));
        out.push_str("}\n");
        out
    }
}

fn require_u64(doc: &Json, key: &str, errors: &mut Vec<String>) -> Option<u64> {
    match doc.get(key).and_then(Json::as_f64) {
        Some(x) if x >= 0.0 && x.fract() == 0.0 => Some(x as u64),
        Some(x) => {
            errors.push(format!("`{key}` must be a non-negative integer, got {x}"));
            None
        }
        None => {
            errors.push(format!("missing numeric `{key}`"));
            None
        }
    }
}

fn require_f64(doc: &Json, key: &str, errors: &mut Vec<String>) -> Option<f64> {
    match doc.get(key).and_then(Json::as_f64) {
        Some(x) => Some(x),
        None => {
            errors.push(format!("missing numeric `{key}`"));
            None
        }
    }
}

/// Validates a report document against the schema this module emits:
/// version, required keys and types, digest format, and the cross-field
/// invariants (`requests = served + shed`, globally and per tenant;
/// latency ordering; cache bytes within budget).
///
/// # Errors
///
/// Returns every violation found (not just the first).
pub fn validate_report_json(text: &str) -> Result<(), Vec<String>> {
    let doc = parse_json(text).map_err(|e| vec![e])?;
    let mut errors = Vec::new();

    match doc.get("schema_version").and_then(Json::as_f64) {
        Some(v) if v == REPORT_SCHEMA_VERSION as f64 => {}
        Some(v) => errors.push(format!("schema_version {v} != {REPORT_SCHEMA_VERSION}")),
        None => errors.push("missing numeric `schema_version`".to_string()),
    }
    match doc.get("trace_source").and_then(Json::as_str) {
        Some("synthetic") | Some("replay") => {}
        Some(s) => errors.push(format!("trace_source must be synthetic|replay, got `{s}`")),
        None => errors.push("missing string `trace_source`".to_string()),
    }
    require_u64(&doc, "seed", &mut errors);
    if let Some(z) = require_f64(&doc, "zipf_s", &mut errors) {
        if z.is_nan() || z < 0.0 {
            errors.push(format!("zipf_s must be >= 0, got {z}"));
        }
    }
    require_u64(&doc, "duration_ticks", &mut errors);
    require_u64(&doc, "final_tick", &mut errors);
    require_f64(&doc, "throughput_per_kilotick", &mut errors);
    let requests = require_u64(&doc, "requests", &mut errors);
    let served = require_u64(&doc, "served", &mut errors);
    let shed = require_u64(&doc, "shed", &mut errors);
    if let (Some(r), Some(sv), Some(sh)) = (requests, served, shed) {
        if r != sv + sh {
            errors.push(format!("requests {r} != served {sv} + shed {sh}"));
        }
    }

    match doc.get("latency_ticks") {
        Some(lat) => {
            let v = |k: &str, errors: &mut Vec<String>| require_f64(lat, k, errors);
            let (mean, min, max) =
                (v("mean", &mut errors), v("min", &mut errors), v("max", &mut errors));
            let (p50, p95, p99) =
                (v("p50", &mut errors), v("p95", &mut errors), v("p99", &mut errors));
            if served.is_some_and(|s| s > 0) {
                if let (Some(mn), Some(p50), Some(p95), Some(p99), Some(mx), Some(mean)) =
                    (min, p50, p95, p99, max, mean)
                {
                    if !(mn <= p50 && p50 <= p95 && p95 <= p99 && p99 <= mx) {
                        errors.push(format!(
                            "latency percentiles out of order: min {mn}, p50 {p50}, p95 {p95}, \
                             p99 {p99}, max {mx}"
                        ));
                    }
                    if !(mn <= mean && mean <= mx) {
                        errors.push(format!("mean {mean} outside [{mn}, {mx}]"));
                    }
                }
            }
        }
        None => errors.push("missing object `latency_ticks`".to_string()),
    }

    match doc.get("cache") {
        Some(cache) => {
            let budget = require_u64(cache, "budget_bytes", &mut errors);
            for k in ["hits", "misses", "evictions", "uncacheable"] {
                require_u64(cache, k, &mut errors);
            }
            let peak = require_u64(cache, "peak_resident_bytes", &mut errors);
            let fin = require_u64(cache, "final_resident_bytes", &mut errors);
            if let (Some(b), Some(p)) = (budget, peak) {
                if p > b {
                    errors.push(format!("peak_resident_bytes {p} exceeds budget_bytes {b}"));
                }
            }
            if let (Some(p), Some(f)) = (peak, fin) {
                if f > p {
                    errors.push(format!("final_resident_bytes {f} exceeds peak {p}"));
                }
            }
        }
        None => errors.push("missing object `cache`".to_string()),
    }

    match doc.get("tenants").and_then(Json::as_array) {
        Some(tenants) if !tenants.is_empty() => {
            let (mut sum_served, mut sum_shed) = (0u64, 0u64);
            for (i, t) in tenants.iter().enumerate() {
                match require_u64(t, "tenant", &mut errors) {
                    Some(id) if id == i as u64 => {}
                    Some(id) => errors.push(format!("tenant[{i}] has id {id}")),
                    None => {}
                }
                let arrived = require_u64(t, "arrived", &mut errors);
                let served = require_u64(t, "served", &mut errors);
                let shed = require_u64(t, "shed", &mut errors);
                require_u64(t, "work_ticks", &mut errors);
                if let (Some(a), Some(sv), Some(sh)) = (arrived, served, shed) {
                    if a != sv + sh {
                        errors.push(format!("tenant[{i}]: arrived {a} != served {sv} + shed {sh}"));
                    }
                    sum_served += sv;
                    sum_shed += sh;
                }
            }
            if let (Some(sv), Some(sh)) = (served, shed) {
                if sum_served != sv || sum_shed != sh {
                    errors.push(format!(
                        "tenant totals (served {sum_served}, shed {sum_shed}) do not add up to \
                         globals (served {sv}, shed {sh})"
                    ));
                }
            }
        }
        Some(_) => errors.push("`tenants` must be non-empty".to_string()),
        None => errors.push("missing array `tenants`".to_string()),
    }

    match doc.get("responses_digest").and_then(Json::as_str) {
        Some(d)
            if d.len() == 18
                && d.starts_with("0x")
                && d[2..].chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()) => {}
        Some(d) => errors.push(format!("responses_digest `{d}` is not 0x + 16 lowercase hex")),
        None => errors.push("missing string `responses_digest`".to_string()),
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            trace_source: "synthetic".to_string(),
            seed: 42,
            zipf_s: 1.1,
            duration_ticks: 2000,
            final_tick: 2310,
            requests: 80,
            served: 74,
            shed: 6,
            throughput_per_kilotick: 37.0,
            latency_ticks: LatencySummary {
                mean: 120.5,
                min: 40.0,
                max: 400.0,
                p50: 110.0,
                p95: 300.0,
                p99: 390.0,
            },
            cache: CacheReport {
                budget_bytes: 1_500_000,
                hits: 60,
                misses: 14,
                evictions: 9,
                uncacheable: 0,
                peak_resident_bytes: 1_400_000,
                final_resident_bytes: 900_000,
            },
            tenants: vec![
                TenantReport { arrived: 40, served: 38, shed: 2, work_ticks: 4000 },
                TenantReport { arrived: 40, served: 36, shed: 4, work_ticks: 3900 },
            ],
            responses_digest: "0x0123456789abcdef".to_string(),
        }
    }

    #[test]
    fn emitted_reports_validate() {
        let json = sample().to_json();
        validate_report_json(&json).expect("own output must validate");
    }

    #[test]
    fn serialization_is_canonical() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b, "equal reports must serialize to equal bytes");
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.contains("\"zipf_s\": 1.1"));
        assert!(a.contains("\"throughput_per_kilotick\": 37.0"), "floats keep a decimal point");
    }

    #[test]
    fn idle_latency_summary_validates() {
        let mut r = sample();
        r.served = 0;
        r.shed = r.requests;
        r.latency_ticks = LatencySummary::idle();
        r.tenants = vec![
            TenantReport { arrived: 80, served: 0, shed: 80, work_ticks: 0 },
            TenantReport::default(),
        ];
        validate_report_json(&r.to_json()).expect("idle run must validate");
    }

    #[test]
    fn validation_catches_cross_field_lies() {
        let mut r = sample();
        r.served = 999; // breaks requests = served + shed AND tenant totals
        let errs = validate_report_json(&r.to_json()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("requests")), "{errs:?}");

        let mut r = sample();
        r.cache.peak_resident_bytes = r.cache.budget_bytes + 1;
        let errs = validate_report_json(&r.to_json()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("exceeds budget")), "{errs:?}");

        let mut r = sample();
        r.latency_ticks.p95 = r.latency_ticks.p99 + 100.0;
        let errs = validate_report_json(&r.to_json()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("out of order")), "{errs:?}");

        let mut r = sample();
        r.responses_digest = "0XDEADBEEF".to_string();
        let errs = validate_report_json(&r.to_json()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("responses_digest")), "{errs:?}");
    }

    #[test]
    fn validation_rejects_garbage_and_wrong_versions() {
        assert!(validate_report_json("not json").is_err());
        assert!(validate_report_json("{}").unwrap_err().len() > 5, "every gap reported");
        let wrong = sample().to_json().replace("\"schema_version\": 1", "\"schema_version\": 2");
        assert!(validate_report_json(&wrong)
            .unwrap_err()
            .iter()
            .any(|e| e.contains("schema_version")));
    }

    #[test]
    fn escaping_handles_hostile_strings() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(0.0025), "0.0025");
    }
}
