//! The serve engine: a discrete-event simulation of a multi-scene render
//! service.
//!
//! One engine drains one [`Trace`] against a scene catalog through the
//! byte-bounded [`SceneLru`] and the coalescing [`RequestQueue`]. Service
//! time is an **integer** function of the work the renderer reports
//! ([`service_ticks`]), so every latency — and therefore the whole report —
//! is a pure function of `(trace, config)`. The actual pixel rendering runs
//! through [`spnerf::RenderSession`] at whatever
//! [`RenderConfig::parallelism`] the caller configured; because the tile
//! renderer is bitwise-identical at any worker count, the response digests
//! and the report are too. That invariance is the subsystem's core claim
//! and `tests/determinism.rs` pins it.
//!
//! ## Event loop
//!
//! The virtual clock doubles as the engine-free time. Each iteration:
//!
//! 1. If the queue is empty, jump the clock to the next arrival.
//! 2. Admit every arrival at or before the clock (shedding past the depth
//!    bound), in trace order.
//! 3. Dispatch one batch (oldest-head scene, FIFO, coalesced), render it,
//!    and advance the clock by its service time.
//! 4. [`SceneLru::reconcile`] — rendering the baked path grows a scene's
//!    resident bytes lazily; accounting is eventual, enforced at the next
//!    reconcile point, and the **post-reconcile** peak is what the report's
//!    `peak_resident_bytes` tracks (and the schema bounds by the budget).
//!
//! Even view indices render the full SpNeRF masked decode; odd ones take
//! the bake-and-defer path, which is what exercises lazy residency growth
//! under a live cache. Requests of [`RequestKind::Trajectory`] render a
//! short orbit through the facade's temporal-reuse path instead
//! ([`trajectory_spec`] starts the orbit at the request's still view, so
//! frame 0 is bitwise the still render of that view); the whole path's
//! marched/shaded work is charged to the batch's service time, which is
//! where the warp amortization becomes visible in tail latency.

use std::sync::Arc;

use spnerf::pipeline::{RenderRequest, RenderSource};
use spnerf::render::eval::{percentile, SummaryStats};
use spnerf::render::renderer::{RenderConfig, RenderStats};
use spnerf::render::scene::default_camera;
use spnerf::trajectory::{PathKind, ReuseMode, TrajectoryRequest, TrajectorySpec};
use spnerf::Scene;
use spnerf_testkit::corpus::{Archetype, CorpusSpec, CORPUS_SEED};
use spnerf_testkit::digest::{digest_image, hex, Fnv64};
use spnerf_testkit::fixtures;

use crate::cache::SceneLru;
use crate::clock::{Ticks, VirtualClock};
use crate::queue::{QueueConfig, RequestQueue};
use crate::report::{CacheReport, LatencySummary, Report, TenantReport};
use crate::traffic::{RequestKind, Trace};

/// Bytes of scene state "paged in" per tick when a cache miss rebuilds a
/// scene — the load penalty that makes eviction decisions visible in tail
/// latency.
pub const LOAD_BYTES_PER_TICK: usize = 8192;

/// Marched samples (SGPU decodes) per tick.
pub const MARCH_PER_TICK: usize = 64;

/// Shaded samples (per-sample MLP evaluations) per tick.
pub const SHADE_PER_TICK: usize = 16;

/// Deferred per-pixel MLP evaluations per tick.
pub const PIXELS_PER_TICK: usize = 4;

/// How the scene catalog is built (fidelity of the serving corpus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogConfig {
    /// Cubic grid side of every catalog scene.
    pub side: u32,
    /// VQRF codebook size.
    pub codebook: usize,
    /// SpNeRF subgrid count.
    pub subgrids: usize,
    /// SpNeRF hash-table size per subgrid.
    pub table_size: usize,
    /// Square render resolution (pixels per side) of served views.
    pub image_px: u32,
}

/// Full serve-run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Byte budget of the scene cache.
    pub cache_bytes: usize,
    /// Queue bounds (depth for admission control, batch for coalescing).
    pub queue: QueueConfig,
    /// Catalog fidelity.
    pub catalog: CatalogConfig,
    /// Renderer configuration (parallelism, skipping, packets — none of
    /// which may change any serialized output).
    pub render: RenderConfig,
}

impl ServeConfig {
    /// The CI-speed preset: small scenes, a budget tight enough that five
    /// scenes cannot all stay resident (so eviction actually happens).
    pub fn quick() -> Self {
        Self {
            cache_bytes: 1_500_000,
            queue: QueueConfig::default(),
            catalog: CatalogConfig {
                side: 16,
                codebook: 16,
                subgrids: 4,
                table_size: 2048,
                image_px: 12,
            },
            render: fixtures::test_render_config(16),
        }
    }

    /// The default preset: moderate fidelity, still minutes-not-hours.
    pub fn standard() -> Self {
        Self {
            cache_bytes: 4_000_000,
            queue: QueueConfig::default(),
            catalog: CatalogConfig {
                side: 24,
                codebook: 32,
                subgrids: 4,
                table_size: 4096,
                image_px: 16,
            },
            render: fixtures::test_render_config(24),
        }
    }
}

/// The scene catalog: one [`CorpusSpec`] per trace scene index, cycling
/// the five archetypes with distinct seeds (`CORPUS_SEED + index`), so any
/// catalog size yields distinct labels and distinct content.
#[derive(Debug, Clone)]
pub struct Catalog {
    cfg: CatalogConfig,
    specs: Vec<CorpusSpec>,
}

impl Catalog {
    /// A catalog of `scene_count` corpus scenes at `cfg` fidelity.
    pub fn corpus(scene_count: usize, cfg: CatalogConfig) -> Self {
        let specs = (0..scene_count)
            .map(|i| {
                CorpusSpec::archetype_default(
                    Archetype::ALL[i % Archetype::ALL.len()],
                    cfg.side,
                    CORPUS_SEED + i as u64,
                )
            })
            .collect();
        Self { cfg, specs }
    }

    /// Number of catalog scenes.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The cache key / pipeline label of scene `index`.
    pub fn label(&self, index: usize) -> String {
        self.specs[index].label()
    }

    /// Builds scene `index` from scratch (the cache-miss path).
    pub fn build(&self, index: usize, samples_per_ray: usize) -> Scene {
        fixtures::corpus_scene(
            &self.specs[index],
            self.cfg.codebook,
            self.cfg.subgrids,
            self.cfg.table_size,
            samples_per_ray,
        )
    }
}

/// Azimuth advanced per trajectory frame, radians — the same step
/// [`TrajectorySpec::orbit`] uses, small enough that successive frames
/// warp well at any serve fidelity.
pub const TRAJECTORY_AZIMUTH_STEP: f32 = 0.045;

/// The orbit a [`RequestKind::Trajectory`] request renders: it starts at
/// the request's still view (the [`default_camera`] ring — radius 2.8,
/// elevation 0.45, azimuth `view / views` of a turn, focal `width · 1.1`),
/// so frame 0 is bitwise the still render of `view`, then sweeps
/// [`TRAJECTORY_AZIMUTH_STEP`] of azimuth per frame.
pub fn trajectory_spec(view: usize, views: usize, frames: usize, px: u32) -> TrajectorySpec {
    let start_azimuth = view as f32 / views.max(1) as f32 * std::f32::consts::TAU;
    let sweep = TRAJECTORY_AZIMUTH_STEP * frames.saturating_sub(1) as f32;
    TrajectorySpec::new(
        PathKind::Orbit { radius: 2.8, elevation: 0.45, start_azimuth, sweep },
        frames,
        px,
        px,
    )
}

/// Integer service-time model: one base tick, plus paging the scene in on
/// a miss, plus the renderer-reported work of the batch.
pub fn service_ticks(stats: &RenderStats, load_bytes: usize) -> Ticks {
    (1 + load_bytes / LOAD_BYTES_PER_TICK
        + stats.samples_marched / MARCH_PER_TICK
        + stats.samples_shaded / SHADE_PER_TICK
        + stats.pixels_shaded / PIXELS_PER_TICK) as Ticks
}

/// One served request, in completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedResponse {
    /// Global arrival sequence number.
    pub seq: u64,
    /// Requesting tenant.
    pub tenant: usize,
    /// Catalog scene index.
    pub scene: usize,
    /// Orbit view index.
    pub view: usize,
    /// Tick the batch started service.
    pub start: Ticks,
    /// Tick the batch completed.
    pub complete: Ticks,
    /// `complete - arrival tick`.
    pub latency: Ticks,
    /// FNV-1a digest of the rendered image.
    pub image_digest: u64,
}

/// Provenance of the trace, echoed into the report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// `"synthetic"` or `"replay"`.
    pub trace_source: String,
    /// Traffic seed (synthesis seed; informational for replays).
    pub seed: u64,
    /// Zipf exponent (0.0 for replays of unknown provenance).
    pub zipf_s: f64,
    /// Arrival horizon in ticks.
    pub duration_ticks: Ticks,
}

/// Everything one run produces: the report plus every served response (the
/// latter is what the determinism tests digest-compare).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// The schema-versioned report.
    pub report: Report,
    /// Every served response, in completion order.
    pub responses: Vec<ServedResponse>,
}

/// Runs the trace to completion and returns the report.
///
/// # Panics
///
/// Panics if the trace is empty of structure (zero scenes/tenants) or a
/// render fails — both are harness bugs, not load conditions.
pub fn run(trace: &Trace, cfg: &ServeConfig, meta: &RunMeta) -> ServeOutcome {
    assert!(trace.scenes > 0 && trace.tenants > 0, "trace must declare scenes and tenants");
    let catalog = Catalog::corpus(trace.scenes, cfg.catalog);
    let mut clock = VirtualClock::new();
    let mut cache: SceneLru<Scene> = SceneLru::new(cfg.cache_bytes);
    let mut queue = RequestQueue::new(trace.scenes, cfg.queue);
    let mut tenants = vec![TenantReport::default(); trace.tenants];
    let mut responses: Vec<ServedResponse> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut digest = Fnv64::new();
    let mut peak_resident = 0usize;
    let mut next = 0usize;

    while next < trace.requests.len() || !queue.is_empty() {
        if queue.is_empty() {
            // Idle engine: jump straight to the next arrival.
            clock.advance_to(trace.requests[next].tick);
        }
        // Admit everything that has arrived while the engine was busy (or
        // that just arrived), in trace order.
        while next < trace.requests.len() && trace.requests[next].tick <= clock.now() {
            let r = trace.requests[next];
            tenants[r.tenant].arrived += 1;
            if !queue.offer(r) {
                tenants[r.tenant].shed += 1;
            }
            next += 1;
        }
        let Some(batch) = queue.next_batch() else { continue };

        // Fetch (or rebuild) the batch's scene; a miss pays a paging
        // penalty proportional to the scene's resident footprint.
        let scene_idx = batch[0].scene;
        let label = catalog.label(scene_idx);
        let misses_before = cache.stats().misses;
        let scene: Arc<Scene> = cache
            .get_or_insert_with(&label, || catalog.build(scene_idx, cfg.render.samples_per_ray));
        let load_bytes =
            if cache.stats().misses > misses_before { scene.resident_bytes() } else { 0 };

        // Render the batch through one session: still requests with even
        // views take the full SpNeRF masked decode, odd views the
        // bake-and-defer path. Each source group goes down as one
        // coalesced batch request.
        let session = scene.session_with(cfg.render);
        let px = cfg.catalog.image_px;
        let mut stats = RenderStats::default();
        let mut image_digests = vec![0u64; batch.len()];
        for pass in 0..2 {
            let picks: Vec<usize> = (0..batch.len())
                .filter(|&i| {
                    batch[i].kind == RequestKind::Still && (batch[i].view % 2 == 0) == (pass == 0)
                })
                .collect();
            if picks.is_empty() {
                continue;
            }
            let source =
                if pass == 0 { RenderSource::spnerf_masked() } else { RenderSource::Baked };
            let cameras =
                picks.iter().map(|&i| default_camera(px, px, batch[i].view, trace.views)).collect();
            let resp = session
                .render(&RenderRequest::batch(source, cameras))
                .expect("serve render must not fail");
            stats += &resp.stats;
            for (slot, img) in picks.iter().zip(&resp.images) {
                image_digests[*slot] = digest_image(img);
            }
        }

        // Trajectory requests march the masked decode along a short orbit
        // with forward-warp reuse; the whole path's work lands in the
        // batch's service time and the response digest folds every frame.
        for (i, r) in batch.iter().enumerate() {
            let RequestKind::Trajectory { frames } = r.kind else { continue };
            let spec = trajectory_spec(r.view, trace.views, frames, px);
            let request = TrajectoryRequest::new(RenderSource::spnerf_masked(), spec)
                .with_mode(ReuseMode::warp());
            let resp = session.render_trajectory(&request).expect("serve trajectory must not fail");
            stats += &resp.stats;
            let mut fold = Fnv64::new();
            for frame in &resp.frames {
                fold.write_u64(digest_image(&frame.image));
            }
            image_digests[i] = fold.finish();
        }

        // Advance time and settle the books.
        let service = service_ticks(&stats, load_bytes);
        let start = clock.now();
        let complete = start + service;
        let share = service / batch.len() as Ticks;
        let remainder = service % batch.len() as Ticks;
        for (i, r) in batch.iter().enumerate() {
            let work = share + u64::from((i as Ticks) < remainder);
            tenants[r.tenant].served += 1;
            tenants[r.tenant].work_ticks += work;
            let latency = complete - r.tick;
            latencies.push(latency as f64);
            let served = ServedResponse {
                seq: r.seq,
                tenant: r.tenant,
                scene: r.scene,
                view: r.view,
                start,
                complete,
                latency,
                image_digest: image_digests[i],
            };
            digest.write_u64(served.seq);
            digest.write_u64(served.complete);
            digest.write_u64(served.latency);
            digest.write_u64(served.image_digest);
            responses.push(served);
        }
        clock.advance_to(complete);
        // Rendering the baked path may have grown the scene's resident
        // bytes; reconcile re-charges and evicts until the budget holds.
        cache.reconcile();
        peak_resident = peak_resident.max(cache.resident_bytes());
    }

    let served = responses.len() as u64;
    let shed = queue.shed_count();
    let final_tick = clock.now();
    let latency_ticks = if latencies.is_empty() {
        LatencySummary::idle()
    } else {
        let s = SummaryStats::from_values(&latencies);
        LatencySummary {
            mean: s.mean,
            min: s.min,
            max: s.max,
            p50: percentile(&latencies, 50.0),
            p95: percentile(&latencies, 95.0),
            p99: percentile(&latencies, 99.0),
        }
    };
    let cache_stats = cache.stats();
    let report = Report {
        trace_source: meta.trace_source.clone(),
        seed: meta.seed,
        zipf_s: meta.zipf_s,
        duration_ticks: meta.duration_ticks,
        final_tick,
        requests: trace.requests.len() as u64,
        served,
        shed,
        throughput_per_kilotick: served as f64 * 1000.0 / final_tick.max(1) as f64,
        latency_ticks,
        cache: CacheReport {
            budget_bytes: cfg.cache_bytes as u64,
            hits: cache_stats.hits,
            misses: cache_stats.misses,
            evictions: cache_stats.evictions,
            uncacheable: cache_stats.uncacheable,
            peak_resident_bytes: peak_resident as u64,
            final_resident_bytes: cache.resident_bytes() as u64,
        },
        tenants,
        responses_digest: hex(digest.finish()),
    };
    ServeOutcome { report, responses }
}

/// Rolling digest over served responses — the same fold [`run`] uses, so
/// tests can digest a response list independently.
pub fn responses_digest(responses: &[ServedResponse]) -> String {
    let mut h = Fnv64::new();
    for r in responses {
        h.write_u64(r.seq);
        h.write_u64(r.complete);
        h.write_u64(r.latency);
        h.write_u64(r.image_digest);
    }
    hex(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_report_json;
    use crate::traffic::{Request, TrafficConfig};

    fn tiny_trace() -> (Trace, RunMeta) {
        let cfg = TrafficConfig {
            seed: 7,
            duration_ticks: 600,
            scenes: 3,
            tenants: 2,
            views: 4,
            zipf_s: 1.1,
            mean_interarrival: 40,
        };
        let trace = Trace::synthesize(&cfg);
        let meta = RunMeta {
            trace_source: "synthetic".to_string(),
            seed: cfg.seed,
            zipf_s: cfg.zipf_s,
            duration_ticks: cfg.duration_ticks,
        };
        (trace, meta)
    }

    #[test]
    fn serve_run_is_deterministic_and_validates() {
        let (trace, meta) = tiny_trace();
        let cfg = ServeConfig::quick();
        let a = run(&trace, &cfg, &meta);
        let b = run(&trace, &cfg, &meta);
        assert_eq!(a, b, "same trace + config must reproduce bit-for-bit");
        assert!(a.report.served > 0, "the tiny trace must serve something");
        assert_eq!(a.report.responses_digest, responses_digest(&a.responses));
        validate_report_json(&a.report.to_json()).expect("report validates");
    }

    #[test]
    fn accounting_adds_up() {
        let (trace, meta) = tiny_trace();
        let out = run(&trace, &ServeConfig::quick(), &meta);
        let r = &out.report;
        assert_eq!(r.requests, r.served + r.shed);
        assert_eq!(r.served, out.responses.len() as u64);
        let tenant_served: u64 = r.tenants.iter().map(|t| t.served).sum();
        let tenant_shed: u64 = r.tenants.iter().map(|t| t.shed).sum();
        assert_eq!((tenant_served, tenant_shed), (r.served, r.shed));
        // Work conservation: per-tenant splits re-assemble every batch's
        // full service time, which can never exceed the clock horizon.
        let total_work: u64 = r.tenants.iter().map(|t| t.work_ticks).sum();
        assert!(total_work <= r.final_tick, "engine work cannot exceed elapsed time");
        // Latencies are causal: completion never precedes arrival.
        for resp in &out.responses {
            assert!(resp.complete >= resp.start);
            assert_eq!(resp.latency, resp.complete - trace.requests[resp.seq as usize].tick);
        }
    }

    #[test]
    fn service_ticks_charges_all_three_work_terms() {
        let stats = RenderStats {
            samples_marched: 640,
            samples_shaded: 160,
            pixels_shaded: 40,
            ..RenderStats::default()
        };
        assert_eq!(service_ticks(&stats, 0), 1 + 10 + 10 + 10);
        assert_eq!(
            service_ticks(&stats, LOAD_BYTES_PER_TICK * 5),
            1 + 5 + 30,
            "a cache miss adds the paging term"
        );
    }

    #[test]
    fn trajectory_frame0_is_bitwise_the_still_view() {
        let cfg = ServeConfig::quick();
        let catalog = Catalog::corpus(1, cfg.catalog);
        let scene = catalog.build(0, cfg.render.samples_per_ray);
        let session = scene.session_with(cfg.render);
        let px = cfg.catalog.image_px;
        let (view, views) = (3, 8);
        let still = session
            .render(&RenderRequest::batch(
                RenderSource::spnerf_masked(),
                vec![default_camera(px, px, view, views)],
            ))
            .expect("still renders");
        let spec = trajectory_spec(view, views, 4, px);
        let request = TrajectoryRequest::new(RenderSource::spnerf_masked(), spec)
            .with_mode(ReuseMode::warp());
        let traj = session.render_trajectory(&request).expect("trajectory renders");
        assert_eq!(traj.frames.len(), 4);
        assert_eq!(
            digest_image(&traj.frames[0].image),
            digest_image(&still.images[0]),
            "the orbit must start exactly at the request's still view"
        );
        assert!(
            traj.frames[1..].iter().all(|f| f.stats.rays_warped > 0),
            "frames 1.. must actually reuse"
        );
    }

    #[test]
    fn trajectory_requests_serve_and_charge_more_work_than_stills() {
        // Two single-request runs over the same scene and view: the only
        // difference is the kind, so the service-time gap is the
        // trajectory's extra frames (and its digest must differ, since it
        // folds every frame).
        let mk = |kind: RequestKind| Trace {
            scenes: 1,
            tenants: 1,
            views: 4,
            requests: vec![Request { tick: 0, seq: 0, tenant: 0, scene: 0, view: 2, kind }],
        };
        let meta = RunMeta {
            trace_source: "synthetic".to_string(),
            seed: 0,
            zipf_s: 0.0,
            duration_ticks: 0,
        };
        let cfg = ServeConfig::quick();
        let still = run(&mk(RequestKind::Still), &cfg, &meta);
        let traj = run(&mk(RequestKind::Trajectory { frames: 4 }), &cfg, &meta);
        assert_eq!((still.report.served, traj.report.served), (1, 1));
        let (s, t) = (&still.responses[0], &traj.responses[0]);
        assert!(
            t.latency > s.latency,
            "4 frames must outweigh 1 still even with reuse ({} vs {})",
            t.latency,
            s.latency
        );
        assert!(
            (t.latency as f64) < 4.0 * s.latency as f64,
            "warp reuse must amortize below 4 independent stills ({} vs {})",
            t.latency,
            s.latency
        );
        assert_ne!(t.image_digest, s.image_digest);
        validate_report_json(&traj.report.to_json()).expect("trajectory report validates");
    }

    #[test]
    fn catalog_cycles_archetypes_with_distinct_labels() {
        let catalog = Catalog::corpus(7, ServeConfig::quick().catalog);
        assert_eq!(catalog.len(), 7);
        let labels: Vec<String> = (0..7).map(|i| catalog.label(i)).collect();
        for (i, l) in labels.iter().enumerate() {
            for later in &labels[i + 1..] {
                assert_ne!(l, later, "labels must be distinct cache keys");
            }
        }
        // Index 5 reuses archetype 0 but with a different seed.
        assert!(labels[5].starts_with("dense-blob"));
        assert_ne!(labels[0], labels[5]);
    }
}
