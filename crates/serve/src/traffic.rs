//! Deterministic synthetic traffic: Zipf scene popularity, Poisson
//! arrivals, and a text replay format.
//!
//! A trace is the complete input of a serve run — every request's virtual
//! arrival tick, tenant, scene, and view. [`Trace::synthesize`] draws one
//! from the seeded rand shim (the only randomness in the crate, consumed
//! before the simulation starts), and the replay format round-trips it to
//! a text file so CI and bug reports can replay the exact same load:
//!
//! ```text
//! spnerf-serve-trace v1
//! scenes 5 tenants 4 views 8
//! 0 2 1 3        <- tick tenant scene view, ticks nondecreasing
//! 4 0 0 6
//! 9 1 0 2 4      <- optional 5th field: a 4-frame trajectory request
//! ```
//!
//! Scene popularity is Zipf(`s`): scene `i` is requested with weight
//! `1/(i+1)^s`, so a larger exponent concentrates load on the head scenes
//! (the regime where an LRU scene cache pays off). Arrivals are Poisson:
//! inter-arrival gaps are drawn from the exponential distribution with the
//! configured mean, quantized to whole ticks (gap 0 = a same-tick burst).
//! Tenants and views are uniform.
//!
//! Every [`TRAJECTORY_EVERY`]-th synthesized request (by sequence number)
//! asks for a short camera trajectory instead of a still — a pure function
//! of `seq`, never an RNG draw, so the still fields of a synthesized trace
//! are byte-identical to what the same seed produced before trajectory
//! requests existed. In the replay format a trajectory request carries its
//! frame count as an optional 5th field; plain 4-field rows stay stills,
//! so v1 replay files written before the field existed parse unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clock::Ticks;

/// Every `TRAJECTORY_EVERY`-th synthesized request is a trajectory request
/// (seqs 4, 9, 14, ... — derived from `seq`, never drawn from the RNG).
pub const TRAJECTORY_EVERY: u64 = 5;

/// Frame count of synthesized trajectory requests.
pub const TRAJECTORY_FRAMES: usize = 4;

/// What a request asks the engine to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RequestKind {
    /// One frame at the request's orbit view.
    #[default]
    Still,
    /// A short deterministic orbit of `frames` frames starting at the
    /// request's view, rendered with frame-to-frame reuse on the server.
    Trajectory {
        /// Frames along the path, at least 2.
        frames: usize,
    },
}

impl RequestKind {
    /// Frames this request renders (1 for a still).
    pub fn frames(&self) -> usize {
        match self {
            RequestKind::Still => 1,
            RequestKind::Trajectory { frames } => *frames,
        }
    }

    /// The kind [`Trace::synthesize`] assigns to sequence number `seq` — a
    /// pure function of `seq` so synthesis never spends an RNG draw on it.
    pub fn synthesized(seq: u64) -> Self {
        if seq % TRAJECTORY_EVERY == TRAJECTORY_EVERY - 1 {
            RequestKind::Trajectory { frames: TRAJECTORY_FRAMES }
        } else {
            RequestKind::Still
        }
    }
}

/// One camera request: who asks for what, when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Virtual arrival tick.
    pub tick: Ticks,
    /// Global arrival sequence number (0-based trace order; unique, so
    /// `(tick, seq)` totally orders requests).
    pub seq: u64,
    /// The requesting tenant, `0..tenants`.
    pub tenant: usize,
    /// Catalog scene index, `0..scenes`.
    pub scene: usize,
    /// Orbit view index, `0..views`.
    pub view: usize,
    /// Still frame or short trajectory.
    pub kind: RequestKind,
}

/// Knobs of [`Trace::synthesize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// RNG seed; equal seeds give equal traces, bit for bit.
    pub seed: u64,
    /// Arrivals stop after this tick (the service may run longer to drain).
    pub duration_ticks: Ticks,
    /// Catalog size requests are drawn over.
    pub scenes: usize,
    /// Tenant count (uniform).
    pub tenants: usize,
    /// Views per scene (uniform).
    pub views: usize,
    /// Zipf popularity exponent; `0` is uniform.
    pub zipf_s: f64,
    /// Mean inter-arrival gap in ticks.
    pub mean_interarrival: Ticks,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            duration_ticks: 4000,
            scenes: 5,
            tenants: 4,
            views: 8,
            zipf_s: 1.1,
            mean_interarrival: 24,
        }
    }
}

impl TrafficConfig {
    /// Checks every field, panicking with the offending field's name —
    /// `scenes: 0` used to surface as an index-out-of-bounds deep inside
    /// the Zipf CDF, which named neither the field nor the fix.
    ///
    /// # Panics
    ///
    /// Panics if `scenes`, `tenants`, or `views` is zero, if
    /// `mean_interarrival` is zero, or if `zipf_s` is negative or
    /// non-finite.
    pub fn validate(&self) {
        assert!(self.scenes >= 1, "TrafficConfig::scenes must be at least 1, got {}", self.scenes);
        assert!(
            self.tenants >= 1,
            "TrafficConfig::tenants must be at least 1, got {}",
            self.tenants
        );
        assert!(self.views >= 1, "TrafficConfig::views must be at least 1, got {}", self.views);
        assert!(
            self.mean_interarrival >= 1,
            "TrafficConfig::mean_interarrival must be at least 1 tick, got {}",
            self.mean_interarrival
        );
        assert!(
            self.zipf_s.is_finite() && self.zipf_s >= 0.0,
            "TrafficConfig::zipf_s must be finite and >= 0, got {}",
            self.zipf_s
        );
    }
}

/// A complete, ordered request trace plus the catalog bounds it was drawn
/// over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Catalog size every `Request::scene` is below.
    pub scenes: usize,
    /// Tenant count every `Request::tenant` is below.
    pub tenants: usize,
    /// View count every `Request::view` is below.
    pub views: usize,
    /// Requests in arrival order (`tick` nondecreasing, `seq` = index).
    pub requests: Vec<Request>,
}

/// Replay file magic line (`v1` is the format version).
const REPLAY_HEADER: &str = "spnerf-serve-trace v1";

impl Trace {
    /// Draws a trace from the config's seed. Pure: equal configs give
    /// equal traces.
    ///
    /// # Panics
    ///
    /// Panics via [`TrafficConfig::validate`] — with the offending field's
    /// name — if any count is zero, `mean_interarrival` is zero, or
    /// `zipf_s` is negative or non-finite.
    pub fn synthesize(cfg: &TrafficConfig) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let zipf_cdf = zipf_cdf(cfg.scenes, cfg.zipf_s);
        let mut requests = Vec::new();
        let mut tick: Ticks = 0;
        loop {
            // Exponential gap, quantized to whole ticks; `u < 1` keeps the
            // log argument positive. Gap 0 models a same-tick burst.
            let u: f64 = rng.gen();
            tick += (-(1.0 - u).ln() * cfg.mean_interarrival as f64).floor() as Ticks;
            if tick > cfg.duration_ticks {
                break;
            }
            let seq = requests.len() as u64;
            requests.push(Request {
                tick,
                seq,
                tenant: rng.gen_range(0..cfg.tenants),
                scene: sample_cdf(&zipf_cdf, rng.gen()),
                view: rng.gen_range(0..cfg.views),
                // Derived from seq, not drawn: the RNG stream (and so every
                // other field) matches pre-trajectory traces bit for bit.
                kind: RequestKind::synthesized(seq),
            });
        }
        Self { scenes: cfg.scenes, tenants: cfg.tenants, views: cfg.views, requests }
    }

    /// Serializes to the replay text format ([`Trace::parse_replay`]'s
    /// inverse; `parse_replay(&t.to_replay()) == Ok(t)`).
    pub fn to_replay(&self) -> String {
        let mut out = String::new();
        out.push_str(REPLAY_HEADER);
        out.push('\n');
        out.push_str(&format!(
            "scenes {} tenants {} views {}\n",
            self.scenes, self.tenants, self.views
        ));
        for r in &self.requests {
            match r.kind {
                RequestKind::Still => {
                    out.push_str(&format!("{} {} {} {}\n", r.tick, r.tenant, r.scene, r.view));
                }
                RequestKind::Trajectory { frames } => {
                    out.push_str(&format!(
                        "{} {} {} {} {frames}\n",
                        r.tick, r.tenant, r.scene, r.view
                    ));
                }
            }
        }
        out
    }

    /// Parses the replay text format, strictly: wrong magic, malformed
    /// rows, out-of-bounds fields, or ticks running backwards are errors
    /// (never silently skipped — a truncated replay must not "work").
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn parse_replay(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim_end() == REPLAY_HEADER => {}
            other => {
                return Err(format!(
                    "replay must start with `{REPLAY_HEADER}`, got {:?}",
                    other.unwrap_or("<empty file>")
                ))
            }
        }
        let bounds = lines.next().ok_or("replay missing the bounds line".to_string())?;
        let b: Vec<&str> = bounds.split_whitespace().collect();
        let bound = |i: usize, name: &str| -> Result<usize, String> {
            if b.len() != 6 || b[i * 2] != name {
                return Err(format!(
                    "bounds line must be `scenes N tenants N views N`: {bounds:?}"
                ));
            }
            match b[i * 2 + 1].parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("{name} count must be a positive integer: {bounds:?}")),
            }
        };
        let (scenes, tenants, views) =
            (bound(0, "scenes")?, bound(1, "tenants")?, bound(2, "views")?);

        let mut requests = Vec::new();
        let mut last_tick: Ticks = 0;
        for (lineno, line) in lines.enumerate() {
            let lineno = lineno + 3; // 1-based, after the two header lines
            if line.trim().is_empty() {
                return Err(format!("line {lineno}: blank lines are not allowed"));
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 && fields.len() != 5 {
                return Err(format!(
                    "line {lineno}: expected `tick tenant scene view [frames]`: {line:?}"
                ));
            }
            let int = |f: &str, what: &str| -> Result<u64, String> {
                f.parse::<u64>().map_err(|_| format!("line {lineno}: bad {what} `{f}`"))
            };
            let tick = int(fields[0], "tick")?;
            let tenant = int(fields[1], "tenant")? as usize;
            let scene = int(fields[2], "scene")? as usize;
            let view = int(fields[3], "view")? as usize;
            // The optional 5th field is a trajectory frame count; a
            // 4-field row is a still, so pre-trajectory replays parse
            // unchanged.
            let kind = match fields.get(4) {
                None => RequestKind::Still,
                Some(f) => match int(f, "frame count")? as usize {
                    frames if frames >= 2 => RequestKind::Trajectory { frames },
                    frames => {
                        return Err(format!(
                            "line {lineno}: a trajectory needs at least 2 frames, got {frames} \
                             (drop the field for a still)"
                        ))
                    }
                },
            };
            if tick < last_tick {
                return Err(format!("line {lineno}: tick {tick} runs backwards (< {last_tick})"));
            }
            if tenant >= tenants || scene >= scenes || view >= views {
                return Err(format!("line {lineno}: field out of bounds: {line:?}"));
            }
            last_tick = tick;
            requests.push(Request { tick, seq: requests.len() as u64, tenant, scene, view, kind });
        }
        Ok(Self { scenes, tenants, views, requests })
    }
}

/// The cumulative Zipf(`s`) distribution over `n` ranks, normalized to end
/// at exactly 1. A distribution over zero ranks does not exist, and the
/// `cdf[n - 1]` pin below would otherwise turn `n == 0` into an opaque
/// index-out-of-bounds; [`TrafficConfig::validate`] rejects it upstream
/// with the field name, this assert keeps the helper safe on its own.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    assert!(n >= 1, "zipf_cdf requires at least one rank, got n = 0");
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect();
    cdf[n - 1] = 1.0;
    cdf
}

/// Inverts a CDF at `u ∈ [0, 1)`: the first rank whose cumulative weight
/// exceeds `u`.
fn sample_cdf(cdf: &[f64], u: f64) -> usize {
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic_and_ordered() {
        let cfg = TrafficConfig::default();
        let a = Trace::synthesize(&cfg);
        let b = Trace::synthesize(&cfg);
        assert_eq!(a, b, "equal configs must give equal traces");
        assert!(!a.requests.is_empty());
        for w in a.requests.windows(2) {
            assert!(w[0].tick <= w[1].tick, "ticks must be nondecreasing");
            assert_eq!(w[0].seq + 1, w[1].seq);
        }
        for r in &a.requests {
            assert!(r.tenant < cfg.tenants && r.scene < cfg.scenes && r.view < cfg.views);
            assert!(r.tick <= cfg.duration_ticks);
            // Trajectory requests are a pure function of seq.
            assert_eq!(r.kind, RequestKind::synthesized(r.seq));
        }
        assert!(
            a.requests.iter().any(|r| r.kind != RequestKind::Still),
            "the default trace must include trajectory requests"
        );
        let c = Trace::synthesize(&TrafficConfig { seed: 43, ..cfg });
        assert_ne!(a, c, "different seeds must move the traffic");
    }

    #[test]
    fn trajectory_kind_cadence_never_consumes_rng() {
        assert_eq!(RequestKind::synthesized(0), RequestKind::Still);
        assert_eq!(
            RequestKind::synthesized(TRAJECTORY_EVERY - 1),
            RequestKind::Trajectory { frames: TRAJECTORY_FRAMES }
        );
        assert_eq!(RequestKind::Still.frames(), 1);
        assert_eq!(RequestKind::Trajectory { frames: 6 }.frames(), 6);
        // The trajectory cadence by seq, with every other field drawn from
        // the same RNG stream as always: the seed-42 head tick/tenant
        // values are pinned so an accidental extra RNG draw (which would
        // silently reshuffle every pre-trajectory trace) fails loudly.
        let a = Trace::synthesize(&TrafficConfig::default());
        let head: Vec<(Ticks, usize)> =
            a.requests.iter().take(4).map(|r| (r.tick, r.tenant)).collect();
        assert_eq!(head, [(40, 1), (77, 1), (82, 0), (109, 1)], "RNG stream moved");
    }

    #[test]
    fn zipf_skews_toward_head_scenes() {
        let skewed = Trace::synthesize(&TrafficConfig {
            zipf_s: 1.4,
            duration_ticks: 50_000,
            mean_interarrival: 5,
            ..Default::default()
        });
        let mut counts = vec![0usize; skewed.scenes];
        for r in &skewed.requests {
            counts[r.scene] += 1;
        }
        assert!(
            counts[0] > 2 * counts[4],
            "scene 0 must dominate the tail under s=1.4: {counts:?}"
        );
        // s = 0 is uniform: no scene should dominate.
        let uniform = Trace::synthesize(&TrafficConfig {
            zipf_s: 0.0,
            duration_ticks: 50_000,
            mean_interarrival: 5,
            ..Default::default()
        });
        let mut u = vec![0usize; uniform.scenes];
        for r in &uniform.requests {
            u[r.scene] += 1;
        }
        let (min, max) = (u.iter().min().unwrap(), u.iter().max().unwrap());
        assert!(*max < 2 * *min, "uniform draw must stay balanced: {u:?}");
    }

    #[test]
    fn replay_round_trips_bit_for_bit() {
        let trace = Trace::synthesize(&TrafficConfig::default());
        let text = trace.to_replay();
        let back = Trace::parse_replay(&text).expect("own output must parse");
        assert_eq!(back, trace);
        assert_eq!(back.to_replay(), text, "serialization must be canonical");
    }

    #[test]
    fn parse_rejects_malformed_replays() {
        let ok = Trace::synthesize(&TrafficConfig::default()).to_replay();
        for (mutation, why) in
            [("other-header v1", "wrong magic"), ("spnerf-serve-trace v2", "wrong version")]
        {
            let bad = ok.replacen(REPLAY_HEADER, mutation, 1);
            assert!(Trace::parse_replay(&bad).is_err(), "{why} must be rejected");
        }
        assert!(Trace::parse_replay("").is_err());
        assert!(Trace::parse_replay(REPLAY_HEADER).is_err(), "missing bounds line");

        let head = format!("{REPLAY_HEADER}\nscenes 2 tenants 2 views 2\n");
        assert!(Trace::parse_replay(&format!("{head}0 0 0\n")).is_err(), "short row");
        assert!(Trace::parse_replay(&format!("{head}0 0 0 0 4 9\n")).is_err(), "long row");
        assert!(Trace::parse_replay(&format!("{head}0 0 0 0 1\n")).is_err(), "1-frame path");
        assert!(Trace::parse_replay(&format!("{head}0 0 0 0 0\n")).is_err(), "0-frame path");
        assert!(Trace::parse_replay(&format!("{head}0 0 0 0 x\n")).is_err(), "bad frame count");
        assert!(Trace::parse_replay(&format!("{head}0 0 2 0\n")).is_err(), "scene out of bounds");
        assert!(Trace::parse_replay(&format!("{head}0 2 0 0\n")).is_err(), "tenant out of bounds");
        assert!(Trace::parse_replay(&format!("{head}0 0 0 2\n")).is_err(), "view out of bounds");
        assert!(Trace::parse_replay(&format!("{head}5 0 0 0\n3 0 0 0\n")).is_err(), "time travel");
        assert!(Trace::parse_replay(&format!("{head}x 0 0 0\n")).is_err(), "non-integer tick");
        assert!(Trace::parse_replay(&format!("{head}\n0 0 0 0\n")).is_err(), "blank line");
        assert!(
            Trace::parse_replay(&format!("{REPLAY_HEADER}\nscenes 0 tenants 2 views 2\n")).is_err(),
            "zero scene count"
        );

        // An empty request list with valid headers is a valid (idle) trace.
        let idle = Trace::parse_replay(&head).unwrap();
        assert!(idle.requests.is_empty());
        assert_eq!((idle.scenes, idle.tenants, idle.views), (2, 2, 2));
    }

    #[test]
    fn four_field_rows_stay_stills_and_five_field_rows_carry_frames() {
        // A pre-trajectory replay file (all 4-field rows) must parse
        // exactly as it always did: every request a still.
        let text = format!("{REPLAY_HEADER}\nscenes 2 tenants 2 views 2\n0 0 1 1\n3 1 0 0\n");
        let old = Trace::parse_replay(&text).expect("v1 4-field replay parses");
        assert!(old.requests.iter().all(|r| r.kind == RequestKind::Still));
        assert_eq!(old.to_replay(), text, "still rows serialize back to 4 fields");

        let text = format!("{REPLAY_HEADER}\nscenes 2 tenants 2 views 2\n0 0 1 1\n3 1 0 0 6\n");
        let mixed = Trace::parse_replay(&text).expect("5-field rows parse");
        assert_eq!(mixed.requests[0].kind, RequestKind::Still);
        assert_eq!(mixed.requests[1].kind, RequestKind::Trajectory { frames: 6 });
        assert_eq!(mixed.to_replay(), text, "frame counts round-trip");
    }

    #[test]
    fn config_validation_names_the_offending_field() {
        let field = |cfg: TrafficConfig| {
            std::panic::catch_unwind(move || cfg.validate())
                .err()
                .and_then(|e| e.downcast_ref::<String>().cloned())
                .expect("validate must panic with a message")
        };
        let ok = TrafficConfig::default();
        ok.validate(); // the default config is valid

        assert!(field(TrafficConfig { scenes: 0, ..ok }).contains("scenes"));
        assert!(field(TrafficConfig { tenants: 0, ..ok }).contains("tenants"));
        assert!(field(TrafficConfig { views: 0, ..ok }).contains("views"));
        assert!(field(TrafficConfig { mean_interarrival: 0, ..ok }).contains("mean_interarrival"));
        assert!(field(TrafficConfig { zipf_s: -1.0, ..ok }).contains("zipf_s"));
        assert!(field(TrafficConfig { zipf_s: f64::NAN, ..ok }).contains("zipf_s"));
    }

    #[test]
    #[should_panic(expected = "TrafficConfig::scenes must be at least 1")]
    fn synthesize_rejects_an_empty_catalog_by_name() {
        // Regression: this used to die as `index out of bounds` inside
        // `zipf_cdf` without ever naming the zero field.
        let _ = Trace::synthesize(&TrafficConfig { scenes: 0, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_cdf_rejects_zero_ranks() {
        let _ = zipf_cdf(0, 1.0);
    }

    #[test]
    fn zipf_cdf_is_well_formed() {
        let cdf = zipf_cdf(5, 1.1);
        assert_eq!(cdf.len(), 5);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert_eq!(cdf[4], 1.0, "normalized to exactly 1");
        assert_eq!(sample_cdf(&cdf, 0.0), 0);
        assert_eq!(sample_cdf(&cdf, 0.999_999), 4);
        // Uniform case: every rank gets an equal slice.
        let u = zipf_cdf(4, 0.0);
        assert!((u[0] - 0.25).abs() < 1e-12);
    }
}
