//! Property tests over the byte-bounded LRU and the coalescing queue:
//! the budget is never exceeded, evictions leave in exactly LRU order,
//! and batches preserve per-scene FIFO under the depth bound.

use proptest::prelude::*;

use std::sync::atomic::{AtomicUsize, Ordering};

use spnerf_serve::cache::{Resident, SceneLru};
use spnerf_serve::queue::{QueueConfig, RequestQueue};
use spnerf_serve::traffic::{Request, RequestKind};

/// A resident value whose size can be changed after insertion, standing in
/// for a scene whose baked grid materializes lazily.
struct Blob(AtomicUsize);

impl Blob {
    fn new(bytes: usize) -> Self {
        Self(AtomicUsize::new(bytes))
    }
}

impl Resident for Blob {
    fn resident_bytes(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The LRU against a tiny reference model: identical key order (which
    // fixes eviction order), identical resident bytes, budget never
    // exceeded.
    #[test]
    fn lru_matches_the_reference_model(
        budget in 0usize..300,
        ops in proptest::collection::vec((0usize..8, 0usize..140), 1..60),
    ) {
        let mut lru: SceneLru<Blob> = SceneLru::new(budget);
        // Reference: (key, charged) pairs, LRU at the front.
        let mut model: Vec<(String, usize)> = Vec::new();

        for (key_idx, size) in ops {
            let key = format!("scene-{key_idx}");
            lru.get_or_insert_with(&key, || Blob::new(size));

            if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                // Hit: recency refresh only — the stored size wins, the
                // builder (and its new size) must never run.
                let entry = model.remove(pos);
                model.push(entry);
            } else if size <= budget {
                let mut total: usize = model.iter().map(|(_, s)| s).sum();
                while total + size > budget {
                    let (_, gone) = model.remove(0);
                    total -= gone;
                }
                model.push((key, size));
            }
            // else: uncacheable, model unchanged.

            let model_keys: Vec<&str> = model.iter().map(|(k, _)| k.as_str()).collect();
            prop_assert_eq!(lru.keys(), model_keys, "recency order diverged");
            let model_bytes: usize = model.iter().map(|(_, s)| s).sum();
            prop_assert_eq!(lru.resident_bytes(), model_bytes);
            prop_assert!(lru.resident_bytes() <= budget, "budget invariant broken");
        }
    }

    // Growth + reconcile: whatever sizes entries grow to, reconcile
    // restores the budget and evicts a *prefix* of the recency order
    // (LRU-first), never a middle entry.
    #[test]
    fn reconcile_evicts_exactly_a_lru_prefix(
        budget in 50usize..400,
        sizes in proptest::collection::vec(1usize..80, 1..8),
        growth in proptest::collection::vec(0usize..200, 1..8),
    ) {
        let mut lru: SceneLru<Blob> = SceneLru::new(budget);
        let mut held = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            held.push(lru.get_or_insert_with(&format!("s{i}"), || Blob::new(size)));
        }
        let before: Vec<String> = lru.keys().iter().map(|k| k.to_string()).collect();

        for (blob, &grown) in held.iter().zip(growth.iter()) {
            blob.0.store(grown, Ordering::Relaxed);
        }
        let evicted = lru.reconcile();

        prop_assert!(lru.resident_bytes() <= budget, "reconcile must restore the budget");
        let after = lru.keys();
        prop_assert_eq!(before.len() - evicted, after.len());
        // Survivors are exactly the most-recent suffix of the old order.
        let suffix: Vec<&str> = before[evicted..].iter().map(|s| s.as_str()).collect();
        prop_assert_eq!(after, suffix, "eviction must consume the LRU prefix in order");
    }

    // The queue: admission respects the depth bound exactly; every batch
    // is single-scene, bounded, and drains each scene in FIFO order.
    #[test]
    fn queue_batches_are_fifo_bounded_and_single_scene(
        deltas in proptest::collection::vec(0u64..10, 1..80),
        scenes in proptest::collection::vec(0usize..4, 1..80),
        max_depth in 1usize..12,
        max_batch in 1usize..6,
    ) {
        let n = deltas.len().min(scenes.len());
        let mut q = RequestQueue::new(4, QueueConfig { max_depth, max_batch });
        let mut tick = 0u64;
        let mut admitted: Vec<Request> = Vec::new();
        let mut shed = 0u64;
        for i in 0..n {
            tick += deltas[i];
            let req = Request { tick, seq: i as u64, tenant: 0, scene: scenes[i], view: 0, kind: RequestKind::Still };
            prop_assert!(q.depth() <= max_depth);
            if q.offer(req) {
                admitted.push(req);
            } else {
                shed += 1;
                prop_assert_eq!(q.depth(), max_depth, "shedding below the bound");
            }
        }
        prop_assert_eq!(q.shed_count(), shed);

        // Drain completely; reassemble per-scene orderings.
        let mut drained: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let mut total = 0usize;
        while let Some(batch) = q.next_batch() {
            prop_assert!(!batch.is_empty() && batch.len() <= max_batch);
            let scene = batch[0].scene;
            prop_assert!(batch.iter().all(|r| r.scene == scene), "batch mixed scenes");
            drained[scene].extend(batch.iter().map(|r| r.seq));
            total += batch.len();
        }
        prop_assert_eq!(total, admitted.len(), "every admitted request must dispatch");
        for (scene, got) in drained.iter().enumerate() {
            let expected: Vec<u64> =
                admitted.iter().filter(|r| r.scene == scene).map(|r| r.seq).collect();
            prop_assert_eq!(got, &expected, "scene {} broke FIFO", scene);
        }
    }
}
