//! The serve subsystem's headline contract: a run is a pure function of
//! `(trace, config)` — same seed and replay produce **byte-identical**
//! reports and response digests at any render worker count, and eviction
//! pressure never pushes the cache past its byte budget.

use spnerf_serve::report::validate_report_json;
use spnerf_serve::server::{responses_digest, run, Catalog, CatalogConfig, RunMeta, ServeConfig};
use spnerf_serve::traffic::{Trace, TrafficConfig};

/// A deliberately small operating point so debug-mode CI stays fast: tiny
/// scenes, short horizon, and a budget tight enough that the catalog
/// cannot all stay resident.
fn test_config() -> ServeConfig {
    ServeConfig {
        cache_bytes: 600_000,
        catalog: CatalogConfig {
            side: 12,
            codebook: 16,
            subgrids: 4,
            table_size: 1024,
            image_px: 10,
        },
        ..ServeConfig::quick()
    }
}

fn test_traffic() -> (Trace, RunMeta) {
    let cfg = TrafficConfig {
        seed: 9,
        duration_ticks: 500,
        scenes: 4,
        tenants: 3,
        views: 6,
        zipf_s: 1.2,
        mean_interarrival: 20,
    };
    let trace = Trace::synthesize(&cfg);
    let meta = RunMeta {
        trace_source: "synthetic".to_string(),
        seed: cfg.seed,
        zipf_s: cfg.zipf_s,
        duration_ticks: cfg.duration_ticks,
    };
    (trace, meta)
}

#[test]
fn worker_counts_and_packet_sizes_change_no_byte() {
    let (trace, meta) = test_traffic();
    let base = test_config();

    let serial = run(&trace, &base, &meta);
    assert!(serial.report.served > 0, "the test trace must serve something");
    validate_report_json(&serial.report.to_json()).expect("report validates");

    // Worker counts 1, 4, and auto (0 = all cores), plus a packet-size
    // change: none of them may alter a single byte of the report or any
    // served response.
    for (threads, packet) in [(1, 1), (4, 1), (0, 1), (1, 4), (4, 8)] {
        let mut cfg = base;
        cfg.render.parallelism = threads;
        cfg.render.packet_size = packet;
        let out = run(&trace, &cfg, &meta);
        assert_eq!(out, serial, "threads={threads} packet={packet} diverged from the serial run");
        assert_eq!(out.report.to_json(), serial.report.to_json(), "serialized bytes must match");
        assert_eq!(out.report.responses_digest, responses_digest(&serial.responses));
    }
}

#[test]
fn same_seed_twice_is_byte_identical_and_seeds_differ() {
    let (trace, meta) = test_traffic();
    let cfg = test_config();
    let a = run(&trace, &cfg, &meta);
    let b = run(&trace, &cfg, &meta);
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.responses, b.responses);

    // A different seed must actually change the workload (the digest is a
    // real witness, not a constant).
    let other = TrafficConfig {
        seed: 10,
        duration_ticks: 500,
        scenes: 4,
        tenants: 3,
        views: 6,
        zipf_s: 1.2,
        mean_interarrival: 20,
    };
    let other_trace = Trace::synthesize(&other);
    let other_meta = RunMeta { seed: other.seed, ..meta.clone() };
    let c = run(&other_trace, &cfg, &other_meta);
    assert_ne!(
        c.report.responses_digest, a.report.responses_digest,
        "different seeds must produce different response streams"
    );
}

#[test]
fn replay_round_trip_reproduces_the_run_bit_for_bit() {
    let (trace, meta) = test_traffic();
    let cfg = test_config();

    let text = trace.to_replay();
    let replayed = Trace::parse_replay(&text).expect("own replay parses");
    assert_eq!(replayed, trace, "replay round-trip must preserve the trace exactly");

    let live = run(&trace, &cfg, &meta);
    let from_replay = run(&replayed, &cfg, &meta);
    assert_eq!(from_replay, live, "a replayed trace must reproduce the run bit-for-bit");
}

#[test]
fn eviction_under_pressure_never_exceeds_the_budget() {
    let (trace, meta) = test_traffic();
    // Room for roughly one and a half scenes: every popularity shift
    // evicts, but nothing is uncacheable.
    let mut cfg = test_config();
    let probe = Catalog::corpus(1, cfg.catalog).build(0, cfg.render.samples_per_ray);
    cfg.cache_bytes = probe.resident_bytes() * 3 / 2;
    let out = run(&trace, &cfg, &meta);
    let c = &out.report.cache;
    assert!(c.evictions > 0, "pressure must actually evict (got {c:?})");
    assert!(c.misses > c.hits, "a one-scene budget thrashes");
    assert!(c.peak_resident_bytes <= c.budget_bytes, "{c:?}");
    assert!(c.final_resident_bytes <= c.peak_resident_bytes, "{c:?}");
    validate_report_json(&out.report.to_json()).expect("pressured report still validates");
}

#[test]
fn shedding_kicks_in_under_burst_and_books_balance() {
    let burst = TrafficConfig {
        seed: 3,
        duration_ticks: 300,
        scenes: 3,
        tenants: 2,
        views: 4,
        zipf_s: 1.0,
        mean_interarrival: 2, // far faster than the engine can serve
    };
    let trace = Trace::synthesize(&burst);
    let meta = RunMeta {
        trace_source: "synthetic".to_string(),
        seed: burst.seed,
        zipf_s: burst.zipf_s,
        duration_ticks: burst.duration_ticks,
    };
    let mut cfg = test_config();
    cfg.queue.max_depth = 6;
    let out = run(&trace, &cfg, &meta);
    let r = &out.report;
    assert!(r.shed > 0, "a saturating burst against depth 6 must shed");
    assert_eq!(r.requests, r.served + r.shed);
    let per_tenant: (u64, u64, u64) = r
        .tenants
        .iter()
        .fold((0, 0, 0), |acc, t| (acc.0 + t.arrived, acc.1 + t.served, acc.2 + t.shed));
    assert_eq!(per_tenant, (r.requests, r.served, r.shed), "tenant books must balance");
    validate_report_json(&r.to_json()).expect("shedding report validates");
}

#[test]
fn reports_never_echo_the_execution_environment() {
    let (trace, meta) = test_traffic();
    let mut cfg = test_config();
    cfg.render.parallelism = 4;
    let json = run(&trace, &cfg, &meta).report.to_json();
    for leak in ["threads", "parallelism", "simd", "worker"] {
        assert!(!json.contains(leak), "report must not mention `{leak}`:\n{json}");
    }
}
