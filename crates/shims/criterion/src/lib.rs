//! Offline vendored shim for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no registry access, so the workspace pins
//! `criterion` to this path crate. It provides [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros, with the two
//! execution modes the repo's CI relies on:
//!
//! * **bench mode** (`cargo bench`): calibrated warm-up, then timed
//!   samples; prints mean ns/iter and, when a [`Throughput`] is set,
//!   elements or bytes per second;
//! * **test mode** (`cargo bench -- --test`): runs every benchmark body
//!   exactly once so harnesses can never silently rot, without spending
//!   CI minutes on measurement.
//!
//! A positional CLI argument filters benchmarks by substring, mirroring
//! real criterion. HTML reports, statistical analysis, and comparison
//! baselines are intentionally out of scope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    mean_ns: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Bench,
    Test,
}

impl Bencher {
    /// Calls `f` repeatedly and records the mean wall-clock time per call
    /// (once, untimed, in `--test` mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.mode == Mode::Test {
            black_box(f());
            return;
        }
        // Calibrate the batch size so one sample costs ~10 ms.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut total = Duration::ZERO;
        let mut iters = 0usize;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Top-level benchmark driver, configured from the CLI arguments that
/// `cargo bench` forwards after `--`.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: Mode::Bench, filter: None, sample_size: 20 }
    }
}

impl Criterion {
    /// Applies CLI arguments: `--test` selects run-once test mode, a
    /// positional argument filters benchmark ids by substring, and the
    /// other flags real criterion accepts are either handled or rejected.
    ///
    /// Unrecognized `-`/`--` flags abort with exit code 1 rather than being
    /// ignored: silently treating a flag's *value* as a filter would make
    /// every benchmark "not match" and let CI pass while running nothing.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.mode = Mode::Test,
                "--bench" | "--verbose" | "--quiet" | "--noplot" | "--exact" => {}
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                | "--baseline" => {
                    args.next();
                }
                other if other.starts_with('-') => {
                    eprintln!(
                        "criterion-shim: unrecognized flag `{other}` \
                         (supported: --test, --bench, --sample-size N, a substring filter)"
                    );
                    std::process::exit(1);
                }
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.sample_size;
        self.run_one(id, None, samples, f);
        self
    }

    /// Prints the closing line real criterion emits at process end.
    pub fn final_summary(&mut self) {
        if self.mode == Mode::Test {
            println!("criterion-shim: all benchmarks ran once (test mode)");
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        samples: usize,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { mode: self.mode, samples, mean_ns: 0.0 };
        f(&mut b);
        match self.mode {
            Mode::Test => println!("{id}: ok (ran once, test mode)"),
            Mode::Bench => {
                let rate = throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!(" ({:.3e} elem/s)", n as f64 * 1e9 / b.mean_ns.max(1e-9))
                    }
                    Throughput::Bytes(n) => {
                        format!(" ({:.3e} B/s)", n as f64 * 1e9 / b.mean_ns.max(1e-9))
                    }
                });
                println!("{id:<48} time: {:>12.1} ns/iter{}", b.mean_ns, rate.unwrap_or_default());
            }
        }
    }
}

/// A named set of benchmarks sharing throughput and sample-size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed by one iteration of each benchmark.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark inside the group (id printed as `group/id`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, samples, f);
        self
    }

    /// Closes the group. (No-op in the shim; kept for API parity.)
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { mode: Mode::Test, filter: None, sample_size: 3 };
        let mut ran = 0u32;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { mode: Mode::Test, filter: Some("yes".into()), sample_size: 3 };
        let mut ran = 0u32;
        c.bench_function("no_match", |b| b.iter(|| ran += 1));
        c.bench_function("yes_match", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn group_prefixes_and_runs() {
        let mut c =
            Criterion { mode: Mode::Test, filter: Some("grp/inner".into()), sample_size: 3 };
        let mut ran = 0u32;
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn bench_mode_measures() {
        let mut c = Criterion { mode: Mode::Bench, filter: None, sample_size: 2 };
        let mut g = c.benchmark_group("m");
        g.bench_function("spin", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
