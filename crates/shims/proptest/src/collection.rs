//! Collection strategies: [`vec()`] with exact or ranged sizes.

use core::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies: an exact length or a
/// half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Strategy generating a `Vec` whose length is drawn from `size` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy produced by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + if span <= 1 { 0 } else { (rng.next_u64() % span) as usize };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_vec() {
        let mut rng = TestRng::deterministic("collection::exact");
        let s = vec(0.0f32..1.0, 39);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut rng).len(), 39);
        }
    }

    #[test]
    fn ranged_size_vec() {
        let mut rng = TestRng::deterministic("collection::ranged");
        let s = vec(0u32..10, 1..6);
        let mut seen = [false; 6];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..6).contains(&v.len()));
            seen[v.len()] = true;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen[1..6].iter().all(|&s| s), "all lengths 1..6 reachable");
    }

    #[test]
    fn nested_vec() {
        let mut rng = TestRng::deterministic("collection::nested");
        let s = vec(vec(-1.0f32..1.0, 3), 2..4);
        let v = s.generate(&mut rng);
        assert!((2..4).contains(&v.len()));
        assert!(v.iter().all(|inner| inner.len() == 3));
    }
}
