//! Offline vendored shim for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment has no registry access, so the workspace pins
//! `proptest` to this path crate. It provides:
//!
//! * the [`proptest!`] macro (with the optional
//!   `#![proptest_config(...)]` header) expanding each case into a
//!   deterministic generate-and-check loop,
//! * the [`strategy::Strategy`] trait with `prop_map`, implemented for
//!   numeric ranges and strategy tuples,
//! * [`collection::vec`] for sized vector strategies,
//! * [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`],
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Design deviations from real proptest, chosen deliberately for CI
//! stability in an offline environment:
//!
//! * **Deterministic seeding** — each test's RNG is seeded from a hash of
//!   its fully-qualified name, so failures always reproduce and CI never
//!   flakes on a fresh seed. There is no failure-persistence file.
//! * **No shrinking** — a failing case reports its case index and message;
//!   because seeding is deterministic, rerunning hits the same inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with an optional formatted message) instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts two values compare equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Discards the current case (counting it as passed) when its inputs do
/// not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a `#[test]` that draws `cases` inputs from the strategies
/// and runs the body on each.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    ( @expand ($cfg:expr)
      $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed (deterministic seed):\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
