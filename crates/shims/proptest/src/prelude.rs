//! One-stop imports mirroring `proptest::prelude`: the [`Strategy`]
//! trait, [`ProptestConfig`], the `prop` module alias, and the assertion
//! macros.

pub use crate::strategy::Strategy;
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

/// Namespace alias matching real proptest's `prop::` prelude module
/// (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}
