//! The [`Strategy`] trait and its implementations for ranges, tuples,
//! and mapped strategies.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one concrete value directly. Strategies are cheap to construct
/// and are re-evaluated once per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

// Range sampling delegates to the rand shim's `SampleRange`
// implementations via the `rand::RngCore` impl on `TestRng`, so range
// semantics (half-open exclusion, inclusive upper-bound reachability)
// live in exactly one crate.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F)(A, B, C, D, E, F, G)(
    A, B, C, D, E, F, G, H
));

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let u = (3u32..17).generate(&mut r);
            assert!((3..17).contains(&u));
            let i = (1i8..=127).generate(&mut r);
            assert!((1..=127).contains(&i));
            let f = (-2.0f32..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c, d) = (0u32..4, 4u32..8, 0.0f32..1.0, 0usize..2).generate(&mut r);
        assert!(a < 4);
        assert!((4..8).contains(&b));
        assert!((0.0..1.0).contains(&c));
        assert!(d < 2);
    }
}
