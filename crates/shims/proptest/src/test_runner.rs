//! Test-runner configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test (default 256, as in real
    /// proptest).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The generator threaded through every strategy of one test.
///
/// Seeded from the test's fully-qualified name so reruns draw identical
/// inputs — see the crate docs for why the shim trades fresh entropy for
/// reproducibility.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test path: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
}

// Lets strategies reuse the rand shim's `SampleRange` implementations
// (one shared place for range-sampling behavior and its edge cases).
impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_proptest() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(64).cases, 64);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("crate::mod::test");
        let mut b = TestRng::deterministic("crate::mod::test");
        let mut c = TestRng::deterministic("crate::mod::other");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }
}
