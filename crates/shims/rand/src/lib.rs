//! Offline vendored shim for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no registry access, so the workspace pins
//! `rand` to this path crate instead of crates.io. It implements exactly
//! the surface the SpNeRF crates call — [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool` —
//! backed by the xoshiro256++ generator seeded through SplitMix64.
//!
//! The statistical quality is more than sufficient for the workspace's
//! uses (k-means initialization, synthetic grid population, MLP weight
//! init); it is *not* a cryptographic generator, exactly like the real
//! `StdRng` contract does not promise reproducibility across versions.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let i = rng.gen_range(10..20usize);
//! assert!((10..20).contains(&i));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" domain
/// (unit interval for floats, full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty, $unit_incl:expr);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // `start + span * unit` can round up to `end` when the span is
                // small relative to its magnitude; reject such draws so the
                // half-open contract holds, as real rand 0.8 does.
                loop {
                    let unit = <$t as Standard>::sample(rng);
                    let v = self.start + (self.end - self.start) * unit;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Unit draw over [0, 1] *inclusive*, so `hi` is reachable —
                // matching rand 0.8's inclusive float ranges.
                let unit = $unit_incl(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(
    f32, |rng: &mut R| (rng.next_u32() >> 8) as f32 / ((1u32 << 24) - 1) as f32;
    f64, |rng: &mut R| (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's standard domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let i = rng.gen_range(5..17usize);
            assert!((5..17).contains(&i));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let s = rng.gen_range(-8i8..=8);
            assert!((-8..=8).contains(&s));
        }
    }

    #[test]
    fn exclusive_float_range_never_returns_end() {
        // Regression: with span 1.0 at magnitude 2^24, `start + span * unit`
        // rounds up to `end` for the largest unit draws unless rejected.
        let mut rng = StdRng::seed_from_u64(6);
        let (lo, hi) = (16_777_215.0f32, 16_777_216.0f32);
        for _ in 0..5_000_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "draw {v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn inclusive_float_range_upper_bound_reachable() {
        // The inclusive unit draw maps the max mantissa pattern to exactly 1.
        let mut rng = StdRng::seed_from_u64(8);
        let mut hit = false;
        for _ in 0..60_000_000 {
            let v = rng.gen_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&v));
            if v == 1.0 {
                hit = true;
                break;
            }
        }
        assert!(hit, "upper bound never drawn; inclusive scaling is off");
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
