//! The cross-layer conformance runner: one corpus scene in, one golden
//! [`Record`] out.
//!
//! [`run`] pushes a [`CorpusSpec`] through the entire stack — procedural
//! grid → VQRF compression → SpNeRF preprocessing → [`spnerf::RenderSession`]
//! renders of all four per-sample sources → accelerator cycle model → DRAM
//! trace/energy model — and snapshots a digest or counter from every layer,
//! then repeats the renders with mip empty-space skipping
//! ([`SkipMode::mip`]) under `skip.*` keys: the `skip.image.*` digests must
//! equal the `image.*` digests (skipping is pixel-exact) while the
//! `skip.stats.*` / `skip.accel.*` / `skip.dram.*` counters document the
//! removed work. The `baked.*` keys cover the fifth source, the
//! bake-and-defer path ([`RenderSource::Baked`]): its image digest, PSNR
//! against ground truth, the per-sample → per-pixel MLP-work collapse, and
//! the cycle model charging the small deferred network. The `traj.*` keys
//! pin the temporal tier: an 8-frame orbit rendered through the facade
//! Trajectory API in both reuse modes, every frame's image digest plus the
//! cumulative samples/cycles/DRAM the warp amortized.
//! `tests/conformance.rs` checks these records against the checked-in
//! goldens, so *any* behavioural change anywhere in the stack surfaces as
//! a named key diff.

use spnerf::pipeline::{PipelineBuilder, RenderRequest, RenderSource};
use spnerf::trajectory::{ReuseMode, TrajectoryRequest, TrajectorySpec};
use spnerf::{RenderResponse, Scene};
use spnerf_accel::sim::pipeline::{simulate_frame, simulate_path, ArchConfig};
use spnerf_dram::energy::EnergyModel;
use spnerf_dram::timing::DramTimings;
use spnerf_dram::trace::{gather, sequential};
use spnerf_dram::MemoryController;
use spnerf_render::renderer::{RenderConfig, SkipMode};
use spnerf_render::scene::default_camera;
use spnerf_voxel::sparse::{predicted_index_bytes, FormatKind, OccupancyStats, SparseFormat};
use spnerf_voxel::vqrf::VqrfConfig;

use crate::corpus::{generate, CorpusSpec};
use crate::digest;
use crate::fixtures;
use crate::golden::Record;

/// Fidelity knobs of a conformance run. The default is the quick preset
/// the golden suite and CI use: small renders that still exercise every
/// code path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConformanceConfig {
    /// Rendered image side (square).
    pub image: u32,
    /// Ray-march samples across the scene AABB.
    pub samples_per_ray: usize,
    /// VQRF/SpNeRF codebook size.
    pub codebook: usize,
    /// SpNeRF subgrid count.
    pub subgrid_count: usize,
    /// Hash-table entries per subgrid.
    pub table_size: usize,
    /// Render worker threads (`0` = all cores). Output is identical at any
    /// value; goldens are rendered with 1.
    pub threads: usize,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        Self {
            image: 16,
            samples_per_ray: 32,
            codebook: 32,
            subgrid_count: 8,
            table_size: 4096,
            threads: 1,
        }
    }
}

impl ConformanceConfig {
    /// The render configuration of this preset.
    pub fn render_config(&self) -> RenderConfig {
        RenderConfig {
            samples_per_ray: self.samples_per_ray,
            parallelism: self.threads,
            ..Default::default()
        }
    }

    /// The VQRF configuration of this preset.
    pub fn vqrf_config(&self) -> VqrfConfig {
        fixtures::test_vqrf_config(self.codebook)
    }
}

/// Builds the pipeline [`Scene`] a corpus spec + conformance preset select.
///
/// # Panics
///
/// Panics if the pipeline rejects the configuration (cannot happen for the
/// default preset).
pub fn scene_for(spec: &CorpusSpec, cfg: &ConformanceConfig) -> Scene {
    PipelineBuilder::from_grid(spec.label(), generate(spec))
        .vqrf_config(cfg.vqrf_config())
        .spnerf_config(fixtures::test_spnerf_config(
            cfg.subgrid_count,
            cfg.table_size,
            cfg.codebook,
        ))
        .mlp_seed(fixtures::MLP_SEED)
        .render_config(cfg.render_config())
        .build()
        .expect("conformance preset builds")
}

/// Runs one corpus scene through every layer and returns the snapshot
/// record the golden suite checks.
pub fn run(spec: &CorpusSpec, cfg: &ConformanceConfig) -> Record {
    let mut rec = Record::new();
    rec.push("spec.label", spec.label());
    rec.push("spec.side", spec.side);
    rec.push("spec.occupancy", spec.occupancy);
    rec.push("spec.seed", spec.seed);

    // Layer 1 — voxel substrate.
    let scene = scene_for(spec, cfg);
    rec.push("grid.occupied", scene.grid().occupied_count());
    rec.push("grid.digest", digest::hex(digest::digest_grid(scene.grid())));

    // Layer 2 — VQRF compression.
    rec.push("vqrf.nnz", scene.vqrf().nnz());
    rec.push("vqrf.kept", scene.vqrf().kept_count());
    rec.push("vqrf.codebook_digest", digest::hex(digest::digest_codebook(scene.vqrf().codebook())));

    // Layer 3 — SpNeRF preprocessing artifact.
    let model = scene.model();
    rec.push("bitmap.ones", model.bitmap().count_ones());
    rec.push("bitmap.digest", digest::hex(digest::digest_bitmap(model.bitmap())));
    let fp = model.footprint();
    rec.push("model.total_bytes", fp.total_bytes());
    rec.push("model.hash_table_bytes", fp.bytes_of("hash tables"));

    // Layer 3b — sparse occupancy index: the auto-selected encoding, its
    // byte-exact size, the per-lookup metadata cost the accelerator/DRAM
    // models charge, and every candidate's predicted bytes (the crossover
    // inputs). `tests/conformance.rs` additionally asserts the image
    // digests above are reproduced bit-for-bit under every fixed format.
    let index = scene.sparse_index();
    rec.push("format.selected", scene.sparse_kind().name());
    rec.push("format.index_bytes", index.footprint().total_bytes());
    rec.push("format.bytes_per_lookup", index.access_cost().bytes_per_lookup);
    let occ_stats = OccupancyStats::from_bitmap(model.bitmap());
    for kind in FormatKind::ALL {
        rec.push(format!("format.{}.bytes", kind.name()), predicted_index_bytes(kind, &occ_stats));
    }

    // Layer 4 — renders of all four sources through one session.
    let session = scene.session();
    let cam = default_camera(cfg.image, cfg.image, 1, 8);
    let render = |source: RenderSource, psnr: bool| -> RenderResponse {
        let mut req = RenderRequest::single(source, cam);
        if psnr {
            req = req.with_reference(RenderSource::GroundTruth);
        }
        session.render(&req).expect("single-camera request")
    };
    let gt = render(RenderSource::GroundTruth, false);
    let vq = render(RenderSource::Vqrf, true);
    let masked = render(RenderSource::spnerf_masked(), true);
    let unmasked = render(RenderSource::spnerf_unmasked(), true);
    rec.push("image.gt.digest", digest::hex(digest::digest_image(&gt.images[0])));
    rec.push("image.vqrf.digest", digest::hex(digest::digest_image(&vq.images[0])));
    rec.push("image.masked.digest", digest::hex(digest::digest_image(&masked.images[0])));
    rec.push("image.unmasked.digest", digest::hex(digest::digest_image(&unmasked.images[0])));
    rec.push("psnr.vqrf_db", vq.mean_psnr());
    rec.push("psnr.masked_db", masked.mean_psnr());
    rec.push("psnr.unmasked_db", unmasked.mean_psnr());
    rec.push("stats.rays", masked.stats.rays);
    rec.push("stats.samples_marched", masked.stats.samples_marched);
    rec.push("stats.samples_shaded", masked.stats.samples_shaded);
    rec.push("stats.rays_terminated_early", masked.stats.rays_terminated_early);
    rec.push("stats.samples_skipped", masked.stats.samples_skipped);
    rec.push("stats.digest", digest::hex(digest::digest_stats(&masked.stats)));
    rec.push("workload.model_bytes", masked.workload.model_bytes);
    rec.push("workload.format_bytes", masked.workload.format_bytes);
    rec.push("workload.digest", digest::hex(digest::digest_workload(&masked.workload)));

    // Layer 5 — accelerator cycle model on the measured workload.
    let sim = simulate_frame(&masked.workload, &ArchConfig::default());
    rec.push("accel.cycles", sim.cycles);
    rec.push("accel.sgpu_cycles", sim.sgpu_cycles);
    rec.push("accel.mlp_cycles", sim.mlp_cycles);
    rec.push("accel.dram_cycles", sim.dram_cycles);
    rec.push("accel.bottleneck", format!("{:?}", sim.bottleneck));

    // Layer 6 — DRAM controller + energy on the two trace archetypes this
    // scene implies: SpNeRF's streamed model vs a VQRF-style gather over
    // the restored grid.
    let timings = DramTimings::lpddr4_3200();
    let energy = EnergyModel::lpddr4();
    let seq_trace = sequential(0, masked.workload.model_bytes as u64, 256);
    let seq = MemoryController::new(timings).run_trace(&seq_trace);
    rec.push("dram.seq.row_hits", seq.row_hits);
    rec.push("dram.seq.row_misses", seq.row_misses);
    rec.push("dram.seq.cycles", seq.cycles);
    rec.push("dram.seq.energy_pj", (energy.energy_j(&seq) * 1e12).round() as u64);
    // The selected format's per-frame metadata stream, charged through the
    // same controller as the model stream.
    let fmt_trace = sequential(0, masked.workload.format_bytes as u64, 256);
    let fmt = MemoryController::new(timings).run_trace(&fmt_trace);
    rec.push("dram.format.row_hits", fmt.row_hits);
    rec.push("dram.format.row_misses", fmt.row_misses);
    rec.push("dram.format.cycles", fmt.cycles);
    rec.push("dram.format.energy_pj", (energy.energy_j(&fmt) * 1e12).round() as u64);
    let region = scene.grid().restored_bytes_f32() as u64;
    let count = masked.stats.samples_marched.clamp(1, 4096);
    let gat_trace = gather(count, region, 64, spec.seed);
    let gat = MemoryController::new(timings).run_trace(&gat_trace);
    rec.push("dram.gather.row_hits", gat.row_hits);
    rec.push("dram.gather.row_misses", gat.row_misses);
    rec.push("dram.gather.cycles", gat.cycles);
    rec.push("dram.gather.energy_pj", (energy.energy_j(&gat) * 1e12).round() as u64);

    // Layer 7 — the same renders with mip empty-space skipping. The image
    // digests must **match the `image.*` keys above** (skipping is
    // pixel-exact; `tests/conformance.rs` asserts the equality, the golden
    // file documents it); the samples/cycles/DRAM keys are separate and
    // show the skipped work.
    let skip_session =
        scene.session_with(RenderConfig { skip_mode: SkipMode::mip(), ..cfg.render_config() });
    let skip_render = |source: RenderSource| -> RenderResponse {
        skip_session.render(&RenderRequest::single(source, cam)).expect("single-camera request")
    };
    let s_gt = skip_render(RenderSource::GroundTruth);
    let s_vq = skip_render(RenderSource::Vqrf);
    let s_masked = skip_render(RenderSource::spnerf_masked());
    let s_unmasked = skip_render(RenderSource::spnerf_unmasked());
    rec.push("skip.image.gt.digest", digest::hex(digest::digest_image(&s_gt.images[0])));
    rec.push("skip.image.vqrf.digest", digest::hex(digest::digest_image(&s_vq.images[0])));
    rec.push("skip.image.masked.digest", digest::hex(digest::digest_image(&s_masked.images[0])));
    rec.push(
        "skip.image.unmasked.digest",
        digest::hex(digest::digest_image(&s_unmasked.images[0])),
    );
    rec.push("skip.stats.samples_marched", s_masked.stats.samples_marched);
    rec.push("skip.stats.samples_skipped", s_masked.stats.samples_skipped);
    rec.push("skip.stats.samples_shaded", s_masked.stats.samples_shaded);
    rec.push(
        "skip.march_reduction",
        format!(
            "{:.2}",
            masked.stats.samples_marched as f64 / s_masked.stats.samples_marched.max(1) as f64
        ),
    );
    let skip_sim = simulate_frame(&s_masked.workload, &ArchConfig::default());
    rec.push("skip.accel.cycles", skip_sim.cycles);
    rec.push("skip.accel.sgpu_cycles", skip_sim.sgpu_cycles);
    rec.push("skip.accel.bottleneck", format!("{:?}", skip_sim.bottleneck));
    let skip_count = s_masked.stats.samples_marched.clamp(1, 4096);
    let skip_gat =
        MemoryController::new(timings).run_trace(&gather(skip_count, region, 64, spec.seed));
    rec.push("skip.dram.gather.row_hits", skip_gat.row_hits);
    rec.push("skip.dram.gather.row_misses", skip_gat.row_misses);
    rec.push("skip.dram.gather.cycles", skip_gat.cycles);
    rec.push("skip.dram.gather.energy_pj", (energy.energy_j(&skip_gat) * 1e12).round() as u64);

    // Layer 8 — the bake-and-defer path. The baked image is *not* expected
    // to equal the per-sample render (view dependence is factored into a
    // different network); the digest pins it bit-for-bit, `baked.psnr_db`
    // documents its fidelity against ground truth, and the stats/accel
    // keys document the MLP-work collapse from per-sample to per-pixel.
    // `baked.skip.image.digest` must equal `baked.image.digest` (skipping
    // stays pixel-exact on the baked grid; asserted live in
    // `tests/conformance.rs`).
    let baked = render(RenderSource::Baked, true);
    rec.push("baked.image.digest", digest::hex(digest::digest_image(&baked.images[0])));
    rec.push("baked.psnr_db", baked.mean_psnr());
    rec.push("baked.stats.samples_marched", baked.stats.samples_marched);
    rec.push("baked.stats.samples_shaded", baked.stats.samples_shaded);
    rec.push("baked.stats.pixels_shaded", baked.stats.pixels_shaded);
    rec.push("baked.mlp_collapse", format!("{:.2}", baked.workload.mlp_collapse()));
    rec.push("baked.stats.digest", digest::hex(digest::digest_stats(&baked.stats)));
    rec.push("baked.workload.digest", digest::hex(digest::digest_workload(&baked.workload)));
    let baked_sim = simulate_frame(&baked.workload, &ArchConfig::default());
    rec.push("baked.accel.cycles", baked_sim.cycles);
    rec.push("baked.accel.mlp_cycles", baked_sim.mlp_cycles);
    rec.push("baked.accel.bottleneck", format!("{:?}", baked_sim.bottleneck));
    let s_baked = skip_render(RenderSource::Baked);
    rec.push("baked.skip.image.digest", digest::hex(digest::digest_image(&s_baked.images[0])));
    rec.push("baked.skip.stats.samples_marched", s_baked.stats.samples_marched);
    rec.push("baked.skip.stats.samples_skipped", s_baked.stats.samples_skipped);

    // Layer 9 — the temporal trajectory tier: an 8-frame orbit through the
    // facade Trajectory API, once frame-independent (`ReuseMode::Off`) and
    // once with forward-warp reuse. Every frame's image is pinned
    // bit-for-bit in both modes; the cumulative samples/cycles/DRAM keys
    // document what the reuse amortized. `tests/conformance.rs` asserts
    // the live invariants (off-mode ≡ per-frame session rendering, the
    // per-archetype reuse floor) on top of these pins.
    let orbit = TrajectorySpec::orbit(8, cfg.image, cfg.image);
    let source = RenderSource::spnerf_masked();
    let t_off = session
        .render_trajectory(&TrajectoryRequest::new(source, orbit))
        .expect("off-mode trajectory");
    let t_warp = session
        .render_trajectory(&TrajectoryRequest::new(source, orbit).with_mode(ReuseMode::warp()))
        .expect("warp trajectory");
    rec.push("traj.frames", orbit.frames);
    for (i, f) in t_off.frames.iter().enumerate() {
        rec.push(format!("traj.off.image.{i}.digest"), digest::hex(digest::digest_image(&f.image)));
    }
    for (i, f) in t_warp.frames.iter().enumerate() {
        rec.push(
            format!("traj.warp.image.{i}.digest"),
            digest::hex(digest::digest_image(&f.image)),
        );
    }
    rec.push("traj.off.samples_marched", t_off.stats.samples_marched);
    rec.push("traj.warp.samples_marched", t_warp.stats.samples_marched);
    rec.push("traj.off.samples_after_first", t_off.samples_marched_after_first());
    rec.push("traj.warp.samples_after_first", t_warp.samples_marched_after_first());
    rec.push("traj.warp.rays_warped", t_warp.stats.rays_warped);
    rec.push("traj.warp.rays_remarched", t_warp.stats.rays_remarched);
    rec.push("traj.warp.max_validation_error", format!("{:.4}", t_warp.max_validation_error()));
    rec.push("traj.off.stats.digest", digest::hex(digest::digest_stats(&t_off.stats)));
    rec.push("traj.warp.stats.digest", digest::hex(digest::digest_stats(&t_warp.stats)));
    let p_off = simulate_path(&t_off.workloads, &ArchConfig::default());
    let p_warp = simulate_path(&t_warp.workloads, &ArchConfig::default());
    rec.push("traj.off.accel.cycles", p_off.total_cycles);
    rec.push("traj.warp.accel.cycles", p_warp.total_cycles);
    rec.push("traj.off.dram.bytes", p_off.total_dram_bytes);
    rec.push("traj.warp.dram.bytes", p_warp.total_dram_bytes);
    rec.push(
        "traj.warp.amortized_samples_per_frame",
        format!("{:.1}", p_warp.amortized_samples_per_frame),
    );

    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Archetype, Corpus};

    #[test]
    fn record_is_deterministic_across_runs() {
        let spec = CorpusSpec::archetype_default(Archetype::EmptySpace, 16, 11);
        let cfg = ConformanceConfig { image: 8, samples_per_ray: 16, ..Default::default() };
        assert_eq!(run(&spec, &cfg), run(&spec, &cfg));
    }

    #[test]
    fn record_is_identical_at_any_thread_count() {
        let spec = CorpusSpec::archetype_default(Archetype::Clusters, 16, 12);
        let serial = ConformanceConfig { image: 8, samples_per_ray: 16, ..Default::default() };
        let parallel = ConformanceConfig { threads: 4, ..serial };
        assert_eq!(run(&spec, &serial), run(&spec, &parallel));
    }

    #[test]
    fn every_layer_contributes_keys() {
        let spec = Corpus::quick().next().unwrap();
        let cfg = ConformanceConfig { image: 8, samples_per_ray: 16, ..Default::default() };
        let rec = run(&spec, &cfg);
        for prefix in [
            "spec.",
            "grid.",
            "vqrf.",
            "bitmap.",
            "model.",
            "format.",
            "image.",
            "psnr.",
            "stats.",
            "workload.",
            "accel.",
            "dram.seq.",
            "dram.format.",
            "dram.gather.",
            "skip.image.",
            "skip.stats.",
            "skip.accel.",
            "skip.dram.",
            "baked.",
            "traj.",
        ] {
            assert!(
                rec.entries().iter().any(|(k, _)| k.starts_with(prefix)),
                "no {prefix}* key in the record"
            );
        }
    }
}
