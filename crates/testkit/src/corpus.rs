//! The procedural scenario corpus: deterministic voxel grids spanning the
//! sparsity/structure space.
//!
//! The eight Synthetic-NeRF stand-ins in [`spnerf_render::scene`] all share
//! one shape family (thin SDF surface shells at 2–6.5 % occupancy). SpNeRF's
//! sparsity-dependent paths — bitmap pruning, hash-table load, GID/HMU
//! behaviour, DRAM locality — need workloads *outside* that band too, so
//! this module synthesizes five archetypes:
//!
//! | archetype | structure | default occupancy |
//! |---|---|---|
//! | [`Archetype::DenseBlob`] | one solid ball (dense interior) | 20 % |
//! | [`Archetype::Clusters`] | several separated object blobs | 6 % |
//! | [`Archetype::ThinShell`] | a hollow spherical surface | 4 % |
//! | [`Archetype::EmptySpace`] | tiny specks in a mostly empty grid | 0.5 % |
//! | [`Archetype::NoiseField`] | spatially incoherent salt-and-pepper | 10 % |
//!
//! Every grid is a pure function of its [`CorpusSpec`] (archetype, side,
//! occupancy, seed): generation is hash-based, uses no RNG state, and the
//! occupancy target is met **exactly** (rank-based selection, like the
//! scene builder's quantile thresholding).

use spnerf_render::vec3::Vec3;
use spnerf_voxel::coord::GridDims;
use spnerf_voxel::grid::{DenseGrid, FEATURE_DIM};

/// One of the five corpus scene shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Archetype {
    /// A single solid ball: the dense-interior extreme (worst case for
    /// bitmap pruning, best case for spatial locality).
    DenseBlob,
    /// Several separated blobs: multi-object scenes with cluster-local
    /// coherence.
    Clusters,
    /// A hollow spherical shell: surface-only occupancy like trained NeRF
    /// grids, but with a single closed surface.
    ThinShell,
    /// A handful of tiny specks in an otherwise empty grid: the
    /// empty-space-heavy extreme where masking removes almost everything.
    EmptySpace,
    /// Spatially incoherent noise: no structure for locality or pruning to
    /// exploit — the adversarial operating point.
    NoiseField,
}

impl Archetype {
    /// All five archetypes, in corpus order.
    pub const ALL: [Archetype; 5] = [
        Archetype::DenseBlob,
        Archetype::Clusters,
        Archetype::ThinShell,
        Archetype::EmptySpace,
        Archetype::NoiseField,
    ];

    /// Kebab-case name, used for golden-file names and labels.
    pub const fn name(self) -> &'static str {
        match self {
            Archetype::DenseBlob => "dense-blob",
            Archetype::Clusters => "clusters",
            Archetype::ThinShell => "thin-shell",
            Archetype::EmptySpace => "empty-space",
            Archetype::NoiseField => "noise-field",
        }
    }

    /// The occupancy the archetype is designed around (the corpus spans
    /// 0.5 % – 20 %, bracketing the paper's 2.01 % – 6.48 % band).
    pub const fn default_occupancy(self) -> f64 {
        match self {
            Archetype::DenseBlob => 0.20,
            Archetype::Clusters => 0.06,
            Archetype::ThinShell => 0.04,
            Archetype::EmptySpace => 0.005,
            Archetype::NoiseField => 0.10,
        }
    }
}

impl std::fmt::Display for Archetype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full parameterization of one corpus grid. [`generate`] is a pure
/// function of this value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// The scene shape.
    pub archetype: Archetype,
    /// Cubic grid side (≥ 4).
    pub side: u32,
    /// Exact fraction of occupied voxels in `(0, 1]`.
    pub occupancy: f64,
    /// Seed for all hash-derived placement, densities and features.
    pub seed: u64,
}

impl CorpusSpec {
    /// A spec with every knob explicit.
    pub fn new(archetype: Archetype, side: u32, occupancy: f64, seed: u64) -> Self {
        Self { archetype, side, occupancy, seed }
    }

    /// The archetype at its designed occupancy.
    pub fn archetype_default(archetype: Archetype, side: u32, seed: u64) -> Self {
        Self::new(archetype, side, archetype.default_occupancy(), seed)
    }

    /// A stable human-readable label (also the pipeline scene label).
    pub fn label(&self) -> String {
        format!("{}-s{}-o{:.4}-x{}", self.archetype.name(), self.side, self.occupancy, self.seed)
    }
}

/// Grid side the quick corpus uses (small enough for debug-mode CI, large
/// enough that every archetype has recognizable structure).
pub const QUICK_SIDE: u32 = 24;

/// Base seed of the default corpus (each archetype offsets it by its index).
pub const CORPUS_SEED: u64 = 0xC0FFEE;

/// An iterator over corpus specs, one per archetype.
///
/// # Examples
///
/// ```
/// use spnerf_testkit::corpus::{generate, Corpus};
/// for spec in Corpus::quick() {
///     let grid = generate(&spec);
///     assert!(grid.occupied_count() > 0, "{}", spec.label());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Corpus {
    specs: std::vec::IntoIter<CorpusSpec>,
}

impl Corpus {
    /// The default conformance corpus: all five archetypes at
    /// [`QUICK_SIDE`], designed occupancies, seeds `CORPUS_SEED + index`.
    /// This is what the golden suite and the CI `conformance` job run.
    pub fn quick() -> Self {
        Self::with_side(QUICK_SIDE)
    }

    /// The same five archetypes at an arbitrary grid side.
    pub fn with_side(side: u32) -> Self {
        let specs: Vec<CorpusSpec> = Archetype::ALL
            .iter()
            .enumerate()
            .map(|(i, a)| CorpusSpec::archetype_default(*a, side, CORPUS_SEED + i as u64))
            .collect();
        Self { specs: specs.into_iter() }
    }
}

impl Iterator for Corpus {
    type Item = CorpusSpec;

    fn next(&mut self) -> Option<CorpusSpec> {
        self.specs.next()
    }
}

/// Generates the grid a spec describes. Deterministic: equal specs give
/// equal grids, bit for bit, and exactly
/// `round(side³ · occupancy).clamp(1, side³)` voxels are occupied.
///
/// # Panics
///
/// Panics if `side < 4` or `occupancy` is outside `(0, 1]`.
pub fn generate(spec: &CorpusSpec) -> DenseGrid {
    assert!(spec.side >= 4, "corpus grid side must be at least 4");
    assert!(
        spec.occupancy > 0.0 && spec.occupancy <= 1.0,
        "occupancy must be in (0, 1], got {}",
        spec.occupancy
    );
    let dims = GridDims::cube(spec.side);
    let n = dims.len();

    // Per-voxel placement score (higher = occupied first). A tiny hash
    // jitter breaks the ties flat analytic fields would otherwise produce.
    let mut score = vec![0.0f32; n];
    for (i, c) in dims.iter().enumerate() {
        let p = voxel_world(c.x, c.y, c.z, spec.side);
        let s = archetype_score(spec.archetype, p, spec.seed);
        score[i] = s + 1e-4 * (unit_hash3(c.x, c.y, c.z, spec.seed ^ 0x7e17) - 0.5);
    }

    // Rank-based selection: exactly k voxels, descending score, index
    // tiebreak (the same exactness trick as the scene builder).
    let k = (((n as f64) * spec.occupancy).round() as usize).clamp(1, n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.select_nth_unstable_by(k - 1, |a, b| {
        score[*b as usize]
            .partial_cmp(&score[*a as usize])
            .expect("scores are finite")
            .then(a.cmp(b))
    });

    let mut grid = DenseGrid::zeros(dims);
    for &i in &order[..k] {
        let c = dims.coord_of(i as usize);
        let p = voxel_world(c.x, c.y, c.z, spec.side);
        let density = 0.15 + 0.85 * unit_hash3(c.x, c.y, c.z, spec.seed ^ 0xd5);
        grid.set_density(c, density);
        grid.set_features(c, &feature_vector(spec, c.x, c.y, c.z, p));
    }
    grid
}

/// Voxel center in the `[-1, 1]³` world frame (matches the scene builder's
/// vertex convention).
fn voxel_world(x: u32, y: u32, z: u32, side: u32) -> Vec3 {
    let s = (side - 1).max(1) as f32;
    Vec3::new(x as f32 / s * 2.0 - 1.0, y as f32 / s * 2.0 - 1.0, z as f32 / s * 2.0 - 1.0)
}

/// The placement field of each archetype (higher score = occupied first).
fn archetype_score(a: Archetype, p: Vec3, seed: u64) -> f32 {
    match a {
        // Solid ball around a seed-jittered center: nearest voxels win.
        Archetype::DenseBlob => {
            let c = seeded_point(seed, 0, 0.2);
            -(p - c).length()
        }
        // 3–5 blobs: distance to the nearest center, each with its own
        // radius so the clusters differ in size.
        Archetype::Clusters => {
            let count = 3 + (seed % 3) as usize;
            let mut best = f32::NEG_INFINITY;
            for i in 0..count {
                let c = seeded_point(seed, i as u64 + 1, 0.6);
                let r = 0.15 + 0.20 * unit_hash3(i as u32, 77, 13, seed);
                best = best.max(-(p - c).length() / r);
            }
            best
        }
        // Hollow shell: closeness to the radius-0.62 sphere surface.
        Archetype::ThinShell => {
            let c = seeded_point(seed, 0, 0.1);
            -((p - c).length() - 0.62).abs()
        }
        // Two distant specks; with a tiny occupancy target only their
        // immediate neighbourhoods survive selection.
        Archetype::EmptySpace => {
            let a0 = seeded_point(seed, 0, 0.7);
            let a1 = seeded_point(seed, 1, 0.7);
            (-(p - a0).length()).max(-(p - a1).length())
        }
        // Pure white noise over integer voxel coordinates — evaluated in
        // the caller via the jitter path would be too weak, so the score
        // itself is the hash (no spatial coherence at all).
        Archetype::NoiseField => {
            let q = (p + Vec3::ONE) * 512.0;
            unit_hash3(q.x as u32, q.y as u32, q.z as u32, seed)
        }
    }
}

/// A deterministic point in `[-extent, extent]³` derived from the seed.
fn seeded_point(seed: u64, salt: u64, extent: f32) -> Vec3 {
    let h = |axis: u32| (unit_hash3(axis, salt as u32, 0x5eed, seed) * 2.0 - 1.0) * extent;
    Vec3::new(h(1), h(2), h(3))
}

/// Twelve feature channels: smooth positional waves plus incompressible
/// per-voxel hash detail, so vector quantization sees both structure and a
/// realistic error floor (mirroring the scene builder's design).
fn feature_vector(spec: &CorpusSpec, x: u32, y: u32, z: u32, p: Vec3) -> [f32; FEATURE_DIM] {
    let mut f = [0.0f32; FEATURE_DIM];
    for (j, slot) in f.iter_mut().enumerate() {
        let a = 1.3 + j as f32 * 0.7;
        let b = 0.9 + j as f32 * 0.4;
        let c = 2.1 - j as f32 * 0.3;
        let smooth = 0.35 * (a * p.x + b * p.y + c * p.z).sin();
        let detail = 0.9 * (unit_hash3(x, y, z, spec.seed ^ (j as u64 * 0x9e37)) - 0.5);
        *slot = smooth + detail;
    }
    f
}

/// SplitMix-style hash of three coordinates and a seed, mapped to `[0, 1)`.
fn unit_hash3(x: u32, y: u32, z: u32, seed: u64) -> f32 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for v in [x as u64, y as u64, z as u64] {
        h ^= v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = h.rotate_left(27).wrapping_mul(0x94d0_49bb_1331_11eb);
    }
    (h >> 40) as f32 / (1u32 << 24) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnerf_voxel::coord::GridCoord;

    #[test]
    fn generation_is_deterministic() {
        for spec in Corpus::quick() {
            let a = generate(&spec);
            let b = generate(&spec);
            assert_eq!(a, b, "{} must be a pure function of its spec", spec.label());
        }
    }

    #[test]
    fn occupancy_is_exact() {
        for spec in Corpus::quick() {
            let g = generate(&spec);
            let n = g.dims().len() as f64;
            let expect = ((n * spec.occupancy).round() as usize).clamp(1, g.dims().len());
            assert_eq!(g.occupied_count(), expect, "{}", spec.label());
        }
    }

    #[test]
    fn occupancy_extremes_work() {
        for occ in [0.01, 0.5, 0.9] {
            let spec = CorpusSpec::new(Archetype::NoiseField, 10, occ, 3);
            let g = generate(&spec);
            let expect = ((1000.0 * occ).round() as usize).clamp(1, 1000);
            assert_eq!(g.occupied_count(), expect);
        }
    }

    #[test]
    fn seeds_change_the_grid() {
        let a = generate(&CorpusSpec::new(Archetype::Clusters, 16, 0.06, 1));
        let b = generate(&CorpusSpec::new(Archetype::Clusters, 16, 0.06, 2));
        assert_ne!(a, b, "different seeds must move the clusters");
    }

    #[test]
    fn archetypes_have_distinct_structure() {
        // Same side/occupancy/seed, different archetype ⇒ different support.
        let mk = |a| generate(&CorpusSpec::new(a, 20, 0.05, 9));
        let grids: Vec<DenseGrid> = Archetype::ALL.iter().map(|a| mk(*a)).collect();
        for i in 0..grids.len() {
            for j in i + 1..grids.len() {
                assert_ne!(
                    grids[i],
                    grids[j],
                    "{} and {} collapsed to the same grid",
                    Archetype::ALL[i],
                    Archetype::ALL[j]
                );
            }
        }
    }

    #[test]
    fn dense_blob_is_spatially_coherent_and_noise_is_not() {
        // Count occupied voxels with an occupied +x neighbour, normalized.
        let coherence = |g: &DenseGrid| {
            let dims = g.dims();
            let mut pairs = 0usize;
            let mut occ = 0usize;
            for c in dims.iter() {
                if !g.is_occupied(c) {
                    continue;
                }
                occ += 1;
                let nb = GridCoord::new(c.x + 1, c.y, c.z);
                if dims.contains(nb) && g.is_occupied(nb) {
                    pairs += 1;
                }
            }
            pairs as f64 / occ.max(1) as f64
        };
        let blob = generate(&CorpusSpec::new(Archetype::DenseBlob, 24, 0.10, 4));
        let noise = generate(&CorpusSpec::new(Archetype::NoiseField, 24, 0.10, 4));
        let cb = coherence(&blob);
        let cn = coherence(&noise);
        assert!(cb > 0.8, "blob coherence {cb:.2} too low");
        assert!(cn < 0.3, "noise coherence {cn:.2} too high");
    }

    #[test]
    fn labels_are_distinct_and_stable() {
        let labels: Vec<String> = Corpus::quick().map(|s| s.label()).collect();
        let set: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
        assert_eq!(labels[0], "dense-blob-s24-o0.2000-x12648430");
    }

    #[test]
    fn densities_and_features_are_finite_and_bounded() {
        for spec in Corpus::quick() {
            let g = generate(&spec);
            for p in g.extract_nonzero() {
                assert!(p.density > 0.0 && p.density <= 1.0);
                assert!(p.features.iter().all(|f| f.is_finite() && f.abs() <= 1.0));
            }
        }
    }

    #[test]
    #[should_panic(expected = "occupancy")]
    fn zero_occupancy_rejected() {
        let _ = generate(&CorpusSpec::new(Archetype::DenseBlob, 8, 0.0, 0));
    }
}
