//! Stable FNV-1a digests of every artifact the conformance suite snapshots.
//!
//! Golden files store one 64-bit digest per artifact instead of the raw
//! bytes: small enough to check in, exact enough that a single flipped
//! mantissa bit anywhere in an image, grid, or workload changes the value.
//! Floats are hashed by their IEEE-754 bit patterns, so a digest match is a
//! bitwise-equality statement, not a tolerance.

use spnerf_accel::frame::FrameWorkload;
use spnerf_render::image::ImageBuffer;
use spnerf_render::renderer::RenderStats;
use spnerf_voxel::bitmap::Bitmap;
use spnerf_voxel::grid::DenseGrid;
use spnerf_voxel::kmeans::Codebook;

/// An incremental 64-bit FNV-1a hasher over little-endian byte streams.
///
/// # Examples
///
/// ```
/// use spnerf_testkit::digest::Fnv64;
/// let mut h = Fnv64::new();
/// h.write_u64(42);
/// let a = h.finish();
/// assert_ne!(a, Fnv64::new().finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.state ^= *b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Folds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to `u64`, so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f32` by bit pattern.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Folds an `f64` by bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string's UTF-8 bytes, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Formats a digest the way golden files store it (`0x` + 16 hex digits).
pub fn hex(digest: u64) -> String {
    format!("{digest:#018x}")
}

/// Digest of a rendered image: dimensions plus every pixel's exact bits.
pub fn digest_image(img: &ImageBuffer) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(img.width());
    h.write_u32(img.height());
    for p in img.pixels() {
        h.write_f32(p.x);
        h.write_f32(p.y);
        h.write_f32(p.z);
    }
    h.finish()
}

/// Digest of a dense grid: dimensions, densities, features.
pub fn digest_grid(grid: &DenseGrid) -> u64 {
    let mut h = Fnv64::new();
    let d = grid.dims();
    h.write_u32(d.nx);
    h.write_u32(d.ny);
    h.write_u32(d.nz);
    for v in grid.density_raw() {
        h.write_f32(*v);
    }
    for v in grid.features_raw() {
        h.write_f32(*v);
    }
    h.finish()
}

/// Digest of render statistics.
pub fn digest_stats(stats: &RenderStats) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(stats.rays);
    h.write_usize(stats.samples_marched);
    h.write_usize(stats.samples_shaded);
    h.write_usize(stats.rays_terminated_early);
    h.write_usize(stats.samples_skipped);
    h.write_usize(stats.pixels_shaded);
    h.write_usize(stats.rays_warped);
    h.write_usize(stats.rays_remarched);
    h.finish()
}

/// Digest of a frame workload (scene label included).
pub fn digest_workload(w: &FrameWorkload) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&w.scene);
    h.write_usize(w.rays);
    h.write_usize(w.samples_marched);
    h.write_usize(w.samples_shaded);
    h.write_usize(w.samples_skipped);
    h.write_usize(w.pixels_shaded);
    h.write_usize(w.rays_warped);
    h.write_usize(w.rays_remarched);
    h.write_usize(w.model_bytes);
    h.write_usize(w.format_bytes);
    h.finish()
}

/// Digest of an occupancy bitmap (dimensions plus the bit at every voxel,
/// read through the public accessor so the packing layout stays opaque).
pub fn digest_bitmap(bitmap: &Bitmap) -> u64 {
    let mut h = Fnv64::new();
    let d = bitmap.dims();
    h.write_u32(d.nx);
    h.write_u32(d.ny);
    h.write_u32(d.nz);
    let mut word = 0u64;
    let mut fill = 0u32;
    for c in d.iter() {
        word |= (bitmap.get(c) as u64) << fill;
        fill += 1;
        if fill == 64 {
            h.write_u64(word);
            word = 0;
            fill = 0;
        }
    }
    if fill > 0 {
        h.write_u64(word);
    }
    h.finish()
}

/// Digest of a trained codebook: entry count plus every centroid's bits.
pub fn digest_codebook(cb: &Codebook) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(cb.len());
    for i in 0..cb.len() {
        for v in cb.centroid(i) {
            h.write_f32(*v);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnerf_render::vec3::Vec3;
    use spnerf_voxel::coord::{GridCoord, GridDims};

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn hex_format_is_stable() {
        assert_eq!(hex(0xaf63_dc4c_8601_ec8c), "0xaf63dc4c8601ec8c");
        assert_eq!(hex(5), "0x0000000000000005");
    }

    #[test]
    fn image_digest_sees_single_pixel_changes() {
        let a = ImageBuffer::filled(4, 4, Vec3::splat(0.5));
        let mut b = a.clone();
        assert_eq!(digest_image(&a), digest_image(&b));
        b.set(3, 2, Vec3::new(0.5, 0.5, 0.5000001));
        assert_ne!(digest_image(&a), digest_image(&b));
    }

    #[test]
    fn grid_digest_sees_density_and_feature_changes() {
        let mut g = DenseGrid::zeros(GridDims::cube(4));
        let base = digest_grid(&g);
        g.set_density(GridCoord::new(1, 2, 3), 0.25);
        let with_density = digest_grid(&g);
        assert_ne!(base, with_density);
        g.set_features(GridCoord::new(1, 2, 3), &[0.1; 12]);
        assert_ne!(with_density, digest_grid(&g));
    }

    #[test]
    fn bitmap_digest_distinguishes_positions() {
        let dims = GridDims::cube(8);
        let mut a = Bitmap::zeros(dims);
        let mut b = Bitmap::zeros(dims);
        a.set(GridCoord::new(0, 0, 0), true);
        b.set(GridCoord::new(7, 7, 7), true);
        assert_ne!(digest_bitmap(&a), digest_bitmap(&b));
        assert_eq!(digest_bitmap(&a), digest_bitmap(&a.clone()));
    }

    #[test]
    fn stats_and_workload_digests_cover_every_field() {
        let s =
            RenderStats { rays: 1, samples_marched: 2, samples_shaded: 3, ..Default::default() };
        let mut s2 = s;
        s2.rays_terminated_early = 1;
        assert_ne!(digest_stats(&s), digest_stats(&s2));
        let mut s3 = s;
        s3.samples_skipped = 9;
        assert_ne!(digest_stats(&s), digest_stats(&s3));
        let mut s4 = s;
        s4.pixels_shaded = 1;
        assert_ne!(digest_stats(&s), digest_stats(&s4));
        let mut s5 = s;
        s5.rays_warped = 4;
        assert_ne!(digest_stats(&s), digest_stats(&s5));
        let mut s6 = s;
        s6.rays_remarched = 4;
        assert_ne!(digest_stats(&s), digest_stats(&s6));

        let w = FrameWorkload {
            scene: "x".into(),
            rays: 10,
            samples_marched: 20,
            samples_shaded: 5,
            samples_skipped: 0,
            pixels_shaded: 0,
            rays_warped: 0,
            rays_remarched: 0,
            model_bytes: 1000,
            format_bytes: 0,
        };
        let mut w2 = w.clone();
        w2.scene = "y".into();
        assert_ne!(digest_workload(&w), digest_workload(&w2));
        let mut w3 = w.clone();
        w3.pixels_shaded = 7;
        assert_ne!(digest_workload(&w), digest_workload(&w3));
        let mut w4 = w.clone();
        w4.format_bytes = 64;
        assert_ne!(digest_workload(&w), digest_workload(&w4));
        let mut w5 = w.clone();
        w5.rays_warped = 8;
        assert_ne!(digest_workload(&w), digest_workload(&w5));
        let mut w6 = w.clone();
        w6.rays_remarched = 8;
        assert_ne!(digest_workload(&w), digest_workload(&w6));
    }
}
