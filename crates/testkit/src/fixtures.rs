//! Shared fixture builders for tests across the workspace.
//!
//! Before the testkit, every integration-test file hand-rolled the same
//! `build_grid → VqrfModel::build → SpNerfModel::build` ladder with subtly
//! copy-pasted configurations. These helpers are that ladder, written once:
//! the facade's `tests/`, `crates/render/tests/` and the testkit's own
//! suites all build their scenes and models here.

use spnerf::pipeline::PipelineBuilder;
use spnerf::Scene;
use spnerf_core::{SpNerfConfig, SpNerfModel};
use spnerf_render::renderer::RenderConfig;
use spnerf_render::scene::{build_grid, SceneId};
use spnerf_voxel::grid::DenseGrid;
use spnerf_voxel::vqrf::{VqrfConfig, VqrfModel};

use crate::corpus::{generate, CorpusSpec};

/// The MLP seed every test fixture (and every figure harness) shares.
pub const MLP_SEED: u64 = 42;

/// The test-fidelity VQRF configuration: `codebook` entries, 2 Lloyd
/// iterations, 2048-point training subsample.
pub fn test_vqrf_config(codebook: usize) -> VqrfConfig {
    VqrfConfig {
        codebook_size: codebook,
        kmeans_iters: 2,
        kmeans_subsample: 2048,
        ..Default::default()
    }
}

/// A SpNeRF operating point with the codebook split made explicit.
pub fn test_spnerf_config(subgrids: usize, table_size: usize, codebook: usize) -> SpNerfConfig {
    SpNerfConfig { subgrid_count: subgrids, table_size, codebook_size: codebook }
}

/// A render configuration at test fidelity (`samples` march steps,
/// everything else default).
pub fn test_render_config(samples: usize) -> RenderConfig {
    RenderConfig { samples_per_ray: samples, ..Default::default() }
}

/// The hand-wired three-stage fixture over a dataset scene:
/// `(grid, vqrf, model)` at test fidelity.
///
/// # Panics
///
/// Panics if the SpNeRF stage rejects the operating point.
pub fn dataset_fixture(
    id: SceneId,
    side: u32,
    codebook: usize,
    subgrids: usize,
    table_size: usize,
) -> (DenseGrid, VqrfModel, SpNerfModel) {
    model_fixture(build_grid(id, side), codebook, subgrids, table_size)
}

/// The hand-wired three-stage fixture over a corpus grid.
///
/// # Panics
///
/// Panics if the SpNeRF stage rejects the operating point.
pub fn corpus_fixture(
    spec: &CorpusSpec,
    codebook: usize,
    subgrids: usize,
    table_size: usize,
) -> (DenseGrid, VqrfModel, SpNerfModel) {
    model_fixture(generate(spec), codebook, subgrids, table_size)
}

/// Compresses and preprocesses an arbitrary grid at test fidelity.
///
/// # Panics
///
/// Panics if the SpNeRF stage rejects the operating point.
pub fn model_fixture(
    grid: DenseGrid,
    codebook: usize,
    subgrids: usize,
    table_size: usize,
) -> (DenseGrid, VqrfModel, SpNerfModel) {
    let vqrf = VqrfModel::build(&grid, &test_vqrf_config(codebook));
    let model = SpNerfModel::build(&vqrf, &test_spnerf_config(subgrids, table_size, codebook))
        .expect("test fixture builds");
    (grid, vqrf, model)
}

/// A pipeline [`Scene`] over a dataset at test fidelity ([`MLP_SEED`]).
///
/// # Panics
///
/// Panics if the pipeline rejects the configuration.
pub fn dataset_scene(
    id: SceneId,
    side: u32,
    codebook: usize,
    subgrids: usize,
    table_size: usize,
    samples: usize,
) -> Scene {
    PipelineBuilder::new(id)
        .grid_side(side)
        .vqrf_config(test_vqrf_config(codebook))
        .spnerf_config(test_spnerf_config(subgrids, table_size, codebook))
        .mlp_seed(MLP_SEED)
        .render_config(test_render_config(samples))
        .build()
        .expect("test pipeline builds")
}

/// A pipeline [`Scene`] over a corpus spec at test fidelity ([`MLP_SEED`]).
///
/// # Panics
///
/// Panics if the pipeline rejects the configuration.
pub fn corpus_scene(
    spec: &CorpusSpec,
    codebook: usize,
    subgrids: usize,
    table_size: usize,
    samples: usize,
) -> Scene {
    PipelineBuilder::from_grid(spec.label(), generate(spec))
        .vqrf_config(test_vqrf_config(codebook))
        .spnerf_config(test_spnerf_config(subgrids, table_size, codebook))
        .mlp_seed(MLP_SEED)
        .render_config(test_render_config(samples))
        .build()
        .expect("corpus pipeline builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Archetype;

    #[test]
    fn dataset_fixture_is_consistent() {
        let (grid, vqrf, model) = dataset_fixture(SceneId::Mic, 20, 16, 4, 2048);
        assert_eq!(vqrf.nnz(), grid.occupied_count());
        assert_eq!(model.bitmap().count_ones(), vqrf.nnz());
        assert_eq!(model.config().codebook_size, 16);
    }

    #[test]
    fn corpus_scene_round_trips_the_label() {
        let spec = CorpusSpec::archetype_default(Archetype::ThinShell, 16, 5);
        let scene = corpus_scene(&spec, 16, 4, 2048, 16);
        assert_eq!(scene.label(), spec.label());
        assert_eq!(scene.id(), None);
        assert_eq!(scene.render_config().samples_per_ray, 16);
    }
}
