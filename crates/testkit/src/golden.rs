//! Golden-file infrastructure: checked-in `key = value` snapshots with a
//! `SPNERF_BLESS=1` regeneration path.
//!
//! A [`Record`] is an ordered list of `(key, value)` string pairs.
//! [`check`] compares a freshly computed record against
//! `crates/testkit/goldens/<name>.txt`:
//!
//! * normally, any difference (changed value, missing key, extra key)
//!   panics with a per-key diff — CI fails on un-blessed drift;
//! * with the `SPNERF_BLESS=1` environment variable set, the golden file is
//!   rewritten from the record instead. Rendering is a pure function of the
//!   record, so re-blessing an unchanged suite rewrites every file
//!   byte-identically.

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// The environment variable that switches [`check`] into regeneration mode.
pub const BLESS_ENV: &str = "SPNERF_BLESS";

/// Directory the golden files live in (inside the testkit crate, so they
/// are versioned with the code that produces them).
pub fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens")
}

/// Whether this process runs in bless (regenerate) mode.
pub fn blessing() -> bool {
    std::env::var(BLESS_ENV).map(|v| v == "1").unwrap_or(false)
}

/// An ordered `key = value` snapshot.
///
/// # Examples
///
/// ```
/// use spnerf_testkit::golden::Record;
/// let mut r = Record::new();
/// r.push("stats.rays", 64);
/// r.push("image.digest", "0x00000000000000ff");
/// assert_eq!(r.entries().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Record {
    entries: Vec<(String, String)>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one entry. Values go through `Display`, so integers, floats
    /// (shortest round-trip formatting) and strings all work.
    ///
    /// # Panics
    ///
    /// Panics if the key repeats, contains `=`/newlines, or the value
    /// contains newlines — any of those would corrupt the file format.
    pub fn push(&mut self, key: impl Into<String>, value: impl Display) {
        let key = key.into();
        let value = value.to_string();
        assert!(!key.is_empty() && !key.contains('=') && !key.contains('\n'), "bad key {key:?}");
        assert!(!value.contains('\n'), "value for {key} contains a newline");
        assert!(self.entries.iter().all(|(k, _)| *k != key), "duplicate key {key}");
        self.entries.push((key, value));
    }

    /// The entries in insertion order.
    pub fn entries(&self) -> &[(String, String)] {
        &self.entries
    }

    /// Renders the record to golden-file text (pure: equal records render
    /// byte-identically).
    pub fn render(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# spnerf-testkit golden: {name}\n"));
        out.push_str(&format!("# regenerate: {BLESS_ENV}=1 cargo test -p spnerf-testkit\n"));
        for (k, v) in &self.entries {
            out.push_str(&format!("{k} = {v}\n"));
        }
        out
    }

    /// Parses golden-file text back to entries (`#` comments and blank
    /// lines are ignored).
    pub fn parse(text: &str) -> Self {
        let mut rec = Record::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((k, v)) = line.split_once(" = ") {
                rec.entries.push((k.to_string(), v.to_string()));
            }
        }
        rec
    }
}

/// Checks `record` against `goldens/<name>.txt`, or rewrites the file in
/// bless mode.
///
/// # Panics
///
/// Panics on any drift (with a per-key diff), on a missing golden file
/// outside bless mode, and on I/O failures.
pub fn check(name: &str, record: &Record) {
    let path = goldens_dir().join(format!("{name}.txt"));
    if blessing() {
        fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        fs::write(&path, record.render(name)).expect("write golden");
        println!("blessed {}", path.display());
        return;
    }
    let text = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} — run `{BLESS_ENV}=1 cargo test -p spnerf-testkit` to create it",
            path.display()
        )
    });
    let golden = Record::parse(&text);
    let diff = diff_records(&golden, record);
    assert!(
        diff.is_empty(),
        "golden drift in {name} ({} difference(s)) — if intentional, re-bless with \
         `{BLESS_ENV}=1 cargo test -p spnerf-testkit`:\n{}",
        diff.len(),
        diff.join("\n")
    );
}

/// Per-key differences between a golden record and a fresh one.
fn diff_records(golden: &Record, fresh: &Record) -> Vec<String> {
    let mut out = Vec::new();
    for (k, want) in golden.entries() {
        match fresh.entries().iter().find(|(fk, _)| fk == k) {
            None => out.push(format!("  - {k}: in golden but not produced (golden: {want})")),
            Some((_, got)) if got != want => {
                out.push(format!("  ~ {k}: golden {want} != got {got}"));
            }
            Some(_) => {}
        }
    }
    for (k, got) in fresh.entries() {
        if !golden.entries().iter().any(|(gk, _)| gk == k) {
            out.push(format!("  + {k}: produced but not in golden (got: {got})"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        let mut r = Record::new();
        r.push("a.count", 3usize);
        r.push("b.digest", "0x0000000000000007");
        r.push("c.float", 1.5f64);
        r
    }

    #[test]
    fn render_parse_round_trip() {
        let r = sample();
        let text = r.render("sample");
        assert!(text.starts_with("# spnerf-testkit golden: sample\n"));
        let back = Record::parse(&text);
        assert_eq!(back, r);
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(sample().render("x"), sample().render("x"));
    }

    #[test]
    fn diff_reports_changes_missing_and_extra() {
        let golden = sample();
        let mut fresh = Record::new();
        fresh.push("a.count", 4usize); // changed
        fresh.push("c.float", 1.5f64); // unchanged
        fresh.push("d.new", "x"); // extra
                                  // b.digest missing.
        let diff = diff_records(&golden, &fresh);
        assert_eq!(diff.len(), 3, "{diff:?}");
        assert!(diff.iter().any(|d| d.contains("a.count") && d.contains("3") && d.contains("4")));
        assert!(diff.iter().any(|d| d.contains("b.digest") && d.contains("not produced")));
        assert!(diff.iter().any(|d| d.contains("d.new") && d.contains("not in golden")));
    }

    #[test]
    fn identical_records_have_no_diff() {
        assert!(diff_records(&sample(), &sample()).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_keys_rejected() {
        let mut r = sample();
        r.push("a.count", 9usize);
    }

    #[test]
    fn float_display_is_shortest_round_trip() {
        // The format goldens rely on: Rust's Display for floats prints the
        // shortest string that parses back to the same bits.
        let mut r = Record::new();
        r.push("v", 0.1f64);
        r.push("inf", f64::INFINITY);
        assert_eq!(r.entries()[0].1, "0.1");
        assert_eq!(r.entries()[1].1, "inf");
    }
}
