//! # spnerf-testkit
//!
//! The workload corpus and cross-layer golden conformance harness of the
//! SpNeRF reproduction. SpNeRF's value proposition is *sparsity-aware*
//! memory reduction, so the stack must be validated across the
//! sparsity/structure space — not just at the eight Synthetic-NeRF
//! stand-ins' single operating band. This crate provides:
//!
//! * [`corpus`] — a deterministic procedural scenario generator with five
//!   archetypes spanning that space (`dense-blob`, `clusters`,
//!   `thin-shell`, `empty-space`, `noise-field`), parameterized by
//!   seed/resolution/occupancy and exposed as the [`corpus::Corpus`]
//!   iterator;
//! * [`digest`] — stable 64-bit FNV-1a digests of images, grids, bitmaps,
//!   codebooks, render stats and frame workloads (floats hashed by bit
//!   pattern, so a digest match is bitwise equality);
//! * [`golden`] — checked-in `key = value` snapshot files with a
//!   `SPNERF_BLESS=1` regeneration path;
//! * [`conformance`] — the runner that pushes each corpus scene through
//!   the full `Pipeline`/`RenderSession` stack, the accelerator cycle
//!   model, and the DRAM trace/energy model, snapshotting every layer —
//!   including a mip empty-space-skipping pass whose image digests are
//!   pinned equal to the unskipped ones (`skip.*` keys);
//! * [`fixtures`] — the shared scene/model builders the workspace's
//!   integration tests use instead of hand-rolled copies.
//!
//! # Golden-file layout
//!
//! One file per corpus archetype under `crates/testkit/goldens/`:
//!
//! ```text
//! goldens/
//!   dense-blob.txt    # spec, grid digest, VQRF/bitmap summary, image
//!   clusters.txt      # digests, PSNR, stats, workload, accel cycles,
//!   thin-shell.txt    # DRAM row-hit/miss + energy — one `key = value`
//!   empty-space.txt   # per line
//!   noise-field.txt
//! ```
//!
//! # The `SPNERF_BLESS` workflow
//!
//! ```text
//! cargo test -p spnerf-testkit                 # check: fails on any drift
//! SPNERF_BLESS=1 cargo test -p spnerf-testkit  # regenerate the goldens
//! git diff crates/testkit/goldens              # review what changed
//! ```
//!
//! Blessing is a pure function of the computed records: re-blessing an
//! unchanged tree rewrites every golden byte-identically (CI enforces
//! this). Goldens pin exact float bit patterns, so they are tied to one
//! platform class — they are generated on x86-64 Linux, the CI platform.
//!
//! # Example
//!
//! ```
//! use spnerf_testkit::conformance::{run, ConformanceConfig};
//! use spnerf_testkit::corpus::{Archetype, CorpusSpec};
//!
//! let spec = CorpusSpec::archetype_default(Archetype::ThinShell, 16, 7);
//! let cfg = ConformanceConfig { image: 8, samples_per_ray: 16, ..Default::default() };
//! let record = run(&spec, &cfg);
//! assert!(record.entries().iter().any(|(k, _)| k == "accel.cycles"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod corpus;
pub mod digest;
pub mod fixtures;
pub mod golden;

pub use conformance::{run, ConformanceConfig};
pub use corpus::{generate, Archetype, Corpus, CorpusSpec};
pub use golden::{check, Record};
