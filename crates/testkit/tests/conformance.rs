//! The golden conformance suite: every corpus archetype through every
//! layer, checked against `goldens/<archetype>.txt`.
//!
//! * `cargo test -p spnerf-testkit` — fails on any un-blessed drift;
//! * `SPNERF_BLESS=1 cargo test -p spnerf-testkit` — regenerates the
//!   goldens (byte-identically when nothing changed).

use spnerf_testkit::conformance::{run, ConformanceConfig};
use spnerf_testkit::corpus::{Archetype, Corpus};
use spnerf_testkit::golden;

#[test]
fn corpus_conformance_matches_goldens() {
    let cfg = ConformanceConfig::default();
    for spec in Corpus::quick() {
        let record = run(&spec, &cfg);
        golden::check(spec.archetype.name(), &record);
    }
}

#[test]
fn goldens_exist_for_every_archetype() {
    if golden::blessing() {
        // The conformance test above writes them in this very run.
        return;
    }
    for a in Archetype::ALL {
        let path = golden::goldens_dir().join(format!("{}.txt", a.name()));
        assert!(
            path.is_file(),
            "missing golden {} — run `SPNERF_BLESS=1 cargo test -p spnerf-testkit`",
            path.display()
        );
    }
}
