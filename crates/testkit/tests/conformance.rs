//! The golden conformance suite: every corpus archetype through every
//! layer, checked against `goldens/<archetype>.txt`.
//!
//! * `cargo test -p spnerf-testkit` — fails on any un-blessed drift;
//! * `SPNERF_BLESS=1 cargo test -p spnerf-testkit` — regenerates the
//!   goldens (byte-identically when nothing changed).

use spnerf_testkit::conformance::{run, ConformanceConfig};
use spnerf_testkit::corpus::{Archetype, Corpus};
use spnerf_testkit::golden;
use spnerf_testkit::golden::Record;

fn value_of<'a>(rec: &'a Record, key: &str) -> &'a str {
    rec.entries()
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("record has no key {key}"))
}

/// March-reduction acceptance floor per archetype: how many × fewer
/// marched samples mip skipping must deliver. Only structured sparsity
/// carries a floor; `None` archetypes (e.g. incoherent noise) just have to
/// stay pixel-exact.
fn reduction_floor(archetype: Archetype) -> Option<f64> {
    match archetype {
        Archetype::EmptySpace => Some(3.0),
        Archetype::ThinShell => Some(1.5),
        _ => None,
    }
}

/// Acceptance floor for the bake-and-defer render's PSNR against ground
/// truth, per archetype. The baked path factors view dependence into a
/// different (smaller) network, so it is *not* expected to match the
/// per-sample image bit-for-bit — but it must stay recognizably the same
/// scene. Floors sit ~0.5 dB under the measured values so legitimate
/// cross-platform float drift cannot trip them while a real regression
/// (wrong diffuse channel, dropped specular accumulation) still does.
fn baked_psnr_floor(archetype: Archetype) -> f64 {
    match archetype {
        Archetype::DenseBlob => 16.0,
        Archetype::Clusters => 20.0,
        Archetype::ThinShell => 18.0,
        Archetype::EmptySpace => 26.5,
        Archetype::NoiseField => 13.5,
    }
}

/// Temporal-reuse acceptance floor per archetype: how many × fewer samples
/// an 8-frame warped orbit must march on frames 1.. compared to
/// frame-independent rendering. The clusters archetype carries the paper
/// floor (≥ 2×); the others only have to show *some* amortization (the
/// strict `warp_after < off_after` assertion), since e.g. incoherent noise
/// re-marches most of its depth edges.
fn reuse_floor(archetype: Archetype) -> Option<f64> {
    match archetype {
        Archetype::Clusters => Some(2.0),
        _ => None,
    }
}

#[test]
fn corpus_conformance_matches_goldens() {
    let cfg = ConformanceConfig::default();
    for spec in Corpus::quick() {
        let record = run(&spec, &cfg);
        // The tentpole invariant, asserted on the live record before the
        // golden comparison: mip skipping changes no pixel of any source.
        for source in ["gt", "vqrf", "masked", "unmasked"] {
            assert_eq!(
                value_of(&record, &format!("image.{source}.digest")),
                value_of(&record, &format!("skip.image.{source}.digest")),
                "{}: skip render of `{source}` must be bitwise-identical",
                spec.label()
            );
        }
        // The bake-and-defer invariants, also on the live record: skipping
        // stays pixel-exact on the baked grid, the deferred MLP runs at
        // most once per ray and strictly less often than per-sample
        // shading would, and the image clears its PSNR-vs-GT floor.
        assert_eq!(
            value_of(&record, "baked.image.digest"),
            value_of(&record, "baked.skip.image.digest"),
            "{}: skip render of the baked source must be bitwise-identical",
            spec.label()
        );
        let shaded: usize = value_of(&record, "baked.stats.samples_shaded").parse().unwrap();
        let pixels: usize = value_of(&record, "baked.stats.pixels_shaded").parse().unwrap();
        let rays: usize = value_of(&record, "stats.rays").parse().unwrap();
        assert!(pixels > 0, "{}: baked render must shade something", spec.label());
        assert!(pixels <= rays, "{}: at most one deferred eval per ray", spec.label());
        assert!(
            shaded > pixels,
            "{}: deferred shading must beat per-sample ({shaded} samples vs {pixels} pixels)",
            spec.label()
        );
        let psnr: f64 = value_of(&record, "baked.psnr_db").parse().unwrap();
        let floor = baked_psnr_floor(spec.archetype);
        assert!(
            psnr >= floor,
            "{}: baked PSNR vs ground truth must be ≥ {floor} dB, got {psnr:.2}",
            spec.label()
        );
        // Temporal-tier invariants on the live record: frame 0 of both
        // reuse modes is the same full render, warping always amortizes
        // marched samples on frames 1.., and structured archetypes clear
        // their reuse floor.
        assert_eq!(
            value_of(&record, "traj.off.image.0.digest"),
            value_of(&record, "traj.warp.image.0.digest"),
            "{}: frame 0 pays a full render in either reuse mode",
            spec.label()
        );
        let off_after: f64 = value_of(&record, "traj.off.samples_after_first").parse().unwrap();
        let warp_after: f64 = value_of(&record, "traj.warp.samples_after_first").parse().unwrap();
        assert!(
            warp_after < off_after,
            "{}: warp must march fewer samples on frames 1.. ({warp_after} vs {off_after})",
            spec.label()
        );
        if let Some(floor) = reuse_floor(spec.archetype) {
            let ratio = off_after / warp_after.max(1.0);
            assert!(
                ratio >= floor,
                "{}: frames 1.. must march ≥ {floor}× fewer samples with warp reuse, got \
                 {ratio:.2}× ({off_after} → {warp_after})",
                spec.label()
            );
        }
        // And the speedup acceptance floor, on the same live record.
        if let Some(floor) = reduction_floor(spec.archetype) {
            let off: f64 = value_of(&record, "stats.samples_marched").parse().unwrap();
            let on: f64 = value_of(&record, "skip.stats.samples_marched").parse().unwrap();
            let ratio = off / on.max(1.0);
            assert!(
                ratio >= floor,
                "{}: samples_marched must drop ≥ {floor}× with skipping, got {ratio:.2}× \
                 ({off} → {on})",
                spec.label()
            );
        }
        golden::check(spec.archetype.name(), &record);
    }
}

#[test]
fn every_sparse_format_renders_identical_images() {
    use spnerf::pipeline::{RenderRequest, RenderSource};
    use spnerf::voxel::sparse::{FormatKind, FormatSelection, SparseFormat};
    use spnerf_render::scene::default_camera;
    use spnerf_testkit::conformance::scene_for;
    use spnerf_testkit::digest;

    let cfg = ConformanceConfig { image: 8, samples_per_ray: 16, ..Default::default() };
    let cam = default_camera(cfg.image, cfg.image, 1, 8);
    for spec in Corpus::quick() {
        let scene = scene_for(&spec, &cfg);
        let base = scene
            .session()
            .render(&RenderRequest::single(RenderSource::spnerf_masked(), cam))
            .unwrap();
        let base_digest = digest::digest_image(&base.images[0]);
        let mut traffic = Vec::new();
        for kind in FormatKind::ALL {
            let other = scene.with_sparse_format(FormatSelection::Fixed(kind));
            let resp = other
                .session()
                .render(&RenderRequest::single(RenderSource::spnerf_masked(), cam))
                .unwrap();
            assert_eq!(
                digest::digest_image(&resp.images[0]),
                base_digest,
                "{}: `{kind}` must render bitwise-identical pixels",
                spec.label()
            );
            assert_eq!(
                resp.workload.format_bytes,
                resp.stats.samples_marched * other.sparse_index().access_cost().bytes_per_lookup,
                "{}: `{kind}` metadata traffic must follow its access cost",
                spec.label()
            );
            traffic.push(resp.workload.format_bytes);
        }
        assert!(
            traffic.iter().collect::<std::collections::HashSet<_>>().len() > 1,
            "{}: formats must differ in metadata traffic, got {traffic:?}",
            spec.label()
        );
    }
}

#[test]
fn auto_selects_multiple_formats_across_the_corpus() {
    let cfg = ConformanceConfig { image: 8, samples_per_ray: 16, ..Default::default() };
    let picked: std::collections::HashSet<_> = Corpus::quick()
        .map(|spec| spnerf_testkit::conformance::scene_for(&spec, &cfg).sparse_kind())
        .collect();
    assert!(
        picked.len() >= 2,
        "the occupancy selector must cross over somewhere in the 0.5%-20% corpus: {picked:?}"
    );
}

/// The exactness anchor of the temporal tier, across every archetype: an
/// `Off`-mode trajectory through the facade API is bitwise a loop of
/// independent per-frame session renders.
#[test]
fn trajectory_off_mode_is_bitwise_per_frame_session_rendering() {
    use spnerf::pipeline::{RenderRequest, RenderSource};
    use spnerf::trajectory::{TrajectoryRequest, TrajectorySpec};
    use spnerf_testkit::conformance::scene_for;
    use spnerf_testkit::digest;

    let cfg = ConformanceConfig { image: 8, samples_per_ray: 16, ..Default::default() };
    for spec in Corpus::quick() {
        let scene = scene_for(&spec, &cfg);
        let session = scene.session();
        let orbit = TrajectorySpec::orbit(8, cfg.image, cfg.image);
        let resp = session
            .render_trajectory(&TrajectoryRequest::new(RenderSource::spnerf_masked(), orbit))
            .expect("off-mode trajectory");
        for (i, (frame, cam)) in resp.frames.iter().zip(orbit.cameras()).enumerate() {
            let still = session
                .render(&RenderRequest::single(RenderSource::spnerf_masked(), cam))
                .expect("still render");
            assert_eq!(
                digest::digest_image(&frame.image),
                digest::digest_image(&still.images[0]),
                "{} frame {i}: Off-mode must be bitwise per-frame rendering",
                spec.label()
            );
            assert_eq!(frame.stats.rays_warped, 0, "{} frame {i}", spec.label());
        }
    }
}

#[test]
fn goldens_exist_for_every_archetype() {
    if golden::blessing() {
        // The conformance test above writes them in this very run.
        return;
    }
    for a in Archetype::ALL {
        let path = golden::goldens_dir().join(format!("{}.txt", a.name()));
        assert!(
            path.is_file(),
            "missing golden {} — run `SPNERF_BLESS=1 cargo test -p spnerf-testkit`",
            path.display()
        );
    }
}
