//! Property satellite: VQRF encode/decode round-trips, bitmap-mask
//! consistency, and occupancy mip-pyramid invariants over corpus-generated
//! grids — random archetypes, seeds, and occupancies from 1 % to 90 %.

use proptest::prelude::*;

use spnerf_core::MaskMode;
use spnerf_render::source::VoxelSource;
use spnerf_testkit::corpus::{generate, Archetype, CorpusSpec};
use spnerf_testkit::fixtures;
use spnerf_voxel::bitmap::Bitmap;
use spnerf_voxel::coord::GridCoord;
use spnerf_voxel::mip::OccupancyMip;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn vqrf_round_trip_and_bitmap_consistency(
        arch_idx in 0usize..5,
        side in 8u32..14,
        occupancy in 0.01f64..0.90,
        seed in 0u64..1_000,
    ) {
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], side, occupancy, seed);
        let (grid, vqrf, model) = fixtures::model_fixture(generate(&spec), 16, 4, 4096);
        let label = spec.label();

        // Encode/decode round trip: the restored grid has exactly the
        // source support (no pruning configured), and densities survive
        // within the INT8 quantization bound.
        let restored = vqrf.restore();
        prop_assert_eq!(restored.occupied_count(), grid.occupied_count(), "{}", &label);
        let dens_err = vqrf.density_quant().params().max_rounding_error();
        for p in vqrf.points() {
            let (d, f) = vqrf.decode_at(p.coord).expect("stored point decodes");
            prop_assert!(
                (d - p.density).abs() <= dens_err + 1e-6,
                "{}: density {} decoded {}", &label, p.density, d
            );
            prop_assert!(f.iter().all(|v| v.is_finite()), "{}", &label);
        }

        // Bitmap-mask consistency: the bitmap is exactly the grid support,
        // and the masked decoder's support is exactly the bitmap.
        prop_assert_eq!(model.bitmap().count_ones(), vqrf.nnz(), "{}", &label);
        let view = model.view(MaskMode::Masked);
        for c in grid.dims().iter() {
            let occupied = grid.is_occupied(c);
            prop_assert_eq!(model.bitmap().get(c), occupied, "{}: bitmap at {}", &label, c);
            prop_assert_eq!(view.fetch(c).is_some(), occupied, "{}: decode at {}", &label, c);
        }
    }

    #[test]
    fn mip_levels_consistent_and_fine_lookup_matches_bitmap(
        arch_idx in 0usize..5,
        side in 8u32..14,
        occupancy in 0.01f64..0.90,
        seed in 0u64..1_000,
    ) {
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], side, occupancy, seed);
        let grid = generate(&spec);
        let bitmap = Bitmap::from_grid(&grid);
        let mip = OccupancyMip::build(bitmap.clone());
        let label = spec.label();
        let dims = grid.dims();

        // Level consistency: a level-k block is occupied iff some child at
        // level k−1 is occupied, where "child" means the level-(k−1) blocks
        // whose closed coverage tiles the parent's (2 per axis; for k = 1
        // the children are the 3³ vertices of the dilated coverage).
        for level in 1..=mip.levels() {
            let k = level as u32;
            let blocks = |n: u32| (((n as u64 - 1).div_ceil(1 << k)) as u32).max(1);
            for bz in 0..blocks(dims.nz) {
                for by in 0..blocks(dims.ny) {
                    for bx in 0..blocks(dims.nx) {
                        let block = GridCoord::new(bx, by, bz);
                        let any_child = if level == 1 {
                            let mut any = false;
                            'v: for dz in 0..=2 {
                                for dy in 0..=2 {
                                    for dx in 0..=2 {
                                        let v = GridCoord::new(
                                            bx * 2 + dx, by * 2 + dy, bz * 2 + dz,
                                        );
                                        if dims.contains(v) && bitmap.get(v) {
                                            any = true;
                                            break 'v;
                                        }
                                    }
                                }
                            }
                            any
                        } else {
                            let child_blocks = |n: u32| {
                                (((n as u64 - 1).div_ceil(1 << (k - 1))) as u32).max(1)
                            };
                            let mut any = false;
                            'c: for dz in 0..=1 {
                                for dy in 0..=1 {
                                    for dx in 0..=1 {
                                        let j = GridCoord::new(
                                            bx * 2 + dx, by * 2 + dy, bz * 2 + dz,
                                        );
                                        if j.x < child_blocks(dims.nx)
                                            && j.y < child_blocks(dims.ny)
                                            && j.z < child_blocks(dims.nz)
                                            && mip.block_occupied(level - 1, j)
                                        {
                                            any = true;
                                            break 'c;
                                        }
                                    }
                                }
                            }
                            any
                        };
                        prop_assert_eq!(
                            mip.block_occupied(level, block),
                            any_child,
                            "{}: level {} block {} disagrees with its children",
                            &label, level, block
                        );
                    }
                }
            }
        }

        // Fine-level lookup through the pyramid equals the raw bitmap: the
        // pyramid claims a cell empty iff all 8 corner bits are clear.
        for base in dims.iter() {
            let raw_empty = base.cell_corners().iter().all(|c| !bitmap.get_clamped(*c));
            prop_assert_eq!(
                mip.empty_region(base, usize::MAX).is_some(),
                raw_empty,
                "{}: pyramid vs raw bitmap at cell {}", &label, base
            );
        }
    }

    #[test]
    fn restored_empty_space_stays_empty(
        arch_idx in 0usize..5,
        side in 8u32..12,
        seed in 0u64..1_000,
    ) {
        // Low-occupancy regime: almost everything is empty, and none of it
        // may leak into the restored grid or the bitmap.
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], side, 0.01, seed);
        let (grid, vqrf, model) = fixtures::model_fixture(generate(&spec), 16, 4, 4096);
        let restored = vqrf.restore();
        for c in grid.dims().iter() {
            if !grid.is_occupied(c) {
                prop_assert!(!restored.is_occupied(c));
                prop_assert!(!model.bitmap().get(c));
            }
        }
    }
}
