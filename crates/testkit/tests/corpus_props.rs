//! Property satellite: VQRF encode/decode round-trips and bitmap-mask
//! consistency over corpus-generated grids — random archetypes, seeds, and
//! occupancies from 1 % to 90 %.

use proptest::prelude::*;

use spnerf_core::MaskMode;
use spnerf_render::source::VoxelSource;
use spnerf_testkit::corpus::{generate, Archetype, CorpusSpec};
use spnerf_testkit::fixtures;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn vqrf_round_trip_and_bitmap_consistency(
        arch_idx in 0usize..5,
        side in 8u32..14,
        occupancy in 0.01f64..0.90,
        seed in 0u64..1_000,
    ) {
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], side, occupancy, seed);
        let (grid, vqrf, model) = fixtures::model_fixture(generate(&spec), 16, 4, 4096);
        let label = spec.label();

        // Encode/decode round trip: the restored grid has exactly the
        // source support (no pruning configured), and densities survive
        // within the INT8 quantization bound.
        let restored = vqrf.restore();
        prop_assert_eq!(restored.occupied_count(), grid.occupied_count(), "{}", &label);
        let dens_err = vqrf.density_quant().params().max_rounding_error();
        for p in vqrf.points() {
            let (d, f) = vqrf.decode_at(p.coord).expect("stored point decodes");
            prop_assert!(
                (d - p.density).abs() <= dens_err + 1e-6,
                "{}: density {} decoded {}", &label, p.density, d
            );
            prop_assert!(f.iter().all(|v| v.is_finite()), "{}", &label);
        }

        // Bitmap-mask consistency: the bitmap is exactly the grid support,
        // and the masked decoder's support is exactly the bitmap.
        prop_assert_eq!(model.bitmap().count_ones(), vqrf.nnz(), "{}", &label);
        let view = model.view(MaskMode::Masked);
        for c in grid.dims().iter() {
            let occupied = grid.is_occupied(c);
            prop_assert_eq!(model.bitmap().get(c), occupied, "{}: bitmap at {}", &label, c);
            prop_assert_eq!(view.fetch(c).is_some(), occupied, "{}: decode at {}", &label, c);
        }
    }

    #[test]
    fn restored_empty_space_stays_empty(
        arch_idx in 0usize..5,
        side in 8u32..12,
        seed in 0u64..1_000,
    ) {
        // Low-occupancy regime: almost everything is empty, and none of it
        // may leak into the restored grid or the bitmap.
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], side, 0.01, seed);
        let (grid, vqrf, model) = fixtures::model_fixture(generate(&spec), 16, 4, 4096);
        let restored = vqrf.restore();
        for c in grid.dims().iter() {
            if !grid.is_occupied(c) {
                prop_assert!(!restored.is_occupied(c));
                prop_assert!(!model.bitmap().get(c));
            }
        }
    }
}
