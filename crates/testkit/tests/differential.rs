//! Differential satellite: the functional accelerator simulator (pure
//! hardware-unit models) and the cycle-level pipeline simulator must agree
//! with the software reference on per-frame work counts, for every corpus
//! archetype.

use spnerf_accel::frame::FrameWorkload;
use spnerf_accel::sim::functional::FunctionalPipeline;
use spnerf_accel::sim::pipeline::{simulate_frame, ArchConfig, CycleSimulator};
use spnerf_accel::sim::systolic::SystolicArray;
use spnerf_core::MaskMode;
use spnerf_render::mlp::Mlp;
use spnerf_render::renderer::{render_view, RenderConfig};
use spnerf_render::scene::{default_camera, scene_aabb};
use spnerf_testkit::corpus::Corpus;
use spnerf_testkit::fixtures;

#[test]
fn functional_sim_matches_reference_work_counts_on_every_archetype() {
    for spec in Corpus::quick() {
        let (_grid, _vqrf, model) = fixtures::corpus_fixture(&spec, 32, 8, 4096);
        let mlp = Mlp::random(fixtures::MLP_SEED);
        let cam = default_camera(10, 10, 1, 8);
        // early_stop = 0: neither path terminates rays early, so both march
        // exactly the same sample set and the counters must agree exactly.
        let cfg = RenderConfig { samples_per_ray: 24, early_stop: 0.0, ..Default::default() };

        let view = model.view(MaskMode::Masked);
        let (sw_img, stats) = render_view(&view, &mlp, &cam, &scene_aabb(), &cfg);

        let mut hw = FunctionalPipeline::new(&model, &mlp, SystolicArray::new(8, 8), 16);
        let hw_img = hw.render(&cam, &scene_aabb(), &cfg);

        let label = spec.label();
        assert_eq!(
            hw.sgpu().gid.samples(),
            stats.samples_marched as u64,
            "{label}: GID sample count must equal the reference's marched count"
        );
        assert!(
            hw.sgpu().blu.lookups() <= 8 * hw.sgpu().gid.samples(),
            "{label}: at most 8 bitmap lookups per marched sample"
        );
        assert!(
            hw.sgpu().hmu.lookups() <= hw.sgpu().blu.lookups(),
            "{label}: the bitmap gate only ever removes HMU work"
        );
        if stats.samples_shaded > 0 {
            assert!(hw.sgpu().hmu.lookups() > 0, "{label}: shaded frame with no HMU activity");
        }
        let psnr = hw_img.psnr(&sw_img);
        assert!(psnr > 30.0, "{label}: hardware and software renders diverged ({psnr:.1} dB)");
    }
}

#[test]
fn cycle_stepping_sim_validates_the_analytic_model_on_corpus_workloads() {
    let arch = ArchConfig::default();
    let sim = CycleSimulator::new(arch);
    for spec in Corpus::quick() {
        let scene = fixtures::corpus_scene(&spec, 32, 8, 4096, 32);
        let session = scene.session();
        let resp = session
            .render(&spnerf::RenderRequest::single(
                spnerf::RenderSource::spnerf_masked(),
                default_camera(12, 12, 1, 8),
            ))
            .expect("render");
        // DRAM streaming excluded — both the model bytes and the sparse
        // index's per-lookup metadata: the stepping simulator models only
        // the SGPU/MLP engines, so compare against a compute-only workload.
        let w = FrameWorkload {
            model_bytes: 0,
            format_bytes: 0,
            ..resp.workload.at_paper_resolution()
        };
        let analytic = simulate_frame(&w, &arch);
        let stepped = sim.run(w.samples_marched, w.samples_shaded);
        let err = (stepped as f64 - analytic.cycles as f64).abs() / analytic.cycles as f64;
        assert!(
            err < 0.05,
            "{}: cycle sim {stepped} vs analytic {} ({:.1}% off)",
            spec.label(),
            analytic.cycles,
            err * 100.0
        );
    }
}
