//! DRAM satellite: edge cases around empty and overflowing traces. The
//! per-archetype row-hit/miss and energy snapshots live in the conformance
//! goldens (`dram.seq.*` / `dram.gather.*` keys).

use spnerf_dram::trace::sequential;
use spnerf_dram::{DramTimings, EnergyModel, MemoryController, Request};

#[test]
fn empty_trace_is_all_zero_including_energy() {
    let t = DramTimings::lpddr4_3200();
    let res = MemoryController::new(t).run_trace(&[]);
    assert_eq!(res.cycles, 0);
    assert_eq!(res.bytes_moved, 0);
    assert_eq!(res.bytes_requested, 0);
    assert_eq!(res.row_hits + res.row_misses, 0);
    assert_eq!(res.achieved_gbps, 0.0);
    assert_eq!(EnergyModel::lpddr4().energy_j(&res), 0.0);
    assert_eq!(EnergyModel::lpddr4().avg_power_w(&res), 0.0);
}

#[test]
fn request_overflowing_rows_splits_and_accounts_every_burst() {
    let t = DramTimings::lpddr4_3200();
    // One request far larger than a row: it must split into bursts that
    // together cover every byte (rounded up to whole bursts).
    let bytes = (t.row_bytes * 3 + 100) as u32;
    let res = MemoryController::new(t).run_trace(&[Request::read(64, bytes)]);
    let bursts = (bytes as u64).div_ceil(t.burst_bytes() as u64);
    assert_eq!(res.row_hits + res.row_misses, bursts);
    assert_eq!(res.bytes_moved, bursts * t.burst_bytes() as u64);
    assert!(res.row_misses >= 1, "crossing rows must activate at least once");
}

#[test]
fn high_addresses_map_and_replay_without_wrapping_artifacts() {
    let t = DramTimings::lpddr4_3200();
    // Addresses far beyond any real device capacity still map to valid
    // (bank, row) pairs and replay like their low-address twins.
    let hi_base = 1u64 << 40;
    let lo = MemoryController::new(t).run_trace(&sequential(0, 1 << 16, 256));
    let hi = MemoryController::new(t).run_trace(&sequential(hi_base, 1 << 16, 256));
    assert_eq!(lo.row_hits + lo.row_misses, hi.row_hits + hi.row_misses);
    assert_eq!(lo.bytes_moved, hi.bytes_moved);
    assert_eq!(lo.cycles, hi.cycles, "address offset must not change stream timing");
}

#[test]
fn trace_spanning_many_refresh_intervals_still_moves_every_byte() {
    let t = DramTimings::lpddr4_3200();
    // Long enough that several tREFI windows elapse mid-trace.
    let bytes = 8u64 << 20;
    let res = MemoryController::new(t).run_trace(&sequential(0, bytes, 256));
    assert_eq!(res.bytes_requested, bytes);
    assert!(res.cycles as u64 > t.t_refi, "trace must span at least one refresh interval");
    assert!(res.efficiency(&t) > 0.5, "refresh must not collapse throughput");
}
