//! Property satellite: every [`SparseFormat`] encoding pinned against the
//! dense-grid / bitmap ground truth over corpus-generated scenes — random
//! archetypes, seeds, and occupancies from 1 % to 90 % — mirroring the mip
//! proptests in `corpus_props.rs`.

use proptest::prelude::*;

use spnerf_testkit::corpus::{generate, Archetype, CorpusSpec};
use spnerf_voxel::bitmap::Bitmap;
use spnerf_voxel::sparse::{
    predicted_index_bytes, select_format, FormatKind, OccupancyStats, SparseFormat, SparseIndex,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_format_matches_the_bitmap_ground_truth(
        arch_idx in 0usize..5,
        side in 8u32..14,
        occupancy in 0.01f64..0.90,
        seed in 0u64..1_000,
    ) {
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], side, occupancy, seed);
        let grid = generate(&spec);
        let bitmap = Bitmap::from_grid(&grid);
        let stats = OccupancyStats::from_bitmap(&bitmap);
        let label = spec.label();

        for kind in FormatKind::ALL {
            let idx = SparseIndex::from_bitmap(kind, &bitmap);
            prop_assert_eq!(idx.kind(), kind, "{}", &label);
            prop_assert_eq!(idx.dims(), bitmap.dims(), "{}", &label);
            prop_assert_eq!(idx.nnz(), bitmap.count_ones(), "{}", &label);

            // Lookup equivalence: every encoding answers exactly the
            // bitmap's support, and the payload index it returns is the
            // cell's occupancy rank in linear order — the contract that
            // makes the formats interchangeable under one payload array.
            let mut rank = 0usize;
            for c in bitmap.dims().iter() {
                let occupied = bitmap.get(c);
                prop_assert_eq!(grid.is_occupied(c), occupied, "{}: bitmap at {}", &label, c);
                let got = idx.lookup(c);
                if occupied {
                    prop_assert_eq!(
                        got, Some(rank),
                        "{}: `{}` payload rank at {}", &label, kind, c
                    );
                    rank += 1;
                } else {
                    prop_assert_eq!(got, None, "{}: `{}` claims {} occupied", &label, kind, c);
                }
            }

            // The selector's closed-form prediction is byte-identical to
            // the built structure, and the access cost is well-formed.
            prop_assert_eq!(
                idx.footprint().total_bytes(),
                predicted_index_bytes(kind, &stats),
                "{}: `{}` prediction drifted from the built structure", &label, kind
            );
            let cost = idx.access_cost();
            prop_assert!(cost.bytes_per_lookup > 0, "{}: `{}`", &label, kind);
            prop_assert!(cost.probes > 0, "{}: `{}`", &label, kind);
        }
    }

    #[test]
    fn auto_always_picks_the_smallest_candidate(
        arch_idx in 0usize..5,
        side in 8u32..14,
        occupancy in 0.01f64..0.90,
        seed in 0u64..1_000,
    ) {
        let spec = CorpusSpec::new(Archetype::ALL[arch_idx], side, occupancy, seed);
        let bitmap = Bitmap::from_grid(&generate(&spec));
        let stats = OccupancyStats::from_bitmap(&bitmap);
        let pick = select_format(&stats);
        let label = spec.label();

        prop_assert!(
            FormatKind::AUTO_CANDIDATES.contains(&pick),
            "{}: auto picked the scan baseline `{}`", &label, pick
        );
        let best = FormatKind::AUTO_CANDIDATES
            .iter()
            .map(|k| predicted_index_bytes(*k, &stats))
            .min()
            .unwrap();
        prop_assert_eq!(
            predicted_index_bytes(pick, &stats), best,
            "{}: auto's `{}` is not minimal", &label, pick
        );

        // And the built auto index really is the predicted winner.
        let idx = SparseIndex::from_bitmap_selected(Default::default(), &bitmap);
        prop_assert_eq!(idx.kind(), pick, "{}", &label);
        prop_assert_eq!(idx.footprint().total_bytes(), best, "{}", &label);
    }
}
