//! Parallel-determinism satellite, extended to the corpus: a session
//! render of every archetype is bitwise-identical at `--threads 1` and
//! `--threads 4`.
//!
//! This container is single-core, so parallel correctness is verified by
//! exact equality of images and statistics — never by speedup.

use spnerf::pipeline::{RenderRequest, RenderSource};
use spnerf::RenderResponse;
use spnerf_render::renderer::RenderConfig;
use spnerf_render::scene::default_camera;
use spnerf_testkit::corpus::Corpus;
use spnerf_testkit::fixtures;

fn render_at(scene: &spnerf::Scene, threads: usize, source: RenderSource) -> RenderResponse {
    let cfg = RenderConfig {
        parallelism: threads,
        // Tiles smaller than the frame force several work items even on
        // the 12×12 test frame.
        tile_size: 5,
        ..scene.render_config()
    };
    let session = scene.session_with(cfg);
    let cam = default_camera(12, 12, 1, 8);
    session.render(&RenderRequest::single(source, cam)).expect("render")
}

#[test]
fn corpus_sessions_render_bitwise_identically_at_1_and_4_threads() {
    for spec in Corpus::quick() {
        let scene = fixtures::corpus_scene(&spec, 32, 8, 4096, 24);
        for source in [RenderSource::GroundTruth, RenderSource::spnerf_masked()] {
            let serial = render_at(&scene, 1, source);
            let parallel = render_at(&scene, 4, source);
            assert_eq!(
                serial.images,
                parallel.images,
                "{}: image diverged for {source:?}",
                spec.label()
            );
            assert_eq!(
                serial.stats,
                parallel.stats,
                "{}: stats diverged for {source:?}",
                spec.label()
            );
        }
    }
}

#[test]
fn all_cores_mode_matches_serial_on_a_corpus_scene() {
    let spec = Corpus::quick().next().expect("non-empty corpus");
    let scene = fixtures::corpus_scene(&spec, 32, 8, 4096, 24);
    let serial = render_at(&scene, 1, RenderSource::spnerf_masked());
    let auto = render_at(&scene, 0, RenderSource::spnerf_masked());
    assert_eq!(serial.images, auto.images);
    assert_eq!(serial.stats, auto.stats);
}
