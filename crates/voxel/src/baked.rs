//! Baked scene representation for deferred (SNeRG-style) rendering.
//!
//! A [`BakedGrid`] stores, per occupied voxel vertex, the *precomputed*
//! outputs of the color pipeline instead of the raw learned features:
//!
//! * the volume **density** (copied verbatim from the source grid, so the
//!   baked support, marching behaviour, and empty-space skipping are
//!   identical to the source's),
//! * a **diffuse RGB** color — the full color MLP evaluated once per voxel
//!   at a canonical view direction during the bake pass,
//! * a compact [`SPEC_DIM`]-channel **specular feature** vector that the
//!   renderer accumulates along each ray and feeds to a small
//!   view-dependence MLP *once per pixel* (deferred shading).
//!
//! The baked payload is packed into the existing [`FEATURE_DIM`]-channel
//! voxel layout (diffuse RGB in channels `0..3`, specular features in
//! channels `3..FEATURE_DIM`), so every downstream consumer — trilinear
//! interpolation, support bitmaps, occupancy pyramids — works on a baked
//! grid unchanged.
//!
//! Baking is a pure function of the source grid and the MLP; the
//! [`BakedGrid::digest`] fingerprint pins that determinism (bake twice ⇒
//! identical digest).

use crate::coord::{GridCoord, GridDims};
use crate::grid::{DenseGrid, FEATURE_DIM};

/// Number of channels in the diffuse RGB part of the baked payload.
pub const DIFFUSE_DIM: usize = 3;

/// Number of channels in the compact specular-feature vector accumulated
/// along each ray for the deferred view-dependence MLP.
pub const SPEC_DIM: usize = FEATURE_DIM - DIFFUSE_DIM;

/// A voxel grid holding baked diffuse color, density, and specular
/// features, produced by a deterministic bake pass over a voxel source and
/// a color MLP.
///
/// # Examples
///
/// ```
/// use spnerf_voxel::baked::{BakedGrid, SPEC_DIM};
/// use spnerf_voxel::coord::{GridCoord, GridDims};
///
/// let mut baked = BakedGrid::zeros(GridDims::cube(8));
/// baked.set_voxel(GridCoord::new(1, 2, 3), 0.5, [0.9, 0.1, 0.2], [0.25; SPEC_DIM]);
/// assert_eq!(baked.diffuse(GridCoord::new(1, 2, 3)), [0.9, 0.1, 0.2]);
/// assert_eq!(baked.occupied_count(), 1);
/// let before = baked.digest();
/// assert_eq!(before, baked.digest(), "digest is a pure function of contents");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BakedGrid {
    grid: DenseGrid,
}

impl BakedGrid {
    /// An all-empty baked grid of the given dimensions.
    pub fn zeros(dims: GridDims) -> Self {
        Self { grid: DenseGrid::zeros(dims) }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> GridDims {
        self.grid.dims()
    }

    /// Writes one baked voxel: density, diffuse RGB, and specular features.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn set_voxel(
        &mut self,
        c: GridCoord,
        density: f32,
        diffuse: [f32; DIFFUSE_DIM],
        spec: [f32; SPEC_DIM],
    ) {
        self.grid.set_density(c, density);
        let mut packed = [0.0f32; FEATURE_DIM];
        packed[..DIFFUSE_DIM].copy_from_slice(&diffuse);
        packed[DIFFUSE_DIM..].copy_from_slice(&spec);
        self.grid.set_features(c, &packed);
    }

    /// Density at `c` (copied from the bake source).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn density(&self, c: GridCoord) -> f32 {
        self.grid.density(c)
    }

    /// Baked diffuse RGB at `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn diffuse(&self, c: GridCoord) -> [f32; DIFFUSE_DIM] {
        let f = self.grid.features(c);
        [f[0], f[1], f[2]]
    }

    /// Specular feature vector at `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn spec(&self, c: GridCoord) -> [f32; SPEC_DIM] {
        let mut out = [0.0f32; SPEC_DIM];
        out.copy_from_slice(&self.grid.features(c)[DIFFUSE_DIM..]);
        out
    }

    /// Number of occupied vertices (identical to the bake source's, since
    /// densities are copied verbatim).
    pub fn occupied_count(&self) -> usize {
        self.grid.occupied_count()
    }

    /// The packed channel view: a [`DenseGrid`] whose features hold
    /// `[diffuse RGB | specular]`. This is what the renderer interpolates.
    pub fn as_grid(&self) -> &DenseGrid {
        &self.grid
    }

    /// Bytes an in-memory copy of the baked payload occupies (density plane
    /// plus packed channels, `f32`).
    pub fn baked_bytes_f32(&self) -> usize {
        self.grid.restored_bytes_f32()
    }

    /// FNV-1a fingerprint of the full grid contents (dimensions, density
    /// bits, packed channel bits). Equal grids — e.g. two runs of the same
    /// bake pass — produce equal digests, bit for bit.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let dims = self.grid.dims();
        for v in [dims.nx as u64, dims.ny as u64, dims.nz as u64] {
            h = fnv_u64(h, v);
        }
        for d in self.grid.density_raw() {
            h = fnv_u64(h, d.to_bits() as u64);
        }
        for f in self.grid.features_raw() {
            h = fnv_u64(h, f.to_bits() as u64);
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BakedGrid {
        let mut b = BakedGrid::zeros(GridDims::cube(4));
        b.set_voxel(GridCoord::new(0, 0, 0), 1.0, [0.5, 0.25, 0.125], [0.1; SPEC_DIM]);
        b.set_voxel(GridCoord::new(1, 2, 3), 0.75, [0.0, 1.0, 0.0], [-0.2; SPEC_DIM]);
        b
    }

    #[test]
    fn payload_round_trips_through_the_packed_layout() {
        let b = sample();
        let c = GridCoord::new(1, 2, 3);
        assert_eq!(b.density(c), 0.75);
        assert_eq!(b.diffuse(c), [0.0, 1.0, 0.0]);
        assert_eq!(b.spec(c), [-0.2; SPEC_DIM]);
        // The packed view interleaves diffuse then specular.
        let packed = b.as_grid().features(c);
        assert_eq!(&packed[..DIFFUSE_DIM], &[0.0, 1.0, 0.0]);
        assert_eq!(&packed[DIFFUSE_DIM..], &[-0.2; SPEC_DIM]);
    }

    #[test]
    fn occupancy_counts_positive_density() {
        assert_eq!(sample().occupied_count(), 2);
        assert_eq!(BakedGrid::zeros(GridDims::cube(3)).occupied_count(), 0);
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.digest(), b.digest(), "equal grids must hash equal");
        let mut c = sample();
        c.set_voxel(GridCoord::new(3, 3, 3), 0.1, [0.0; 3], [0.0; SPEC_DIM]);
        assert_ne!(a.digest(), c.digest(), "content change must move the digest");
        let d = BakedGrid::zeros(GridDims::cube(5));
        let e = BakedGrid::zeros(GridDims::cube(6));
        assert_ne!(d.digest(), e.digest(), "dimensions are part of the digest");
    }

    #[test]
    fn spec_dim_fills_the_packed_layout() {
        assert_eq!(DIFFUSE_DIM + SPEC_DIM, FEATURE_DIM);
    }
}
