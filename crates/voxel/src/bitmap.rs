//! Packed 1-bit-per-voxel occupancy bitmap.
//!
//! The bitmap is the structure behind SpNeRF's *bitmap masking*: during
//! online decoding every hash-table hit is filtered through the bitmap so
//! that collisions landing on empty voxels are forced back to zero
//! (Section III-B of the paper). It is also what the accelerator's Bitmap
//! Lookup Unit (BLU) stores on chip.

use crate::coord::{GridCoord, GridDims};
use crate::grid::DenseGrid;

/// A packed occupancy bitmap with one bit per voxel vertex.
///
/// # Examples
///
/// ```
/// use spnerf_voxel::bitmap::Bitmap;
/// use spnerf_voxel::coord::{GridCoord, GridDims};
///
/// let mut b = Bitmap::zeros(GridDims::cube(16));
/// b.set(GridCoord::new(3, 4, 5), true);
/// assert!(b.get(GridCoord::new(3, 4, 5)));
/// assert_eq!(b.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    dims: GridDims,
    words: Vec<u64>,
}

impl Bitmap {
    /// An all-zero bitmap for a grid of the given dimensions.
    pub fn zeros(dims: GridDims) -> Self {
        let nwords = dims.len().div_ceil(64);
        Self { dims, words: vec![0; nwords] }
    }

    /// Builds the occupancy bitmap of a dense grid (bit = density > 0).
    pub fn from_grid(grid: &DenseGrid) -> Self {
        let mut b = Self::zeros(grid.dims());
        for (i, d) in grid.density_raw().iter().enumerate() {
            if *d > 0.0 {
                b.set_index(i, true);
            }
        }
        b
    }

    /// Grid dimensions this bitmap covers.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Bit at coordinate `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn get(&self, c: GridCoord) -> bool {
        let i = self
            .dims
            .linear_index(c)
            .unwrap_or_else(|| panic!("coordinate {c} out of bounds for bitmap {}", self.dims));
        self.get_index(i)
    }

    /// Bit at coordinate `c`, or `false` when `c` is out of bounds.
    ///
    /// Out-of-grid vertices are by definition empty; the hardware BLU behaves
    /// the same way (addresses outside the subgrid bit mask read as zero).
    pub fn get_clamped(&self, c: GridCoord) -> bool {
        match self.dims.linear_index(c) {
            Some(i) => self.get_index(i),
            None => false,
        }
    }

    /// Sets the bit at coordinate `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn set(&mut self, c: GridCoord, v: bool) {
        let i = self
            .dims
            .linear_index(c)
            .unwrap_or_else(|| panic!("coordinate {c} out of bounds for bitmap {}", self.dims));
        self.set_index(i, v);
    }

    /// Bit at linear index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dims.len()`.
    pub fn get_index(&self, i: usize) -> bool {
        assert!(i < self.dims.len(), "bit index {i} out of bounds");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at linear index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dims.len()`.
    pub fn set_index(&mut self, i: usize, v: bool) {
        assert!(i < self.dims.len(), "bit index {i} out of bounds");
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits (occupied voxels).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of bits (total voxels).
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the bitmap covers zero voxels (never true for constructed
    /// dims).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-chip/off-chip storage footprint: one bit per voxel, rounded up to
    /// whole 64-bit words — the memory-efficiency claim of Section III-B.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Raw packed words (little-endian bit order within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut b = Bitmap::zeros(GridDims::new(5, 7, 9));
        let c = GridCoord::new(4, 6, 8);
        assert!(!b.get(c));
        b.set(c, true);
        assert!(b.get(c));
        b.set(c, false);
        assert!(!b.get(c));
    }

    #[test]
    fn count_ones_tracks_sets() {
        let mut b = Bitmap::zeros(GridDims::cube(8));
        for i in 0..100 {
            b.set_index(i * 5 % b.len(), true);
        }
        let expect = (0..100).map(|i| i * 5 % 512).collect::<std::collections::HashSet<_>>();
        assert_eq!(b.count_ones(), expect.len());
    }

    #[test]
    fn from_grid_matches_occupancy() {
        let mut g = DenseGrid::zeros(GridDims::cube(6));
        g.set_density(GridCoord::new(1, 1, 1), 0.7);
        g.set_density(GridCoord::new(5, 5, 5), 0.1);
        g.set_density(GridCoord::new(2, 2, 2), -0.5); // empty
        let b = Bitmap::from_grid(&g);
        assert_eq!(b.count_ones(), 2);
        assert!(b.get(GridCoord::new(1, 1, 1)));
        assert!(!b.get(GridCoord::new(2, 2, 2)));
    }

    #[test]
    fn clamped_reads_false_outside() {
        let b = Bitmap::zeros(GridDims::cube(4));
        assert!(!b.get_clamped(GridCoord::new(100, 0, 0)));
    }

    #[test]
    fn storage_is_one_bit_per_voxel() {
        let b = Bitmap::zeros(GridDims::cube(160));
        // 160^3 bits = 512 KB exactly (the figure quoted for a 160-cube grid).
        assert_eq!(b.storage_bytes(), 160 * 160 * 160 / 8);
    }

    #[test]
    fn word_boundary_bits() {
        let mut b = Bitmap::zeros(GridDims::new(1, 1, 130));
        b.set_index(63, true);
        b.set_index(64, true);
        b.set_index(129, true);
        assert!(b.get_index(63) && b.get_index(64) && b.get_index(129));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        let b = Bitmap::zeros(GridDims::cube(2));
        let _ = b.get(GridCoord::new(2, 0, 0));
    }
}
