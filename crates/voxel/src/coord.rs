//! Integer voxel-grid coordinates and grid dimensions.
//!
//! Every structure in this workspace that touches the voxel grid — the dense
//! grid, the occupancy [bitmap](crate::bitmap), the sparse encodings and the
//! SpNeRF hash tables — addresses voxels through [`GridCoord`] and
//! [`GridDims`]. Linearization is x-major (`x` varies slowest), matching the
//! subgrid partition along `x` used by the SpNeRF preprocessing step.

use std::fmt;

/// A voxel vertex position `(x, y, z)` in integer grid units.
///
/// # Examples
///
/// ```
/// use spnerf_voxel::coord::{GridCoord, GridDims};
///
/// let dims = GridDims::new(4, 4, 4);
/// let c = GridCoord::new(1, 2, 3);
/// let i = dims.linear_index(c).unwrap();
/// assert_eq!(dims.coord_of(i), c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct GridCoord {
    /// Position along the x axis (the subgrid-partition axis).
    pub x: u32,
    /// Position along the y axis.
    pub y: u32,
    /// Position along the z axis.
    pub z: u32,
}

impl GridCoord {
    /// Creates a coordinate from its three components.
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Self { x, y, z }
    }

    /// The coordinate as an `[x, y, z]` array, the `p = [x, y, z]^T` vector
    /// of the paper's Section III-A.
    pub const fn to_array(self) -> [u32; 3] {
        [self.x, self.y, self.z]
    }

    /// Component-wise saturating offset by `(dx, dy, dz)` where each delta is
    /// 0 or 1 — used to enumerate the 8 corners of an interpolation cell.
    pub const fn corner_offset(self, dx: u32, dy: u32, dz: u32) -> Self {
        Self::new(self.x + dx, self.y + dy, self.z + dz)
    }

    /// The 8 voxel vertices surrounding the cell whose lower corner is
    /// `self`, in `zyx` bit order (`i & 1` → dx, `i >> 1 & 1` → dy,
    /// `i >> 2 & 1` → dz).
    pub fn cell_corners(self) -> [GridCoord; 8] {
        let mut out = [self; 8];
        let mut i = 0;
        while i < 8 {
            out[i] = self.corner_offset(i as u32 & 1, (i as u32 >> 1) & 1, (i as u32 >> 2) & 1);
            i += 1;
        }
        out
    }
}

impl From<[u32; 3]> for GridCoord {
    fn from(a: [u32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl fmt::Display for GridCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// Dimensions of a voxel grid, `nx × ny × nz` vertices.
///
/// # Examples
///
/// ```
/// use spnerf_voxel::coord::GridDims;
///
/// let dims = GridDims::cube(160);
/// assert_eq!(dims.len(), 160 * 160 * 160);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDims {
    /// Number of vertices along x.
    pub nx: u32,
    /// Number of vertices along y.
    pub ny: u32,
    /// Number of vertices along z.
    pub nz: u32,
}

impl GridDims {
    /// Creates grid dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(nx: u32, ny: u32, nz: u32) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be non-zero");
        Self { nx, ny, nz }
    }

    /// A cubic grid of side `n`.
    pub fn cube(n: u32) -> Self {
        Self::new(n, n, n)
    }

    /// Total number of voxel vertices.
    pub fn len(self) -> usize {
        self.nx as usize * self.ny as usize * self.nz as usize
    }

    /// Whether the grid has zero vertices. Always false for a constructed
    /// value; provided for `len`/`is_empty` pairing.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Whether `c` lies inside the grid.
    pub fn contains(self, c: GridCoord) -> bool {
        c.x < self.nx && c.y < self.ny && c.z < self.nz
    }

    /// x-major linear index of `c`, or `None` when out of bounds.
    pub fn linear_index(self, c: GridCoord) -> Option<usize> {
        if self.contains(c) {
            Some(self.linear_index_unchecked(c))
        } else {
            None
        }
    }

    /// x-major linear index of `c` without a bounds check.
    ///
    /// The result is meaningless (but memory-safe) if `c` is out of bounds.
    pub fn linear_index_unchecked(self, c: GridCoord) -> usize {
        (c.x as usize * self.ny as usize + c.y as usize) * self.nz as usize + c.z as usize
    }

    /// Inverse of [`Self::linear_index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn coord_of(self, i: usize) -> GridCoord {
        assert!(i < self.len(), "linear index {i} out of bounds for {self}");
        let nz = self.nz as usize;
        let ny = self.ny as usize;
        let z = (i % nz) as u32;
        let y = ((i / nz) % ny) as u32;
        let x = (i / (nz * ny)) as u32;
        GridCoord::new(x, y, z)
    }

    /// Iterates over all coordinates in x-major order.
    pub fn iter(self) -> impl Iterator<Item = GridCoord> {
        (0..self.len()).map(move |i| self.coord_of(i))
    }

    /// Whether the cell with lower corner `c` has all 8 corners in bounds.
    pub fn cell_in_bounds(self, c: GridCoord) -> bool {
        c.x + 1 < self.nx && c.y + 1 < self.ny && c.z + 1 < self.nz
    }
}

impl fmt::Display for GridDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_index_round_trip() {
        let dims = GridDims::new(3, 5, 7);
        for i in 0..dims.len() {
            let c = dims.coord_of(i);
            assert_eq!(dims.linear_index(c), Some(i));
        }
    }

    #[test]
    fn linear_index_is_x_major() {
        let dims = GridDims::new(2, 2, 2);
        // z varies fastest.
        assert_eq!(dims.linear_index(GridCoord::new(0, 0, 0)), Some(0));
        assert_eq!(dims.linear_index(GridCoord::new(0, 0, 1)), Some(1));
        assert_eq!(dims.linear_index(GridCoord::new(0, 1, 0)), Some(2));
        assert_eq!(dims.linear_index(GridCoord::new(1, 0, 0)), Some(4));
    }

    #[test]
    fn out_of_bounds_is_none() {
        let dims = GridDims::cube(4);
        assert_eq!(dims.linear_index(GridCoord::new(4, 0, 0)), None);
        assert_eq!(dims.linear_index(GridCoord::new(0, 4, 0)), None);
        assert_eq!(dims.linear_index(GridCoord::new(0, 0, 4)), None);
        assert!(!dims.contains(GridCoord::new(4, 4, 4)));
    }

    #[test]
    fn cell_corners_enumerates_unit_cube() {
        let corners = GridCoord::new(1, 2, 3).cell_corners();
        assert_eq!(corners[0], GridCoord::new(1, 2, 3));
        assert_eq!(corners[1], GridCoord::new(2, 2, 3));
        assert_eq!(corners[2], GridCoord::new(1, 3, 3));
        assert_eq!(corners[7], GridCoord::new(2, 3, 4));
        let mut unique: Vec<_> = corners.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn cell_in_bounds_edges() {
        let dims = GridDims::cube(4);
        assert!(dims.cell_in_bounds(GridCoord::new(2, 2, 2)));
        assert!(!dims.cell_in_bounds(GridCoord::new(3, 2, 2)));
    }

    #[test]
    fn iter_covers_all() {
        let dims = GridDims::new(2, 3, 4);
        let v: Vec<_> = dims.iter().collect();
        assert_eq!(v.len(), dims.len());
        assert_eq!(v[0], GridCoord::new(0, 0, 0));
        assert_eq!(*v.last().unwrap(), GridCoord::new(1, 2, 3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(GridCoord::new(1, 2, 3).to_string(), "(1, 2, 3)");
        assert_eq!(GridDims::cube(8).to_string(), "8x8x8");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        let _ = GridDims::new(0, 1, 1);
    }
}
